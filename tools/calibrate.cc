// Developer tool: per-configuration effect-size diagnostics.
//
// Runs one (dataset, error type, model) cleaning experiment and prints, for
// every cleaning method, the mean dirty-vs-repaired delta and paired-t
// statistic for accuracy and for each (group, metric) unfairness series.
// Used to calibrate the synthetic generators so that the paper's
// significant effects stay detectable at the scaled-down bench settings.
//
// Usage: calibrate <dataset> <error_type> [model] [repeats] [sample]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;  // NOLINT

double PairedT(const std::vector<double>& repaired,
               const std::vector<double>& dirty) {
  Result<TestResult> test = PairedTTest(repaired, dirty);
  return test.ok() ? test->statistic : 0.0;
}

int Run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: calibrate <dataset> <error_type> [model] [repeats] "
                 "[sample]\n");
    return 2;
  }
  std::string dataset_name = argv[1];
  std::string error_type = argv[2];
  std::string model = argc > 3 ? argv[3] : "log-reg";
  StudyOptions options;
  options.num_repeats = argc > 4 ? static_cast<size_t>(atoi(argv[4])) : 14;
  options.sample_size = argc > 5 ? static_cast<size_t>(atoi(argv[5])) : 2500;
  options.test_fraction = 0.3;

  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 1);
  // Match the bench's dataset seeding closely enough for calibration.
  Rng dataset_rng(options.seed + 1);
  Result<GeneratedDataset> dataset =
      MakeDataset(dataset_name, 0, &dataset_rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<TunedModelFamily> family = ModelFamilyByName(model);
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
    return 1;
  }
  Result<CleaningExperimentResult> experiment =
      RunCleaningExperiment(*dataset, error_type, *family, options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "%s\n", experiment.status().ToString().c_str());
    return 1;
  }

  // Mean signed gap (priv - dis) from the recorded confusion matrices.
  auto signed_gap = [&](const std::string& version, const std::string& group,
                        FairnessMetric metric) {
    double total = 0.0;
    for (size_t r = 0; r < options.num_repeats; ++r) {
      std::string prefix = StrFormat(
          "%s/%s/%s/%s/r%zu", dataset_name.c_str(), error_type.c_str(),
          version.c_str(), model.c_str(), r);
      GroupConfusion confusion;
      struct {
        const char* side;
        ConfusionMatrix* cm;
      } sides[2] = {{"priv", &confusion.privileged},
                    {"dis", &confusion.disadvantaged}};
      for (auto& side : sides) {
        std::string base = group + "_" + side.side;
        side.cm->tn = static_cast<int64_t>(
            *experiment->records.Get(MetricKey({prefix, base, "tn"})));
        side.cm->fp = static_cast<int64_t>(
            *experiment->records.Get(MetricKey({prefix, base, "fp"})));
        side.cm->fn = static_cast<int64_t>(
            *experiment->records.Get(MetricKey({prefix, base, "fn"})));
        side.cm->tp = static_cast<int64_t>(
            *experiment->records.Get(MetricKey({prefix, base, "tp"})));
      }
      total += FairnessGap(metric, confusion);
    }
    return total / static_cast<double>(options.num_repeats);
  };

  Result<double> dirty_acc = Mean(experiment->dirty.accuracy);
  std::printf("%s / %s / %s: dirty accuracy %.4f (threshold |t| >= %.2f at "
              "Bonferroni %zu methods)\n",
              dataset_name.c_str(), error_type.c_str(), model.c_str(),
              dirty_acc.ok() ? *dirty_acc : 0.0, 3.0,
              experiment->repaired.size());
  std::printf("signed dirty gaps (priv - dis):");
  for (const GroupDefinition& group : experiment->groups) {
    for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                  FairnessMetric::kEqualOpportunity}) {
      std::printf(" %s %+0.3f", UnfairnessKey(group.key, metric).c_str(),
                  signed_gap("dirty", group.key, metric));
    }
  }
  std::printf("\n");
  for (const auto& [method, series] : experiment->repaired) {
    (void)series;
    std::printf("signed gaps %-22s:", method.c_str());
    for (const GroupDefinition& group : experiment->groups) {
      for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                    FairnessMetric::kEqualOpportunity}) {
        std::printf(" %s %+0.3f", UnfairnessKey(group.key, metric).c_str(),
                    signed_gap(method, group.key, metric));
      }
    }
    std::printf("\n");
  }
  for (const auto& [method, series] : experiment->repaired) {
    Result<double> acc = Mean(series.accuracy);
    double t_acc = PairedT(series.accuracy, experiment->dirty.accuracy);
    std::printf("%-26s acc delta %+0.4f t=%+6.2f |", method.c_str(),
                (acc.ok() ? *acc : 0.0) - (dirty_acc.ok() ? *dirty_acc : 0.0),
                t_acc);
    for (const GroupDefinition& group : experiment->groups) {
      for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                    FairnessMetric::kEqualOpportunity}) {
        std::string key = UnfairnessKey(group.key, metric);
        const std::vector<double>& dirty_series =
            experiment->dirty.unfairness.at(key);
        const std::vector<double>& method_series = series.unfairness.at(key);
        Result<double> dirty_mean = Mean(dirty_series);
        Result<double> method_mean = Mean(method_series);
        double t = PairedT(method_series, dirty_series);
        std::printf(" %s %+0.3f(t%+5.1f)", key.c_str(),
                    *method_mean - *dirty_mean, t);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
