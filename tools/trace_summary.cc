// Developer tool: aggregates a Chrome trace-event file (written by the
// FAIRCLEAN_TRACE tracer) into a per-site latency table, and optionally
// summarizes a metrics JSONL export (FAIRCLEAN_METRICS) alongside it.
//
// Span names are normalized by collapsing every digit run to '#' so that
// per-item spans ("tune fold 3 log-reg", "slot adult/missing_values/knn
// r12") aggregate into one row per call site. For each site the tool
// prints count, total, mean, p50, p95, and max over the complete-event
// durations; instant events are tallied by name.
//
// Scheduler spans are wave-tagged ("plan.build w3 adult", "cell w3
// adult/missing_values/knn"), and the tool folds them into a per-wave
// breakdown: how much each wave spent materializing shared plans next to
// how much its cells spent computing. `--filter <substr>` narrows the site
// table to matching categories/sites (e.g. `--filter sched` shows the
// scheduler table plus the wave breakdown).
//
// Usage: trace_summary [--filter <substr>] <trace.json> [metrics.jsonl]

#include <cctype>
#include <cstdio>
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/safe_io.h"
#include "obs/json_lite.h"

namespace {

using namespace fairclean;  // NOLINT

/// Collapses every run of decimal digits to a single '#': "fold 12 of 5"
/// -> "fold # of #". Keeps per-item spans from exploding the table.
std::string NormalizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool in_digits = false;
  for (char c : name) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) out.push_back('#');
      in_digits = true;
    } else {
      out.push_back(c);
      in_digits = false;
    }
  }
  return out;
}

struct SiteStats {
  std::vector<double> durations_us;
};

/// One request's digest, grouped by the trace id spans are tagged with.
struct TraceStats {
  size_t spans = 0;
  size_t instants = 0;          ///< fault fires and sheds in this request
  double busy_us = 0.0;         ///< sum of span durations (overlaps count)
  double first_ts_us = 1e300;   ///< earliest span start
  double last_end_us = 0.0;     ///< latest span end
  double slowest_us = 0.0;
  std::string slowest;          ///< name of the longest span
};

/// One Kahn wave's scheduler cost split: shared-plan materialization
/// (sched.plan.build spans) vs cell compute (sched.cell spans).
struct WaveStats {
  size_t plans = 0;
  double plan_us = 0.0;
  size_t cells = 0;
  double cell_us = 0.0;
  double slowest_cell_us = 0.0;
  std::string slowest_cell;
};

/// Parses the "w<k> " wave tag the scheduler embeds after `prefix` in its
/// span names ("plan.build w3 adult", "cell w3 adult/..."). Returns the
/// wave index and leaves the rest of the name in *rest, or npos when the
/// name is not wave-tagged (e.g. a standalone cell produced outside a
/// wave).
size_t ParseWaveTag(const std::string& name, const std::string& prefix,
                    std::string* rest) {
  if (name.compare(0, prefix.size(), prefix) != 0) return std::string::npos;
  size_t pos = prefix.size();
  if (pos >= name.size() || name[pos] != 'w') return std::string::npos;
  ++pos;
  size_t digits_end = pos;
  while (digits_end < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[digits_end]))) {
    ++digits_end;
  }
  if (digits_end == pos || digits_end >= name.size() ||
      name[digits_end] != ' ') {
    return std::string::npos;
  }
  *rest = name.substr(digits_end + 1);
  return static_cast<size_t>(std::stoull(name.substr(pos, digits_end - pos)));
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int SummarizeTrace(const std::string& path, const std::string& filter) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 text.status().ToString().c_str());
    return 1;
  }
  obs::JsonValue root;
  std::string error;
  if (!obs::JsonValue::Parse(*text, &root, &error)) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const obs::JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", path.c_str());
    return 1;
  }

  // site key: "<category>\t<normalized name>".
  std::map<std::string, SiteStats> sites;
  std::map<std::string, int64_t> instants;
  std::map<double, std::string> thread_names;
  // Request digests, keyed by the trace id the server stamps into each
  // span's args.trace at admission.
  std::map<std::string, TraceStats> traces;
  // Scheduler wave breakdown, keyed by wave index.
  std::map<size_t, WaveStats> waves;
  size_t complete_events = 0;
  for (const obs::JsonValue& event : events->array_items) {
    std::string phase = event.StringOr("ph", "");
    std::string trace_id;
    if (const obs::JsonValue* args = event.Find("args")) {
      trace_id = args->StringOr("trace", "");
    }
    if (phase == "X") {
      ++complete_events;
      std::string key = event.StringOr("cat", "?") + "\t" +
                        NormalizeName(event.StringOr("name", "?"));
      double dur_us = event.NumberOr("dur", 0.0);
      sites[key].durations_us.push_back(dur_us);
      if (event.StringOr("cat", "") == "sched") {
        std::string name = event.StringOr("name", "");
        std::string rest;
        size_t wave = ParseWaveTag(name, "plan.build ", &rest);
        if (wave != std::string::npos) {
          WaveStats& stats = waves[wave];
          ++stats.plans;
          stats.plan_us += dur_us;
        } else if ((wave = ParseWaveTag(name, "cell ", &rest)) !=
                   std::string::npos) {
          WaveStats& stats = waves[wave];
          ++stats.cells;
          stats.cell_us += dur_us;
          if (dur_us > stats.slowest_cell_us) {
            stats.slowest_cell_us = dur_us;
            stats.slowest_cell = rest;
          }
        }
      }
      if (!trace_id.empty()) {
        TraceStats& stats = traces[trace_id];
        ++stats.spans;
        stats.busy_us += dur_us;
        double ts = event.NumberOr("ts", 0.0);
        stats.first_ts_us = std::min(stats.first_ts_us, ts);
        stats.last_end_us = std::max(stats.last_end_us, ts + dur_us);
        if (dur_us > stats.slowest_us) {
          stats.slowest_us = dur_us;
          stats.slowest = event.StringOr("name", "?");
        }
      }
    } else if (phase == "i" || phase == "I") {
      ++instants[event.StringOr("name", "?")];
      if (!trace_id.empty()) ++traces[trace_id].instants;
    } else if (phase == "M" &&
               event.StringOr("name", "") == "thread_name") {
      const obs::JsonValue* args = event.Find("args");
      if (args != nullptr) {
        thread_names[event.NumberOr("tid", 0.0)] =
            args->StringOr("name", "?");
      }
    }
  }

  std::printf("%s: %zu complete events across %zu sites, %zu threads\n\n",
              path.c_str(), complete_events, sites.size(),
              thread_names.size());
  std::printf("%-8s %-36s %8s %12s %10s %10s %10s %10s\n", "category",
              "site", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms",
              "max_ms");
  // Order rows by total duration, heaviest first.
  std::vector<std::pair<double, std::string>> order;
  for (auto& [key, stats] : sites) {
    std::sort(stats.durations_us.begin(), stats.durations_us.end());
    double total = 0.0;
    for (double d : stats.durations_us) total += d;
    order.emplace_back(-total, key);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [neg_total, key] : order) {
    const SiteStats& stats = sites[key];
    size_t tab = key.find('\t');
    std::string category = key.substr(0, tab);
    std::string name = key.substr(tab + 1);
    if (!filter.empty() && category.find(filter) == std::string::npos &&
        name.find(filter) == std::string::npos) {
      continue;
    }
    double total_us = -neg_total;
    size_t count = stats.durations_us.size();
    std::printf("%-8s %-36s %8zu %12.3f %10.3f %10.3f %10.3f %10.3f\n",
                category.c_str(), name.c_str(), count, total_us / 1e3,
                total_us / 1e3 / static_cast<double>(count),
                PercentileSorted(stats.durations_us, 0.50) / 1e3,
                PercentileSorted(stats.durations_us, 0.95) / 1e3,
                stats.durations_us.back() / 1e3);
  }
  if (!waves.empty()) {
    // Per-wave cost split: what the planner spent materializing shared
    // inputs vs what the wave's cells spent computing. plan_ms sitting
    // next to a much larger cell_ms is the §15 plan paying for itself.
    std::printf("\nwave breakdown (sched):\n");
    std::printf("  %-6s %6s %10s %6s %12s  %s\n", "wave", "plans",
                "plan_ms", "cells", "cell_ms", "slowest cell");
    for (const auto& [wave, stats] : waves) {
      std::printf("  w%-5zu %6zu %10.3f %6zu %12.3f  %s (%.3f ms)\n", wave,
                  stats.plans, stats.plan_us / 1e3, stats.cells,
                  stats.cell_us / 1e3, stats.slowest_cell.c_str(),
                  stats.slowest_cell_us / 1e3);
    }
  }
  if (!instants.empty()) {
    std::printf("\ninstant events:\n");
    for (const auto& [name, count] : instants) {
      std::printf("  %-44s %8lld\n", name.c_str(),
                  static_cast<long long>(count));
    }
  }
  if (!thread_names.empty()) {
    std::printf("\nthreads:\n");
    for (const auto& [tid, name] : thread_names) {
      std::printf("  tid %-4.0f %s\n", tid, name.c_str());
    }
  }
  if (!traces.empty()) {
    std::printf("\nper-request digests (%zu traces):\n", traces.size());
    std::printf("  %-18s %6s %6s %10s %10s  %s\n", "trace", "spans",
                "inst", "wall_ms", "busy_ms", "slowest span");
    for (const auto& [trace_id, stats] : traces) {
      double wall_us =
          stats.spans > 0 ? stats.last_end_us - stats.first_ts_us : 0.0;
      std::printf("  %-18s %6zu %6zu %10.3f %10.3f  %s (%.3f ms)\n",
                  trace_id.c_str(), stats.spans, stats.instants,
                  wall_us / 1e3, stats.busy_us / 1e3,
                  stats.slowest.c_str(), stats.slowest_us / 1e3);
    }
  }
  return 0;
}

int SummarizeMetrics(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 text.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s:\n", path.c_str());
  size_t line_no = 0;
  size_t start = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    std::string line = text->substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    obs::JsonValue value;
    std::string error;
    if (!obs::JsonValue::Parse(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: invalid JSON: %s\n", path.c_str(),
                   line_no, error.c_str());
      return 1;
    }
    std::string name = value.StringOr("metric", "?");
    std::string type = value.StringOr("type", "?");
    if (type == "counter") {
      std::printf("  %-44s %12.0f\n", name.c_str(),
                  value.NumberOr("value", 0.0));
    } else if (type == "gauge") {
      std::printf("  %-44s %12g\n", name.c_str(),
                  value.NumberOr("value", 0.0));
    } else if (type == "histogram") {
      std::printf("  %-44s n=%.0f sum=%g p50=%g p95=%g max=%g\n",
                  name.c_str(), value.NumberOr("count", 0.0),
                  value.NumberOr("sum", 0.0), value.NumberOr("p50", 0.0),
                  value.NumberOr("p95", 0.0), value.NumberOr("max", 0.0));
    } else {
      std::printf("  %-44s (unknown type %s)\n", name.c_str(),
                  type.c_str());
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  std::string filter;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--filter") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--filter needs a substring argument\n");
        return 2;
      }
      filter = argv[++i];
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2) {
    std::fprintf(stderr,
                 "usage: trace_summary [--filter <substr>] <trace.json> "
                 "[metrics.jsonl]\n");
    return 2;
  }
  int code = SummarizeTrace(paths[0], filter);
  if (code != 0) return code;
  if (paths.size() == 2) return SummarizeMetrics(paths[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
