// Command-line client and load generator for the cleaning-advisor server.
//
// Single-request mode (prints the raw response line):
//   advisor_client --port P --op ping|stats|shutdown
//   advisor_client --port P --dataset german --error-type missing_values
//       --model log-reg [--group sex] [--metric PP] [--deadline-s 5]
//
// Load mode (prints one JSON report measured client-side):
//   advisor_client --port P --load --clients 4 --requests 8
//       --dataset german --error-type missing_values --model log-reg
//
// Retries are jittered exponential backoff honoring the server's
// retry_after_ms shed hints; --seed makes the whole retry schedule
// reproducible. Exit codes: 0 response ok, 1 transport/parse failure,
// 3 server answered with an error status (load mode: any request failed
// after retries).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "obs/json_lite.h"
#include "serve/client.h"
#include "serve/load_gen.h"

namespace {

using namespace fairclean;  // NOLINT

int Usage() {
  std::fprintf(
      stderr,
      "usage: advisor_client --port P [--host H] [--seed S]\n"
      "         (--op ping|stats|shutdown|metrics|trace|flight |\n"
      "          --dataset D --error-type E --model M [--group G]\n"
      "          [--metric F] [--deadline-s X])\n"
      "         [--format json|prometheus] [--trace-id HEX] [--path FILE]\n"
      "         [--load --clients C --requests N] [--no-retry]\n");
  return 1;
}

std::string BuildAnalyzeLine(const std::string& id, const std::string& dataset,
                             const std::string& error_type,
                             const std::string& model,
                             const std::string& group,
                             const std::string& metric, double deadline_s) {
  std::string line = "{\"op\":\"analyze\",\"id\":\"" + obs::JsonEscape(id) +
                     "\",\"dataset\":\"" + obs::JsonEscape(dataset) +
                     "\",\"error_type\":\"" + obs::JsonEscape(error_type) +
                     "\",\"model\":\"" + obs::JsonEscape(model) + "\"";
  if (!group.empty()) {
    line += ",\"group\":\"" + obs::JsonEscape(group) + "\"";
  }
  if (!metric.empty()) {
    line += ",\"metric\":\"" + obs::JsonEscape(metric) + "\"";
  }
  if (deadline_s > 0.0) {
    line += StrFormat(",\"deadline_s\":%.6f", deadline_s);
  }
  line += "}";
  return line;
}

int Run(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  uint64_t seed = 42;
  std::string op;
  std::string dataset, error_type, model, group, metric;
  std::string format, trace_id, path;
  double deadline_s = 0.0;
  bool load = false;
  bool no_retry = false;
  size_t clients = 1, requests = 8;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--host")) {
      host = v;
    } else if (const char* v = value("--port")) {
      port = std::atoi(v);
    } else if (const char* v = value("--seed")) {
      seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--op")) {
      op = v;
    } else if (const char* v = value("--dataset")) {
      dataset = v;
    } else if (const char* v = value("--error-type")) {
      error_type = v;
    } else if (const char* v = value("--model")) {
      model = v;
    } else if (const char* v = value("--group")) {
      group = v;
    } else if (const char* v = value("--metric")) {
      metric = v;
    } else if (const char* v = value("--format")) {
      format = v;
    } else if (const char* v = value("--trace-id")) {
      trace_id = v;
    } else if (const char* v = value("--path")) {
      path = v;
    } else if (const char* v = value("--deadline-s")) {
      deadline_s = std::atof(v);
    } else if (const char* v = value("--clients")) {
      clients = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--requests")) {
      requests = static_cast<size_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--load") == 0) {
      load = true;
    } else if (std::strcmp(argv[i], "--no-retry") == 0) {
      no_retry = true;
    } else {
      return Usage();
    }
  }
  if (port <= 0 || port > 65535) return Usage();

  std::string line;
  if (!op.empty()) {
    line = "{\"op\":\"" + obs::JsonEscape(op) + "\",\"id\":\"cli\"";
    if (!format.empty()) {
      line += ",\"format\":\"" + obs::JsonEscape(format) + "\"";
    }
    if (!trace_id.empty()) {
      line += ",\"trace_id\":\"" + obs::JsonEscape(trace_id) + "\"";
    }
    if (!path.empty()) {
      line += ",\"path\":\"" + obs::JsonEscape(path) + "\"";
    }
    line += "}";
  } else if (!dataset.empty()) {
    line = BuildAnalyzeLine("cli", dataset, error_type, model, group, metric,
                            deadline_s);
  } else {
    return Usage();
  }

  if (load) {
    serve::LoadOptions options;
    options.host = host;
    options.port = static_cast<uint16_t>(port);
    options.clients = clients;
    options.requests_per_client = requests;
    options.request_line = line;
    options.seed = seed;
    Result<serve::LoadReport> report = serve::RunLoad(options);
    if (!report.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->ToJson().c_str());
    return report->failed == 0 ? 0 : 3;
  }

  serve::AdvisorClient client(host, static_cast<uint16_t>(port), seed);
  Result<serve::AdvisorResponse> response =
      no_retry ? client.Call(line) : client.CallWithRetry(line);
  if (!response.ok()) {
    std::fprintf(stderr, "request failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  // Responses are single lines already; echo verbatim for scripts.
  std::printf("%s\n", response->raw.c_str());
  return response->ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
