// The cleaning-advisor server binary: keeps the suite stack (generated
// datasets, experiment-cell cache, study driver) resident and serves
// analyze requests over a line-delimited JSON protocol on 127.0.0.1.
//
// Usage: advisor_server [--port P]
//
// Configuration is environment-first, like every other binary here:
// FAIRCLEAN_SERVE_PORT / FAIRCLEAN_SERVE_QUEUE / FAIRCLEAN_SERVE_DEADLINE_S
// for the serving layer, the usual FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS /
// FAIRCLEAN_CACHE_DIR / ... for the resident stack, FAIRCLEAN_FAULTS for
// chaos runs. All knob parsing is strict: a typo'd value aborts startup
// (exit 2) instead of silently serving with a default.
//
// The first stdout line once serving is "listening on port <P>" — scripts
// (the soak test, CI) scrape it to find an ephemeral port. The server exits
// cleanly on a {"op":"shutdown"} request; a SIGKILL needs no cooperation
// because every cache write is atomic and journaled, and a restarted server
// resumes in-flight cells from their journals.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace {

using namespace fairclean;  // NOLINT

// SIGTERM/SIGINT only set a flag: the handler must stay async-signal-safe,
// so the main loop polls it (WaitFor) and performs the graceful stop —
// shedding the queue honestly and flushing the final metrics export.
volatile std::sig_atomic_t g_terminate = 0;

void HandleTerminate(int) { g_terminate = 1; }

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);
  obs::InitTraceFromEnv();
  // Fatal signals dump the flight recorder rings before re-raising, so a
  // crash leaves a decodable fairclean.flight next to the server.
  obs::FlightRecorder::InstallCrashHandler();

  int port_override = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port_override = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: advisor_server [--port P]\n");
      return 1;
    }
  }

  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 2;
  }

  Result<serve::ServeOptions> options = serve::ServeOptionsFromEnv();
  if (!options.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n",
                 options.status().ToString().c_str());
    return 2;
  }
  if (port_override >= 0 && port_override <= 65535) {
    options->port = static_cast<uint16_t>(port_override);
  }

  serve::AdvisorServer server(std::move(*options));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGTERM, HandleTerminate);
  std::signal(SIGINT, HandleTerminate);
  while (!server.WaitFor(0.2)) {
    if (g_terminate) break;
  }
  server.Shutdown();  // sheds the queue and flushes the metrics export
  serve::ServerStats stats = server.Stats();
  std::printf(
      "served: accepted=%llu ok=%llu shed=%llu failed=%llu "
      "deadline_exceeded=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.deadline_exceeded));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
