// Runs the whole paper grid (Figures 1-2, Tables II-XIV) as one DAG
// through the suite scheduler: shared upstream artifacts (generated
// datasets, experiment-cell records, detector outputs) are produced once
// and reused across units, ready cells fan out across FAIRCLEAN_THREADS
// workers, and one merged JSON report with per-table paper comparisons is
// written at the end.
//
// Usage: run_suite [--filter a,b,c] [--report path] [--list]
//                  [--shard i/N | --shard-claim i/N | --merge-report]
//
//   --filter  comma-separated substring filter over unit names and cell
//             ids: "tables_missing" runs one unit, "german" runs every
//             german cell, "smoke" runs the CI smoke subset. Empty: every
//             default unit.
//   --report  merged report path (default: FAIRCLEAN_SUITE_REPORT or
//             fairclean_suite_report.json).
//   --list    print the selected units and cells, then exit.
//   --shard i/N        static shard mode: this process produces the cells
//             at positions j % N == i-1 of every wave, writes a partial
//             report "<report>.shard<i>of<N>", and exits; run
//             --merge-report once every shard finished.
//   --shard-claim i/N  dynamic shard mode: N cooperating processes
//             work-steal cells through lease records under
//             <cache_dir>/claims (lease length: FAIRCLEAN_SHARD_LEASE_S,
//             refreshed at every journal checkpoint; expired or dead
//             owners are stolen from and their journals resumed). The
//             last finishing shard assembles the merged report itself.
//   --merge-report     validate the partial reports against the shared
//             cache, then execute the full graph over the warm cache —
//             the merged report is byte-identical to a single-process
//             run.
//
// The run is resumable: the per-cell StudyDriver cache and repeat journals
// survive a kill, and re-running the same command resumes mid-suite. Exit
// codes: 0 success, 75 (EX_TEMPFAIL) time budget exhausted with resumable
// state, 1 failure. Scale knobs are the bench ones (FAIRCLEAN_SAMPLE /
// FAIRCLEAN_REPEATS / FAIRCLEAN_FOLDS / FAIRCLEAN_SEED / ...), resolved
// once at startup so a mid-run environment change cannot split the suite.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sched/experiment_graph.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"

namespace {

using namespace fairclean;         // NOLINT
using namespace fairclean::sched;  // NOLINT

int ListSuite(const SuiteSpec& spec, const SuiteFilter& filter) {
  ExperimentGraph graph = ExperimentGraph::Build(spec, filter);
  std::printf("suite %s: %zu units selected, %zu graph nodes\n",
              spec.name.c_str(), graph.selected_units().size(),
              graph.nodes().size());
  for (const GraphNode& node : graph.nodes()) {
    std::printf("  [%s] %s\n", NodeKindName(node.kind), node.label.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);
  obs::InitTraceFromEnv();

  std::string filter_text;
  std::string report_path;
  bool list_only = false;
  bool merge_only = false;
  ShardSpec shard;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter_text = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      Result<ShardSpec> parsed = ParseShardSpec(ShardMode::kStatic,
                                                argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --shard: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      shard = *parsed;
    } else if (std::strcmp(argv[i], "--shard-claim") == 0 && i + 1 < argc) {
      Result<ShardSpec> parsed = ParseShardSpec(ShardMode::kClaim,
                                                argv[++i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --shard-claim: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      shard = *parsed;
    } else if (std::strcmp(argv[i], "--merge-report") == 0) {
      merge_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: run_suite [--filter a,b,c] [--report path] "
                   "[--list] [--shard i/N | --shard-claim i/N | "
                   "--merge-report]\n");
      return 1;
    }
  }
  if (merge_only && shard.active()) {
    std::fprintf(stderr,
                 "--merge-report cannot be combined with --shard / "
                 "--shard-claim\n");
    return 1;
  }

  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 1;
  }

  SuiteOptions options = SuiteOptionsFromEnv();
  if (!report_path.empty()) options.report_path = report_path;
  if (options.report_path.empty()) {
    options.report_path = "fairclean_suite_report.json";
  }
  options.shard = shard;

  SuiteSpec spec = PaperSuite();
  SuiteFilter filter = SuiteFilter::Parse(filter_text);
  if (list_only) return ListSuite(spec, filter);

  SuiteScheduler scheduler(options);

  if (shard.active()) {
    std::printf(
        "== fairclean suite shard: %s %s (%s mode)%s%s ==\n"
        "scale: sample=%zu repeats=%zu folds=%zu seed=%llu threads=%zu\n\n",
        spec.name.c_str(), shard.Label().c_str(),
        ShardModeName(shard.mode), filter.Empty() ? "" : ", filter ",
        filter.Empty() ? "" : filter_text.c_str(),
        options.study.sample_size, options.study.num_repeats,
        options.study.cv_folds,
        static_cast<unsigned long long>(options.study.seed),
        scheduler.width());
    Status status = scheduler.RunSuiteShard(spec, filter);
    if (!status.ok()) return scheduler.ReportFailure(status);
    scheduler.PrintRunSummary();
    std::printf("shard partial report: %s\n",
                SuiteScheduler::PartialReportPath(options.report_path, shard)
                    .c_str());
    if (shard.mode == ShardMode::kStatic) {
      std::printf(
          "run `run_suite --merge-report` once every shard finished to "
          "assemble %s\n",
          options.report_path.c_str());
    }
    return 0;
  }

  Status status = merge_only ? scheduler.RunSuiteMerge(spec, filter)
                             : scheduler.RunSuite(spec, filter);
  if (!status.ok()) return scheduler.ReportFailure(status);
  scheduler.PrintRunSummary();
  std::printf("suite report: %s (artifacts produced=%llu reused=%llu)\n",
              options.report_path.c_str(),
              static_cast<unsigned long long>(scheduler.artifacts().produced()),
              static_cast<unsigned long long>(scheduler.artifacts().reused()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
