// Operator console for the telemetry plane (DESIGN.md §14).
//
// Live mode — polls a running advisor server's `metrics` op and renders
// interval deltas, the way `top` renders /proc:
//   obs_tool live --port P [--host H] [--interval S] [--count N]
// Counters print as rates over the poll interval, gauges as their current
// value, and sliding-window histograms as the server-side window's
// count/p50/p95/p99 (already limited to FAIRCLEAN_METRICS_WINDOW_S
// seconds, so a quiet server decays to zero instead of averaging its
// whole life).
//
// Offline mode — digests artifacts the plane leaves on disk:
//   obs_tool metrics <metrics.jsonl>     # periodic exporter output
//   obs_tool flight <fairclean.flight>   # crash/deadline/explicit dump
// The flight digest prints the dump header, per-thread ring occupancy,
// per-site event counts, and the newest events last (the crash is at the
// bottom, where eyes land).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/safe_io.h"
#include "obs/flight.h"
#include "obs/json_lite.h"
#include "serve/client.h"

namespace {

using namespace fairclean;  // NOLINT

int Usage() {
  std::fprintf(stderr,
               "usage: obs_tool live --port P [--host H] [--interval S] "
               "[--count N]\n"
               "       obs_tool metrics <metrics.jsonl>\n"
               "       obs_tool flight <fairclean.flight>\n");
  return 2;
}

// ---------------------------------------------------------------- live --

struct MetricRow {
  std::string type;
  double value = 0.0;   // counter/gauge
  double count = 0.0;   // histograms
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
  double window_s = 0.0;  // > 0: sliding window
};

std::map<std::string, MetricRow> ParseScrape(const obs::JsonValue& metrics) {
  std::map<std::string, MetricRow> rows;
  for (const obs::JsonValue& entry : metrics.array_items) {
    MetricRow row;
    row.type = entry.StringOr("type", "?");
    row.value = entry.NumberOr("value", 0.0);
    row.count = entry.NumberOr("count", 0.0);
    row.p50 = entry.NumberOr("p50", 0.0);
    row.p95 = entry.NumberOr("p95", 0.0);
    row.p99 = entry.NumberOr("p99", 0.0);
    row.max = entry.NumberOr("max", 0.0);
    row.window_s = entry.NumberOr("window_s", 0.0);
    rows[entry.StringOr("metric", "?")] = row;
  }
  return rows;
}

int RunLive(const std::string& host, int port, double interval_s,
            long ticks) {
  serve::AdvisorClient client(host, static_cast<uint16_t>(port));
  std::map<std::string, MetricRow> previous;
  for (long tick = 0; ticks < 0 || tick < ticks; ++tick) {
    Result<serve::AdvisorResponse> response =
        client.Call("{\"op\":\"metrics\",\"id\":\"obs_tool\"}");
    if (!response.ok()) {
      std::fprintf(stderr, "scrape failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (!response->ok()) {
      std::fprintf(stderr, "server error: %s\n", response->error.c_str());
      return 3;
    }
    const obs::JsonValue* metrics = response->json.Find("metrics");
    if (metrics == nullptr || !metrics->is_array()) {
      std::fprintf(stderr, "malformed scrape: no metrics array\n");
      return 1;
    }
    std::map<std::string, MetricRow> rows = ParseScrape(*metrics);

    std::printf("== scrape %ld (%s:%d, every %.1fs) ==\n", tick,
                host.c_str(), port, interval_s);
    std::printf("%-40s %-10s %14s\n", "metric", "type", "value");
    for (const auto& [name, row] : rows) {
      if (row.type == "counter") {
        double delta = row.value;
        auto it = previous.find(name);
        if (it != previous.end()) delta = row.value - it->second.value;
        std::printf("%-40s %-10s %14.0f  (+%.1f/s)\n", name.c_str(),
                    "counter", row.value,
                    tick == 0 ? 0.0 : delta / interval_s);
      } else if (row.type == "gauge") {
        std::printf("%-40s %-10s %14g\n", name.c_str(), "gauge", row.value);
      } else if (row.window_s > 0.0) {
        std::printf(
            "%-40s %-10s n=%-8.0f p50=%-9g p95=%-9g p99=%-9g (%gs win)\n",
            name.c_str(), "window", row.count, row.p50, row.p95, row.p99,
            row.window_s);
      } else {
        std::printf("%-40s %-10s n=%-8.0f p50=%-9g p95=%-9g max=%g\n",
                    name.c_str(), "histogram", row.count, row.p50, row.p95,
                    row.max);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
    previous = std::move(rows);
    if (ticks < 0 || tick + 1 < ticks) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
  }
  return 0;
}

// ------------------------------------------------------------- metrics --

int DigestMetricsJsonl(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 text.status().ToString().c_str());
    return 1;
  }
  std::printf("%s:\n", path.c_str());
  size_t start = 0, line_no = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    std::string line = text->substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    obs::JsonValue value;
    std::string error;
    if (!obs::JsonValue::Parse(line, &value, &error)) {
      std::fprintf(stderr, "%s:%zu: invalid JSON: %s\n", path.c_str(),
                   line_no, error.c_str());
      return 1;
    }
    std::string name = value.StringOr("metric", "?");
    std::string type = value.StringOr("type", "?");
    double window_s = value.NumberOr("window_s", 0.0);
    if (type == "counter" || type == "gauge") {
      std::printf("  %-44s %-8s %12g\n", name.c_str(), type.c_str(),
                  value.NumberOr("value", 0.0));
    } else if (type == "histogram" && window_s > 0.0) {
      std::printf("  %-44s window   n=%.0f p50=%g p95=%g p99=%g (%gs)\n",
                  name.c_str(), value.NumberOr("count", 0.0),
                  value.NumberOr("p50", 0.0), value.NumberOr("p95", 0.0),
                  value.NumberOr("p99", 0.0), window_s);
    } else if (type == "histogram") {
      std::printf("  %-44s histo    n=%.0f sum=%g p50=%g p95=%g p99=%g\n",
                  name.c_str(), value.NumberOr("count", 0.0),
                  value.NumberOr("sum", 0.0), value.NumberOr("p50", 0.0),
                  value.NumberOr("p95", 0.0), value.NumberOr("p99", 0.0));
    } else {
      std::printf("  %-44s (unknown type %s)\n", name.c_str(), type.c_str());
    }
  }
  return 0;
}

// -------------------------------------------------------------- flight --

const char* FlightReasonName(uint32_t reason) {
  if (reason == obs::kFlightReasonExplicit) return "explicit";
  if (reason == obs::kFlightReasonDeadline) return "deadline";
  return "signal";  // reason carries the signal number
}

int DecodeFlight(const std::string& path) {
  obs::FlightDump dump;
  std::string error;
  if (!obs::DecodeFlightFile(path, &dump, &error)) {
    std::fprintf(stderr, "cannot decode %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: version %u, reason %s", path.c_str(), dump.version,
              FlightReasonName(dump.reason));
  if (dump.reason != obs::kFlightReasonExplicit &&
      dump.reason != obs::kFlightReasonDeadline) {
    std::printf(" (%u)", dump.reason);
  }
  std::printf(", %zu sites, %zu threads, %zu events\n", dump.sites.size(),
              dump.threads.size(), dump.TotalEvents());

  std::map<std::string, uint64_t> by_site;
  for (const obs::FlightDump::Thread& thread : dump.threads) {
    std::printf("  tid %u: %zu events retained (%llu recorded)\n",
                thread.tid, thread.events.size(),
                static_cast<unsigned long long>(thread.recorded));
    for (const obs::FlightEntry& entry : thread.events) {
      ++by_site[dump.sites[entry.site]];
    }
  }
  std::printf("\nevents by site:\n");
  for (const auto& [site, count] : by_site) {
    std::printf("  %-44s %8llu\n", site.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nper-thread tails (newest last):\n");
  for (const obs::FlightDump::Thread& thread : dump.threads) {
    std::printf("  tid %u:\n", thread.tid);
    size_t begin =
        thread.events.size() > 16 ? thread.events.size() - 16 : 0;
    for (size_t i = begin; i < thread.events.size(); ++i) {
      const obs::FlightEntry& entry = thread.events[i];
      std::printf("    %12llu us  %-10s %-40s arg=%u\n",
                  static_cast<unsigned long long>(entry.ts_us),
                  obs::FlightEventTypeName(entry.type),
                  dump.sites[entry.site].c_str(), entry.arg);
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  if (mode == "metrics") {
    if (argc != 3) return Usage();
    return DigestMetricsJsonl(argv[2]);
  }
  if (mode == "flight") {
    if (argc != 3) return Usage();
    return DecodeFlight(argv[2]);
  }
  if (mode != "live") return Usage();

  std::string host = "127.0.0.1";
  int port = -1;
  double interval_s = 2.0;
  long ticks = -1;
  for (int i = 2; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--host")) {
      host = v;
    } else if (const char* v = value("--port")) {
      port = std::atoi(v);
    } else if (const char* v = value("--interval")) {
      interval_s = std::atof(v);
    } else if (const char* v = value("--count")) {
      ticks = std::atol(v);
    } else {
      return Usage();
    }
  }
  if (port <= 0 || port > 65535) return Usage();
  if (!(interval_s > 0.0)) interval_s = 2.0;
  return RunLive(host, port, interval_s, ticks);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
