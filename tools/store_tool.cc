// Operator CLI for the paged artifact store (DESIGN.md §11).
//
//   store_tool check <pages-file>        full reachability walk; exit 1 on
//                                        torn pages, 2 when the file won't
//                                        open (both meta slots torn)
//   store_tool stats <pages-file>        one JSON line: txn, entries, pages
//   store_tool ls <pages-file>           all keys, sorted, one per line
//   store_tool get <pages-file> <key>    record bytes to stdout
//   store_tool migrate <cache-dir>       absorb every flat cache file in
//                                        the directory into the pages file
//
// `check` is the CI store-soak gate: after a kill -9 the recovered store
// must report zero torn pages and hold no quarantined (".corrupt") keys.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "obs/log.h"
#include "store/blob_store.h"
#include "store/paged_store.h"

namespace {

using namespace fairclean;  // NOLINT

int Usage() {
  std::fprintf(stderr,
               "usage: store_tool check|stats|ls <pages-file>\n"
               "       store_tool get <pages-file> <key>\n"
               "       store_tool migrate <cache-dir>\n");
  return 64;
}

Result<std::unique_ptr<store::PagedStore>> OpenStore(const std::string& path) {
  store::PagedStoreOptions options;
  return store::PagedStore::Open(path, options);
}

int Check(const std::string& path) {
  Result<std::unique_ptr<store::PagedStore>> opened = OpenStore(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "store_tool check: open failed: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  Result<store::PagedStore::IntegrityReport> report =
      (*opened)->CheckIntegrity();
  if (!report.ok()) {
    std::fprintf(stderr, "store_tool check: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  Result<std::vector<std::string>> keys = (*opened)->ListKeys();
  if (!keys.ok()) {
    std::fprintf(stderr, "store_tool check: %s\n",
                 keys.status().ToString().c_str());
    return 2;
  }
  size_t quarantined = 0;
  for (const std::string& key : *keys) {
    if (key.find(".corrupt") != std::string::npos) ++quarantined;
  }
  std::printf(
      "txn=%llu entries=%llu pages_total=%llu pages_reachable=%llu "
      "pages_free=%llu torn_pages=%llu quarantined_keys=%zu\n",
      static_cast<unsigned long long>(report->txn_id),
      static_cast<unsigned long long>(report->entries),
      static_cast<unsigned long long>(report->pages_total),
      static_cast<unsigned long long>(report->pages_reachable),
      static_cast<unsigned long long>(report->pages_free),
      static_cast<unsigned long long>(report->torn_pages), quarantined);
  for (const std::string& error : report->errors) {
    std::fprintf(stderr, "  torn: %s\n", error.c_str());
  }
  return report->torn_pages == 0 ? 0 : 1;
}

int Stats(const std::string& path) {
  Result<std::unique_ptr<store::PagedStore>> opened = OpenStore(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "store_tool stats: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  std::error_code ec;
  uint64_t bytes = std::filesystem::file_size(path, ec);
  std::printf("{\"txn\":%llu,\"entries\":%llu,\"file_bytes\":%llu}\n",
              static_cast<unsigned long long>((*opened)->txn_id()),
              static_cast<unsigned long long>((*opened)->entry_count()),
              static_cast<unsigned long long>(ec ? 0 : bytes));
  return 0;
}

int Ls(const std::string& path) {
  Result<std::unique_ptr<store::PagedStore>> opened = OpenStore(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "store_tool ls: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  Result<std::vector<std::string>> keys = (*opened)->ListKeys();
  if (!keys.ok()) {
    std::fprintf(stderr, "store_tool ls: %s\n",
                 keys.status().ToString().c_str());
    return 2;
  }
  for (const std::string& key : *keys) std::printf("%s\n", key.c_str());
  return 0;
}

int Get(const std::string& path, const std::string& key) {
  Result<std::unique_ptr<store::PagedStore>> opened = OpenStore(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "store_tool get: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  Result<std::string> value = (*opened)->Get(key);
  if (!value.ok()) {
    std::fprintf(stderr, "store_tool get: %s\n",
                 value.status().ToString().c_str());
    return 1;
  }
  std::fwrite(value->data(), 1, value->size(), stdout);
  return 0;
}

// Eager flat -> paged migration: every regular file in the cache directory
// (except the pages file itself) is read through the paged blob store,
// whose lazy-migration path absorbs it byte for byte; the flat originals
// stay in place as fallback copies.
int Migrate(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "store_tool migrate: %s is not a directory\n",
                 dir.c_str());
    return 2;
  }
  store::PagedStoreOptions options;
  Result<std::shared_ptr<store::PagedBlobStore>> blob =
      store::PagedBlobStore::Open(dir, options);
  if (!blob.ok()) {
    std::fprintf(stderr, "store_tool migrate: %s\n",
                 blob.status().ToString().c_str());
    return 2;
  }
  size_t absorbed = 0, failed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string key = entry.path().filename().string();
    if (key == store::PagedBlobStore::kPagesFileName) continue;
    Result<std::string> value = (*blob)->Read(key);
    if (value.ok()) {
      ++absorbed;
    } else {
      ++failed;
      std::fprintf(stderr, "store_tool migrate: %s: %s\n", key.c_str(),
                   value.status().ToString().c_str());
    }
  }
  std::printf("migrated %zu keys into %s/%s (%zu unreadable), %llu total\n",
              absorbed, dir.c_str(), store::PagedBlobStore::kPagesFileName,
              failed,
              static_cast<unsigned long long>(
                  (*blob)->paged_store().entry_count()));
  return failed == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kWarn);
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::string target = argv[2];
  if (command == "check" && argc == 3) return Check(target);
  if (command == "stats" && argc == 3) return Stats(target);
  if (command == "ls" && argc == 3) return Ls(target);
  if (command == "get" && argc == 4) return Get(target, argv[3]);
  if (command == "migrate" && argc == 3) return Migrate(target);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
