#include "fairness/fairness_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

GroupAssignment MakeAssignment(const std::vector<int>& membership) {
  // 1 = privileged, 0 = disadvantaged, -1 = excluded.
  GroupAssignment assignment;
  for (int m : membership) {
    assignment.privileged.push_back(m == 1);
    assignment.disadvantaged.push_back(m == 0);
  }
  return assignment;
}

TEST(GroupConfusionTest, SplitsByGroup) {
  std::vector<int> y_true = {1, 0, 1, 0, 1, 0};
  std::vector<int> y_pred = {1, 1, 0, 0, 1, 0};
  GroupAssignment groups = MakeAssignment({1, 1, 1, 0, 0, 0});
  GroupConfusion confusion =
      ComputeGroupConfusion(y_true, y_pred, groups).ValueOrDie();
  EXPECT_EQ(confusion.privileged.tp, 1);
  EXPECT_EQ(confusion.privileged.fp, 1);
  EXPECT_EQ(confusion.privileged.fn, 1);
  EXPECT_EQ(confusion.privileged.tn, 0);
  EXPECT_EQ(confusion.disadvantaged.tp, 1);
  EXPECT_EQ(confusion.disadvantaged.tn, 2);
  EXPECT_EQ(confusion.disadvantaged.total(), 3);
}

TEST(GroupConfusionTest, ExcludedRowsIgnored) {
  std::vector<int> y_true = {1, 1, 1};
  std::vector<int> y_pred = {1, 1, 1};
  GroupAssignment groups = MakeAssignment({1, -1, 0});
  GroupConfusion confusion =
      ComputeGroupConfusion(y_true, y_pred, groups).ValueOrDie();
  EXPECT_EQ(confusion.privileged.total() + confusion.disadvantaged.total(),
            2);
}

TEST(GroupConfusionTest, RejectsBadInput) {
  GroupAssignment groups = MakeAssignment({1, 0});
  EXPECT_FALSE(ComputeGroupConfusion({1}, {1, 0}, groups).ok());
  EXPECT_FALSE(ComputeGroupConfusion({1, 2}, {1, 0}, groups).ok());
}

GroupConfusion MakeConfusion(int64_t tp_p, int64_t fp_p, int64_t fn_p,
                             int64_t tn_p, int64_t tp_d, int64_t fp_d,
                             int64_t fn_d, int64_t tn_d) {
  GroupConfusion confusion;
  confusion.privileged.tp = tp_p;
  confusion.privileged.fp = fp_p;
  confusion.privileged.fn = fn_p;
  confusion.privileged.tn = tn_p;
  confusion.disadvantaged.tp = tp_d;
  confusion.disadvantaged.fp = fp_d;
  confusion.disadvantaged.fn = fn_d;
  confusion.disadvantaged.tn = tn_d;
  return confusion;
}

TEST(FairnessGapTest, PredictiveParityIsPrecisionDifference) {
  // priv precision 8/10, dis precision 6/10 -> gap 0.2.
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  EXPECT_NEAR(FairnessGap(FairnessMetric::kPredictiveParity, confusion), 0.2,
              1e-12);
}

TEST(FairnessGapTest, EqualOpportunityIsRecallDifference) {
  // priv recall 8/13, dis recall 6/11.
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  EXPECT_NEAR(FairnessGap(FairnessMetric::kEqualOpportunity, confusion),
              8.0 / 13.0 - 6.0 / 11.0, 1e-12);
}

TEST(FairnessGapTest, DemographicParityIsPositiveRateDifference) {
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  EXPECT_NEAR(FairnessGap(FairnessMetric::kDemographicParity, confusion),
              10.0 / 20.0 - 10.0 / 20.0, 1e-12);
}

TEST(FairnessGapTest, FalsePositiveRateParity) {
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  EXPECT_NEAR(
      FairnessGap(FairnessMetric::kFalsePositiveRateParity, confusion),
      2.0 / 7.0 - 4.0 / 9.0, 1e-12);
}

TEST(FairnessGapTest, FprGapIsNanWhenAGroupHasNoNegatives) {
  // The privileged group has fp + tn == 0: its false-positive rate is
  // undefined, and the gap must say so instead of reporting a fake 0.
  GroupConfusion no_priv_negatives = MakeConfusion(8, 0, 5, 0, 6, 4, 5, 5);
  EXPECT_TRUE(std::isnan(FairnessGap(FairnessMetric::kFalsePositiveRateParity,
                                     no_priv_negatives)));
  EXPECT_TRUE(std::isnan(AbsoluteFairnessGap(
      FairnessMetric::kFalsePositiveRateParity, no_priv_negatives)));
  GroupConfusion no_dis_negatives = MakeConfusion(8, 2, 5, 5, 6, 0, 5, 0);
  EXPECT_TRUE(std::isnan(FairnessGap(FairnessMetric::kFalsePositiveRateParity,
                                     no_dis_negatives)));
  // The other gaps stay finite on the same matrices.
  for (FairnessMetric metric :
       {FairnessMetric::kPredictiveParity, FairnessMetric::kEqualOpportunity,
        FairnessMetric::kDemographicParity,
        FairnessMetric::kAccuracyParity}) {
    EXPECT_TRUE(std::isfinite(FairnessGap(metric, no_priv_negatives)));
  }
}

TEST(FairnessGapTest, AccuracyParity) {
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  EXPECT_NEAR(FairnessGap(FairnessMetric::kAccuracyParity, confusion),
              13.0 / 20.0 - 11.0 / 20.0, 1e-12);
}

TEST(FairnessGapTest, EqualGroupsHaveZeroGap) {
  GroupConfusion confusion = MakeConfusion(5, 3, 2, 10, 5, 3, 2, 10);
  for (FairnessMetric metric :
       {FairnessMetric::kPredictiveParity, FairnessMetric::kEqualOpportunity,
        FairnessMetric::kDemographicParity,
        FairnessMetric::kFalsePositiveRateParity,
        FairnessMetric::kAccuracyParity}) {
    EXPECT_DOUBLE_EQ(FairnessGap(metric, confusion), 0.0);
    EXPECT_DOUBLE_EQ(AbsoluteFairnessGap(metric, confusion), 0.0);
  }
}

TEST(FairnessGapTest, SwapSymmetry) {
  // Swapping privileged and disadvantaged negates the signed gap but keeps
  // the absolute gap.
  GroupConfusion confusion = MakeConfusion(8, 2, 5, 5, 6, 4, 5, 5);
  GroupConfusion swapped = MakeConfusion(6, 4, 5, 5, 8, 2, 5, 5);
  for (FairnessMetric metric :
       {FairnessMetric::kPredictiveParity,
        FairnessMetric::kEqualOpportunity}) {
    EXPECT_NEAR(FairnessGap(metric, confusion),
                -FairnessGap(metric, swapped), 1e-12);
    EXPECT_NEAR(AbsoluteFairnessGap(metric, confusion),
                AbsoluteFairnessGap(metric, swapped), 1e-12);
  }
}

TEST(FairnessMetricNamesTest, RoundTrip) {
  for (FairnessMetric metric :
       {FairnessMetric::kPredictiveParity, FairnessMetric::kEqualOpportunity,
        FairnessMetric::kDemographicParity,
        FairnessMetric::kFalsePositiveRateParity,
        FairnessMetric::kAccuracyParity}) {
    Result<FairnessMetric> by_short =
        FairnessMetricByName(FairnessMetricShortName(metric));
    ASSERT_TRUE(by_short.ok());
    EXPECT_EQ(*by_short, metric);
    Result<FairnessMetric> by_long =
        FairnessMetricByName(FairnessMetricName(metric));
    ASSERT_TRUE(by_long.ok());
    EXPECT_EQ(*by_long, metric);
  }
  EXPECT_FALSE(FairnessMetricByName("nonsense").ok());
}

}  // namespace
}  // namespace fairclean
