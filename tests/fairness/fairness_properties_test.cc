// Metamorphic properties of the group fairness metrics: swapping the groups
// negates every signed gap, a perfect classifier has zero EO/PP gaps, and
// duplicating every row leaves all gaps unchanged (gaps are differences of
// rates, and rates are invariant under exact count doubling).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fairness/fairness_metrics.h"
#include "fairness/group.h"

namespace fairclean {
namespace {

const FairnessMetric kAllMetrics[] = {
    FairnessMetric::kPredictiveParity,
    FairnessMetric::kEqualOpportunity,
    FairnessMetric::kDemographicParity,
    FairnessMetric::kFalsePositiveRateParity,
    FairnessMetric::kAccuracyParity,
};

struct Population {
  std::vector<int> y_true;
  std::vector<int> y_pred;
  GroupAssignment groups;
};

// A random population where both groups are guaranteed labels and
// predictions of both classes, so every metric is defined (no empty
// denominators, no NaN gaps).
Population RandomPopulation(uint64_t seed, size_t n) {
  Rng rng(seed);
  Population population;
  population.y_true.resize(n);
  population.y_pred.resize(n);
  population.groups.privileged.resize(n);
  population.groups.disadvantaged.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool privileged = rng.Bernoulli(0.6);
    population.groups.privileged[i] = privileged;
    population.groups.disadvantaged[i] = !privileged;
    population.y_true[i] = rng.Bernoulli(privileged ? 0.45 : 0.35) ? 1 : 0;
    // Noisy predictions correlated with the label.
    double p_positive = population.y_true[i] ? 0.75 : 0.25;
    population.y_pred[i] = rng.Bernoulli(p_positive) ? 1 : 0;
  }
  // Pin one row of each (group, label, prediction) combination so all
  // confusion cells are non-empty regardless of the draw.
  size_t i = 0;
  for (int privileged = 0; privileged < 2; ++privileged) {
    for (int label = 0; label < 2; ++label) {
      for (int prediction = 0; prediction < 2; ++prediction) {
        population.groups.privileged[i] = privileged != 0;
        population.groups.disadvantaged[i] = privileged == 0;
        population.y_true[i] = label;
        population.y_pred[i] = prediction;
        ++i;
      }
    }
  }
  return population;
}

TEST(FairnessProperties, GroupSwapNegatesEverySignedGap) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Population population = RandomPopulation(seed, 400);
    Result<GroupConfusion> confusion = ComputeGroupConfusion(
        population.y_true, population.y_pred, population.groups);
    ASSERT_TRUE(confusion.ok()) << confusion.status().ToString();

    GroupAssignment swapped;
    swapped.privileged = population.groups.disadvantaged;
    swapped.disadvantaged = population.groups.privileged;
    Result<GroupConfusion> swapped_confusion =
        ComputeGroupConfusion(population.y_true, population.y_pred, swapped);
    ASSERT_TRUE(swapped_confusion.ok());

    for (FairnessMetric metric : kAllMetrics) {
      double gap = FairnessGap(metric, *confusion);
      double swapped_gap = FairnessGap(metric, *swapped_confusion);
      ASSERT_TRUE(std::isfinite(gap)) << FairnessMetricName(metric);
      EXPECT_DOUBLE_EQ(gap, -swapped_gap)
          << FairnessMetricName(metric) << " seed " << seed;
      EXPECT_DOUBLE_EQ(AbsoluteFairnessGap(metric, *confusion),
                       AbsoluteFairnessGap(metric, *swapped_confusion))
          << FairnessMetricName(metric) << " seed " << seed;
    }
  }
}

// A perfect classifier has precision = recall = accuracy = 1 in both
// groups, so the paper's two metrics (and accuracy parity) are exactly
// satisfied. Demographic parity is NOT implied — base rates may differ —
// which is the classic impossibility result; the test documents that too.
TEST(FairnessProperties, PerfectClassifierHasZeroEoAndPpGaps) {
  Population population = RandomPopulation(11, 400);
  population.y_pred = population.y_true;
  Result<GroupConfusion> confusion = ComputeGroupConfusion(
      population.y_true, population.y_pred, population.groups);
  ASSERT_TRUE(confusion.ok());

  EXPECT_DOUBLE_EQ(
      FairnessGap(FairnessMetric::kPredictiveParity, *confusion), 0.0);
  EXPECT_DOUBLE_EQ(
      FairnessGap(FairnessMetric::kEqualOpportunity, *confusion), 0.0);
  EXPECT_DOUBLE_EQ(
      FairnessGap(FairnessMetric::kFalsePositiveRateParity, *confusion), 0.0);
  EXPECT_DOUBLE_EQ(FairnessGap(FairnessMetric::kAccuracyParity, *confusion),
                   0.0);
  // Base rates of the two groups differ by construction, so demographic
  // parity is violated even by the perfect classifier.
  EXPECT_NE(FairnessGap(FairnessMetric::kDemographicParity, *confusion), 0.0);
}

TEST(FairnessProperties, DuplicatingEveryRowLeavesAllGapsUnchanged) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Population population = RandomPopulation(seed, 300);
    Result<GroupConfusion> confusion = ComputeGroupConfusion(
        population.y_true, population.y_pred, population.groups);
    ASSERT_TRUE(confusion.ok());

    Population doubled = population;
    doubled.y_true.insert(doubled.y_true.end(), population.y_true.begin(),
                          population.y_true.end());
    doubled.y_pred.insert(doubled.y_pred.end(), population.y_pred.begin(),
                          population.y_pred.end());
    doubled.groups.privileged.insert(doubled.groups.privileged.end(),
                                     population.groups.privileged.begin(),
                                     population.groups.privileged.end());
    doubled.groups.disadvantaged.insert(
        doubled.groups.disadvantaged.end(),
        population.groups.disadvantaged.begin(),
        population.groups.disadvantaged.end());
    Result<GroupConfusion> doubled_confusion =
        ComputeGroupConfusion(doubled.y_true, doubled.y_pred, doubled.groups);
    ASSERT_TRUE(doubled_confusion.ok());

    EXPECT_EQ(doubled_confusion->privileged.total(),
              2 * confusion->privileged.total());
    EXPECT_EQ(doubled_confusion->disadvantaged.total(),
              2 * confusion->disadvantaged.total());
    for (FairnessMetric metric : kAllMetrics) {
      // Exact equality: every rate is a ratio of counts and both counts
      // double, and scaling numerator and denominator by 2 is exact in
      // binary floating point.
      EXPECT_DOUBLE_EQ(FairnessGap(metric, *confusion),
                       FairnessGap(metric, *doubled_confusion))
          << FairnessMetricName(metric) << " seed " << seed;
    }
  }
}

// Rows outside both groups (possible under intersectional definitions) must
// not influence the confusion matrices.
TEST(FairnessProperties, RowsInNeitherGroupAreIgnored) {
  Population population = RandomPopulation(31, 200);
  Result<GroupConfusion> confusion = ComputeGroupConfusion(
      population.y_true, population.y_pred, population.groups);
  ASSERT_TRUE(confusion.ok());

  Population extended = population;
  for (int i = 0; i < 50; ++i) {
    extended.y_true.push_back(i % 2);
    extended.y_pred.push_back((i / 2) % 2);
    extended.groups.privileged.push_back(false);
    extended.groups.disadvantaged.push_back(false);
  }
  Result<GroupConfusion> extended_confusion = ComputeGroupConfusion(
      extended.y_true, extended.y_pred, extended.groups);
  ASSERT_TRUE(extended_confusion.ok());

  EXPECT_EQ(confusion->privileged.total(),
            extended_confusion->privileged.total());
  EXPECT_EQ(confusion->disadvantaged.total(),
            extended_confusion->disadvantaged.total());
  for (FairnessMetric metric : kAllMetrics) {
    EXPECT_DOUBLE_EQ(FairnessGap(metric, *confusion),
                     FairnessGap(metric, *extended_confusion));
  }
}

}  // namespace
}  // namespace fairclean
