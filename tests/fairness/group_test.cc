#include "fairness/group.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame
                  .AddColumn(Column::Categorical(
                      "sex", {0, 1, 0, 1, Column::kMissingCode},
                      {"male", "female"}))
                  .ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::Numeric(
                      "age", {30.0, 20.0, 50.0, 40.0, 26.0}))
                  .ok());
  return frame;
}

TEST(GroupPredicateTest, CategoryEquality) {
  DataFrame frame = MakeFrame();
  GroupPredicate predicate = GroupPredicate::CategoryEq("sex", "male");
  Result<std::vector<bool>> membership = predicate.Evaluate(frame);
  ASSERT_TRUE(membership.ok());
  EXPECT_EQ(*membership, (std::vector<bool>{true, false, true, false, false}));
}

TEST(GroupPredicateTest, MissingSensitiveValueIsNotPrivileged) {
  DataFrame frame = MakeFrame();
  GroupPredicate predicate = GroupPredicate::CategoryEq("sex", "male");
  std::vector<bool> membership = predicate.Evaluate(frame).ValueOrDie();
  EXPECT_FALSE(membership[4]);
}

TEST(GroupPredicateTest, NumericThreshold) {
  DataFrame frame = MakeFrame();
  GroupPredicate predicate = GroupPredicate::NumericGt("age", 25.0);
  std::vector<bool> membership = predicate.Evaluate(frame).ValueOrDie();
  EXPECT_EQ(membership, (std::vector<bool>{true, false, true, true, true}));
}

TEST(GroupPredicateTest, AllOperators) {
  DataFrame frame = MakeFrame();
  GroupPredicate predicate;
  predicate.attribute = "age";
  predicate.numeric_value = 30.0;

  predicate.op = PredicateOp::kGe;
  EXPECT_TRUE(predicate.Evaluate(frame).ValueOrDie()[0]);
  predicate.op = PredicateOp::kLt;
  EXPECT_FALSE(predicate.Evaluate(frame).ValueOrDie()[0]);
  EXPECT_TRUE(predicate.Evaluate(frame).ValueOrDie()[1]);
  predicate.op = PredicateOp::kLe;
  EXPECT_TRUE(predicate.Evaluate(frame).ValueOrDie()[0]);
  predicate.op = PredicateOp::kEq;
  EXPECT_TRUE(predicate.Evaluate(frame).ValueOrDie()[0]);
  EXPECT_FALSE(predicate.Evaluate(frame).ValueOrDie()[2]);
}

TEST(GroupPredicateTest, Errors) {
  DataFrame frame = MakeFrame();
  GroupPredicate missing_attr = GroupPredicate::CategoryEq("race", "white");
  EXPECT_FALSE(missing_attr.Evaluate(frame).ok());
  GroupPredicate bad_category = GroupPredicate::CategoryEq("sex", "other");
  EXPECT_FALSE(bad_category.Evaluate(frame).ok());
  GroupPredicate bad_op;
  bad_op.attribute = "sex";
  bad_op.op = PredicateOp::kGt;
  bad_op.category = "male";
  EXPECT_FALSE(bad_op.Evaluate(frame).ok());
}

TEST(GroupPredicateTest, Description) {
  EXPECT_EQ(GroupPredicate::NumericGt("age", 25.0).Description(), "age > 25");
  EXPECT_EQ(GroupPredicate::CategoryEq("sex", "male").Description(),
            "sex = male");
}

TEST(SingleAttributeGroupsTest, FormsPartition) {
  DataFrame frame = MakeFrame();
  GroupAssignment assignment =
      SingleAttributeGroups(frame, GroupPredicate::CategoryEq("sex", "male"))
          .ValueOrDie();
  for (size_t i = 0; i < frame.num_rows(); ++i) {
    EXPECT_NE(assignment.privileged[i], assignment.disadvantaged[i]);
  }
  EXPECT_EQ(assignment.PrivilegedCount() + assignment.DisadvantagedCount(),
            frame.num_rows());
  EXPECT_EQ(assignment.PrivilegedCount(), 2u);
}

TEST(IntersectionalGroupsTest, ExcludesMixedRows) {
  DataFrame frame = MakeFrame();
  GroupAssignment assignment =
      IntersectionalGroups(frame, GroupPredicate::CategoryEq("sex", "male"),
                           GroupPredicate::NumericGt("age", 25.0))
          .ValueOrDie();
  // Row 0: male & age>25 -> privileged.
  EXPECT_TRUE(assignment.privileged[0]);
  // Row 1: female & age<=25 -> disadvantaged.
  EXPECT_TRUE(assignment.disadvantaged[1]);
  // Row 3: female & age>25 -> mixed, excluded from both.
  EXPECT_FALSE(assignment.privileged[3]);
  EXPECT_FALSE(assignment.disadvantaged[3]);
  // Counts do not partition the frame.
  EXPECT_LT(assignment.PrivilegedCount() + assignment.DisadvantagedCount(),
            frame.num_rows());
}

TEST(IntersectionalGroupsTest, OrderOfPredicatesIrrelevantForMembership) {
  DataFrame frame = MakeFrame();
  GroupPredicate sex = GroupPredicate::CategoryEq("sex", "male");
  GroupPredicate age = GroupPredicate::NumericGt("age", 25.0);
  GroupAssignment ab = IntersectionalGroups(frame, sex, age).ValueOrDie();
  GroupAssignment ba = IntersectionalGroups(frame, age, sex).ValueOrDie();
  EXPECT_EQ(ab.privileged, ba.privileged);
  EXPECT_EQ(ab.disadvantaged, ba.disadvantaged);
}

}  // namespace
}  // namespace fairclean
