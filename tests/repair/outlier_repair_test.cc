#include "repair/outlier_repair.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame
                  .AddColumn(Column::Numeric(
                      "x", {1.0, 2.0, 3.0, 1000.0, 2.0}))
                  .ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::Categorical("c", {0, 0, 0, 0, 0}, {"a"}))
                  .ok());
  return frame;
}

ErrorMask MaskWithCell(const DataFrame& frame, const std::string& column,
                       size_t row) {
  ErrorMask mask(frame.num_rows());
  mask.FlagCell(column, row);
  return mask;
}

TEST(OutlierRepairTest, ReplacesFlaggedCellWithCleanMean) {
  DataFrame frame = MakeFrame();
  ErrorMask mask = MaskWithCell(frame, "x", 3);
  OutlierRepairer repairer(NumericImpute::kMean);
  ASSERT_TRUE(repairer.Fit(frame, mask, {"x", "c"}).ok());
  ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
  // Mean over unflagged values {1, 2, 3, 2} = 2.
  EXPECT_DOUBLE_EQ(frame.column("x").Value(3), 2.0);
  // Unflagged cells untouched.
  EXPECT_DOUBLE_EQ(frame.column("x").Value(0), 1.0);
}

TEST(OutlierRepairTest, MedianAndModeVariants) {
  {
    DataFrame frame = MakeFrame();
    ErrorMask mask = MaskWithCell(frame, "x", 3);
    OutlierRepairer repairer(NumericImpute::kMedian);
    ASSERT_TRUE(repairer.Fit(frame, mask, {"x"}).ok());
    ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
    EXPECT_DOUBLE_EQ(frame.column("x").Value(3), 2.0);  // median of 1,2,3,2
  }
  {
    DataFrame frame = MakeFrame();
    ErrorMask mask = MaskWithCell(frame, "x", 3);
    OutlierRepairer repairer(NumericImpute::kMode);
    ASSERT_TRUE(repairer.Fit(frame, mask, {"x"}).ok());
    ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
    EXPECT_DOUBLE_EQ(frame.column("x").Value(3), 2.0);  // mode of 1,2,3,2
  }
}

TEST(OutlierRepairTest, ExcludesFlaggedCellsFromStatistic) {
  DataFrame frame = MakeFrame();
  ErrorMask mask = MaskWithCell(frame, "x", 3);
  OutlierRepairer repairer(NumericImpute::kMean);
  ASSERT_TRUE(repairer.Fit(frame, mask, {"x"}).ok());
  ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
  // If the 1000 had contaminated the mean, the repair value would be 201.6.
  EXPECT_LT(frame.column("x").Value(3), 10.0);
}

TEST(OutlierRepairTest, RowFlagsRepairAllNumericCells) {
  DataFrame frame = MakeFrame();
  ErrorMask mask(frame.num_rows());
  mask.FlagRow(3);
  OutlierRepairer repairer(NumericImpute::kMean);
  ASSERT_TRUE(repairer.Fit(frame, mask, {"x", "c"}).ok());
  ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
  EXPECT_DOUBLE_EQ(frame.column("x").Value(3), 2.0);
  // Categorical column untouched by outlier repair.
  EXPECT_EQ(frame.column("c").Code(3), 0);
}

TEST(OutlierRepairTest, ApplyWithTrainStatisticsOnTestFrame) {
  DataFrame train = MakeFrame();
  ErrorMask train_mask = MaskWithCell(train, "x", 3);
  OutlierRepairer repairer(NumericImpute::kMean);
  ASSERT_TRUE(repairer.Fit(train, train_mask, {"x"}).ok());

  DataFrame test;
  ASSERT_TRUE(test.AddColumn(Column::Numeric("x", {500.0, 1.0})).ok());
  ErrorMask test_mask(2);
  test_mask.FlagCell("x", 0);
  ASSERT_TRUE(repairer.Apply(&test, test_mask).ok());
  EXPECT_DOUBLE_EQ(test.column("x").Value(0), 2.0);  // train statistic
}

TEST(OutlierRepairTest, MissingCellsAreLeftAlone) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Numeric("x", {1.0, std::nan(""), 2.0}))
                  .ok());
  ErrorMask mask(3);
  mask.FlagRow(1);
  OutlierRepairer repairer(NumericImpute::kMean);
  ASSERT_TRUE(repairer.Fit(frame, mask, {"x"}).ok());
  ASSERT_TRUE(repairer.Apply(&frame, mask).ok());
  EXPECT_TRUE(frame.column("x").IsMissing(1));
}

TEST(OutlierRepairTest, MismatchedMaskFails) {
  DataFrame frame = MakeFrame();
  ErrorMask short_mask(2);
  OutlierRepairer repairer(NumericImpute::kMean);
  EXPECT_FALSE(repairer.Fit(frame, short_mask, {"x"}).ok());
}

TEST(OutlierRepairTest, ApplyBeforeFitFails) {
  DataFrame frame = MakeFrame();
  ErrorMask mask(frame.num_rows());
  OutlierRepairer repairer(NumericImpute::kMean);
  EXPECT_FALSE(repairer.Apply(&frame, mask).ok());
}

TEST(OutlierRepairTest, MethodName) {
  EXPECT_EQ(OutlierRepairer(NumericImpute::kMedian).MethodName(),
            "impute_median");
}

}  // namespace
}  // namespace fairclean
