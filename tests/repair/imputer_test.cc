#include "repair/imputer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeFrameWithMissing() {
  DataFrame frame;
  EXPECT_TRUE(frame
                  .AddColumn(Column::Numeric(
                      "num", {1.0, std::nan(""), 3.0, 20.0, std::nan("")}))
                  .ok());
  EXPECT_TRUE(
      frame
          .AddColumn(Column::Categorical(
              "cat", {0, 1, Column::kMissingCode, 0, Column::kMissingCode},
              {"a", "b"}))
          .ok());
  return frame;
}

TEST(ImputerTest, MeanImputation) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(frame, {"num", "cat"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  EXPECT_DOUBLE_EQ(frame.column("num").Value(1), 8.0);  // mean of 1,3,20
  EXPECT_EQ(frame.column("num").MissingCount(), 0u);
}

TEST(ImputerTest, MedianImputation) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMedian,
                              CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(frame, {"num"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  EXPECT_DOUBLE_EQ(frame.column("num").Value(1), 3.0);
}

TEST(ImputerTest, ModeImputationNumeric) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Numeric(
                      "num", {2.0, 2.0, 9.0, std::nan("")}))
                  .ok());
  MissingValueImputer imputer(NumericImpute::kMode, CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(frame, {"num"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  EXPECT_DOUBLE_EQ(frame.column("num").Value(3), 2.0);
}

TEST(ImputerTest, CategoricalModeImputation) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(frame, {"cat"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  const Column& cat = frame.column("cat");
  EXPECT_EQ(cat.MissingCount(), 0u);
  EXPECT_EQ(cat.CategoryName(cat.Code(2)), "a");  // modal category
  // Dictionary unchanged: no dummy introduced.
  EXPECT_EQ(cat.dictionary().size(), 2u);
}

TEST(ImputerTest, DummyImputationAddsIndicatorCategory) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMean,
                              CategoricalImpute::kDummy);
  ASSERT_TRUE(imputer.Fit(frame, {"cat"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  const Column& cat = frame.column("cat");
  EXPECT_EQ(cat.MissingCount(), 0u);
  EXPECT_EQ(cat.dictionary().size(), 3u);
  EXPECT_EQ(cat.CategoryName(cat.Code(2)), kDummyCategory);
  EXPECT_EQ(cat.CategoryName(cat.Code(4)), kDummyCategory);
  // Non-missing cells untouched.
  EXPECT_EQ(cat.CategoryName(cat.Code(0)), "a");
}

TEST(ImputerTest, TestSetUsesTrainStatistics) {
  DataFrame train;
  ASSERT_TRUE(
      train.AddColumn(Column::Numeric("num", {10.0, 20.0, 30.0})).ok());
  DataFrame test;
  ASSERT_TRUE(
      test.AddColumn(Column::Numeric("num", {std::nan(""), 100.0})).ok());
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(train, {"num"}).ok());
  ASSERT_TRUE(imputer.Apply(&test).ok());
  EXPECT_DOUBLE_EQ(test.column("num").Value(0), 20.0);  // train mean
}

TEST(ImputerTest, PropertyNoMissingCellsRemainAfterApply) {
  for (NumericImpute numeric :
       {NumericImpute::kMean, NumericImpute::kMedian, NumericImpute::kMode}) {
    for (CategoricalImpute categorical :
         {CategoricalImpute::kMode, CategoricalImpute::kDummy}) {
      DataFrame frame = MakeFrameWithMissing();
      MissingValueImputer imputer(numeric, categorical);
      ASSERT_TRUE(imputer.Fit(frame, {"num", "cat"}).ok());
      ASSERT_TRUE(imputer.Apply(&frame).ok());
      EXPECT_EQ(frame.column("num").MissingCount(), 0u)
          << imputer.MethodName();
      EXPECT_EQ(frame.column("cat").MissingCount(), 0u)
          << imputer.MethodName();
    }
  }
}

TEST(ImputerTest, MethodNamesMatchCleanMlConvention) {
  EXPECT_EQ(MissingValueImputer(NumericImpute::kMean,
                                CategoricalImpute::kDummy)
                .MethodName(),
            "impute_mean_dummy");
  EXPECT_EQ(MissingValueImputer(NumericImpute::kMedian,
                                CategoricalImpute::kMode)
                .MethodName(),
            "impute_median_mode");
}

TEST(ImputerTest, ApplyBeforeFitFails) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  EXPECT_FALSE(imputer.Apply(&frame).ok());
}

TEST(ImputerTest, UnknownColumnFails) {
  DataFrame frame = MakeFrameWithMissing();
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  EXPECT_FALSE(imputer.Fit(frame, {"ghost"}).ok());
}

TEST(ImputerTest, AllMissingColumnFallsBack) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Numeric(
                      "num", {std::nan(""), std::nan("")}))
                  .ok());
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kMode);
  ASSERT_TRUE(imputer.Fit(frame, {"num"}).ok());
  ASSERT_TRUE(imputer.Apply(&frame).ok());
  EXPECT_DOUBLE_EQ(frame.column("num").Value(0), 0.0);
}

}  // namespace
}  // namespace fairclean
