#include "repair/label_repair.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(LabelRepairTest, FlipsFlaggedNumericLabels) {
  DataFrame frame;
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("y", {0.0, 1.0, 0.0, 1.0})).ok());
  ErrorMask mask(4);
  mask.FlagRow(0);
  mask.FlagRow(1);
  Result<size_t> flipped = FlipFlaggedLabels(&frame, mask, "y");
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(*flipped, 2u);
  EXPECT_DOUBLE_EQ(frame.column("y").Value(0), 1.0);
  EXPECT_DOUBLE_EQ(frame.column("y").Value(1), 0.0);
  EXPECT_DOUBLE_EQ(frame.column("y").Value(2), 0.0);  // untouched
}

TEST(LabelRepairTest, FlipsCategoricalLabels) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Categorical("y", {0, 1, 0},
                                                 {"bad", "good"}))
                  .ok());
  ErrorMask mask(3);
  mask.FlagRow(2);
  Result<size_t> flipped = FlipFlaggedLabels(&frame, mask, "y");
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(*flipped, 1u);
  EXPECT_EQ(frame.column("y").Code(2), 1);
  EXPECT_EQ(frame.column("y").Code(0), 0);
}

TEST(LabelRepairTest, NoFlagsNoFlips) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("y", {0.0, 1.0})).ok());
  ErrorMask mask(2);
  Result<size_t> flipped = FlipFlaggedLabels(&frame, mask, "y");
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(*flipped, 0u);
}

TEST(LabelRepairTest, DoubleFlipIsIdentity) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("y", {0.0, 1.0, 1.0})).ok());
  ErrorMask mask(3);
  mask.FlagRow(0);
  mask.FlagRow(2);
  ASSERT_TRUE(FlipFlaggedLabels(&frame, mask, "y").ok());
  ASSERT_TRUE(FlipFlaggedLabels(&frame, mask, "y").ok());
  EXPECT_DOUBLE_EQ(frame.column("y").Value(0), 0.0);
  EXPECT_DOUBLE_EQ(frame.column("y").Value(1), 1.0);
  EXPECT_DOUBLE_EQ(frame.column("y").Value(2), 1.0);
}

TEST(LabelRepairTest, RejectsNonBinaryNumericLabel) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("y", {0.0, 2.0})).ok());
  ErrorMask mask(2);
  mask.FlagRow(1);
  EXPECT_FALSE(FlipFlaggedLabels(&frame, mask, "y").ok());
}

TEST(LabelRepairTest, RejectsMissingLabel) {
  DataFrame frame;
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("y", {0.0, std::nan("")})).ok());
  ErrorMask mask(2);
  mask.FlagRow(1);
  EXPECT_FALSE(FlipFlaggedLabels(&frame, mask, "y").ok());
}

TEST(LabelRepairTest, RejectsThreeCategoryLabel) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Categorical("y", {0, 1, 2},
                                                 {"a", "b", "c"}))
                  .ok());
  ErrorMask mask(3);
  mask.FlagRow(0);
  EXPECT_FALSE(FlipFlaggedLabels(&frame, mask, "y").ok());
}

TEST(LabelRepairTest, RejectsBadColumnOrMask) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("y", {0.0, 1.0})).ok());
  ErrorMask mask(2);
  EXPECT_FALSE(FlipFlaggedLabels(&frame, mask, "ghost").ok());
  ErrorMask wrong_size(3);
  EXPECT_FALSE(FlipFlaggedLabels(&frame, wrong_size, "y").ok());
}

}  // namespace
}  // namespace fairclean
