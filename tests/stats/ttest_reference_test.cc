// Pins PairedTTest against hand-computed reference values and exercises the
// degenerate inputs the study pipeline feeds it, plus the Bonferroni
// adjustment at the table benches' comparison counts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/cleaning.h"
#include "stats/tests.h"

namespace fairclean {
namespace {

// Six paired accuracy scores; the reference t and p were computed by hand:
//   d = x - y = {.03, .03, .04, -.01, .03, .03}, mean(d) = 0.025,
//   sd(d) = 0.017606816861659, t = mean / (sd / sqrt(6)), df = 5.
TEST(PairedTTestReference, HandComputedValues) {
  std::vector<double> x = {0.81, 0.79, 0.84, 0.78, 0.80, 0.83};
  std::vector<double> y = {0.78, 0.76, 0.80, 0.79, 0.77, 0.80};
  Result<TestResult> result = PairedTTest(x, y);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->statistic, 3.478041718201262, 1e-9);
  EXPECT_NEAR(result->p_value, 0.01769589188401353, 1e-9);
  EXPECT_TRUE(result->SignificantAt(0.05));
  EXPECT_FALSE(result->SignificantAt(0.01));
}

TEST(PairedTTestReference, SwappingArgumentsNegatesStatistic) {
  std::vector<double> x = {0.81, 0.79, 0.84, 0.78, 0.80, 0.83};
  std::vector<double> y = {0.78, 0.76, 0.80, 0.79, 0.77, 0.80};
  Result<TestResult> forward = PairedTTest(x, y);
  Result<TestResult> backward = PairedTTest(y, x);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_DOUBLE_EQ(forward->statistic, -backward->statistic);
  EXPECT_DOUBLE_EQ(forward->p_value, backward->p_value);
}

// Zero variance of differences is well-defined by contract: p = 1 when the
// constant difference is zero, p = 0 otherwise.
TEST(PairedTTestReference, ConstantNonzeroDifference) {
  // Exactly representable values so the pairwise differences are all
  // bit-identical and the variance is exactly zero.
  std::vector<double> x = {1.5, 2.5, 3.5};
  std::vector<double> y = {1.0, 2.0, 3.0};
  Result<TestResult> result = PairedTTest(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->p_value, 0.0);
  EXPECT_TRUE(result->SignificantAt(0.05));
}

TEST(PairedTTestReference, IdenticalSeriesIsInsignificant) {
  std::vector<double> x = {0.80, 0.82, 0.84};
  Result<TestResult> result = PairedTTest(x, x);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->p_value, 1.0);
  EXPECT_FALSE(result->SignificantAt(0.05));
}

TEST(PairedTTestReference, SinglePairIsInvalid) {
  Result<TestResult> result = PairedTTest({0.8}, {0.7});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PairedTTestReference, MismatchedLengthsAreInvalid) {
  Result<TestResult> result = PairedTTest({0.8, 0.9}, {0.7});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PairedTTestReference, NonFiniteScoreIsInvalid) {
  Result<TestResult> result =
      PairedTTest({0.8, std::nan("")}, {0.7, 0.6});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// The table benches Bonferroni-adjust by the number of cleaning methods of
// each error-type scope: 6 missing-value configurations, 9 outlier
// configurations, 1 mislabel configuration. Pin both the counts and the
// adjusted levels so a change to either is a conscious decision.
TEST(BonferroniReference, TableBenchComparisonCounts) {
  Result<std::vector<CleaningMethod>> missing =
      CleaningMethodsFor("missing_values");
  Result<std::vector<CleaningMethod>> outliers = CleaningMethodsFor("outliers");
  Result<std::vector<CleaningMethod>> mislabels =
      CleaningMethodsFor("mislabels");
  ASSERT_TRUE(missing.ok());
  ASSERT_TRUE(outliers.ok());
  ASSERT_TRUE(mislabels.ok());
  ASSERT_EQ(missing->size(), 6u);
  ASSERT_EQ(outliers->size(), 9u);
  ASSERT_EQ(mislabels->size(), 1u);

  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, missing->size()), 0.05 / 6.0);
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, outliers->size()), 0.05 / 9.0);
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, mislabels->size()), 0.05);
}

TEST(BonferroniReference, MonotoneInHypothesisCount) {
  double previous = BonferroniAlpha(0.05, 1);
  for (size_t n = 2; n <= 16; ++n) {
    double adjusted = BonferroniAlpha(0.05, n);
    EXPECT_LT(adjusted, previous);
    previous = adjusted;
  }
}

}  // namespace
}  // namespace fairclean
