#include "stats/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

// Reference values computed with scipy.stats / scipy.special.

TEST(GammaTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // scipy.special.gammainc(2.5, 3.0) = 0.6937810...
  EXPECT_NEAR(RegularizedGammaP(2.5, 3.0), 0.6937810816778878, 1e-10);
}

TEST(GammaTest, ComplementsSumToOne) {
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12);
    }
  }
}

TEST(GammaTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
}

TEST(GammaTest, MonotoneInX) {
  double previous = 0.0;
  for (double x = 0.1; x < 10.0; x += 0.5) {
    double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

TEST(BetaTest, SymmetryAtHalf) {
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(5.0, 5.0, 0.5), 0.5, 1e-12);
}

TEST(BetaTest, KnownValues) {
  // I_x(1, b) = 1 - (1-x)^b.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 3.0, 0.3),
              1.0 - std::pow(0.7, 3.0), 1e-12);
  // scipy.special.betainc(2.0, 3.0, 0.4) = 0.5248
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 3.0, 0.4), 0.5248, 1e-10);
}

TEST(BetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(BetaTest, ComplementIdentity) {
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x) +
                    RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x),
                1.0, 1e-10);
  }
}

TEST(ChiSquareTest, CriticalValues) {
  // chi2.sf(3.841458820694124, 1) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841458820694124, 1.0), 0.05, 1e-9);
  // chi2.sf(6.634896601021213, 1) = 0.01.
  EXPECT_NEAR(ChiSquareSurvival(6.634896601021213, 1.0), 0.01, 1e-9);
  // chi2.sf(5.991464547107979, 2) = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(5.991464547107979, 2.0), 0.05, 1e-9);
}

TEST(ChiSquareTest, ZeroStatistic) {
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(-1.0, 1.0), 1.0);
}

TEST(StudentTTest, CriticalValues) {
  // 2 * t.sf(2.228138851986273, 10) = 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228138851986273, 10.0), 0.05, 1e-9);
  // 2 * t.sf(2.0, 10) = 0.07338803.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.0, 10.0), 0.07338803, 1e-7);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoSidedPValue(-2.0, 10.0),
              StudentTTwoSidedPValue(2.0, 10.0), 1e-12);
}

TEST(StudentTTest, ZeroAndInfinity) {
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 5.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      StudentTTwoSidedPValue(std::numeric_limits<double>::infinity(), 5.0),
      0.0);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
}

}  // namespace
}  // namespace fairclean
