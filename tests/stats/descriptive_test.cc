#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

const double kNaN = std::nan("");

TEST(DescriptiveTest, MeanSkipsNaN) {
  Result<double> mean = Mean({1.0, kNaN, 3.0});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 2.0);
}

TEST(DescriptiveTest, MeanFailsOnAllMissing) {
  EXPECT_FALSE(Mean({kNaN, kNaN}).ok());
  EXPECT_FALSE(Mean({}).ok());
}

TEST(DescriptiveTest, SampleVarianceMatchesNumpyDdof1) {
  // numpy.var([2, 4, 4, 4, 5, 5, 7, 9], ddof=1) = 4.571428...
  Result<double> var = SampleVariance({2, 4, 4, 4, 5, 5, 7, 9});
  ASSERT_TRUE(var.ok());
  EXPECT_NEAR(*var, 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, VarianceRequiresTwoValues) {
  EXPECT_FALSE(SampleVariance({1.0}).ok());
  EXPECT_FALSE(SampleVariance({1.0, kNaN}).ok());
}

TEST(DescriptiveTest, StdDevIsSqrtOfVariance) {
  Result<double> sd = SampleStdDev({1.0, 3.0});
  ASSERT_TRUE(sd.ok());
  EXPECT_NEAR(*sd, std::sqrt(2.0), 1e-12);
}

TEST(DescriptiveTest, PercentileLinearInterpolation) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(*Percentile(values, 25.0), 1.75);  // numpy 'linear'
  EXPECT_DOUBLE_EQ(*Percentile(values, 50.0), 2.5);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(*Percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

TEST(DescriptiveTest, PercentileSingleValue) {
  EXPECT_DOUBLE_EQ(*Percentile({7.0}, 99.0), 7.0);
}

TEST(DescriptiveTest, PercentileRejectsOutOfRange) {
  EXPECT_FALSE(Percentile({1.0}, -1.0).ok());
  EXPECT_FALSE(Percentile({1.0}, 101.0).ok());
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(*Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(*Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(DescriptiveTest, IqrMatchesDefinition) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  Result<double> iqr = Iqr(values);
  ASSERT_TRUE(iqr.ok());
  EXPECT_NEAR(*iqr, *Percentile(values, 75.0) - *Percentile(values, 25.0),
              1e-12);
}

TEST(DescriptiveTest, NumericModeMostFrequent) {
  EXPECT_DOUBLE_EQ(*NumericMode({1.0, 2.0, 2.0, 3.0, kNaN}), 2.0);
}

TEST(DescriptiveTest, NumericModeTieBreaksSmaller) {
  EXPECT_DOUBLE_EQ(*NumericMode({5.0, 1.0, 5.0, 1.0}), 1.0);
}

TEST(DescriptiveTest, CodeModeSkipsMissing) {
  Result<int32_t> mode = CodeMode({0, 1, 1, -1, -1, -1}, -1);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, 1);
}

TEST(DescriptiveTest, CodeModeFailsOnAllMissing) {
  EXPECT_FALSE(CodeMode({-1, -1}, -1).ok());
}

}  // namespace
}  // namespace fairclean
