// Property sweeps for the significance tests over randomized inputs.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/tests.h"

namespace fairclean {
namespace {

class RandomTableTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomTableTest, GTestPValueInUnitIntervalAndSymmetric) {
  Rng rng(GetParam());
  ContingencyTable2x2 table;
  table.a = rng.UniformInt(1, 500);
  table.b = rng.UniformInt(1, 500);
  table.c = rng.UniformInt(1, 500);
  table.d = rng.UniformInt(1, 500);
  Result<TestResult> result = GTest2x2(table);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->p_value, 0.0);
  EXPECT_LE(result->p_value, 1.0);
  EXPECT_GE(result->statistic, 0.0);

  // Swapping the rows (privileged <-> disadvantaged) must not change the
  // outcome of the independence test.
  ContingencyTable2x2 swapped{table.c, table.d, table.a, table.b};
  Result<TestResult> swapped_result = GTest2x2(swapped);
  ASSERT_TRUE(swapped_result.ok());
  EXPECT_NEAR(result->statistic, swapped_result->statistic, 1e-9);

  // Swapping the columns (flagged <-> not flagged) must not either.
  ContingencyTable2x2 cols{table.b, table.a, table.d, table.c};
  Result<TestResult> cols_result = GTest2x2(cols);
  ASSERT_TRUE(cols_result.ok());
  EXPECT_NEAR(result->statistic, cols_result->statistic, 1e-9);
}

TEST_P(RandomTableTest, GTestAgreesWithPearsonOnLargeTables) {
  Rng rng(GetParam() + 1000);
  // Large counts with mild association: asymptotic agreement regime.
  ContingencyTable2x2 table;
  table.a = rng.UniformInt(800, 1200);
  table.b = rng.UniformInt(800, 1200);
  table.c = rng.UniformInt(800, 1200);
  table.d = rng.UniformInt(800, 1200);
  TestResult g = GTest2x2(table).ValueOrDie();
  TestResult chi = ChiSquareTest2x2(table).ValueOrDie();
  EXPECT_NEAR(g.statistic, chi.statistic,
              0.02 * std::max(1.0, chi.statistic));
}

TEST_P(RandomTableTest, ProportionalTableIsIndependent) {
  Rng rng(GetParam() + 2000);
  // Rows proportional by construction -> G^2 ~ 0.
  int64_t base_flagged = rng.UniformInt(10, 50);
  int64_t base_clean = rng.UniformInt(10, 50);
  int64_t k = rng.UniformInt(2, 9);
  ContingencyTable2x2 table{base_flagged, base_clean, k * base_flagged,
                            k * base_clean};
  TestResult result = GTest2x2(table).ValueOrDie();
  EXPECT_NEAR(result.statistic, 0.0, 1e-9);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST_P(RandomTableTest, PairedTTestSelfComparisonInsignificant) {
  Rng rng(GetParam() + 3000);
  std::vector<double> scores;
  for (int i = 0; i < 20; ++i) scores.push_back(rng.Normal(0.8, 0.1));
  TestResult result = PairedTTest(scores, scores).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST_P(RandomTableTest, PairedTTestDetectsConsistentShift) {
  Rng rng(GetParam() + 4000);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    double base = rng.Normal(0.7, 0.05);
    x.push_back(base + 0.05 + rng.Normal(0.0, 0.005));
    y.push_back(base);
  }
  TestResult result = PairedTTest(x, y).ValueOrDie();
  EXPECT_LT(result.p_value, 0.001);
  EXPECT_GT(result.statistic, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace fairclean
