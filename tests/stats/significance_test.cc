#include "stats/tests.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "stats/distributions.h"

namespace fairclean {
namespace {

TEST(GTest2x2Test, BalancedTableHasZeroStatistic) {
  ContingencyTable2x2 table{10, 10, 10, 10};
  Result<TestResult> result = GTest2x2(table);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->statistic, 0.0, 1e-12);
  EXPECT_NEAR(result->p_value, 1.0, 1e-9);
}

TEST(GTest2x2Test, KnownValue) {
  // [[20, 10], [10, 20]]: G^2 = 2 * (40*ln(4/3) + 20*ln(2/3)) = 6.79605...
  ContingencyTable2x2 table{20, 10, 10, 20};
  Result<TestResult> result = GTest2x2(table);
  ASSERT_TRUE(result.ok());
  double expected =
      2.0 * (40.0 * std::log(4.0 / 3.0) + 20.0 * std::log(2.0 / 3.0));
  EXPECT_NEAR(result->statistic, expected, 1e-9);
  EXPECT_NEAR(result->p_value, ChiSquareSurvival(expected, 1.0), 1e-12);
  EXPECT_TRUE(result->SignificantAt(0.05));
}

TEST(GTest2x2Test, ZeroCellContributesNothing) {
  ContingencyTable2x2 table{0, 30, 10, 20};
  Result<TestResult> result = GTest2x2(table);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->statistic, 0.0);
  EXPECT_TRUE(std::isfinite(result->statistic));
}

TEST(GTest2x2Test, ZeroMarginFails) {
  EXPECT_FALSE(GTest2x2({0, 0, 5, 5}).ok());   // empty first row
  EXPECT_FALSE(GTest2x2({0, 10, 0, 10}).ok()); // nothing flagged
}

TEST(GTest2x2Test, NegativeCountFails) {
  EXPECT_FALSE(GTest2x2({-1, 10, 5, 5}).ok());
}

TEST(GTest2x2Test, LargeDisparityIsHighlySignificant) {
  ContingencyTable2x2 table{500, 500, 100, 900};
  Result<TestResult> result = GTest2x2(table);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-10);
}

TEST(ChiSquare2x2Test, AgreesWithGTestAsymptotically) {
  ContingencyTable2x2 table{200, 300, 250, 250};
  Result<TestResult> g = GTest2x2(table);
  Result<TestResult> chi = ChiSquareTest2x2(table);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(chi.ok());
  // Both tests agree to ~1% on large, mildly unbalanced tables.
  EXPECT_NEAR(g->statistic, chi->statistic, 0.05 * chi->statistic);
}

TEST(PairedTTestTest, KnownExample) {
  // ttest_rel([1,2,3,4,5], [2,2,4,4,7]): t = -0.8/sqrt(0.14), df = 4.
  // Closed form for df=4: p = 1 - (3/2)sqrt(y) + (1/2)y^(3/2) with
  // y = df/(df + t^2) complement = 8/15, giving p = 0.09930068321372...
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 2, 4, 4, 7};
  Result<TestResult> result = PairedTTest(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->statistic, -2.1380899352993950, 1e-9);
  EXPECT_NEAR(result->p_value, 0.09930068321372681, 1e-9);
}

TEST(PairedTTestTest, IdenticalVectorsInsignificant) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  Result<TestResult> result = PairedTTest(x, x);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->p_value, 1.0);
}

TEST(PairedTTestTest, ConstantNonzeroDifference) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 3.0, 4.0};
  Result<TestResult> result = PairedTTest(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->p_value, 0.0);
  EXPECT_TRUE(std::isinf(result->statistic));
  EXPECT_LT(result->statistic, 0.0);
}

TEST(PairedTTestTest, RejectsBadInput) {
  EXPECT_FALSE(PairedTTest({1.0}, {2.0}).ok());          // too few pairs
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0}).ok());     // size mismatch
}

TEST(PairedTTestTest, RejectsNonFiniteScores) {
  double nan = std::nan("");
  double inf = std::numeric_limits<double>::infinity();
  Result<TestResult> with_nan = PairedTTest({1.0, nan, 3.0}, {1.0, 2.0, 3.0});
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {inf, 2.0}).ok());
  EXPECT_FALSE(PairedTTest({-inf, 2.0}, {1.0, 2.0}).ok());
}

TEST(PairedTTestTest, SymmetryOfSign) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y = {2, 3, 3, 5, 5, 8};
  Result<TestResult> xy = PairedTTest(x, y);
  Result<TestResult> yx = PairedTTest(y, x);
  ASSERT_TRUE(xy.ok());
  ASSERT_TRUE(yx.ok());
  EXPECT_NEAR(xy->statistic, -yx->statistic, 1e-12);
  EXPECT_NEAR(xy->p_value, yx->p_value, 1e-12);
}

TEST(BonferroniTest, DividesAlpha) {
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 1), 0.05);
  EXPECT_DOUBLE_EQ(BonferroniAlpha(0.05, 10), 0.005);
}

}  // namespace
}  // namespace fairclean
