// Kill-and-restart soak of the advisor server (DESIGN.md §10): a faulted,
// loaded server is SIGKILLed mid-flight, restarted on the same cache
// directory, and must (a) leave zero quarantined (.corrupt) cache entries
// and (b) serve every cell with bytes identical to an unfaulted baseline
// run — the atomic-write + journal discipline means a hard kill costs
// progress, never correctness.
//
// Unlike the in-process serve tests, this one exercises the real
// advisor_server binary: ctest passes its path as argv[1]
// ($<TARGET_FILE:advisor_server> in tests/CMakeLists.txt).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/safe_io.h"
#include "obs/flight.h"
#include "obs/json_lite.h"
#include "serve/client.h"
#include "store/paged_store.h"

namespace fairclean {
namespace serve {
namespace {

std::string g_server_binary;  // set by main() from argv[1]

const char* kCells[] = {
    "{\"op\":\"analyze\",\"id\":\"c0\",\"dataset\":\"german\","
    "\"error_type\":\"missing_values\",\"model\":\"log-reg\"}",
    "{\"op\":\"analyze\",\"id\":\"c1\",\"dataset\":\"german\","
    "\"error_type\":\"missing_values\",\"model\":\"knn\"}",
};

struct ServerProc {
  pid_t pid = -1;
  uint16_t port = 0;
  int stdout_fd = -1;
};

// Forks and execs advisor_server on an ephemeral port with the suite
// scaled down for test speed, scraping the bound port from its first
// stdout line. `faults` is a FAIRCLEAN_FAULTS spec ("" = unfaulted);
// `store` is a FAIRCLEAN_STORE backend ("" = the flat default).
ServerProc SpawnServer(const std::string& cache_dir,
                       const std::string& faults,
                       const std::string& store = "") {
  ServerProc proc;
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) return proc;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return proc;
  }
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    setenv("FAIRCLEAN_SAMPLE", "300", 1);
    setenv("FAIRCLEAN_REPEATS", "2", 1);
    setenv("FAIRCLEAN_FOLDS", "2", 1);
    setenv("FAIRCLEAN_CACHE_DIR", cache_dir.c_str(), 1);
    setenv("FAIRCLEAN_SERVE_QUEUE", "32", 1);
    // Telemetry plane under soak: periodic JSONL export plus an armed
    // flight recorder. A graceful stop must flush a final metrics
    // snapshot; a SIGKILL must leave either no dump or a decodable one.
    const std::string metrics_path = cache_dir + "/metrics.jsonl";
    setenv("FAIRCLEAN_METRICS", metrics_path.c_str(), 1);
    setenv("FAIRCLEAN_METRICS_INTERVAL_S", "0.2", 1);
    const std::string flight_path = cache_dir + "/fairclean.flight";
    setenv("FAIRCLEAN_FLIGHT", flight_path.c_str(), 1);
    if (faults.empty()) {
      unsetenv("FAIRCLEAN_FAULTS");
    } else {
      setenv("FAIRCLEAN_FAULTS", faults.c_str(), 1);
      setenv("FAIRCLEAN_FAULT_SEED", "7", 1);
    }
    if (store.empty()) {
      unsetenv("FAIRCLEAN_STORE");
    } else {
      setenv("FAIRCLEAN_STORE", store.c_str(), 1);
    }
    ::execl(g_server_binary.c_str(), g_server_binary.c_str(), "--port", "0",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);
  proc.pid = pid;
  proc.stdout_fd = out_pipe[0];
  // First line: "listening on port <P>".
  std::string line;
  char ch;
  while (::read(out_pipe[0], &ch, 1) == 1 && ch != '\n') line += ch;
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "listening on port %u", &port) == 1) {
    proc.port = static_cast<uint16_t>(port);
  }
  return proc;
}

void KillServer(ServerProc* proc) {
  if (proc->pid < 0) return;
  ::kill(proc->pid, SIGKILL);
  int status = 0;
  ::waitpid(proc->pid, &status, 0);
  ::close(proc->stdout_fd);
  proc->pid = -1;
}

// Asks for a graceful exit; falls back to SIGKILL rather than hanging the
// test (an orphaned server would keep ctest's output pipe open forever).
void ShutdownServer(ServerProc* proc) {
  if (proc->pid < 0) return;
  AdvisorClient client("127.0.0.1", proc->port);
  client.CallWithRetry("{\"op\":\"shutdown\",\"id\":\"bye\"}");
  int status = 0;
  for (int i = 0; i < 1000; ++i) {
    if (::waitpid(proc->pid, &status, WNOHANG) == proc->pid) {
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "server exit status " << status;
      ::close(proc->stdout_fd);
      proc->pid = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "server did not exit after shutdown op";
  KillServer(proc);
}

struct CellAnswer {
  std::string cache_file;
  std::string sha256;
};

// Analyzes every cell against a serving process; fails the test if any
// cell cannot be answered.
std::map<std::string, CellAnswer> AnalyzeAll(uint16_t port) {
  std::map<std::string, CellAnswer> answers;
  AdvisorClient client("127.0.0.1", port);
  for (const char* line : kCells) {
    Result<AdvisorResponse> response = client.CallWithRetry(line);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) continue;
    EXPECT_TRUE(response->ok()) << response->raw;
    if (!response->ok()) continue;
    CellAnswer answer;
    answer.cache_file = response->json.StringOr("cache_file", "");
    answer.sha256 = response->json.StringOr("sha256", "");
    answers[response->json.StringOr("cell", "")] = answer;
  }
  return answers;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/serve_soak_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A gracefully stopped server must leave a final flushed metrics snapshot:
// valid JSONL, the accepted counter covering every analyze, and the serve
// latency window present.
void ExpectFinalMetricsSnapshot(const std::string& cache_dir,
                                double min_accepted) {
  const std::string path = cache_dir + "/metrics.jsonl";
  Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok()) << path << ": " << text.status().ToString();
  ASSERT_FALSE(text->empty()) << path;
  double accepted = -1.0;
  bool saw_latency_window = false;
  size_t start = 0, line_no = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    std::string line = text->substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    obs::JsonValue value;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::Parse(line, &value, &error))
        << path << ":" << line_no << ": " << error;
    const std::string name = value.StringOr("metric", "");
    // Each flush replaces the file wholesale, so this is the final state.
    if (name == "serve.requests_accepted") {
      accepted = value.NumberOr("value", -1.0);
    } else if (name == "serve.window.request_latency_s") {
      saw_latency_window = true;
      EXPECT_GT(value.NumberOr("window_s", 0.0), 0.0);
    }
  }
  EXPECT_GE(accepted, min_accepted) << path;
  EXPECT_TRUE(saw_latency_window) << path;
}

// After a SIGKILL the flight dump on disk is either absent (the kill beat
// every dump) or fully decodable — never torn. The dump discipline is
// temp file + rename, so this holds even mid-write.
void ExpectFlightDumpAbsentOrDecodable(const std::string& cache_dir) {
  const std::string path = cache_dir + "/fairclean.flight";
  if (!std::filesystem::exists(path)) return;
  obs::FlightDump dump;
  std::string error;
  EXPECT_TRUE(obs::DecodeFlightFile(path, &dump, &error))
      << path << ": " << error;
}

TEST(ServeSoakTest, KillAndRestartLosesProgressNeverCorrectness) {
  ASSERT_FALSE(g_server_binary.empty())
      << "usage: serve_soak_test <path to advisor_server>";

  // Unfaulted baseline: the bytes every later run must reproduce.
  // Servers are always stopped before any ASSERT aborts the test: an
  // orphaned child inheriting our stderr would wedge ctest.
  std::string baseline_dir = FreshDir("baseline");
  ServerProc baseline = SpawnServer(baseline_dir, "");
  if (baseline.port == 0) {
    KillServer(&baseline);
    FAIL() << "baseline server did not report a port";
  }
  std::map<std::string, CellAnswer> expected = AnalyzeAll(baseline.port);
  ShutdownServer(&baseline);
  ASSERT_EQ(expected.size(), std::size(kCells));
  // Graceful stop flushed the telemetry plane's final snapshot.
  ExpectFinalMetricsSnapshot(baseline_dir, std::size(kCells));

  // Faulted run: flaky sockets and parse faults under concurrent load,
  // then a SIGKILL mid-flight.
  std::string soak_dir = FreshDir("soak");
  ServerProc faulted =
      SpawnServer(soak_dir, "socket_read:0.05,request_parse:0.05");
  if (faulted.port == 0) {
    KillServer(&faulted);
    FAIL() << "faulted server did not report a port";
  }
  std::vector<std::thread> load;
  for (int c = 0; c < 4; ++c) {
    load.emplace_back([port = faulted.port, c] {
      AdvisorClient client("127.0.0.1", port, /*seed=*/42 + c);
      BackoffOptions backoff;
      backoff.max_attempts = 2;
      backoff.base_ms = 10;
      for (int i = 0; i < 30; ++i) {
        // Failures are expected — faults are armed and the server dies
        // mid-loop. The point is what the cache looks like afterwards.
        client.CallWithRetry(kCells[i % std::size(kCells)], backoff);
      }
    });
  }
  // Early enough to usually land mid-computation (journals partially
  // written), late enough that real work has started.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  KillServer(&faulted);
  for (std::thread& thread : load) thread.join();
  // A hard kill never leaves a torn flight dump: absent or decodable.
  ExpectFlightDumpAbsentOrDecodable(soak_dir);

  // Restart on the same cache directory: journals resume, caches verify.
  ServerProc restarted = SpawnServer(soak_dir, "");
  if (restarted.port == 0) {
    KillServer(&restarted);
    FAIL() << "restarted server did not report a port";
  }
  std::map<std::string, CellAnswer> served = AnalyzeAll(restarted.port);
  ShutdownServer(&restarted);
  ASSERT_EQ(served.size(), std::size(kCells));

  // (a) Nothing was quarantined: a hard kill must never leave a cache
  // entry that reads back corrupt.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(soak_dir)) {
    EXPECT_EQ(entry.path().string().find(".corrupt"), std::string::npos)
        << "quarantined cache entry after restart: " << entry.path();
  }

  // (b) Byte identity with the unfaulted baseline, both as the advisor's
  // own digest and as raw completed-cell cache bytes on disk.
  for (const auto& [cell, baseline_answer] : expected) {
    ASSERT_TRUE(served.count(cell)) << cell;
    const CellAnswer& soak_answer = served.at(cell);
    EXPECT_EQ(soak_answer.sha256, baseline_answer.sha256) << cell;
    EXPECT_EQ(soak_answer.cache_file, baseline_answer.cache_file) << cell;
    if (baseline_answer.cache_file.empty()) continue;
    Result<std::string> baseline_bytes =
        ReadFileToString(baseline_dir + "/" + baseline_answer.cache_file);
    Result<std::string> soak_bytes =
        ReadFileToString(soak_dir + "/" + soak_answer.cache_file);
    ASSERT_TRUE(baseline_bytes.ok()) << baseline_answer.cache_file;
    ASSERT_TRUE(soak_bytes.ok()) << soak_answer.cache_file;
    EXPECT_EQ(*baseline_bytes, *soak_bytes) << cell;
  }
}

// The same soak against the paged storage backend, with page-flush faults
// armed so the SIGKILL lands on a server whose pages file is mid-commit.
// The dual-meta protocol turns that into lost progress only: the restarted
// server reproduces the paged baseline's bytes, and the pages file
// recovers with zero torn pages and zero quarantined records.
TEST(ServeSoakTest, PagedStoreKillMidPageFlushLeavesZeroTornPages) {
  ASSERT_FALSE(g_server_binary.empty())
      << "usage: serve_soak_test <path to advisor_server>";

  std::string baseline_dir = FreshDir("paged_baseline");
  ServerProc baseline = SpawnServer(baseline_dir, "", "paged");
  if (baseline.port == 0) {
    KillServer(&baseline);
    FAIL() << "paged baseline server did not report a port";
  }
  std::map<std::string, CellAnswer> expected = AnalyzeAll(baseline.port);
  ShutdownServer(&baseline);
  ASSERT_EQ(expected.size(), std::size(kCells));

  // Transient page faults under concurrent load, then SIGKILL. page_write
  // at 5% tears individual commit attempts (the engine rolls them back);
  // the kill itself can land between a data flush and its meta write.
  std::string soak_dir = FreshDir("paged_soak");
  ServerProc faulted = SpawnServer(
      soak_dir, "page_write:0.05,page_read:0.02,socket_read:0.05", "paged");
  if (faulted.port == 0) {
    KillServer(&faulted);
    FAIL() << "faulted paged server did not report a port";
  }
  std::vector<std::thread> load;
  for (int c = 0; c < 4; ++c) {
    load.emplace_back([port = faulted.port, c] {
      AdvisorClient client("127.0.0.1", port, /*seed=*/17 + c);
      BackoffOptions backoff;
      backoff.max_attempts = 2;
      backoff.base_ms = 10;
      for (int i = 0; i < 30; ++i) {
        client.CallWithRetry(kCells[i % std::size(kCells)], backoff);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  KillServer(&faulted);
  for (std::thread& thread : load) thread.join();

  ServerProc restarted = SpawnServer(soak_dir, "", "paged");
  if (restarted.port == 0) {
    KillServer(&restarted);
    FAIL() << "restarted paged server did not report a port";
  }
  std::map<std::string, CellAnswer> served = AnalyzeAll(restarted.port);
  ShutdownServer(&restarted);
  ASSERT_EQ(served.size(), std::size(kCells));

  // (a) The advisor's own digests and record names reproduce the paged
  // baseline exactly.
  for (const auto& [cell, baseline_answer] : expected) {
    ASSERT_TRUE(served.count(cell)) << cell;
    EXPECT_EQ(served.at(cell).sha256, baseline_answer.sha256) << cell;
    EXPECT_EQ(served.at(cell).cache_file, baseline_answer.cache_file)
        << cell;
  }

  // (b) Both servers are gone; open the engines directly. The soaked
  // pages file must pass a full integrity walk — the hard kill and the
  // injected page faults left zero torn reachable pages and nothing
  // quarantined — and its record bytes must equal the baseline's.
  for (const std::string& dir : {baseline_dir, soak_dir}) {
    Result<std::unique_ptr<store::PagedStore>> engine =
        store::PagedStore::Open(dir + "/fairclean.pages", {});
    ASSERT_TRUE(engine.ok()) << dir << ": " << engine.status().ToString();
    Result<store::PagedStore::IntegrityReport> integrity =
        (*engine)->CheckIntegrity();
    ASSERT_TRUE(integrity.ok()) << dir;
    EXPECT_EQ(integrity->torn_pages, 0u)
        << dir << ": "
        << (integrity->errors.empty() ? std::string()
                                      : integrity->errors.front());
    Result<std::vector<std::string>> keys = (*engine)->ListKeys();
    ASSERT_TRUE(keys.ok()) << dir;
    for (const std::string& key : *keys) {
      EXPECT_EQ(key.find(".corrupt"), std::string::npos)
          << "quarantined record after paged restart: " << key;
    }
  }
  Result<std::unique_ptr<store::PagedStore>> baseline_engine =
      store::PagedStore::Open(baseline_dir + "/fairclean.pages", {});
  Result<std::unique_ptr<store::PagedStore>> soak_engine =
      store::PagedStore::Open(soak_dir + "/fairclean.pages", {});
  ASSERT_TRUE(baseline_engine.ok() && soak_engine.ok());
  for (const auto& [cell, answer] : expected) {
    if (answer.cache_file.empty()) continue;
    Result<std::string> baseline_bytes =
        (*baseline_engine)->Get(answer.cache_file);
    Result<std::string> soak_bytes = (*soak_engine)->Get(answer.cache_file);
    ASSERT_TRUE(baseline_bytes.ok()) << answer.cache_file;
    ASSERT_TRUE(soak_bytes.ok()) << answer.cache_file;
    EXPECT_EQ(*baseline_bytes, *soak_bytes) << cell;
  }
}

}  // namespace
}  // namespace serve
}  // namespace fairclean

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  if (argc > 1) fairclean::serve::g_server_binary = argv[1];
  return RUN_ALL_TESTS();
}
