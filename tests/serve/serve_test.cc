// In-process tests of the advisor serving layer: wire-protocol parsing,
// the request lifecycle end to end against a real AdvisorServer on an
// ephemeral port, deterministic overload shedding via the pause/resume
// gate, deadline expiry, the serving fault sites, and the client's
// reconnect/backoff behavior.
//
// This binary is registered at several FAIRCLEAN_THREADS widths (see
// tests/CMakeLists.txt): the server sizes its worker pool from that knob,
// and the overload arithmetic must hold at every width — that is the whole
// point of gating admission on the queue bound rather than on worker
// count.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <climits>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "obs/flight.h"
#include "obs/json_lite.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace fairclean {
namespace serve {
namespace {

constexpr char kAnalyzePrefix[] =
    "{\"op\":\"analyze\",\"dataset\":\"german\","
    "\"error_type\":\"missing_values\",\"model\":\"log-reg\"";

std::string AnalyzeLine(const std::string& id, double deadline_s = 0.0) {
  std::string line = std::string(kAnalyzePrefix) + ",\"id\":\"" + id + "\"";
  if (deadline_s > 0.0) {
    line += ",\"deadline_s\":" + std::to_string(deadline_s);
  }
  return line + "}";
}

std::string FreshDir(const std::string& name) {
  // Per-process paths: the width registrations of this binary run
  // concurrently under ctest -j and must not share cache directories.
  std::string dir = testing::TempDir() + "/serve_test_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A deliberately ill-behaved client: pipelines many request lines without
// waiting for responses, which AdvisorClient (one round trip per Call)
// cannot do. This is how the overload tests fill the admission queue
// atomically from the server's point of view — one reader thread drains
// the pipelined lines back to back.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(std::string line) {
    if (line.empty() || line.back() != '\n') line += '\n';
    size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking; "" on EOF.
  std::string ReadLine() {
    while (true) {
      size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class ServeTest : public testing::Test {
 protected:
  void StartServer(const std::string& tag, size_t queue_limit) {
    ServeOptions options;
    options.port = 0;  // ephemeral
    options.queue_limit = queue_limit;
    options.retry_after_ms = 25;
    // Golden-suite scale (see suite_golden_test): smaller samples can hit
    // degenerate repeats (a fold with a single-class group) on german.
    options.suite.study.sample_size = 300;
    options.suite.study.num_repeats = 2;
    options.suite.study.cv_folds = 2;
    options.suite.cache_dir = FreshDir(tag);
    server_ = std::make_unique<AdvisorServer>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    FaultInjector::Global().Reset();
  }

  std::unique_ptr<AdvisorServer> server_;
};

TEST(ServeProtocolTest, ParsesAnalyzeRequest) {
  Result<AdvisorRequest> request = ParseRequest(
      "{\"op\":\"analyze\",\"id\":\"r1\",\"dataset\":\"german\","
      "\"error_type\":\"missing_values\",\"model\":\"log-reg\","
      "\"group\":\"sex\",\"metric\":\"PP\",\"deadline_s\":5}");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, AdvisorRequest::Op::kAnalyze);
  EXPECT_EQ(request->id, "r1");
  EXPECT_EQ(request->dataset, "german");
  EXPECT_EQ(request->error_type, "missing_values");
  EXPECT_EQ(request->model, "log-reg");
  EXPECT_EQ(request->group, "sex");
  EXPECT_EQ(request->metric, "PP");
  EXPECT_DOUBLE_EQ(request->deadline_s, 5.0);
}

TEST(ServeProtocolTest, ParsesControlOps) {
  for (const char* op : {"ping", "stats", "pause", "resume", "shutdown"}) {
    Result<AdvisorRequest> request = ParseRequest(
        std::string("{\"op\":\"") + op + "\",\"id\":\"c\"}");
    ASSERT_TRUE(request.ok()) << op;
    EXPECT_NE(request->op, AdvisorRequest::Op::kAnalyze) << op;
  }
}

TEST(ServeProtocolTest, RejectsBadRequests) {
  // Validation happens at parse time, before a worker is consumed.
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());
  EXPECT_FALSE(ParseRequest("{\"op\":\"levitate\"}").ok());
  // Unknown dataset / error type / model / metric.
  EXPECT_FALSE(ParseRequest(
                   "{\"op\":\"analyze\",\"dataset\":\"nope\","
                   "\"error_type\":\"missing_values\",\"model\":\"log-reg\"}")
                   .ok());
  EXPECT_FALSE(ParseRequest(
                   "{\"op\":\"analyze\",\"dataset\":\"german\","
                   "\"error_type\":\"typos\",\"model\":\"log-reg\"}")
                   .ok());
  EXPECT_FALSE(ParseRequest(
                   "{\"op\":\"analyze\",\"dataset\":\"german\","
                   "\"error_type\":\"missing_values\",\"model\":\"gpt\"}")
                   .ok());
  EXPECT_FALSE(ParseRequest(AnalyzeLine("r").substr(0, 20)).ok());
  Result<AdvisorRequest> bad_metric = ParseRequest(
      "{\"op\":\"analyze\",\"dataset\":\"german\","
      "\"error_type\":\"missing_values\",\"model\":\"log-reg\","
      "\"metric\":\"vibes\"}");
  EXPECT_FALSE(bad_metric.ok());
  Result<AdvisorRequest> bad_deadline = ParseRequest(
      "{\"op\":\"analyze\",\"dataset\":\"german\","
      "\"error_type\":\"missing_values\",\"model\":\"log-reg\","
      "\"deadline_s\":-1}");
  ASSERT_FALSE(bad_deadline.ok());
  EXPECT_EQ(bad_deadline.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, StatusTokensAreLowerSnake) {
  EXPECT_STREQ(StatusCodeToken(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToken(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(StatusCodeToken(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StatusCodeToken(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeToken(StatusCode::kIoError), "io_error");
}

TEST(ServeProtocolTest, ParseResponseReadsErrorShape) {
  // Also covers JsonValue::BoolOr, which the client uses for "resumable".
  Result<AdvisorResponse> response = ParseResponse(
      "{\"id\":\"r9\",\"status\":\"deadline_exceeded\",\"error\":\"expired\","
      "\"retry_after_ms\":40,\"resumable\":true}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, "r9");
  EXPECT_EQ(response->status, "deadline_exceeded");
  EXPECT_EQ(response->error, "expired");
  EXPECT_EQ(response->retry_after_ms, 40);
  EXPECT_TRUE(response->resumable);
  EXPECT_FALSE(response->ok());
  EXPECT_TRUE(response->Retryable());

  Result<AdvisorResponse> shed = ParseResponse(
      "{\"id\":\"\",\"status\":\"unavailable\",\"error\":\"full\","
      "\"retry_after_ms\":200}");
  ASSERT_TRUE(shed.ok());
  EXPECT_FALSE(shed->resumable);  // absent -> BoolOr default
  EXPECT_TRUE(shed->Retryable());

  // "resumable" with a non-bool value falls back too.
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse("{\"resumable\":\"yes\"}", &value,
                                    &error));
  EXPECT_FALSE(value.BoolOr("resumable", false));
  EXPECT_TRUE(value.BoolOr("missing", true));

  EXPECT_FALSE(ParseResponse("garbage").ok());
  EXPECT_FALSE(ParseResponse("{\"id\":\"x\"}").ok());  // no status
}

TEST(ServeProtocolTest, ParseResponseSanitizesHostileRetryHints) {
  // The hint crosses the wire as an untrusted double; every malformed
  // shape must land in [0, kMaxRetryAfterMs] instead of hitting the
  // undefined double->int conversion the old bare cast performed.
  auto hint_of = [](const std::string& raw) {
    Result<AdvisorResponse> response = ParseResponse(
        "{\"id\":\"h\",\"status\":\"unavailable\",\"retry_after_ms\":" +
        raw + "}");
    EXPECT_TRUE(response.ok()) << raw;
    return response.ok() ? response->retry_after_ms : -1;
  };
  EXPECT_EQ(hint_of("250"), 250);
  EXPECT_EQ(hint_of("0"), 0);
  EXPECT_EQ(hint_of("-1"), 0);
  EXPECT_EQ(hint_of("-1e300"), 0);
  EXPECT_EQ(hint_of("1e300"), kMaxRetryAfterMs);  // beyond-int magnitude
  EXPECT_EQ(hint_of("99999999999"), kMaxRetryAfterMs);
  EXPECT_EQ(hint_of(std::to_string(kMaxRetryAfterMs + 1)), kMaxRetryAfterMs);
  EXPECT_EQ(hint_of("\"soon\""), 0);  // non-number -> NumberOr default

  // A non-finite hint parsed from a malformed-but-accepted payload also
  // reads as 0 (JSON has no NaN literal; NumberOr's default covers it).
  Result<AdvisorResponse> missing = ParseResponse(
      "{\"id\":\"h\",\"status\":\"unavailable\"}");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->retry_after_ms, 0);
}

TEST(ServeProtocolTest, BackoffDelaySaturatesAtHighAttempts) {
  BackoffOptions backoff;
  backoff.base_ms = 50;
  backoff.max_ms = 2000;
  // The doubling ramp, then the cap.
  EXPECT_EQ(BackoffDelayMs(backoff, 1, 0), 50);
  EXPECT_EQ(BackoffDelayMs(backoff, 2, 0), 100);
  EXPECT_EQ(BackoffDelayMs(backoff, 3, 0), 200);
  EXPECT_EQ(BackoffDelayMs(backoff, 6, 0), 1600);
  EXPECT_EQ(BackoffDelayMs(backoff, 7, 0), 2000);
  // Attempts far past where `base_ms << (attempt - 1)` was undefined
  // behavior: the delay pins at max_ms, never wraps negative.
  for (int attempt : {31, 32, 63, 64, 100, 1000, INT_MAX}) {
    EXPECT_EQ(BackoffDelayMs(backoff, attempt, 0), 2000) << attempt;
  }
}

TEST(ServeProtocolTest, BackoffDelayHonorsServerHintWithinCap) {
  BackoffOptions backoff;
  backoff.base_ms = 50;
  backoff.max_ms = 2000;
  // A larger server hint replaces the computed delay...
  EXPECT_EQ(BackoffDelayMs(backoff, 1, 300), 300);
  // ...a smaller one does not...
  EXPECT_EQ(BackoffDelayMs(backoff, 4, 100), 400);
  // ...and the cap binds the hint too (the hint is already sanitized to
  // kMaxRetryAfterMs upstream, but the cap must hold regardless).
  EXPECT_EQ(BackoffDelayMs(backoff, 1, 1000000), 2000);
  EXPECT_EQ(BackoffDelayMs(backoff, 1000, 1000000), 2000);

  // Degenerate configurations stay non-negative.
  BackoffOptions zero;
  zero.base_ms = 0;
  zero.max_ms = 0;
  EXPECT_EQ(BackoffDelayMs(zero, 100, 0), 0);
  BackoffOptions negative;
  negative.base_ms = -5;
  negative.max_ms = -1;
  EXPECT_EQ(BackoffDelayMs(negative, 100, 50), 0);
}

TEST(ServeOptionsTest, EnvParsingIsStrict) {
  setenv("FAIRCLEAN_SERVE_QUEUE", "12abc", 1);
  Result<ServeOptions> garbage = ServeOptionsFromEnv();
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(garbage.status().message().find("FAIRCLEAN_SERVE_QUEUE"),
            std::string::npos);

  setenv("FAIRCLEAN_SERVE_QUEUE", "0", 1);
  EXPECT_FALSE(ServeOptionsFromEnv().ok());  // a queue needs room for 1
  unsetenv("FAIRCLEAN_SERVE_QUEUE");

  setenv("FAIRCLEAN_SERVE_PORT", "70000", 1);
  EXPECT_FALSE(ServeOptionsFromEnv().ok());
  unsetenv("FAIRCLEAN_SERVE_PORT");

  setenv("FAIRCLEAN_SERVE_DEADLINE_S", "1.5x", 1);
  EXPECT_FALSE(ServeOptionsFromEnv().ok());
  unsetenv("FAIRCLEAN_SERVE_DEADLINE_S");

  setenv("FAIRCLEAN_SERVE_PORT", "0", 1);
  setenv("FAIRCLEAN_SERVE_QUEUE", "5", 1);
  setenv("FAIRCLEAN_SERVE_DEADLINE_S", "2.5", 1);
  Result<ServeOptions> parsed = ServeOptionsFromEnv();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->port, 0);
  EXPECT_EQ(parsed->queue_limit, 5u);
  EXPECT_DOUBLE_EQ(parsed->default_deadline_s, 2.5);
  unsetenv("FAIRCLEAN_SERVE_PORT");
  unsetenv("FAIRCLEAN_SERVE_QUEUE");
  unsetenv("FAIRCLEAN_SERVE_DEADLINE_S");
}

TEST_F(ServeTest, PingAnalyzeAndStatsRoundTrip) {
  StartServer("roundtrip", 8);
  AdvisorClient client("127.0.0.1", server_->port());

  Result<AdvisorResponse> pong = client.Call("{\"op\":\"ping\",\"id\":\"p\"}");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->ok());
  EXPECT_EQ(pong->id, "p");

  Result<AdvisorResponse> first = client.Call(AnalyzeLine("a1"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok()) << first->raw;
  EXPECT_EQ(first->json.StringOr("cell", ""),
            "german/missing_values/log-reg");
  EXPECT_FALSE(first->json.BoolOr("cache_hit", true));
  std::string sha = first->json.StringOr("sha256", "");
  EXPECT_EQ(sha.size(), 64u);

  // Same cell again: served from the resident artifact store, same bytes.
  Result<AdvisorResponse> second = client.Call(AnalyzeLine("a2"));
  ASSERT_TRUE(second.ok() && second->ok());
  EXPECT_TRUE(second->json.BoolOr("cache_hit", false));
  EXPECT_EQ(second->json.StringOr("sha256", ""), sha);

  Result<AdvisorResponse> stats =
      client.Call("{\"op\":\"stats\",\"id\":\"s\"}");
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_DOUBLE_EQ(stats->json.NumberOr("accepted", -1), 2.0);
  EXPECT_DOUBLE_EQ(stats->json.NumberOr("ok", -1), 2.0);
  EXPECT_DOUBLE_EQ(stats->json.NumberOr("shed", -1), 0.0);
  EXPECT_FALSE(stats->json.BoolOr("paused", true));
}

TEST_F(ServeTest, OverloadShedsExactlyTheExcess) {
  // The deterministic overload contract: with the worker dequeue paused, a
  // queue bound of Q and Q+k pipelined submissions yield exactly k sheds,
  // no matter how many workers the width registration gave the server.
  constexpr size_t kQueue = 3;
  constexpr size_t kExcess = 2;
  StartServer("overload", kQueue);

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("{\"op\":\"pause\",\"id\":\"p\"}"));
  Result<AdvisorResponse> ack = ParseResponse(conn.ReadLine());
  ASSERT_TRUE(ack.ok() && ack->ok());

  for (size_t i = 0; i < kQueue + kExcess; ++i) {
    ASSERT_TRUE(conn.Send(AnalyzeLine("r" + std::to_string(i))));
  }

  // While paused nothing executes, so the only responses on the wire are
  // the k sheds — written inline by the reader, in submission order, for
  // exactly the requests beyond the bound.
  for (size_t i = 0; i < kExcess; ++i) {
    Result<AdvisorResponse> shed = ParseResponse(conn.ReadLine());
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    EXPECT_EQ(shed->status, "unavailable") << shed->raw;
    EXPECT_EQ(shed->id, "r" + std::to_string(kQueue + i));
    EXPECT_EQ(shed->retry_after_ms, 25);
    EXPECT_TRUE(shed->Retryable());
    EXPECT_NE(shed->error.find("admission queue full"), std::string::npos);
  }
  ServerStats mid = server_->Stats();
  EXPECT_EQ(mid.accepted, kQueue);
  EXPECT_EQ(mid.shed, kExcess);
  EXPECT_EQ(mid.queue_depth, kQueue);
  EXPECT_TRUE(mid.paused);

  // Resume: every admitted request completes (same cell -> one production,
  // shared by the rest). Worker completion order is nondeterministic, so
  // collect ids as a set.
  ASSERT_TRUE(conn.Send("{\"op\":\"resume\",\"id\":\"g\"}"));
  std::set<std::string> completed;
  bool resumed = false;
  for (size_t i = 0; i < kQueue + 1; ++i) {
    Result<AdvisorResponse> response = ParseResponse(conn.ReadLine());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok()) << response->raw;
    if (response->json.StringOr("op", "") == "resume") {
      resumed = true;
    } else {
      completed.insert(response->id);
    }
  }
  EXPECT_TRUE(resumed);
  EXPECT_EQ(completed,
            (std::set<std::string>{"r0", "r1", "r2"}));
  ServerStats done = server_->Stats();
  EXPECT_EQ(done.ok, kQueue);
  EXPECT_EQ(done.shed, kExcess);
  EXPECT_EQ(done.queue_depth, 0u);
}

TEST_F(ServeTest, QueueExpiredDeadlineAnswersWithoutComputingAndIsResumable) {
  StartServer("deadline", 4);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("{\"op\":\"pause\",\"id\":\"p\"}"));
  ASSERT_TRUE(ParseResponse(conn.ReadLine()).ok());

  // 50 ms deadline, then hold the queue well past it.
  ASSERT_TRUE(conn.Send(AnalyzeLine("d1", 0.05)));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // The resume ack (reader thread) and the expired answer (worker thread)
  // race onto the wire; classify the two lines instead of assuming order.
  ASSERT_TRUE(conn.Send("{\"op\":\"resume\",\"id\":\"g\"}"));
  Result<AdvisorResponse> expired(Status::Internal("no expired response"));
  for (int i = 0; i < 2; ++i) {
    Result<AdvisorResponse> response = ParseResponse(conn.ReadLine());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->json.StringOr("op", "") != "resume") expired = response;
  }
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(expired->status, "deadline_exceeded") << expired->raw;
  EXPECT_EQ(expired->id, "d1");
  EXPECT_TRUE(expired->resumable);
  EXPECT_GT(expired->retry_after_ms, 0);
  EXPECT_NE(expired->error.find("deadline expired in admission queue"),
            std::string::npos);
  EXPECT_EQ(server_->Stats().deadline_exceeded, 1u);

  // The client's retry (no deadline this time) gets the full answer.
  ASSERT_TRUE(conn.Send(AnalyzeLine("d2")));
  Result<AdvisorResponse> retried = ParseResponse(conn.ReadLine());
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->ok()) << retried->raw;
}

TEST_F(ServeTest, RequestParseFaultAnswersIoErrorAndRecovers) {
  StartServer("parsefault", 4);
  ASSERT_TRUE(
      FaultInjector::Global().Configure("request_parse:1:1", 7).ok());
  AdvisorClient client("127.0.0.1", server_->port());
  Result<AdvisorResponse> faulted =
      client.Call("{\"op\":\"ping\",\"id\":\"p\"}");
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->status, "io_error") << faulted->raw;
  EXPECT_TRUE(faulted->Retryable());
  // max_fires exhausted: the same line now parses and serves.
  Result<AdvisorResponse> pong = client.Call("{\"op\":\"ping\",\"id\":\"p\"}");
  ASSERT_TRUE(pong.ok() && pong->ok());
}

TEST_F(ServeTest, SocketFaultsDropTheConnectionAndTheClientReconnects) {
  StartServer("socketfault", 4);
  {
    // socket_read: the server's reader kills the connection; Call
    // reconnects once and the retry lands after the fault is exhausted.
    ASSERT_TRUE(FaultInjector::Global().Configure("socket_read:1:1", 7).ok());
    AdvisorClient client("127.0.0.1", server_->port());
    Result<AdvisorResponse> pong =
        client.Call("{\"op\":\"ping\",\"id\":\"p\"}");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->ok());
  }
  FaultInjector::Global().Reset();
  {
    // socket_write: the response is dropped mid-wire instead.
    ASSERT_TRUE(
        FaultInjector::Global().Configure("socket_write:1:1", 7).ok());
    AdvisorClient client("127.0.0.1", server_->port());
    Result<AdvisorResponse> pong =
        client.Call("{\"op\":\"ping\",\"id\":\"p\"}");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->ok());
  }
}

TEST_F(ServeTest, CallWithRetryHonorsShedHintsUntilAdmitted) {
  // Queue of 1, paused, already holding one request: a well-behaved client
  // is shed with a retry_after_ms hint and keeps backing off until the
  // gate opens, then gets a real answer.
  StartServer("backoff", 1);
  RawConn filler(server_->port());
  ASSERT_TRUE(filler.connected());
  ASSERT_TRUE(filler.Send("{\"op\":\"pause\",\"id\":\"p\"}"));
  ASSERT_TRUE(ParseResponse(filler.ReadLine()).ok());
  ASSERT_TRUE(filler.Send(AnalyzeLine("hog")));

  std::thread resumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    RawConn control(server_->port());
    ASSERT_TRUE(control.connected());
    ASSERT_TRUE(control.Send("{\"op\":\"resume\",\"id\":\"g\"}"));
    control.ReadLine();
  });

  AdvisorClient client("127.0.0.1", server_->port(), /*seed=*/7);
  BackoffOptions backoff;
  backoff.base_ms = 20;
  backoff.max_attempts = 20;
  Result<AdvisorResponse> response =
      client.CallWithRetry(AnalyzeLine("c1"), backoff);
  resumer.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok()) << response->raw;
  EXPECT_GE(client.retries(), 1u);

  Result<AdvisorResponse> hog = ParseResponse(filler.ReadLine());
  ASSERT_TRUE(hog.ok());
  EXPECT_TRUE(hog->ok());
}

TEST_F(ServeTest, ShutdownShedsQueuedRequestsHonestly) {
  StartServer("shutdown", 4);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("{\"op\":\"pause\",\"id\":\"p\"}"));
  ASSERT_TRUE(ParseResponse(conn.ReadLine()).ok());
  ASSERT_TRUE(conn.Send(AnalyzeLine("q1")));
  ASSERT_TRUE(conn.Send(AnalyzeLine("q2")));
  while (server_->Stats().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server_->Shutdown();
  // Both queued requests were answered before their connection closed:
  // Unavailable, "shutting down" — not silently dropped.
  std::set<std::string> answered;
  for (int i = 0; i < 2; ++i) {
    Result<AdvisorResponse> response = ParseResponse(conn.ReadLine());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, "unavailable");
    EXPECT_NE(response->error.find("shutting down"), std::string::npos);
    answered.insert(response->id);
  }
  EXPECT_EQ(answered, (std::set<std::string>{"q1", "q2"}));
  EXPECT_EQ(conn.ReadLine(), "");  // then EOF
  EXPECT_EQ(server_->Stats().shed, 2u);
}

TEST(ServeProtocolTest, ParsesTelemetryOps) {
  Result<AdvisorRequest> metrics = ParseRequest(
      "{\"op\":\"metrics\",\"id\":\"m\",\"format\":\"prometheus\"}");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->op, AdvisorRequest::Op::kMetrics);
  EXPECT_EQ(metrics->format, "prometheus");
  // Format defaults to json and anything else is rejected at parse time,
  // before a scrape is rendered.
  Result<AdvisorRequest> defaulted =
      ParseRequest("{\"op\":\"metrics\",\"id\":\"m\"}");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->format, "json");
  Result<AdvisorRequest> bad_format =
      ParseRequest("{\"op\":\"metrics\",\"id\":\"m\",\"format\":\"xml\"}");
  ASSERT_FALSE(bad_format.ok());
  EXPECT_EQ(bad_format.status().code(), StatusCode::kInvalidArgument);

  Result<AdvisorRequest> trace = ParseRequest(
      "{\"op\":\"trace\",\"id\":\"t\",\"trace_id\":\"00deadbeef000001\"}");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->op, AdvisorRequest::Op::kTrace);
  EXPECT_EQ(trace->trace_id, "00deadbeef000001");

  Result<AdvisorRequest> flight = ParseRequest(
      "{\"op\":\"flight\",\"id\":\"f\",\"path\":\"/tmp/x.flight\"}");
  ASSERT_TRUE(flight.ok());
  EXPECT_EQ(flight->op, AdvisorRequest::Op::kFlight);
  EXPECT_EQ(flight->path, "/tmp/x.flight");
}

TEST_F(ServeTest, MetricsOpScrapesJsonAndPrometheus) {
  StartServer("metrics", 8);
  AdvisorClient client("127.0.0.1", server_->port());
  ASSERT_TRUE(client.Call(AnalyzeLine("warm"))->ok());

  // JSON scrape: an array of typed entries; the serve windows must be
  // present, windowed, and already holding this request.
  Result<AdvisorResponse> json =
      client.Call("{\"op\":\"metrics\",\"id\":\"m1\",\"format\":\"json\"}");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  ASSERT_TRUE(json->ok()) << json->raw;
  EXPECT_EQ(json->json.StringOr("format", ""), "json");
  const obs::JsonValue* metrics = json->json.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  bool saw_latency_window = false, saw_requests_counter = false;
  for (const obs::JsonValue& entry : metrics->array_items) {
    ASSERT_TRUE(entry.is_object());
    EXPECT_NE(entry.Find("metric"), nullptr);
    EXPECT_NE(entry.Find("type"), nullptr);
    const std::string name = entry.StringOr("metric", "");
    if (name == "serve.window.request_latency_s") {
      saw_latency_window = true;
      EXPECT_EQ(entry.StringOr("type", ""), "histogram");
      EXPECT_GT(entry.NumberOr("window_s", 0.0), 0.0);
      EXPECT_GE(entry.NumberOr("count", 0.0), 1.0);
    } else if (name == "serve.requests_accepted") {
      saw_requests_counter = true;
      EXPECT_EQ(entry.StringOr("type", ""), "counter");
      EXPECT_GE(entry.NumberOr("value", 0.0), 1.0);
    }
  }
  EXPECT_TRUE(saw_latency_window);
  EXPECT_TRUE(saw_requests_counter);

  // Prometheus scrape: the exposition text rides in one escaped string,
  // windows rendered as quantile summaries.
  Result<AdvisorResponse> prom = client.Call(
      "{\"op\":\"metrics\",\"id\":\"m2\",\"format\":\"prometheus\"}");
  ASSERT_TRUE(prom.ok() && prom->ok()) << prom->raw;
  EXPECT_EQ(prom->json.StringOr("format", ""), "prometheus");
  const std::string exposition = prom->json.StringOr("exposition", "");
  EXPECT_NE(exposition.find(
                "# TYPE serve_window_request_latency_s summary"),
            std::string::npos)
      << exposition.substr(0, 400);
  EXPECT_NE(exposition.find("quantile=\"0.99\""), std::string::npos);

  // The scrape is served inline by the reader thread: it must answer even
  // when every worker is wedged behind the pause gate.
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  ASSERT_TRUE(conn.Send("{\"op\":\"pause\",\"id\":\"p\"}"));
  ASSERT_TRUE(ParseResponse(conn.ReadLine()).ok());
  ASSERT_TRUE(conn.Send("{\"op\":\"metrics\",\"id\":\"m3\"}"));
  Result<AdvisorResponse> paused = ParseResponse(conn.ReadLine());
  ASSERT_TRUE(paused.ok() && paused->ok());
  ASSERT_TRUE(conn.Send("{\"op\":\"resume\",\"id\":\"r\"}"));
  ASSERT_TRUE(ParseResponse(conn.ReadLine()).ok());
}

TEST_F(ServeTest, TraceOpReturnsTheSpanTreeOfACompletedRequest) {
  StartServer("traceop", 8);
  AdvisorClient client("127.0.0.1", server_->port());
  Result<AdvisorResponse> analyzed = client.Call(AnalyzeLine("t1"));
  ASSERT_TRUE(analyzed.ok() && analyzed->ok()) << analyzed->raw;
  const std::string trace_id = analyzed->json.StringOr("trace", "");
  ASSERT_EQ(trace_id.size(), 16u) << analyzed->raw;

  // Listing retains the id the analyze response advertised.
  Result<AdvisorResponse> listed =
      client.Call("{\"op\":\"trace\",\"id\":\"l\"}");
  ASSERT_TRUE(listed.ok() && listed->ok()) << listed->raw;
  const obs::JsonValue* traces = listed->json.Find("traces");
  ASSERT_NE(traces, nullptr);
  bool retained = false;
  for (const obs::JsonValue& entry : traces->array_items) {
    if (entry.string_value == trace_id) retained = true;
  }
  EXPECT_TRUE(retained);

  // The span tree for that id covers the request across layers: a serve
  // root span plus nested work, every span shaped for the tree renderer.
  Result<AdvisorResponse> fetched = client.Call(
      "{\"op\":\"trace\",\"id\":\"t\",\"trace_id\":\"" + trace_id + "\"}");
  ASSERT_TRUE(fetched.ok() && fetched->ok()) << fetched->raw;
  EXPECT_EQ(fetched->json.StringOr("trace", ""), trace_id);
  const obs::JsonValue* spans = fetched->json.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_FALSE(spans->array_items.empty());
  bool saw_root = false;
  for (const obs::JsonValue& span : spans->array_items) {
    EXPECT_NE(span.Find("name"), nullptr);
    EXPECT_NE(span.Find("cat"), nullptr);
    EXPECT_GE(span.NumberOr("dur_us", -1.0), 0.0);
    if (span.NumberOr("depth", -1.0) == 0.0) saw_root = true;
  }
  EXPECT_TRUE(saw_root);

  // Unknown and malformed ids both answer not_found without a worker.
  Result<AdvisorResponse> unknown = client.Call(
      "{\"op\":\"trace\",\"id\":\"u\",\"trace_id\":\"ffffffffffffffff\"}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->ok());
  EXPECT_NE(unknown->error.find("not retained"), std::string::npos);
  Result<AdvisorResponse> malformed = client.Call(
      "{\"op\":\"trace\",\"id\":\"b\",\"trace_id\":\"zz\"}");
  ASSERT_TRUE(malformed.ok());
  EXPECT_FALSE(malformed->ok());
}

TEST_F(ServeTest, FlightOpWritesADecodableDump) {
  StartServer("flightop", 8);
  obs::FlightRecorder::Enable(/*capacity=*/4096);
  AdvisorClient client("127.0.0.1", server_->port());
  ASSERT_TRUE(client.Call(AnalyzeLine("f1"))->ok());

  const std::string path = FreshDir("flight") + "/op.flight";
  Result<AdvisorResponse> dumped = client.Call(
      "{\"op\":\"flight\",\"id\":\"f\",\"path\":\"" + path + "\"}");
  ASSERT_TRUE(dumped.ok() && dumped->ok()) << dumped->raw;
  EXPECT_EQ(dumped->json.StringOr("flight", ""), path);

  obs::FlightDump dump;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightFile(path, &dump, &error)) << error;
  EXPECT_EQ(dump.reason, obs::kFlightReasonExplicit);
  EXPECT_GT(dump.TotalEvents(), 0u);
  // The request left span begin/end pairs behind in some worker's ring.
  size_t span_events = 0;
  for (const obs::FlightDump::Thread& thread : dump.threads) {
    for (const obs::FlightEntry& entry : thread.events) {
      if (entry.type ==
              static_cast<uint8_t>(obs::FlightEventType::kSpanBegin) ||
          entry.type ==
              static_cast<uint8_t>(obs::FlightEventType::kSpanEnd)) {
        ++span_events;
      }
    }
  }
  EXPECT_GT(span_events, 0u);
  obs::FlightRecorder::Disable();
}

}  // namespace
}  // namespace serve
}  // namespace fairclean
