// End-to-end integration tests: generated dataset -> detection -> repair ->
// training -> fairness scoring -> impact classification, exercising the
// same paths the benchmark harness uses.

#include <cmath>

#include <gtest/gtest.h>

#include "core/disparity.h"
#include "core/fair_selector.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "ml/encoder.h"
#include "stats/tests.h"

namespace fairclean {
namespace {

StudyOptions TinyStudy() {
  StudyOptions options;
  options.sample_size = 600;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 4242;
  return options;
}

TEST(PipelineTest, MissingValueExperimentOnGermanEndToEnd) {
  Rng rng(1);
  GeneratedDataset dataset = MakeDataset("german", 1000, &rng).ValueOrDie();
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      dataset, "missing_values", LogRegFamily(), TinyStudy());
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();

  double alpha = BonferroniAlpha(0.05, experiment->repaired.size());
  for (const auto& [method, series] : experiment->repaired) {
    for (const GroupDefinition& group : experiment->groups) {
      for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                    FairnessMetric::kEqualOpportunity}) {
        Result<ImpactOutcome> impact =
            ComputeImpact(experiment->dirty, series, group.key, metric,
                          alpha);
        ASSERT_TRUE(impact.ok()) << method << "/" << group.key;
      }
    }
  }
}

TEST(PipelineTest, OutlierExperimentOnHeartEndToEnd) {
  Rng rng(2);
  GeneratedDataset dataset = MakeDataset("heart", 2000, &rng).ValueOrDie();
  Result<CleaningExperimentResult> experiment =
      RunCleaningExperiment(dataset, "outliers", GbdtFamily(), TinyStudy());
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  EXPECT_EQ(experiment->repaired.size(), 9u);
  for (const auto& [method, series] : experiment->repaired) {
    EXPECT_EQ(series.accuracy.size(), 3u) << method;
  }
}

TEST(PipelineTest, MislabelExperimentOnHeartImprovesAccuracy) {
  // The heart generator plants recoverable asymmetric label noise; with the
  // sample sizes used here, flipping detected mislabels should not tank
  // accuracy, and typically improves it (the paper's Table X-XIII shape).
  Rng rng(3);
  GeneratedDataset dataset = MakeDataset("heart", 4000, &rng).ValueOrDie();
  StudyOptions options = TinyStudy();
  options.sample_size = 1500;
  options.num_repeats = 4;
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      dataset, "mislabels", LogRegFamily(), options);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  const ScoreSeries& repaired = experiment->repaired.at("flip_mislabels");
  double mean_dirty = 0.0;
  double mean_repaired = 0.0;
  for (size_t i = 0; i < repaired.accuracy.size(); ++i) {
    mean_dirty += experiment->dirty.accuracy[i];
    mean_repaired += repaired.accuracy[i];
  }
  EXPECT_GT(mean_repaired, mean_dirty - 0.05 * repaired.accuracy.size());
}

TEST(PipelineTest, KnnFamilyRunsThroughTheProtocol) {
  Rng rng(4);
  GeneratedDataset dataset = MakeDataset("german", 600, &rng).ValueOrDie();
  StudyOptions options = TinyStudy();
  options.sample_size = 400;
  options.num_repeats = 2;
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      dataset, "missing_values", KnnFamily(), options);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  EXPECT_EQ(experiment->model, "knn");
}

TEST(PipelineTest, DisparityAnalysisFeedsSignificanceTest) {
  Rng rng(5);
  GeneratedDataset dataset = MakeDataset("adult", 4000, &rng).ValueOrDie();
  DisparityOptions options;
  Rng analysis_rng(6);
  std::vector<DisparityRow> rows =
      AnalyzeDisparities(dataset, false, options, &analysis_rng)
          .ValueOrDie();
  // All five strategies ran on both sensitive attributes.
  EXPECT_EQ(rows.size(), 10u);
}

TEST(PipelineTest, FairSelectorProducesRecommendationFromRealRun) {
  Rng rng(7);
  GeneratedDataset dataset = MakeDataset("german", 1000, &rng).ValueOrDie();
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      dataset, "missing_values", LogRegFamily(), TinyStudy());
  ASSERT_TRUE(experiment.ok());
  Result<std::vector<CleaningRecommendation>> ranked = SelectFairCleaning(
      *experiment, "sex", FairnessMetric::kPredictiveParity, 0.05);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 6u);
}

TEST(PipelineTest, ResultRecordsRoundTripThroughJson) {
  Rng rng(8);
  GeneratedDataset dataset = MakeDataset("german", 600, &rng).ValueOrDie();
  StudyOptions options = TinyStudy();
  options.sample_size = 300;
  options.num_repeats = 2;
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      dataset, "mislabels", LogRegFamily(), options);
  ASSERT_TRUE(experiment.ok());
  std::string json = experiment->records.ToJson();
  Result<ResultStore> parsed = ResultStore::FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), experiment->records.size());
}

}  // namespace
}  // namespace fairclean
