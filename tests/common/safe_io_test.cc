#include "common/safe_io.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace fairclean {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/safe_io_" + name;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard zlib/IEEE CRC-32 check values.
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414fa339u);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string data = "{\"a\": 1}";
  uint32_t before = Crc32(data);
  data[1] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

TEST(AtomicWriteTest, RoundTripsAndLeavesNoTempFile) {
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWriteTest, ReplacesExistingFile) {
  std::string path = TempPath("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(*ReadFileToString(path), "new");
  std::filesystem::remove(path);
}

TEST(AtomicWriteTest, MissingFileIsIoError) {
  Result<std::string> read = ReadFileToString(TempPath("does_not_exist"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(ChecksumFooterTest, AppendThenVerifyReturnsBody) {
  std::string body = "{\"x\": 1, \"y\": 2}\n";
  std::string framed = AppendChecksumFooter(body);
  EXPECT_TRUE(HasChecksumFooter(framed));
  Result<std::string> verified = VerifyChecksumFooter(framed);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, body);
}

TEST(ChecksumFooterTest, MissingFooterIsInvalidArgument) {
  Result<std::string> verified = VerifyChecksumFooter("{\"x\": 1}\n");
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChecksumFooterTest, DetectsBitFlipInBody) {
  std::string framed = AppendChecksumFooter("{\"x\": 1234}\n");
  framed[6] = '5';  // 1234 -> 1534
  Result<std::string> verified = VerifyChecksumFooter(framed);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChecksumFooterTest, DetectsTruncatedBody) {
  std::string body = "{\"x\": 1, \"y\": 2}\n";
  std::string framed = AppendChecksumFooter(body);
  // Drop one byte of the body but keep the footer intact.
  std::string truncated = framed.substr(1);
  EXPECT_FALSE(VerifyChecksumFooter(truncated).ok());
}

TEST(ChecksummedFileTest, RoundTrip) {
  std::string path = TempPath("checked.json");
  ASSERT_TRUE(WriteChecksummedFile(path, "{\"k\": 7}\n").ok());
  Result<std::string> body = ReadChecksummedFile(path);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body, "{\"k\": 7}\n");
  std::filesystem::remove(path);
}

TEST(QuarantineTest, MovesFileAside) {
  std::string path = TempPath("damaged.json");
  ASSERT_TRUE(WriteFileAtomic(path, "garbage").ok());
  Result<std::string> moved = QuarantineFile(path);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, path + ".corrupt");
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(*ReadFileToString(*moved), "garbage");
  std::filesystem::remove(*moved);
}

TEST(QuarantineTest, RepeatedQuarantinesKeepEveryCopy) {
  // Recompute-after-corruption can corrupt again; each quarantine must
  // pick a fresh name instead of clobbering the earlier evidence.
  std::string path = TempPath("repeat.json");
  ASSERT_TRUE(WriteFileAtomic(path, "damage one").ok());
  Result<std::string> first = QuarantineFile(path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, path + ".corrupt");

  ASSERT_TRUE(WriteFileAtomic(path, "damage two").ok());
  Result<std::string> second = QuarantineFile(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, path + ".corrupt.1");

  ASSERT_TRUE(WriteFileAtomic(path, "damage three").ok());
  Result<std::string> third = QuarantineFile(path);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, path + ".corrupt.2");

  EXPECT_EQ(*ReadFileToString(*first), "damage one");
  EXPECT_EQ(*ReadFileToString(*second), "damage two");
  EXPECT_EQ(*ReadFileToString(*third), "damage three");
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove(*first);
  std::filesystem::remove(*second);
  std::filesystem::remove(*third);
}

TEST(QuarantineTest, MissingFileIsIoError) {
  Result<std::string> moved = QuarantineFile(TempPath("never_existed"));
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kIoError);
}

TEST(SafeIoFaultTest, CacheWriteSiteFails) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("cache_write:1", 1).ok());
  std::string path = TempPath("faulted.txt");
  Status status = WriteFileAtomic(path, "never lands");
  FaultInjector::Global().Reset();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SafeIoFaultTest, CacheReadSiteFails) {
  std::string path = TempPath("read_faulted.txt");
  ASSERT_TRUE(WriteChecksummedFile(path, "body").ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("cache_read:1", 1).ok());
  Result<std::string> body = ReadChecksummedFile(path);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kIoError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fairclean
