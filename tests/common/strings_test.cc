#include "common/strings.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, JoinSingle) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(StringsTest, JoinMultiple) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitBasic) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitNoSeparator) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_FALSE(StartsWith("bar", "foo"));
}

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string long_arg(500, 'y');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace fairclean
