#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ThreadPoolTest, SubmittedTasksDeliverResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionIsRethrownAtGetNotOnTheWorker) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survived the throw and keeps serving tasks.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorRunsEverySubmittedTask) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&executed]() { ++executed; }));
    }
    // Destroy the pool while tasks are likely still queued.
  }
  EXPECT_EQ(executed.load(), 32);
  for (std::future<void>& future : futures) {
    future.get();  // all futures are satisfied, none broken
  }
}

TEST(ThreadPoolTest, DestructorDrainsWhileSubmittersRace) {
  // Shutdown under pressure: four submitter threads race each other (and
  // the workers) feeding the pool, and the destructor runs the moment the
  // last submit lands — with a deep backlog still queued, since two
  // workers can't keep up with four submitters of slow-ish tasks. Every
  // future handed out must be satisfied; nothing may hang or be dropped.
  constexpr int kPerSubmitter = 64;
  std::atomic<int> executed{0};
  std::vector<std::vector<std::future<int>>> futures(4);
  {
    ThreadPool pool(2);
    std::vector<std::thread> submitters;
    for (size_t s = 0; s < futures.size(); ++s) {
      submitters.emplace_back([&pool, &executed, &futures, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          futures[s].push_back(pool.Submit([&executed] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            return ++executed;
          }));
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    // Destructor runs here, with most of the 256 tasks still queued.
  }
  EXPECT_EQ(executed.load(),
            static_cast<int>(futures.size()) * kPerSubmitter);
  for (std::vector<std::future<int>>& per_thread : futures) {
    for (std::future<int>& future : per_thread) {
      EXPECT_GT(future.get(), 0);  // drain-all destructor: none broken
    }
  }
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotPoisonLaterWork) {
  // A batch where half the tasks throw: the pool's workers must survive
  // every throw and the destructor must still drain the rest.
  std::atomic<int> completed{0};
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 48; ++i) {
      futures.push_back(pool.Submit([&completed, i]() -> int {
        if (i % 2 == 0) throw std::runtime_error("boom");
        ++completed;
        return i;
      }));
    }
  }
  EXPECT_EQ(completed.load(), 24);
  for (int i = 0; i < 48; ++i) {
    if (i % 2 == 0) {
      EXPECT_THROW(futures[i].get(), std::runtime_error);
    } else {
      EXPECT_EQ(futures[i].get(), i);
    }
  }
}

TEST(ThreadPoolTest, OnWorkerThreadIsTrueOnlyInsideTasks) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  EXPECT_TRUE(pool.Submit([]() { return ThreadPool::OnWorkerThread(); }).get());
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ASSERT_EQ(setenv("FAIRCLEAN_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ASSERT_EQ(unsetenv("FAIRCLEAN_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(InvokeWithStatusCaptureTest, PassesStatusesAndCapturesExceptions) {
  EXPECT_TRUE(InvokeWithStatusCapture([]() { return Status::OK(); }).ok());
  Status failed = InvokeWithStatusCapture(
      []() { return Status::InvalidArgument("bad"); });
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  Status thrown = InvokeWithStatusCapture(
      []() -> Status { throw std::runtime_error("kaput"); });
  EXPECT_EQ(thrown.code(), StatusCode::kInternal);
  EXPECT_NE(thrown.message().find("kaput"), std::string::npos);
}

TEST(RunIndexedTest, ReturnsResultsInIndexOrder) {
  ThreadPool pool(4);
  std::vector<int> results =
      RunIndexed(&pool, 100, [](size_t i) { return static_cast<int>(i) * 2; });
  ASSERT_EQ(results.size(), 100u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 2);
  }
}

TEST(RunIndexedTest, NullPoolRunsInline) {
  std::vector<size_t> results =
      RunIndexed(nullptr, 5, [](size_t i) { return i; });
  EXPECT_EQ(results, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RunIndexedTest, DrainsAllTasksBeforeRethrowingTheFirstError) {
  ThreadPool pool(4);
  std::atomic<int> invoked{0};
  EXPECT_THROW(RunIndexed(&pool, 16,
                          [&invoked](size_t i) -> int {
                            ++invoked;
                            if (i == 3) throw std::runtime_error("boom");
                            return static_cast<int>(i);
                          }),
               std::runtime_error);
  // Every task ran: references captured by the callable stayed valid for
  // the whole fan-out even though one task failed.
  EXPECT_EQ(invoked.load(), 16);
}

}  // namespace
}  // namespace fairclean
