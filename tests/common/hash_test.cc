#include "common/hash.h"

#include <string>

#include "gtest/gtest.h"

namespace fairclean {
namespace {

TEST(Fnv1a64Test, KnownVectors) {
  // Published FNV-1a 64-bit reference values.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, IncrementalMatchesOneShot) {
  uint64_t partial = Fnv1a64("foo");
  EXPECT_EQ(Fnv1a64("bar", partial), Fnv1a64("foobar"));
}

TEST(Sha256Test, KnownVectors) {
  // FIPS 180-4 / NIST example vectors.
  EXPECT_EQ(
      Sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56-byte padding split and the 64-byte block size
  // exercise both one- and two-block finalization paths.
  std::string a55(55, 'a');
  std::string a56(56, 'a');
  std::string a64(64, 'a');
  EXPECT_EQ(
      Sha256Hex(a55),
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(
      Sha256Hex(a56),
      "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  EXPECT_EQ(
      Sha256Hex(a64),
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, DistinguishesNearbyInputs) {
  EXPECT_NE(Sha256Hex("suite-report-a"), Sha256Hex("suite-report-b"));
}

}  // namespace
}  // namespace fairclean
