#include "common/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"

namespace fairclean {
namespace {

class FaultInjectionTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedByDefault) {
  FaultInjector::Global().Reset();
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_FALSE(FaultInjector::Global().ShouldFire("cache_write"));
  EXPECT_TRUE(FaultInjector::Global().Inject("cache_write").ok());
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:0", 1).ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(FaultInjector::Global().ShouldFire("numeric"));
  }
  EXPECT_EQ(FaultInjector::Global().fires("numeric"), 0u);
}

TEST_F(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1", 1).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FaultInjector::Global().ShouldFire("numeric"));
  }
  EXPECT_EQ(FaultInjector::Global().fires("numeric"), 100u);
}

TEST_F(FaultInjectionTest, MaxFiresBoundsTransientFault) {
  ASSERT_TRUE(FaultInjector::Global().Configure("cache_write:1:2", 1).ok());
  EXPECT_TRUE(FaultInjector::Global().ShouldFire("cache_write"));
  EXPECT_TRUE(FaultInjector::Global().ShouldFire("cache_write"));
  // Exhausted: the fault becomes transient and later attempts succeed.
  EXPECT_FALSE(FaultInjector::Global().ShouldFire("cache_write"));
  EXPECT_EQ(FaultInjector::Global().fires("cache_write"), 2u);
}

TEST_F(FaultInjectionTest, SameSeedSameFiringSequence) {
  auto draw = [](uint64_t seed) {
    FaultInjector::Global().Reset();
    EXPECT_TRUE(
        FaultInjector::Global().Configure("numeric:0.5", seed).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FaultInjector::Global().ShouldFire("numeric"));
    }
    return fired;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST_F(FaultInjectionTest, SitesDrawIndependently) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("cache_read:0.5,cache_write:0.5", 7)
                  .ok());
  // Interleaving the second site's draws must not change the first's
  // sequence.
  std::vector<bool> interleaved;
  for (int i = 0; i < 32; ++i) {
    interleaved.push_back(FaultInjector::Global().ShouldFire("cache_read"));
    FaultInjector::Global().ShouldFire("cache_write");
  }
  FaultInjector::Global().Reset();
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("cache_read:0.5,cache_write:0.5", 7)
                  .ok());
  std::vector<bool> solo;
  for (int i = 0; i < 32; ++i) {
    solo.push_back(FaultInjector::Global().ShouldFire("cache_read"));
  }
  EXPECT_EQ(interleaved, solo);
}

TEST_F(FaultInjectionTest, InjectReturnsIoError) {
  ASSERT_TRUE(FaultInjector::Global().Configure("cache_read:1", 1).ok());
  Status status = FaultInjector::Global().Inject("cache_read");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(FaultInjectionTest, CorruptScoreYieldsNaN) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1:1", 1).ok());
  EXPECT_TRUE(
      std::isnan(FaultInjector::Global().CorruptScore("numeric", 0.5)));
  // max_fires exhausted: value passes through untouched.
  EXPECT_EQ(FaultInjector::Global().CorruptScore("numeric", 0.5), 0.5);
}

TEST_F(FaultInjectionTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Global().Configure("numeric", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure(":0.5", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("numeric:abc", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("numeric:1.5", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("numeric:-0.1", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("numeric:1:xyz", 1).ok());
}

TEST_F(FaultInjectionTest, RejectsUnknownSites) {
  // A typo'd site would arm nothing and silently turn a chaos test into a
  // false green, so Configure must fail fast and name the known sites.
  Status status = FaultInjector::Global().Configure("cache_wirte:0.5", 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown fault site \"cache_wirte\""),
            std::string::npos);
  EXPECT_NE(status.message().find("cache_write"), std::string::npos);
  // A bad entry anywhere in the list rejects the whole spec and arms
  // nothing, including the valid entries before it.
  EXPECT_FALSE(
      FaultInjector::Global().Configure("numeric:1,bogus:0.5", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(FaultInjectionTest, KnownSitesCoverServingLifecycle) {
  const std::vector<std::string>& sites = FaultInjector::KnownSites();
  for (const char* site : {"socket_read", "socket_write", "request_parse",
                           "worker_stall", "cache_read", "cache_write"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
    ASSERT_TRUE(FaultInjector::Global()
                    .Configure(std::string(site) + ":1", 1)
                    .ok());
    EXPECT_TRUE(FaultInjector::Global().ShouldFire(site));
  }
}

TEST_F(FaultInjectionTest, EmptySpecDisarms) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1", 1).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(FaultInjectionTest, ConfigureFromEnvReadsKnobs) {
  setenv("FAIRCLEAN_FAULTS", "csv_parse:1", 1);
  setenv("FAIRCLEAN_FAULT_SEED", "9", 1);
  EXPECT_TRUE(FaultInjector::Global().ConfigureFromEnv().ok());
  EXPECT_TRUE(FaultInjector::Global().ShouldFire("csv_parse"));

  setenv("FAIRCLEAN_FAULTS", "csv_parse:nope", 1);
  EXPECT_FALSE(FaultInjector::Global().ConfigureFromEnv().ok());
  unsetenv("FAIRCLEAN_FAULTS");
  unsetenv("FAIRCLEAN_FAULT_SEED");
}

TEST_F(FaultInjectionTest, CsvParseSiteFailsTheParser) {
  ASSERT_TRUE(FaultInjector::Global().Configure("csv_parse:1:1", 1).ok());
  Result<DataFrame> frame = ReadCsvFromString("a,b\n1,2\n");
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
  // The fault was transient (max_fires=1): the retry parses fine.
  EXPECT_TRUE(ReadCsvFromString("a,b\n1,2\n").ok());
}

}  // namespace
}  // namespace fairclean
