#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "NotImplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, UnavailableIsItsOwnCode) {
  Status status = Status::Unavailable("queue full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.ToString(), "Unavailable: queue full");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Status FailingFunction() { return Status::IoError("disk"); }

Status PropagatingFunction() {
  FC_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  Status status = PropagatingFunction();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::InvalidArgument("no");
  return 7;
}

Result<int> ConsumeValue(bool fail) {
  FC_ASSIGN_OR_RETURN(int value, ProduceValue(fail));
  return value * 2;
}

TEST(StatusMacroTest, AssignOrReturnSuccess) {
  Result<int> result = ConsumeValue(false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 14);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  Result<int> result = ConsumeValue(true);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairclean
