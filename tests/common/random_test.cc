#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit over 1000 draws
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / kDraws;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Categorical(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / kDraws, 0.75, 0.02);
}

TEST(RngTest, CategoricalSingleOutcome) {
  Rng rng(19);
  EXPECT_EQ(rng.Categorical({5.0}), 0u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(21);
  std::vector<size_t> perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, SampleWithoutReplacementCapsAtN) {
  Rng rng(25);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng parent(31);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (child_a.Uniform() != child_b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.5), 0.0);
  }
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(41);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

}  // namespace
}  // namespace fairclean
