#include "common/exec_mode.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ExecModeTest, ParsesEveryKnownMode) {
  EXPECT_EQ(ParseExecMode("naive").ValueOrDie(), ExecMode::kNaive);
  EXPECT_EQ(ParseExecMode("shared").ValueOrDie(), ExecMode::kShared);
  EXPECT_EQ(ParseExecMode("fused").ValueOrDie(), ExecMode::kFused);
}

TEST(ExecModeTest, NamesRoundTrip) {
  for (ExecMode mode :
       {ExecMode::kNaive, ExecMode::kShared, ExecMode::kFused}) {
    EXPECT_EQ(ParseExecMode(ExecModeName(mode)).ValueOrDie(), mode);
  }
}

TEST(ExecModeTest, RejectsUnknownTokenListingKnownModes) {
  Result<ExecMode> parsed = ParseExecMode("turbo");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // The error must name the knob and every legal token, FAIRCLEAN_STORE
  // style, so a typo'd environment is self-explaining.
  std::string message = parsed.status().ToString();
  EXPECT_NE(message.find("FAIRCLEAN_EXEC_MODE"), std::string::npos);
  EXPECT_NE(message.find("naive"), std::string::npos);
  EXPECT_NE(message.find("shared"), std::string::npos);
  EXPECT_NE(message.find("fused"), std::string::npos);
  EXPECT_NE(message.find("turbo"), std::string::npos);
}

TEST(ExecModeTest, ParseIsStrict) {
  // Exact lowercase tokens only: no case folding, trimming, or prefixes.
  EXPECT_FALSE(ParseExecMode("Fused").ok());
  EXPECT_FALSE(ParseExecMode("FUSED").ok());
  EXPECT_FALSE(ParseExecMode(" fused").ok());
  EXPECT_FALSE(ParseExecMode("fused ").ok());
  EXPECT_FALSE(ParseExecMode("fusedx").ok());
  EXPECT_FALSE(ParseExecMode("").ok());
}

TEST(ExecModeTest, EnvDefaultsToFusedAndParsesStrictly) {
  ::unsetenv("FAIRCLEAN_EXEC_MODE");
  EXPECT_EQ(ExecModeFromEnv().ValueOrDie(), ExecMode::kFused);

  ::setenv("FAIRCLEAN_EXEC_MODE", "naive", 1);
  EXPECT_EQ(ExecModeFromEnv().ValueOrDie(), ExecMode::kNaive);

  ::setenv("FAIRCLEAN_EXEC_MODE", "warp", 1);
  Result<ExecMode> parsed = ExecModeFromEnv();
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);

  ::unsetenv("FAIRCLEAN_EXEC_MODE");
}

}  // namespace
}  // namespace fairclean
