#include "common/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(EnvTest, UnsetReturnsDefault) {
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  EXPECT_EQ(GetEnvString("FAIRCLEAN_TEST_KNOB", "dflt"), "dflt");
}

TEST(EnvTest, ParsesInteger) {
  setenv("FAIRCLEAN_TEST_KNOB", "123", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 123);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ParsesNegativeInteger) {
  setenv("FAIRCLEAN_TEST_KNOB", "-7", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), -7);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, GarbageFallsBackToDefault) {
  setenv("FAIRCLEAN_TEST_KNOB", "12abc", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  setenv("FAIRCLEAN_TEST_KNOB", "", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ParsesDouble) {
  setenv("FAIRCLEAN_TEST_KNOB", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 1.5);
  setenv("FAIRCLEAN_TEST_KNOB", "-2e-3", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), -2e-3);
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
}

TEST(EnvTest, DoubleGarbageAndNonFiniteFallBackToDefault) {
  setenv("FAIRCLEAN_TEST_KNOB", "1.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  setenv("FAIRCLEAN_TEST_KNOB", "inf", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  setenv("FAIRCLEAN_TEST_KNOB", "nan", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ReadsString) {
  setenv("FAIRCLEAN_TEST_KNOB", "value", 1);
  EXPECT_EQ(GetEnvString("FAIRCLEAN_TEST_KNOB", "dflt"), "value");
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

}  // namespace
}  // namespace fairclean
