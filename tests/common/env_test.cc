#include "common/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(EnvTest, UnsetReturnsDefault) {
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  EXPECT_EQ(GetEnvString("FAIRCLEAN_TEST_KNOB", "dflt"), "dflt");
}

TEST(EnvTest, ParsesInteger) {
  setenv("FAIRCLEAN_TEST_KNOB", "123", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 123);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ParsesNegativeInteger) {
  setenv("FAIRCLEAN_TEST_KNOB", "-7", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), -7);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, GarbageFallsBackToDefault) {
  setenv("FAIRCLEAN_TEST_KNOB", "12abc", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  setenv("FAIRCLEAN_TEST_KNOB", "", 1);
  EXPECT_EQ(GetEnvInt64("FAIRCLEAN_TEST_KNOB", 42), 42);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ParsesDouble) {
  setenv("FAIRCLEAN_TEST_KNOB", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 1.5);
  setenv("FAIRCLEAN_TEST_KNOB", "-2e-3", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), -2e-3);
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
}

TEST(EnvTest, DoubleGarbageAndNonFiniteFallBackToDefault) {
  setenv("FAIRCLEAN_TEST_KNOB", "1.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  setenv("FAIRCLEAN_TEST_KNOB", "inf", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  setenv("FAIRCLEAN_TEST_KNOB", "nan", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("FAIRCLEAN_TEST_KNOB", 9.0), 9.0);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, ReadsString) {
  setenv("FAIRCLEAN_TEST_KNOB", "value", 1);
  EXPECT_EQ(GetEnvString("FAIRCLEAN_TEST_KNOB", "dflt"), "value");
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

// The strict parsers (GetEnvCount / GetEnvBudgetSeconds) back the knobs
// where a silent fallback would run a whole suite or server at an
// unintended scale: they error instead of defaulting.

TEST(EnvTest, CountParsesAndDefaults) {
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_EQ(GetEnvCount("FAIRCLEAN_TEST_KNOB", 42).ValueOrDie(), 42);
  setenv("FAIRCLEAN_TEST_KNOB", "", 1);
  EXPECT_EQ(GetEnvCount("FAIRCLEAN_TEST_KNOB", 42).ValueOrDie(), 42);
  setenv("FAIRCLEAN_TEST_KNOB", "123", 1);
  EXPECT_EQ(GetEnvCount("FAIRCLEAN_TEST_KNOB", 42).ValueOrDie(), 123);
  setenv("FAIRCLEAN_TEST_KNOB", "0", 1);
  EXPECT_EQ(GetEnvCount("FAIRCLEAN_TEST_KNOB", 42).ValueOrDie(), 0);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, CountRejectsTrailingGarbage) {
  setenv("FAIRCLEAN_TEST_KNOB", "12abc", 1);
  Result<int64_t> value = GetEnvCount("FAIRCLEAN_TEST_KNOB", 42);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(value.status().message(),
            "FAIRCLEAN_TEST_KNOB must be a non-negative integer, "
            "got \"12abc\"");
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, CountRejectsNegative) {
  setenv("FAIRCLEAN_TEST_KNOB", "-7", 1);
  Result<int64_t> value = GetEnvCount("FAIRCLEAN_TEST_KNOB", 42);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().message(),
            "FAIRCLEAN_TEST_KNOB must be non-negative, got \"-7\"");
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, BudgetParsesAndDefaults) {
  unsetenv("FAIRCLEAN_TEST_KNOB");
  EXPECT_DOUBLE_EQ(
      GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0).ValueOrDie(), 9.0);
  setenv("FAIRCLEAN_TEST_KNOB", "3.5", 1);
  EXPECT_DOUBLE_EQ(
      GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0).ValueOrDie(), 3.5);
  setenv("FAIRCLEAN_TEST_KNOB", "0", 1);
  EXPECT_DOUBLE_EQ(
      GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0).ValueOrDie(), 0.0);
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

TEST(EnvTest, BudgetRejectsGarbageNonFiniteAndNegative) {
  setenv("FAIRCLEAN_TEST_KNOB", "3.5x", 1);
  Result<double> garbage = GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().message(),
            "FAIRCLEAN_TEST_KNOB must be a number of seconds, "
            "got \"3.5x\"");

  setenv("FAIRCLEAN_TEST_KNOB", "inf", 1);
  Result<double> inf = GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0);
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().message(),
            "FAIRCLEAN_TEST_KNOB must be finite, got \"inf\"");

  setenv("FAIRCLEAN_TEST_KNOB", "nan", 1);
  EXPECT_FALSE(GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0).ok());

  setenv("FAIRCLEAN_TEST_KNOB", "-1.5", 1);
  Result<double> negative = GetEnvBudgetSeconds("FAIRCLEAN_TEST_KNOB", 9.0);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().message(),
            "FAIRCLEAN_TEST_KNOB must be non-negative, got \"-1.5\"");
  unsetenv("FAIRCLEAN_TEST_KNOB");
}

}  // namespace
}  // namespace fairclean
