#include "detect/mislabel_detector.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace fairclean {
namespace {

// A cleanly separable two-blob problem with `n_flipped` labels flipped at
// known positions — confident learning should recover most of the flips.
struct NoisyProblem {
  DataFrame frame;
  std::vector<size_t> flipped_rows;
};

NoisyProblem MakeNoisyProblem(size_t n, size_t n_flipped, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n), x2(n), label(n);
  for (size_t i = 0; i < n; ++i) {
    int y = rng.Bernoulli(0.5) ? 1 : 0;
    double center = y == 1 ? 3.0 : -3.0;
    x1[i] = rng.Normal(center, 1.0);
    x2[i] = rng.Normal(0.0, 1.0);
    label[i] = y;
  }
  NoisyProblem problem;
  for (size_t i = 0; i < n_flipped; ++i) {
    size_t row = i * (n / n_flipped);
    label[row] = 1.0 - label[row];
    problem.flipped_rows.push_back(row);
  }
  EXPECT_TRUE(problem.frame.AddColumn(Column::Numeric("x1", std::move(x1)))
                  .ok());
  EXPECT_TRUE(problem.frame.AddColumn(Column::Numeric("x2", std::move(x2)))
                  .ok());
  EXPECT_TRUE(
      problem.frame.AddColumn(Column::Numeric("label", std::move(label)))
          .ok());
  return problem;
}

DetectionContext MakeContext() {
  DetectionContext context;
  context.inspect_columns = {"x1", "x2"};
  context.label_column = "label";
  return context;
}

TEST(MislabelDetectorTest, RecoversPlantedFlips) {
  NoisyProblem problem = MakeNoisyProblem(500, 25, 1);
  MislabelDetector detector;
  Rng rng(2);
  Result<ErrorMask> mask = detector.Detect(problem.frame, MakeContext(), &rng);
  ASSERT_TRUE(mask.ok());
  size_t recovered = 0;
  for (size_t row : problem.flipped_rows) {
    if (mask->RowFlagged(row)) ++recovered;
  }
  // At least 80% of planted flips found on this easy problem.
  EXPECT_GE(recovered, 20u);
}

TEST(MislabelDetectorTest, FewFalsePositivesOnSeparableData) {
  NoisyProblem problem = MakeNoisyProblem(500, 25, 3);
  MislabelDetector detector;
  Rng rng(4);
  Result<ErrorMask> mask = detector.Detect(problem.frame, MakeContext(), &rng);
  ASSERT_TRUE(mask.ok());
  size_t flagged = mask->FlaggedRowCount();
  // Total flags should be in the ballpark of the planted 25, not hundreds.
  EXPECT_LE(flagged, 60u);
  EXPECT_GE(flagged, 15u);
}

TEST(MislabelDetectorTest, CleanSeparableDataFlagsLittle) {
  NoisyProblem problem = MakeNoisyProblem(400, 0, 5);
  MislabelDetector detector;
  Rng rng(6);
  Result<ErrorMask> mask = detector.Detect(problem.frame, MakeContext(), &rng);
  ASSERT_TRUE(mask.ok());
  EXPECT_LE(mask->FlaggedRowCount(), 12u);  // <= 3%
}

TEST(MislabelDetectorTest, FlagsAreRowLevel) {
  NoisyProblem problem = MakeNoisyProblem(300, 10, 7);
  MislabelDetector detector;
  Rng rng(8);
  Result<ErrorMask> mask = detector.Detect(problem.frame, MakeContext(), &rng);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->FlaggedCellCount(), 0u);
}

TEST(MislabelDetectorTest, DeterministicGivenSeed) {
  NoisyProblem problem = MakeNoisyProblem(300, 10, 9);
  MislabelDetector detector;
  Rng rng_a(10);
  Rng rng_b(10);
  Result<ErrorMask> a = detector.Detect(problem.frame, MakeContext(), &rng_a);
  Result<ErrorMask> b = detector.Detect(problem.frame, MakeContext(), &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t row = 0; row < problem.frame.num_rows(); ++row) {
    EXPECT_EQ(a->RowFlagged(row), b->RowFlagged(row));
  }
}

TEST(MislabelDetectorTest, RequiresLabelAndRng) {
  NoisyProblem problem = MakeNoisyProblem(100, 5, 11);
  MislabelDetector detector;
  DetectionContext no_label = MakeContext();
  no_label.label_column.clear();
  Rng rng(12);
  EXPECT_FALSE(detector.Detect(problem.frame, no_label, &rng).ok());
  EXPECT_FALSE(detector.Detect(problem.frame, MakeContext(), nullptr).ok());
}

TEST(MislabelDetectorTest, RejectsSingleClassLabels) {
  DataFrame frame;
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("x1", {1, 2, 3, 4, 5, 6})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("x2", {1, 2, 3, 4, 5, 6})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("label", {1, 1, 1, 1, 1, 1})).ok());
  MislabelDetector detector;
  Rng rng(13);
  EXPECT_FALSE(detector.Detect(frame, MakeContext(), &rng).ok());
}

TEST(MislabelDetectorTest, FoldParallelismDoesNotChangeTheMask) {
  // Arm the shared fold pool before its first (lazily cached) use. ctest
  // runs each test in its own process, so this sticks; under a monolithic
  // run the pool may already be fixed and both sides just run inline.
  ASSERT_EQ(setenv("FAIRCLEAN_THREADS", "4", 1), 0);
  NoisyProblem problem = MakeNoisyProblem(200, 8, 21);
  MislabelDetector detector;

  Rng rng_pooled(22);
  Result<ErrorMask> pooled =
      detector.Detect(problem.frame, MakeContext(), &rng_pooled);

  // Calling from inside a pool task forces the inline (sequential) fold
  // path via OnWorkerThread — the reference the pooled run must match.
  Rng rng_inline(22);
  ThreadPool probe(1);
  Result<ErrorMask> inlined =
      probe
          .Submit([&]() {
            return detector.Detect(problem.frame, MakeContext(), &rng_inline);
          })
          .get();

  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(inlined.ok());
  ASSERT_EQ(pooled->num_rows(), inlined->num_rows());
  for (size_t i = 0; i < pooled->num_rows(); ++i) {
    EXPECT_EQ(pooled->RowFlagged(i), inlined->RowFlagged(i)) << "row " << i;
  }
  ASSERT_EQ(unsetenv("FAIRCLEAN_THREADS"), 0);
}

}  // namespace
}  // namespace fairclean
