// Property-style sweep over all five detection strategies: shared
// behavioural contract (valid mask dimensions, determinism, monotone
// behaviour under obvious corruptions).

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "datasets/generator.h"
#include "detect/detector.h"

namespace fairclean {
namespace {

class DetectorContractTest : public testing::TestWithParam<std::string> {
 protected:
  static const GeneratedDataset& Dataset() {
    static const GeneratedDataset* dataset = [] {
      Rng rng(55);
      // german is small and has every error type.
      return new GeneratedDataset(
          MakeDataset("german", 800, &rng).ValueOrDie());
    }();
    return *dataset;
  }

  DetectionContext Context() {
    DetectionContext context;
    context.inspect_columns = Dataset().spec.FeatureColumns(Dataset().frame);
    context.label_column = Dataset().spec.label;
    return context;
  }
};

TEST_P(DetectorContractTest, MaskMatchesFrameDimensions) {
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName(GetParam()).ValueOrDie();
  Rng rng(56);
  Result<ErrorMask> mask =
      detector->Detect(Dataset().frame, Context(), &rng);
  ASSERT_TRUE(mask.ok()) << mask.status().ToString();
  EXPECT_EQ(mask->num_rows(), Dataset().frame.num_rows());
}

TEST_P(DetectorContractTest, DeterministicGivenRng) {
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName(GetParam()).ValueOrDie();
  Rng rng_a(57);
  Rng rng_b(57);
  ErrorMask a =
      detector->Detect(Dataset().frame, Context(), &rng_a).ValueOrDie();
  ErrorMask b =
      detector->Detect(Dataset().frame, Context(), &rng_b).ValueOrDie();
  for (size_t row = 0; row < a.num_rows(); ++row) {
    EXPECT_EQ(a.RowFlagged(row), b.RowFlagged(row));
  }
}

TEST_P(DetectorContractTest, FlagCountWithinFrame) {
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName(GetParam()).ValueOrDie();
  Rng rng(58);
  ErrorMask mask =
      detector->Detect(Dataset().frame, Context(), &rng).ValueOrDie();
  EXPECT_LE(mask.FlaggedRowCount(), mask.num_rows());
}

TEST_P(DetectorContractTest, NameRoundTripsThroughRegistry) {
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName(GetParam()).ValueOrDie();
  EXPECT_EQ(detector->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorContractTest,
                         testing::ValuesIn(AllDetectorNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fairclean
