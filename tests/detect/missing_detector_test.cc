#include "detect/missing_detector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(Column::Numeric("num", {1.0, std::nan(""), 3.0})).ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::Categorical(
                      "cat", {0, 1, Column::kMissingCode}, {"a", "b"}))
                  .ok());
  EXPECT_TRUE(frame.AddColumn(Column::Numeric("full", {1.0, 2.0, 3.0})).ok());
  return frame;
}

TEST(MissingDetectorTest, FlagsExactlyMissingCells) {
  DataFrame frame = MakeFrame();
  MissingValueDetector detector;
  DetectionContext context;
  context.inspect_columns = {"num", "cat", "full"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->CellFlagged("num", 1));
  EXPECT_TRUE(mask->CellFlagged("cat", 2));
  EXPECT_FALSE(mask->CellFlagged("num", 0));
  EXPECT_FALSE(mask->CellFlagged("full", 0));
  EXPECT_EQ(mask->FlaggedCellCount(), 2u);
  EXPECT_EQ(mask->FlaggedRowCount(), 2u);
  EXPECT_FALSE(mask->RowFlagged(0));
}

TEST(MissingDetectorTest, RespectsInspectColumns) {
  DataFrame frame = MakeFrame();
  MissingValueDetector detector;
  DetectionContext context;
  context.inspect_columns = {"full"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->FlaggedRowCount(), 0u);
}

TEST(MissingDetectorTest, UnknownColumnFails) {
  DataFrame frame = MakeFrame();
  MissingValueDetector detector;
  DetectionContext context;
  context.inspect_columns = {"ghost"};
  EXPECT_FALSE(detector.Detect(frame, context, nullptr).ok());
}

TEST(MissingDetectorTest, Name) {
  EXPECT_EQ(MissingValueDetector().name(), "missing_values");
}

}  // namespace
}  // namespace fairclean
