#include "detect/outlier_detectors.h"

#include <cmath>

#include <gtest/gtest.h>

#include "detect/detector.h"

namespace fairclean {
namespace {

// 100 well-behaved values plus one enormous spike at row 100.
DataFrame MakeSpikedFrame() {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(10.0 + 0.1 * (i % 10));
  }
  values.push_back(1e6);
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  std::vector<int32_t> codes(101, 0);
  EXPECT_TRUE(
      frame.AddColumn(Column::Categorical("c", std::move(codes), {"a"})).ok());
  return frame;
}

DetectionContext MakeContext() {
  DetectionContext context;
  context.inspect_columns = {"x", "c"};
  return context;
}

TEST(SdOutlierDetectorTest, FlagsTheSpike) {
  DataFrame frame = MakeSpikedFrame();
  SdOutlierDetector detector(3.0);
  Result<ErrorMask> mask = detector.Detect(frame, MakeContext(), nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->CellFlagged("x", 100));
  EXPECT_EQ(mask->FlaggedRowCount(), 1u);
}

TEST(SdOutlierDetectorTest, NoFlagsOnTightData) {
  DataFrame frame;
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(5.0 + 0.01 * (i % 5));
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  SdOutlierDetector detector(3.0);
  DetectionContext context;
  context.inspect_columns = {"x"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->FlaggedRowCount(), 0u);
}

TEST(SdOutlierDetectorTest, SkipsMissingValues) {
  DataFrame frame;
  std::vector<double> values = {1.0, 1.1, 0.9, 1.0, std::nan(""), 1.05,
                                0.95, 1.0, 1.1, 0.9};
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  SdOutlierDetector detector(3.0);
  DetectionContext context;
  context.inspect_columns = {"x"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE(mask->CellFlagged("x", 4));
}

TEST(IqrOutlierDetectorTest, FlagsOutsideWhiskers) {
  // Values 1..100 plus 1000: p25=25.75, p75=75.25, iqr=49.5,
  // bounds [-48.5, 149.5] -> only 1000 flagged.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  values.push_back(1000.0);
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  IqrOutlierDetector detector(1.5);
  DetectionContext context;
  context.inspect_columns = {"x"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->CellFlagged("x", 100));
  EXPECT_EQ(mask->FlaggedRowCount(), 1u);
}

TEST(IqrOutlierDetectorTest, ZeroIqrFlagsEverythingOffMedianBand) {
  // Binary-ish column where >75% of values are 0: iqr = 0, so every 1 is
  // outside [0, 0] — the paper's over-flagging pathology of the IQR rule.
  std::vector<double> values(90, 0.0);
  for (int i = 0; i < 10; ++i) values.push_back(1.0);
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  IqrOutlierDetector detector(1.5);
  DetectionContext context;
  context.inspect_columns = {"x"};
  Result<ErrorMask> mask = detector.Detect(frame, context, nullptr);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->FlaggedRowCount(), 10u);
}

TEST(IqrFlagsSupersetOfLooseSd, IqrIsMoreAggressiveOnHeavyTails) {
  // Lognormal-ish tail: IQR typically flags more than the 3-sd rule,
  // matching the paper's Section VI observation.
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.LogNormal(0.0, 1.0));
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("x", std::move(values))).ok());
  DetectionContext context;
  context.inspect_columns = {"x"};
  Result<ErrorMask> sd = SdOutlierDetector(3.0).Detect(frame, context, nullptr);
  Result<ErrorMask> iqr =
      IqrOutlierDetector(1.5).Detect(frame, context, nullptr);
  ASSERT_TRUE(sd.ok());
  ASSERT_TRUE(iqr.ok());
  EXPECT_GT(iqr->FlaggedRowCount(), sd->FlaggedRowCount());
}

TEST(IsolationForestDetectorTest, FlagsRowsNotCells) {
  DataFrame frame = MakeSpikedFrame();
  IsolationForestOutlierDetector detector;
  Rng rng(2);
  Result<ErrorMask> mask = detector.Detect(frame, MakeContext(), &rng);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->FlaggedCellCount(), 0u);
  EXPECT_GE(mask->FlaggedRowCount(), 1u);
  EXPECT_TRUE(mask->RowFlagged(100));  // the spike row is the clear anomaly
}

TEST(IsolationForestDetectorTest, RequiresRng) {
  DataFrame frame = MakeSpikedFrame();
  IsolationForestOutlierDetector detector;
  EXPECT_FALSE(detector.Detect(frame, MakeContext(), nullptr).ok());
}

TEST(DetectorRegistryTest, ResolvesAllNames) {
  for (const std::string& name : AllDetectorNames()) {
    Result<std::unique_ptr<ErrorDetector>> detector = DetectorByName(name);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ((*detector)->name(), name);
  }
  EXPECT_FALSE(DetectorByName("nonsense").ok());
}

TEST(DetectorRegistryTest, FiveStrategiesInPaperOrder) {
  std::vector<std::string> names = AllDetectorNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "missing_values");
  EXPECT_EQ(names[4], "mislabels");
}

}  // namespace
}  // namespace fairclean
