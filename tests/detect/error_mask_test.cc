#include "detect/error_mask.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ErrorMaskTest, StartsEmpty) {
  ErrorMask mask(5);
  EXPECT_EQ(mask.num_rows(), 5u);
  EXPECT_EQ(mask.FlaggedRowCount(), 0u);
  EXPECT_EQ(mask.FlaggedCellCount(), 0u);
  for (size_t row = 0; row < 5; ++row) {
    EXPECT_FALSE(mask.RowFlagged(row));
  }
}

TEST(ErrorMaskTest, CellFlagsPropagateToRows) {
  ErrorMask mask(4);
  mask.FlagCell("a", 1);
  mask.FlagCell("b", 1);
  mask.FlagCell("b", 3);
  EXPECT_TRUE(mask.CellFlagged("a", 1));
  EXPECT_FALSE(mask.CellFlagged("a", 0));
  EXPECT_FALSE(mask.CellFlagged("zzz", 0));
  EXPECT_TRUE(mask.RowFlagged(1));
  EXPECT_TRUE(mask.RowFlagged(3));
  EXPECT_FALSE(mask.RowFlagged(0));
  EXPECT_EQ(mask.FlaggedRowCount(), 2u);
  EXPECT_EQ(mask.FlaggedCellCount(), 3u);
}

TEST(ErrorMaskTest, RowFlagsIndependentOfCells) {
  ErrorMask mask(3);
  mask.FlagRow(2);
  EXPECT_TRUE(mask.RowFlagged(2));
  EXPECT_FALSE(mask.CellFlagged("a", 2));
  EXPECT_EQ(mask.FlaggedRowCount(), 1u);
  EXPECT_EQ(mask.FlaggedCellCount(), 0u);
}

TEST(ErrorMaskTest, FlaggedColumnsSorted) {
  ErrorMask mask(2);
  mask.FlagCell("zebra", 0);
  mask.FlagCell("alpha", 1);
  std::vector<std::string> columns = mask.FlaggedColumns();
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns[0], "alpha");
  EXPECT_EQ(columns[1], "zebra");
}

TEST(ErrorMaskTest, ColumnFlagsAccessor) {
  ErrorMask mask(3);
  mask.FlagCell("a", 1);
  const std::vector<bool>& flags = mask.ColumnFlags("a");
  ASSERT_EQ(flags.size(), 3u);
  EXPECT_TRUE(flags[1]);
  EXPECT_TRUE(mask.ColumnFlags("missing_column").empty());
}

TEST(ErrorMaskTest, DoubleFlaggingIsIdempotent) {
  ErrorMask mask(2);
  mask.FlagCell("a", 0);
  mask.FlagCell("a", 0);
  mask.FlagRow(0);
  EXPECT_EQ(mask.FlaggedCellCount(), 1u);
  EXPECT_EQ(mask.FlaggedRowCount(), 1u);
}

}  // namespace
}  // namespace fairclean
