// Property sweep: randomly generated frames survive a CSV round trip
// cell-for-cell, including missing values and awkward string content.

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/csv.h"

namespace fairclean {
namespace {

DataFrame RandomFrame(uint64_t seed) {
  Rng rng(seed);
  size_t rows = static_cast<size_t>(rng.UniformInt(1, 40));
  DataFrame frame;

  std::vector<double> numeric;
  for (size_t i = 0; i < rows; ++i) {
    if (rng.Bernoulli(0.15)) {
      numeric.push_back(std::nan(""));
    } else if (rng.Bernoulli(0.5)) {
      numeric.push_back(std::round(rng.Uniform(-1000.0, 1000.0)));
    } else {
      numeric.push_back(rng.Normal(0.0, 123.45));
    }
  }
  EXPECT_TRUE(frame.AddColumn(Column::Numeric("num", std::move(numeric)))
                  .ok());

  const std::vector<std::string> kPool = {
      "plain",        "with,comma", "with\"quote", "  spaced  ",
      "x",            "two\nlines", "crlf\r\nmix", "trailing\r",
      "\"quoted,\nall\""};
  std::vector<std::string> strings;
  for (size_t i = 0; i < rows; ++i) {
    if (rng.Bernoulli(0.2)) {
      strings.push_back("");
    } else {
      strings.push_back(kPool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(kPool.size()) - 1))]);
    }
  }
  EXPECT_TRUE(frame.AddColumn(Column::FromStrings("cat", strings)).ok());
  return frame;
}

class CsvRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, CellsSurviveRoundTrip) {
  DataFrame original = RandomFrame(GetParam());
  std::string serialized = WriteCsvToString(original);
  Result<DataFrame> reparsed = ReadCsvFromString(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->num_rows(), original.num_rows());
  ASSERT_EQ(reparsed->num_columns(), original.num_columns());
  for (size_t row = 0; row < original.num_rows(); ++row) {
    for (size_t col = 0; col < original.num_columns(); ++col) {
      EXPECT_EQ(original.column(col).CellToString(row),
                reparsed->column(col).CellToString(row))
          << "row " << row << " col " << col;
    }
  }
}

TEST_P(CsvRoundTripTest, MissingnessSurvivesRoundTrip) {
  DataFrame original = RandomFrame(GetParam() + 500);
  Result<DataFrame> reparsed =
      ReadCsvFromString(WriteCsvToString(original));
  ASSERT_TRUE(reparsed.ok());
  for (size_t col = 0; col < original.num_columns(); ++col) {
    EXPECT_EQ(original.column(col).MissingCount(),
              reparsed->column(col).MissingCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace fairclean
