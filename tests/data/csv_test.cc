#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(CsvTest, ParsesNumericAndCategorical) {
  Result<DataFrame> frame = ReadCsvFromString(
      "age,city,score\n30,amsterdam,1.5\n41,new york,2.25\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
  EXPECT_TRUE(frame->column("age").is_numeric());
  EXPECT_TRUE(frame->column("city").is_categorical());
  EXPECT_DOUBLE_EQ(frame->column("score").Value(1), 2.25);
  EXPECT_EQ(frame->column("city").CategoryName(frame->column("city").Code(1)),
            "new york");
}

TEST(CsvTest, MissingTokensBecomeMissingCells) {
  Result<DataFrame> frame =
      ReadCsvFromString("a,b\n1,x\n,\nNA,y\nNaN,NULL\n");
  ASSERT_TRUE(frame.ok());
  const Column& a = frame->column("a");
  EXPECT_TRUE(a.is_numeric());
  EXPECT_EQ(a.MissingCount(), 3u);
  const Column& b = frame->column("b");
  EXPECT_EQ(b.MissingCount(), 2u);
}

TEST(CsvTest, AllMissingColumnIsCategorical) {
  Result<DataFrame> frame = ReadCsvFromString("a\nNA\nNA\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->column("a").is_categorical());
  EXPECT_EQ(frame->column("a").MissingCount(), 2u);
}

TEST(CsvTest, BlankLinesAreSkipped) {
  Result<DataFrame> frame = ReadCsvFromString("a,b\n1,x\n\n2,y\n\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  Result<DataFrame> frame =
      ReadCsvFromString("name,v\n\"a,b\",1\n\"he said \"\"hi\"\"\",2\n");
  ASSERT_TRUE(frame.ok());
  const Column& name = frame->column("name");
  EXPECT_EQ(name.CategoryName(name.Code(0)), "a,b");
  EXPECT_EQ(name.CategoryName(name.Code(1)), "he said \"hi\"");
}

TEST(CsvTest, QuotedFieldsMayContainNewlines) {
  Result<DataFrame> frame =
      ReadCsvFromString("name,v\n\"line1\nline2\",1\nplain,2\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 2u);
  const Column& name = frame->column("name");
  EXPECT_EQ(name.CategoryName(name.Code(0)), "line1\nline2");
  EXPECT_EQ(name.CategoryName(name.Code(1)), "plain");
}

TEST(CsvTest, CrLfInsideQuotesIsFieldData) {
  // Outside quotes "\r\n" terminates the record; inside quotes both
  // characters belong to the field.
  Result<DataFrame> frame =
      ReadCsvFromString("name,v\r\n\"a\r\nb\",1\r\n");
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->num_rows(), 1u);
  const Column& name = frame->column("name");
  EXPECT_EQ(name.CategoryName(name.Code(0)), "a\r\nb");
}

TEST(CsvTest, RejectsRaggedRows) {
  Result<DataFrame> frame = ReadCsvFromString("a,b\n1\n");
  EXPECT_FALSE(frame.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ReadCsvFromString("").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ReadCsvFromString("a\n\"oops\n").ok());
}

TEST(CsvTest, HandlesCrLf) {
  Result<DataFrame> frame = ReadCsvFromString("a,b\r\n1,x\r\n");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(frame->column("a").Value(0), 1.0);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  Result<DataFrame> frame = ReadCsvFromString("a;b\n1;2\n", options);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->num_columns(), 2u);
}

TEST(CsvTest, RoundTripPreservesData) {
  Result<DataFrame> original = ReadCsvFromString(
      "age,city\n30,amsterdam\n,\"a,b\"\n41,\n");
  ASSERT_TRUE(original.ok());
  std::string serialized = WriteCsvToString(*original);
  Result<DataFrame> reparsed = ReadCsvFromString(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->num_rows(), original->num_rows());
  for (size_t row = 0; row < original->num_rows(); ++row) {
    for (size_t col = 0; col < original->num_columns(); ++col) {
      EXPECT_EQ(original->column(col).CellToString(row),
                reparsed->column(col).CellToString(row));
    }
  }
}

TEST(CsvTest, RoundTripPreservesEmbeddedNewlinesQuotesAndDelimiters) {
  // Write-then-read used to lose fields with embedded newlines: the writer
  // quoted them, but the reader split records on every '\n'.
  Result<DataFrame> original = ReadCsvFromString(
      "text,v\n"
      "\"first\nsecond\",1\n"
      "\"say \"\"hi\"\", now\",2\n"
      "\"tail\r\",3\n");
  ASSERT_TRUE(original.ok());
  ASSERT_EQ(original->num_rows(), 3u);
  std::string serialized = WriteCsvToString(*original);
  Result<DataFrame> reparsed = ReadCsvFromString(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->num_rows(), original->num_rows());
  for (size_t row = 0; row < original->num_rows(); ++row) {
    for (size_t col = 0; col < original->num_columns(); ++col) {
      EXPECT_EQ(original->column(col).CellToString(row),
                reparsed->column(col).CellToString(row));
    }
  }
  const Column& text = reparsed->column("text");
  EXPECT_EQ(text.CategoryName(text.Code(0)), "first\nsecond");
  EXPECT_EQ(text.CategoryName(text.Code(1)), "say \"hi\", now");
  EXPECT_EQ(text.CategoryName(text.Code(2)), "tail\r");
}

TEST(CsvTest, FileRoundTrip) {
  Result<DataFrame> frame = ReadCsvFromString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(frame.ok());
  std::string path = testing::TempDir() + "/fairclean_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*frame, path).ok());
  Result<DataFrame> loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/file.csv").ok());
}

}  // namespace
}  // namespace fairclean
