#include "data/dataframe.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeTestFrame() {
  DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(Column::Numeric("x", {1.0, 2.0, std::nan("")})).ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::Categorical("c", {0, 1, 0}, {"a", "b"}))
                  .ok());
  return frame;
}

TEST(DataFrameTest, AddColumnAndDimensions) {
  DataFrame frame = MakeTestFrame();
  EXPECT_EQ(frame.num_rows(), 3u);
  EXPECT_EQ(frame.num_columns(), 2u);
  EXPECT_TRUE(frame.HasColumn("x"));
  EXPECT_FALSE(frame.HasColumn("nope"));
}

TEST(DataFrameTest, AddDuplicateFails) {
  DataFrame frame = MakeTestFrame();
  Status status = frame.AddColumn(Column::Numeric("x", {1.0, 2.0, 3.0}));
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, AddLengthMismatchFails) {
  DataFrame frame = MakeTestFrame();
  Status status = frame.AddColumn(Column::Numeric("y", {1.0}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, ColumnAccessByName) {
  DataFrame frame = MakeTestFrame();
  EXPECT_DOUBLE_EQ(frame.column("x").Value(0), 1.0);
  Result<size_t> index = frame.ColumnIndex("c");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 1u);
  EXPECT_FALSE(frame.ColumnIndex("nope").ok());
}

TEST(DataFrameTest, MutableColumnWritesThrough) {
  DataFrame frame = MakeTestFrame();
  frame.mutable_column("x").SetValue(0, 9.0);
  EXPECT_DOUBLE_EQ(frame.column("x").Value(0), 9.0);
}

TEST(DataFrameTest, ReplaceColumn) {
  DataFrame frame = MakeTestFrame();
  ASSERT_TRUE(
      frame.ReplaceColumn(Column::Numeric("x", {7.0, 8.0, 9.0})).ok());
  EXPECT_DOUBLE_EQ(frame.column("x").Value(2), 9.0);
  EXPECT_FALSE(
      frame.ReplaceColumn(Column::Numeric("nope", {1.0, 2.0, 3.0})).ok());
  EXPECT_FALSE(frame.ReplaceColumn(Column::Numeric("x", {1.0})).ok());
}

TEST(DataFrameTest, DropColumnReindexes) {
  DataFrame frame = MakeTestFrame();
  ASSERT_TRUE(frame.DropColumn("x").ok());
  EXPECT_EQ(frame.num_columns(), 1u);
  Result<size_t> index = frame.ColumnIndex("c");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 0u);
  EXPECT_FALSE(frame.DropColumn("x").ok());
}

TEST(DataFrameTest, ColumnNamesInOrder) {
  DataFrame frame = MakeTestFrame();
  std::vector<std::string> names = frame.column_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[1], "c");
}

TEST(DataFrameTest, TakeSelectsRows) {
  DataFrame frame = MakeTestFrame();
  DataFrame taken = frame.Take({1, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(taken.column("x").Value(0), 2.0);
  EXPECT_EQ(taken.column("c").Code(1), 0);
}

TEST(DataFrameTest, FilterRows) {
  DataFrame frame = MakeTestFrame();
  DataFrame filtered = frame.FilterRows({true, false, true});
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_TRUE(filtered.column("x").IsMissing(1));
}

TEST(DataFrameTest, RowsWithMissing) {
  DataFrame frame = MakeTestFrame();
  std::vector<size_t> rows = frame.RowsWithMissing();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);
}

TEST(DataFrameTest, EmptyFrame) {
  DataFrame frame;
  EXPECT_EQ(frame.num_rows(), 0u);
  EXPECT_EQ(frame.num_columns(), 0u);
  EXPECT_TRUE(frame.RowsWithMissing().empty());
}

}  // namespace
}  // namespace fairclean
