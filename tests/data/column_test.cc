#include "data/column.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ColumnTest, NumericBasics) {
  Column col = Column::Numeric("x", {1.0, 2.0, 3.0});
  EXPECT_EQ(col.name(), "x");
  EXPECT_TRUE(col.is_numeric());
  EXPECT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col.Value(1), 2.0);
}

TEST(ColumnTest, NumericMissingIsNaN) {
  Column col = Column::Numeric("x", {1.0, std::nan(""), 3.0});
  EXPECT_FALSE(col.IsMissing(0));
  EXPECT_TRUE(col.IsMissing(1));
  EXPECT_EQ(col.MissingCount(), 1u);
}

TEST(ColumnTest, SetMissingNumeric) {
  Column col = Column::Numeric("x", {1.0, 2.0});
  col.SetMissing(0);
  EXPECT_TRUE(col.IsMissing(0));
  EXPECT_FALSE(col.IsMissing(1));
}

TEST(ColumnTest, CategoricalBasics) {
  Column col = Column::Categorical("c", {0, 1, 0}, {"a", "b"});
  EXPECT_TRUE(col.is_categorical());
  EXPECT_EQ(col.Code(1), 1);
  EXPECT_EQ(col.CategoryName(0), "a");
  EXPECT_EQ(col.CodeOf("b"), 1);
  EXPECT_EQ(col.CodeOf("zzz"), Column::kMissingCode);
}

TEST(ColumnTest, CategoricalMissing) {
  Column col = Column::Categorical("c", {0, Column::kMissingCode}, {"a"});
  EXPECT_TRUE(col.IsMissing(1));
  EXPECT_EQ(col.MissingCount(), 1u);
  EXPECT_EQ(col.CategoryName(Column::kMissingCode), "<missing>");
}

TEST(ColumnTest, FromStringsBuildsDictionaryInOrder) {
  Column col = Column::FromStrings("c", {"x", "y", "x", "", "z"});
  EXPECT_EQ(col.dictionary().size(), 3u);
  EXPECT_EQ(col.Code(0), 0);
  EXPECT_EQ(col.Code(1), 1);
  EXPECT_EQ(col.Code(2), 0);
  EXPECT_TRUE(col.IsMissing(3));
  EXPECT_EQ(col.Code(4), 2);
}

TEST(ColumnTest, FromStringsCustomMissingToken) {
  Column col = Column::FromStrings("c", {"?", "a"}, "?");
  EXPECT_TRUE(col.IsMissing(0));
  EXPECT_FALSE(col.IsMissing(1));
}

TEST(ColumnTest, GetOrAddCategoryAppends) {
  Column col = Column::Categorical("c", {0}, {"a"});
  EXPECT_EQ(col.GetOrAddCategory("a"), 0);
  EXPECT_EQ(col.GetOrAddCategory("new"), 1);
  EXPECT_EQ(col.dictionary().size(), 2u);
  EXPECT_EQ(col.GetOrAddCategory("new"), 1);  // idempotent
}

TEST(ColumnTest, SetCodeValidatesRange) {
  Column col = Column::Categorical("c", {0, 0}, {"a", "b"});
  col.SetCode(0, 1);
  EXPECT_EQ(col.Code(0), 1);
  col.SetCode(1, Column::kMissingCode);
  EXPECT_TRUE(col.IsMissing(1));
}

TEST(ColumnTest, TakeNumericPreservesValuesAndMissing) {
  Column col = Column::Numeric("x", {1.0, std::nan(""), 3.0, 4.0});
  Column taken = col.Take({3, 1, 0});
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_DOUBLE_EQ(taken.Value(0), 4.0);
  EXPECT_TRUE(taken.IsMissing(1));
  EXPECT_DOUBLE_EQ(taken.Value(2), 1.0);
}

TEST(ColumnTest, TakeCategoricalSharesDictionary) {
  Column col = Column::Categorical("c", {0, 1, 1}, {"a", "b"});
  Column taken = col.Take({2, 2});
  EXPECT_EQ(taken.dictionary(), col.dictionary());
  EXPECT_EQ(taken.Code(0), 1);
}

TEST(ColumnTest, TakeAllowsRepetition) {
  Column col = Column::Numeric("x", {5.0});
  Column taken = col.Take({0, 0, 0});
  EXPECT_EQ(taken.size(), 3u);
}

TEST(ColumnTest, CellToString) {
  Column num = Column::Numeric("x", {2.0, 2.5, std::nan("")});
  EXPECT_EQ(num.CellToString(0), "2");
  EXPECT_EQ(num.CellToString(1), "2.5");
  EXPECT_EQ(num.CellToString(2), "");
  Column cat = Column::Categorical("c", {1, Column::kMissingCode}, {"a", "b"});
  EXPECT_EQ(cat.CellToString(0), "b");
  EXPECT_EQ(cat.CellToString(1), "");
}

}  // namespace
}  // namespace fairclean
