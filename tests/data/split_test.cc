#include "data/split.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairclean {
namespace {

TEST(SplitTest, TrainTestPartition) {
  Rng rng(1);
  TrainTestIndices split = SplitTrainTest(100, 0.25, &rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, AtLeastOneRowEachSide) {
  Rng rng(2);
  TrainTestIndices split = SplitTrainTest(2, 0.01, &rng);
  EXPECT_EQ(split.test.size(), 1u);
  EXPECT_EQ(split.train.size(), 1u);
  Rng rng2(3);
  TrainTestIndices split2 = SplitTrainTest(2, 0.99, &rng2);
  EXPECT_EQ(split2.test.size(), 1u);
  EXPECT_EQ(split2.train.size(), 1u);
}

TEST(SplitTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  TrainTestIndices sa = SplitTrainTest(50, 0.2, &a);
  TrainTestIndices sb = SplitTrainTest(50, 0.2, &b);
  EXPECT_EQ(sa.train, sb.train);
  EXPECT_EQ(sa.test, sb.test);
}

TEST(KFoldTest, FoldsPartitionData) {
  Rng rng(11);
  std::vector<TrainTestIndices> folds = KFoldIndices(23, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> test_union;
  size_t total_test = 0;
  for (const TrainTestIndices& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 23u);
    total_test += fold.test.size();
    test_union.insert(fold.test.begin(), fold.test.end());
    // Train and test within a fold are disjoint.
    std::set<size_t> train_set(fold.train.begin(), fold.train.end());
    for (size_t index : fold.test) {
      EXPECT_EQ(train_set.count(index), 0u);
    }
  }
  EXPECT_EQ(total_test, 23u);
  EXPECT_EQ(test_union.size(), 23u);
}

TEST(KFoldTest, FoldSizesDifferByAtMostOne) {
  Rng rng(13);
  std::vector<TrainTestIndices> folds = KFoldIndices(10, 3, &rng);
  size_t min_size = 10;
  size_t max_size = 0;
  for (const TrainTestIndices& fold : folds) {
    min_size = std::min(min_size, fold.test.size());
    max_size = std::max(max_size, fold.test.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFoldTest, ExactDivision) {
  Rng rng(17);
  std::vector<TrainTestIndices> folds = KFoldIndices(20, 4, &rng);
  for (const TrainTestIndices& fold : folds) {
    EXPECT_EQ(fold.test.size(), 5u);
    EXPECT_EQ(fold.train.size(), 15u);
  }
}

}  // namespace
}  // namespace fairclean
