#include "exec/study_driver.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/safe_io.h"
#include "datasets/generator.h"

namespace fairclean {
namespace exec {
namespace {

StudyOptions SmallStudy() {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 99;
  return options;
}

const GeneratedDataset& German() {
  static const GeneratedDataset* dataset = [] {
    Rng rng(7);
    return new GeneratedDataset(
        MakeDataset("german", 500, &rng).ValueOrDie());
  }();
  return *dataset;
}

// Fault-free, cache-free reference result every robustness scenario must
// reproduce exactly.
const CleaningExperimentResult& Baseline() {
  static const CleaningExperimentResult* result = [] {
    StudyDriverOptions options;
    options.study = SmallStudy();
    options.cache_dir = "";
    StudyDriver driver(options);
    return new CleaningExperimentResult(
        driver.RunOrLoad(German(), "missing_values", "log-reg")
            .ValueOrDie());
  }();
  return *result;
}

void ExpectSameScores(const CleaningExperimentResult& actual,
                      const CleaningExperimentResult& expected) {
  ASSERT_EQ(actual.dirty.accuracy.size(), expected.dirty.accuracy.size());
  for (size_t i = 0; i < expected.dirty.accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual.dirty.accuracy[i], expected.dirty.accuracy[i]);
  }
  ASSERT_EQ(actual.repaired.size(), expected.repaired.size());
  for (const auto& [method, series] : expected.repaired) {
    ASSERT_TRUE(actual.repaired.count(method)) << method;
    const ScoreSeries& other = actual.repaired.at(method);
    ASSERT_EQ(other.accuracy.size(), series.accuracy.size()) << method;
    for (size_t i = 0; i < series.accuracy.size(); ++i) {
      EXPECT_DOUBLE_EQ(other.accuracy[i], series.accuracy[i]) << method;
    }
  }
  for (const auto& [key, series] : expected.dirty.unfairness) {
    ASSERT_TRUE(actual.dirty.unfairness.count(key)) << key;
    const std::vector<double>& other = actual.dirty.unfairness.at(key);
    ASSERT_EQ(other.size(), series.size()) << key;
    for (size_t i = 0; i < series.size(); ++i) {
      EXPECT_DOUBLE_EQ(other[i], series[i]) << key;
    }
  }
}

class StudyDriverTest : public testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = testing::TempDir() + "/study_driver_" +
                 testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(cache_dir_);
  }

  void TearDown() override {
    FaultInjector::Global().Reset();
    std::filesystem::remove_all(cache_dir_);
  }

  StudyDriverOptions Options() const {
    StudyDriverOptions options;
    options.study = SmallStudy();
    options.cache_dir = cache_dir_;
    return options;
  }

  std::string CacheFile() const {
    return StudyDriver::CachePath(Options(), "german", "missing_values",
                                  "log-reg");
  }

  std::string cache_dir_;
};

TEST_F(StudyDriverTest, ComputesBaselineWithoutCache) {
  StudyDriverOptions options = Options();
  options.cache_dir = "";
  StudyDriver driver(options);
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  ExpectSameScores(*result, Baseline());
  EXPECT_EQ(driver.diagnostics().repeats_run, 3u);
  EXPECT_EQ(driver.diagnostics().cache_hits, 0u);
  EXPECT_EQ(driver.diagnostics().checkpoints, 0u);
}

TEST_F(StudyDriverTest, SecondRunIsServedFromCacheWithIdenticalScores) {
  {
    StudyDriver driver(Options());
    ASSERT_TRUE(
        driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
    EXPECT_EQ(driver.diagnostics().cache_hits, 0u);
    // The journal is replaced by the final cache file.
    EXPECT_TRUE(std::filesystem::exists(CacheFile()));
    EXPECT_FALSE(std::filesystem::exists(CacheFile() + ".journal"));
  }
  StudyDriver driver(Options());
  Result<CleaningExperimentResult> cached =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(driver.diagnostics().cache_hits, 1u);
  EXPECT_EQ(driver.diagnostics().repeats_run, 0u);
  ExpectSameScores(*cached, Baseline());
}

TEST_F(StudyDriverTest, ResumesFromPartialJournalByteIdentically) {
  {
    StudyDriver driver(Options());
    ASSERT_TRUE(
        driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
  }
  std::string full_cache = *ReadFileToString(CacheFile());

  // Rebuild the journal a run killed after repeat 0 would have left:
  // repeat-0 records plus the cursor.
  ResultStore full = ResultStore::LoadFromFile(CacheFile()).ValueOrDie();
  ResultStore partial;
  for (const std::string& key : full.KeysWithPrefix("german")) {
    if (key.find("r0__") != std::string::npos) {
      partial.Put(key, full.Get(key).ValueOrDie());
    }
  }
  partial.Put("__meta__/next_repeat", 1.0);
  ASSERT_TRUE(partial.SaveToFile(CacheFile() + ".journal").ok());
  std::filesystem::remove(CacheFile());

  StudyDriver driver(Options());
  Result<CleaningExperimentResult> resumed =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(driver.diagnostics().journal_resumes, 1u);
  EXPECT_EQ(driver.diagnostics().repeats_resumed, 1u);
  EXPECT_EQ(driver.diagnostics().repeats_run, 2u);
  ExpectSameScores(*resumed, Baseline());

  // The rewritten cache is byte-identical to the uninterrupted run's, and
  // the journal is gone.
  EXPECT_EQ(*ReadFileToString(CacheFile()), full_cache);
  EXPECT_FALSE(std::filesystem::exists(CacheFile() + ".journal"));
}

TEST_F(StudyDriverTest, QuarantinesBitFlippedCacheAndRecomputes) {
  {
    StudyDriver driver(Options());
    ASSERT_TRUE(
        driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
  }
  std::string content = *ReadFileToString(CacheFile());
  content[content.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(CacheFile(), content).ok());

  StudyDriver driver(Options());
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(driver.diagnostics().corrupt_quarantined, 1u);
  EXPECT_EQ(driver.diagnostics().cache_hits, 0u);
  EXPECT_EQ(driver.diagnostics().repeats_run, 3u);
  ExpectSameScores(*result, Baseline());
  // Evidence preserved, fresh cache valid again.
  EXPECT_TRUE(std::filesystem::exists(CacheFile() + ".corrupt"));
  EXPECT_TRUE(ResultStore::LoadFromFile(CacheFile()).ok());
}

TEST_F(StudyDriverTest, TruncatedCacheIsRejectedNotReused) {
  {
    StudyDriver driver(Options());
    ASSERT_TRUE(
        driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
  }
  std::string content = *ReadFileToString(CacheFile());
  ASSERT_TRUE(
      WriteFileAtomic(CacheFile(), content.substr(0, content.size() / 2))
          .ok());

  StudyDriver driver(Options());
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(driver.diagnostics().corrupt_quarantined, 1u);
  ExpectSameScores(*result, Baseline());
}

TEST_F(StudyDriverTest, InjectedInterruptIsResumable) {
  ASSERT_TRUE(FaultInjector::Global().Configure("interrupt:1:1", 1).ok());
  StudyDriver driver(Options());
  Result<CleaningExperimentResult> first =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kIoError);

  // The fault was a one-shot "kill": the re-run completes and matches the
  // fault-free scores exactly.
  Result<CleaningExperimentResult> second =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(second.ok());
  ExpectSameScores(*second, Baseline());
}

TEST_F(StudyDriverTest, RetryRecoversTransientNumericFault) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1:1", 1).ok());
  StudyDriver driver(Options());
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  // Exactly one repeat was corrupted, retried with the identical seed, and
  // recovered — the final scores match the fault-free run bit for bit.
  EXPECT_EQ(driver.diagnostics().retries, 1u);
  EXPECT_EQ(driver.diagnostics().skips, 0u);
  ExpectSameScores(*result, Baseline());
}

TEST_F(StudyDriverTest, PersistentDegeneracySkipsAndFails) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1", 1).ok());
  StudyDriverOptions options = Options();
  options.cache_dir = "";
  options.max_retries = 0;
  StudyDriver driver(options);
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(driver.diagnostics().skips, 3u);
}

TEST_F(StudyDriverTest, TimeBudgetStopsCleanlyWithDeadlineExceeded) {
  StudyDriverOptions options = Options();
  options.time_budget_s = 1e-9;
  StudyDriver driver(options);
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(driver.diagnostics().budget_exhausted);
}

TEST_F(StudyDriverTest, ParallelRepeatsMatchSequentialByteIdentically) {
  StudyDriverOptions sequential = Options();
  sequential.threads = 1;
  sequential.cache_dir = cache_dir_ + "/seq";
  StudyDriver seq_driver(sequential);
  Result<CleaningExperimentResult> seq =
      seq_driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq_driver.diagnostics().threads, 1u);

  StudyDriverOptions parallel = Options();
  parallel.threads = 8;
  parallel.cache_dir = cache_dir_ + "/par";
  StudyDriver par_driver(parallel);
  Result<CleaningExperimentResult> par =
      par_driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par_driver.diagnostics().threads, 8u);
  EXPECT_EQ(par_driver.diagnostics().repeats_run, 3u);

  // Same scores and byte-identical cache files: thread count must never
  // leak into results.
  ExpectSameScores(*par, *seq);
  ExpectSameScores(*par, Baseline());
  std::string seq_cache = *ReadFileToString(
      StudyDriver::CachePath(sequential, "german", "missing_values",
                             "log-reg"));
  std::string par_cache = *ReadFileToString(
      StudyDriver::CachePath(parallel, "german", "missing_values",
                             "log-reg"));
  EXPECT_EQ(seq_cache, par_cache);
}

TEST_F(StudyDriverTest, ParallelInterruptLeavesByteIdenticalJournal) {
  // Find a seed whose "interrupt" site draws false, false, true: the run
  // dies exactly before repeat 2, leaving a two-repeat journal.
  uint64_t seed = 0;
  for (uint64_t candidate = 1; candidate <= 200 && seed == 0; ++candidate) {
    ASSERT_TRUE(
        FaultInjector::Global().Configure("interrupt:0.5", candidate).ok());
    bool r0 = FaultInjector::Global().ShouldFire("interrupt");
    bool r1 = FaultInjector::Global().ShouldFire("interrupt");
    bool r2 = FaultInjector::Global().ShouldFire("interrupt");
    if (!r0 && !r1 && r2) seed = candidate;
  }
  ASSERT_NE(seed, 0u);

  StudyDriverOptions sequential = Options();
  sequential.threads = 1;
  sequential.cache_dir = cache_dir_ + "/seq";
  StudyDriverOptions parallel = Options();
  parallel.threads = 8;
  parallel.cache_dir = cache_dir_ + "/par";

  ASSERT_TRUE(FaultInjector::Global().Configure("interrupt:0.5", seed).ok());
  {
    StudyDriver driver(sequential);
    Result<CleaningExperimentResult> killed =
        driver.RunOrLoad(German(), "missing_values", "log-reg");
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kIoError);
  }
  ASSERT_TRUE(FaultInjector::Global().Configure("interrupt:0.5", seed).ok());
  {
    StudyDriver driver(parallel);
    Result<CleaningExperimentResult> killed =
        driver.RunOrLoad(German(), "missing_values", "log-reg");
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kIoError);
  }

  // Both paths drew the fault at the same merge boundary and checkpointed
  // the same repeats: the journals match byte for byte.
  std::string seq_journal = *ReadFileToString(StudyDriver::JournalPath(
      sequential, "german", "missing_values", "log-reg"));
  std::string par_journal = *ReadFileToString(StudyDriver::JournalPath(
      parallel, "german", "missing_values", "log-reg"));
  EXPECT_EQ(seq_journal, par_journal);

  // Fault-free re-runs resume both journals to the same final cache.
  FaultInjector::Global().Reset();
  StudyDriver seq_driver(sequential);
  Result<CleaningExperimentResult> seq =
      seq_driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq_driver.diagnostics().journal_resumes, 1u);
  StudyDriver par_driver(parallel);
  Result<CleaningExperimentResult> par =
      par_driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par_driver.diagnostics().journal_resumes, 1u);
  ExpectSameScores(*par, *seq);
  ExpectSameScores(*par, Baseline());
  std::string seq_cache = *ReadFileToString(StudyDriver::CachePath(
      sequential, "german", "missing_values", "log-reg"));
  std::string par_cache = *ReadFileToString(StudyDriver::CachePath(
      parallel, "german", "missing_values", "log-reg"));
  EXPECT_EQ(seq_cache, par_cache);
}

TEST_F(StudyDriverTest, ParallelRetryRecoversTransientNumericFault) {
  ASSERT_TRUE(FaultInjector::Global().Configure("numeric:1:1", 1).ok());
  StudyDriverOptions options = Options();
  options.threads = 8;
  StudyDriver driver(options);
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  // Which slot's probe fires first is scheduling-dependent, but the retry
  // replays that slot's own seed, so recovery is byte-identical either way.
  EXPECT_EQ(driver.diagnostics().retries, 1u);
  EXPECT_EQ(driver.diagnostics().skips, 0u);
  ExpectSameScores(*result, Baseline());
}

TEST_F(StudyDriverTest, DegenerateCachedGapsAreRecomputedNotServed) {
  {
    StudyDriver driver(Options());
    ASSERT_TRUE(
        driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
  }
  // Rewrite the cache the way a pre-NaN-semantics run could have left it:
  // a privileged group with no negative labels (fp + tn == 0), whose FPR
  // gap now reconstructs to NaN.
  ResultStore store = ResultStore::LoadFromFile(CacheFile()).ValueOrDie();
  size_t zeroed = 0;
  for (const std::string& key : store.KeysWithPrefix("german")) {
    if (key.find("_priv__") == std::string::npos) continue;
    if (key.size() >= 4 && (key.compare(key.size() - 4, 4, "__fp") == 0 ||
                            key.compare(key.size() - 4, 4, "__tn") == 0)) {
      store.Put(key, 0.0);
      ++zeroed;
    }
  }
  ASSERT_GT(zeroed, 0u);
  ASSERT_TRUE(store.SaveToFile(CacheFile()).ok());

  StudyDriver driver(Options());
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(German(), "missing_values", "log-reg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(driver.diagnostics().cache_hits, 0u);
  EXPECT_EQ(driver.diagnostics().repeats_run, 3u);
  ExpectSameScores(*result, Baseline());
}

TEST_F(StudyDriverTest, CachePathEncodesStudyShape) {
  StudyDriverOptions options = Options();
  options.cache_dir = "cache";
  EXPECT_EQ(
      StudyDriver::CachePath(options, "german", "missing_values", "log-reg"),
      "cache/german_missing_values_log-reg_s99_n300_r3_f3.json");
  EXPECT_EQ(StudyDriver::JournalPath(options, "german", "missing_values",
                                     "log-reg"),
            "cache/german_missing_values_log-reg_s99_n300_r3_f3.json"
            ".journal");
}

TEST_F(StudyDriverTest, DiagnosticsFormatMentionsCounters) {
  StudyDriver driver(Options());
  ASSERT_TRUE(
      driver.RunOrLoad(German(), "missing_values", "log-reg").ok());
  std::string formatted = driver.diagnostics().Format();
  EXPECT_NE(formatted.find("experiments=1"), std::string::npos);
  EXPECT_NE(formatted.find("repeats_run=3"), std::string::npos);
  EXPECT_NE(formatted.find("checkpoints=3"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace fairclean
