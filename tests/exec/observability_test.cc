// The observability layer must only observe: with FAIRCLEAN_TRACE and
// FAIRCLEAN_METRICS active the driver's scores, cache files and journals
// must be byte-identical to an uninstrumented run at any thread width.

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/safe_io.h"
#include "datasets/generator.h"
#include "exec/study_driver.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {
namespace exec {
namespace {

StudyOptions SmallStudy() {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 99;
  return options;
}

const GeneratedDataset& German() {
  static const GeneratedDataset* dataset = [] {
    Rng rng(7);
    return new GeneratedDataset(
        MakeDataset("german", 500, &rng).ValueOrDie());
  }();
  return *dataset;
}

/// Runs the small experiment into `cache_dir` and returns every produced
/// cache file keyed by filename.
std::map<std::string, std::string> RunAndCollectCache(
    const std::string& cache_dir, const std::string& error_type,
    size_t threads) {
  std::filesystem::remove_all(cache_dir);
  StudyDriverOptions options;
  options.study = SmallStudy();
  options.cache_dir = cache_dir;
  options.threads = threads;
  StudyDriver driver(options);
  EXPECT_TRUE(driver.RunOrLoad(German(), error_type, "log-reg").ok());
  std::map<std::string, std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir)) {
    Result<std::string> content = ReadFileToString(entry.path().string());
    EXPECT_TRUE(content.ok()) << entry.path();
    files[entry.path().filename().string()] = content.ok() ? *content : "";
  }
  std::filesystem::remove_all(cache_dir);
  return files;
}

class ObservabilityTest : public testing::Test {
 protected:
  void TearDown() override {
    obs::Tracer::Global().Disable();
    obs::MetricsRegistry::Global().DisableExport();
    std::filesystem::remove(trace_path_);
    std::filesystem::remove(metrics_path_);
  }

  void EnableObservability(const char* tag) {
    trace_path_ = testing::TempDir() + "/obs_trace_" + tag + ".json";
    metrics_path_ = testing::TempDir() + "/obs_metrics_" + tag + ".jsonl";
    obs::Tracer::Global().Enable(trace_path_);
    obs::MetricsRegistry::Global().EnableExport(metrics_path_);
  }

  std::string trace_path_;
  std::string metrics_path_;
};

TEST_F(ObservabilityTest, CacheFilesAreByteIdenticalWithTracingEnabled) {
  const std::string base = testing::TempDir() + "/obs_identity_";
  std::map<std::string, std::string> plain =
      RunAndCollectCache(base + "off", "missing_values", /*threads=*/1);

  EnableObservability("identity");
  std::map<std::string, std::string> traced =
      RunAndCollectCache(base + "on", "missing_values", /*threads=*/3);

  ASSERT_FALSE(plain.empty());
  ASSERT_EQ(plain.size(), traced.size());
  for (const auto& [name, content] : plain) {
    ASSERT_TRUE(traced.count(name)) << name;
    EXPECT_EQ(traced.at(name), content) << name;
  }
}

TEST_F(ObservabilityTest, TraceCoversEveryInstrumentedLayer) {
  EnableObservability("layers");
  // Outlier cleaning exercises detectors and repairs on top of the shared
  // exec / ml / data instrumentation.
  RunAndCollectCache(testing::TempDir() + "/obs_layers_cache", "outliers",
                     /*threads=*/2);
  obs::Tracer::Global().Flush();

  Result<std::string> text = ReadFileToString(trace_path_);
  ASSERT_TRUE(text.ok());
  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(*text, &root, &error)) << error;
  const obs::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> categories;
  std::set<double> span_tids;
  for (const obs::JsonValue& event : events->array_items) {
    if (event.StringOr("ph", "") == "X") {
      categories.insert(event.StringOr("cat", ""));
      span_tids.insert(event.NumberOr("tid", -1));
    }
  }
  for (const char* layer :
       {"exec", "core", "ml", "detect", "repair", "data", "io"}) {
    EXPECT_TRUE(categories.count(layer)) << "no spans from layer " << layer;
  }
  // Repeat slices executed on more than one worker thread.
  EXPECT_GE(span_tids.size(), 2u);
}

TEST_F(ObservabilityTest, MetricsExportIsValidJsonlWithDriverCounters) {
  EnableObservability("export");
  RunAndCollectCache(testing::TempDir() + "/obs_export_cache",
                     "missing_values", /*threads=*/2);
  ASSERT_TRUE(
      obs::MetricsRegistry::Global().WriteJsonlFile(metrics_path_));

  Result<std::string> text = ReadFileToString(metrics_path_);
  ASSERT_TRUE(text.ok());
  std::set<std::string> names;
  size_t start = 0;
  while (start < text->size()) {
    size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    std::string line = text->substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    obs::JsonValue value;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::Parse(line, &value, &error))
        << error << ": " << line;
    names.insert(value.StringOr("metric", ""));
  }
  for (const char* metric :
       {"driver.experiments", "driver.repeats_run", "driver.checkpoints",
        "driver.stage_wall_s.compute", "io.bytes_written"}) {
    EXPECT_TRUE(names.count(metric)) << "missing metric " << metric;
  }
}

}  // namespace
}  // namespace exec
}  // namespace fairclean
