// Invariant tests for the five dataset generators: every spec'd data-error
// mechanism (group-conditional missingness, label-noise rate, class
// imbalance) lands within tolerance of its design target, and generation is
// seed-reproducible. The tolerances bracket rates measured at n = 20000;
// they are loose enough for seed-to-seed variation but tight enough that a
// broken mechanism (rate off by 2x, gap direction flipped) fails.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datasets/generator.h"
#include "ml/encoder.h"

namespace fairclean {
namespace {

constexpr size_t kRows = 20000;

GeneratedDataset Make(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  return MakeDataset(name, kRows, &rng).ValueOrDie();
}

std::vector<int> ObservedLabels(const GeneratedDataset& dataset) {
  return ExtractBinaryLabels(dataset.frame, dataset.spec.label).ValueOrDie();
}

double PositiveRate(const std::vector<int>& labels) {
  double positives = 0;
  for (int label : labels) positives += label;
  return positives / static_cast<double>(labels.size());
}

// Fraction of observed labels that differ from the pre-noise truth.
double NoiseRate(const GeneratedDataset& dataset) {
  std::vector<int> observed = ObservedLabels(dataset);
  EXPECT_EQ(observed.size(), dataset.true_labels.size());
  double flips = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    flips += observed[i] != dataset.true_labels[i];
  }
  return flips / static_cast<double>(observed.size());
}

// Missing-row rate (any cell missing) per group of the named sensitive
// attribute; first = privileged rate, second = disadvantaged rate.
std::pair<double, double> MissingRatesByGroup(const GeneratedDataset& dataset,
                                              const std::string& attribute) {
  SensitiveAttribute attr =
      dataset.spec.SensitiveAttributeByName(attribute).ValueOrDie();
  std::vector<bool> privileged =
      attr.privileged.Evaluate(dataset.frame).ValueOrDie();
  std::vector<bool> missing(dataset.frame.num_rows(), false);
  for (size_t row : dataset.frame.RowsWithMissing()) missing[row] = true;
  double priv_n = 0, priv_m = 0, dis_n = 0, dis_m = 0;
  for (size_t i = 0; i < missing.size(); ++i) {
    if (privileged[i]) {
      ++priv_n;
      priv_m += missing[i];
    } else {
      ++dis_n;
      dis_m += missing[i];
    }
  }
  return {priv_n ? priv_m / priv_n : 0.0, dis_n ? dis_m / dis_n : 0.0};
}

TEST(GeneratorInvariants, TrueLabelsAreBinaryAndAligned) {
  for (const std::string& name : AllDatasetNames()) {
    GeneratedDataset dataset = Make(name, 123);
    ASSERT_EQ(dataset.true_labels.size(), dataset.frame.num_rows()) << name;
    for (int label : dataset.true_labels) {
      ASSERT_TRUE(label == 0 || label == 1) << name;
    }
  }
}

TEST(GeneratorInvariants, SeedReproducibility) {
  for (const std::string& name : AllDatasetNames()) {
    GeneratedDataset a = Make(name, 123);
    GeneratedDataset b = Make(name, 123);
    GeneratedDataset c = Make(name, 124);
    EXPECT_EQ(a.true_labels, b.true_labels) << name;
    EXPECT_EQ(ObservedLabels(a), ObservedLabels(b)) << name;
    EXPECT_EQ(a.frame.RowsWithMissing(), b.frame.RowsWithMissing()) << name;
    // A different seed draws a different population.
    EXPECT_NE(a.true_labels, c.true_labels) << name;
  }
}

TEST(GeneratorInvariants, ClassImbalanceMatchesDesignTargets) {
  // Measured positive rates at n = 20000: adult 0.27, folk 0.33,
  // credit 0.82, german 0.75, heart 0.43.
  const struct {
    const char* name;
    double low;
    double high;
  } kExpected[] = {
      {"adult", 0.20, 0.33},  {"folk", 0.26, 0.40},  {"credit", 0.76, 0.88},
      {"german", 0.69, 0.81}, {"heart", 0.37, 0.50},
  };
  for (const auto& expected : kExpected) {
    GeneratedDataset dataset = Make(expected.name, 123);
    double rate = PositiveRate(ObservedLabels(dataset));
    EXPECT_GE(rate, expected.low) << expected.name;
    EXPECT_LE(rate, expected.high) << expected.name;
  }
}

TEST(GeneratorInvariants, LabelNoiseRateMatchesDesignTargets) {
  // Measured flip rates at n = 20000: adult 0.055, folk 0.028,
  // credit 0.025, german 0.045, heart 0.139. Bounds at roughly half / twice
  // the design rate.
  const struct {
    const char* name;
    double low;
    double high;
  } kExpected[] = {
      {"adult", 0.027, 0.11},  {"folk", 0.013, 0.06},  {"credit", 0.012, 0.05},
      {"german", 0.022, 0.09}, {"heart", 0.070, 0.28},
  };
  for (const auto& expected : kExpected) {
    GeneratedDataset dataset = Make(expected.name, 123);
    double rate = NoiseRate(dataset);
    EXPECT_GE(rate, expected.low) << expected.name;
    EXPECT_LE(rate, expected.high) << expected.name;
  }
}

TEST(GeneratorInvariants, AdultMissingnessBurdensDisadvantagedGroups) {
  GeneratedDataset dataset = Make("adult", 123);
  // Design: workclass/occupation go missing far more often outside the
  // privileged groups (measured gaps ~0.33 for sex, ~0.27 for race).
  auto [priv_sex, dis_sex] = MissingRatesByGroup(dataset, "sex");
  EXPECT_GT(dis_sex, priv_sex + 0.15);
  auto [priv_race, dis_race] = MissingRatesByGroup(dataset, "race");
  EXPECT_GT(dis_race, priv_race + 0.12);
}

TEST(GeneratorInvariants, FolkMissingnessBurdensDisadvantagedGroups) {
  GeneratedDataset dataset = Make("folk", 123);
  // Milder MAR gap than adult by design (measured ~0.04 sex, ~0.06 race).
  auto [priv_sex, dis_sex] = MissingRatesByGroup(dataset, "sex");
  EXPECT_GT(dis_sex, priv_sex + 0.01);
  auto [priv_race, dis_race] = MissingRatesByGroup(dataset, "race");
  EXPECT_GT(dis_race, priv_race + 0.02);
}

TEST(GeneratorInvariants, GermanMissingnessBurdensThePrivilegedGroup) {
  // german is the deliberate counterexample: savings of older (privileged
  // by the age predicate) applicants go unrecorded most often, so the
  // privileged group carries MORE missing rows (measured gap ~0.20).
  GeneratedDataset dataset = Make("german", 123);
  auto [priv_age, dis_age] = MissingRatesByGroup(dataset, "age");
  EXPECT_GT(priv_age, dis_age + 0.10);
}

TEST(GeneratorInvariants, DatasetsWithoutMissingErrorTypeAreComplete) {
  for (const std::string& name : AllDatasetNames()) {
    GeneratedDataset dataset = Make(name, 123);
    bool has_missing_type = dataset.spec.HasErrorType("missing_values");
    size_t missing_rows = dataset.frame.RowsWithMissing().size();
    if (has_missing_type) {
      EXPECT_GT(missing_rows, 0u) << name;
    } else {
      EXPECT_EQ(missing_rows, 0u) << name;
    }
  }
}

}  // namespace
}  // namespace fairclean
