#include "datasets/generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ml/encoder.h"

namespace fairclean {
namespace {

class GeneratorTest : public testing::TestWithParam<std::string> {
 protected:
  GeneratedDataset Generate(size_t rows = 3000, uint64_t seed = 1) {
    Rng rng(seed);
    Result<GeneratedDataset> dataset = MakeDataset(GetParam(), rows, &rng);
    EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
    return std::move(dataset).ValueOrDie();
  }
};

TEST_P(GeneratorTest, ProducesRequestedRowCount) {
  GeneratedDataset dataset = Generate(1234);
  EXPECT_EQ(dataset.frame.num_rows(), 1234u);
  EXPECT_EQ(dataset.spec.name, GetParam());
}

TEST_P(GeneratorTest, ZeroRowsUsesDefaultSize) {
  Rng rng(2);
  Result<GeneratedDataset> dataset = MakeDataset(GetParam(), 0, &rng);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->frame.num_rows(), DefaultRowCount(GetParam()));
}

TEST_P(GeneratorTest, DeterministicGivenSeed) {
  GeneratedDataset a = Generate(500, 7);
  GeneratedDataset b = Generate(500, 7);
  for (size_t c = 0; c < a.frame.num_columns(); ++c) {
    for (size_t r = 0; r < a.frame.num_rows(); ++r) {
      EXPECT_EQ(a.frame.column(c).CellToString(r),
                b.frame.column(c).CellToString(r))
          << a.frame.column(c).name();
    }
  }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  GeneratedDataset a = Generate(500, 7);
  GeneratedDataset b = Generate(500, 8);
  bool any_difference = false;
  for (size_t c = 0; c < a.frame.num_columns() && !any_difference; ++c) {
    for (size_t r = 0; r < a.frame.num_rows(); ++r) {
      if (a.frame.column(c).CellToString(r) !=
          b.frame.column(c).CellToString(r)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(GeneratorTest, LabelIsBinaryAndNonDegenerate) {
  GeneratedDataset dataset = Generate();
  Result<std::vector<int>> labels =
      ExtractBinaryLabels(dataset.frame, dataset.spec.label);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  double positive = 0.0;
  for (int y : *labels) positive += y;
  double rate = positive / static_cast<double>(labels->size());
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.95);
}

TEST_P(GeneratorTest, SensitiveAttributesResolve) {
  GeneratedDataset dataset = Generate();
  ASSERT_FALSE(dataset.spec.sensitive_attributes.empty());
  for (const SensitiveAttribute& attribute :
       dataset.spec.sensitive_attributes) {
    Result<std::vector<bool>> membership =
        attribute.privileged.Evaluate(dataset.frame);
    ASSERT_TRUE(membership.ok()) << attribute.name;
    size_t privileged = static_cast<size_t>(
        std::count(membership->begin(), membership->end(), true));
    // Both groups are non-empty.
    EXPECT_GT(privileged, 0u);
    EXPECT_LT(privileged, dataset.frame.num_rows());
  }
}

TEST_P(GeneratorTest, FeatureColumnsExcludeLabelAndDropVariables) {
  GeneratedDataset dataset = Generate();
  std::vector<std::string> features =
      dataset.spec.FeatureColumns(dataset.frame);
  ASSERT_FALSE(features.empty());
  std::set<std::string> feature_set(features.begin(), features.end());
  EXPECT_EQ(feature_set.count(dataset.spec.label), 0u);
  for (const std::string& dropped : dataset.spec.drop_variables) {
    EXPECT_EQ(feature_set.count(dropped), 0u) << dropped;
  }
  for (const std::string& name : features) {
    EXPECT_TRUE(dataset.frame.HasColumn(name));
  }
}

TEST_P(GeneratorTest, SensitiveAttributesNeverMissing) {
  GeneratedDataset dataset = Generate();
  for (const SensitiveAttribute& attribute :
       dataset.spec.sensitive_attributes) {
    const Column& column = dataset.frame.column(attribute.privileged.attribute);
    EXPECT_EQ(column.MissingCount(), 0u) << attribute.name;
  }
}

TEST_P(GeneratorTest, MissingValuesMatchDeclaredErrorTypes) {
  GeneratedDataset dataset = Generate(6000);
  size_t missing_rows = dataset.frame.RowsWithMissing().size();
  if (dataset.spec.HasErrorType("missing_values")) {
    EXPECT_GT(missing_rows, 0u);
  } else {
    // credit and heart have no missing values at all (paper footnote 8).
    EXPECT_EQ(missing_rows, 0u);
  }
}

TEST_P(GeneratorTest, LabelsNeverMissing) {
  GeneratedDataset dataset = Generate();
  EXPECT_EQ(dataset.frame.column(dataset.spec.label).MissingCount(), 0u);
}

TEST_P(GeneratorTest, IntersectionalSpecHasTwoAttributes) {
  GeneratedDataset dataset = Generate();
  if (dataset.spec.intersectional) {
    EXPECT_GE(dataset.spec.sensitive_attributes.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorTest,
                         testing::ValuesIn(AllDatasetNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(DatasetRegistryTest, UnknownNameFails) {
  Rng rng(1);
  EXPECT_FALSE(MakeDataset("mnist", 100, &rng).ok());
}

TEST(DatasetRegistryTest, TableOneOrder) {
  std::vector<std::string> names = AllDatasetNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "adult");
  EXPECT_EQ(names[1], "folk");
  EXPECT_EQ(names[2], "credit");
  EXPECT_EQ(names[3], "german");
  EXPECT_EQ(names[4], "heart");
}

TEST(DatasetSpecTest, ErrorTypeLookup) {
  Rng rng(1);
  GeneratedDataset heart = MakeDataset("heart", 100, &rng).ValueOrDie();
  EXPECT_TRUE(heart.spec.HasErrorType("outliers"));
  EXPECT_TRUE(heart.spec.HasErrorType("mislabels"));
  EXPECT_FALSE(heart.spec.HasErrorType("missing_values"));
}

TEST(DatasetSpecTest, SensitiveAttributeByName) {
  Rng rng(1);
  GeneratedDataset german = MakeDataset("german", 100, &rng).ValueOrDie();
  Result<SensitiveAttribute> age = german.spec.SensitiveAttributeByName("age");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(age->privileged.Description(), "age > 25");
  EXPECT_FALSE(german.spec.SensitiveAttributeByName("race").ok());
}

}  // namespace
}  // namespace fairclean
