#include "sched/artifact_store.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fairclean {
namespace sched {
namespace {

Result<std::shared_ptr<const void>> MakeInt(int value) {
  return std::shared_ptr<const void>(std::make_shared<const int>(value));
}

TEST(ArtifactStoreTest, ProducesOnceAndReuses) {
  obs::MetricsRegistry metrics;
  ArtifactStore store(&metrics);
  std::atomic<int> calls{0};
  Result<std::shared_ptr<const int>> first =
      store.GetOrCreateAs<int>("k", [&]() -> Result<int> {
        ++calls;
        return 7;
      });
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(**first, 7);
  Result<std::shared_ptr<const int>> second =
      store.GetOrCreateAs<int>("k", [&]() -> Result<int> {
        ++calls;
        return 8;  // must never run
      });
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(**second, 7);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(store.produced(), 1u);
  EXPECT_EQ(store.reused(), 1u);
}

TEST(ArtifactStoreTest, DeterministicFailureIsMemoized) {
  obs::MetricsRegistry metrics;
  ArtifactStore store(&metrics);
  std::atomic<int> calls{0};
  auto produce = [&calls]() -> Result<std::shared_ptr<const void>> {
    ++calls;
    return Status::InvalidArgument("bad key");
  };
  Result<std::shared_ptr<const void>> first = store.GetOrCreate("k", produce);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInvalidArgument);
  // Deterministic failure: consumers share the verdict, producer never
  // re-runs.
  Result<std::shared_ptr<const void>> second = store.GetOrCreate("k", produce);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ArtifactStoreTest, TransientFailureIsNotMemoized) {
  // A deadline expiry checkpoints the journal and must not poison the key:
  // the next request re-runs the producer and resumes. Same for overload
  // shedding (Unavailable).
  for (const Status& transient :
       {Status::DeadlineExceeded("out of time"),
        Status::Unavailable("shed")}) {
    obs::MetricsRegistry metrics;
    ArtifactStore store(&metrics);
    std::atomic<int> calls{0};
    auto produce = [&]() -> Result<std::shared_ptr<const void>> {
      if (++calls == 1) return transient;
      return MakeInt(42);
    };
    Result<std::shared_ptr<const void>> first =
        store.GetOrCreate("k", produce);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), transient.code());
    Result<std::shared_ptr<const void>> second =
        store.GetOrCreate("k", produce);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(*static_cast<const int*>(second->get()), 42);
    EXPECT_EQ(calls.load(), 2);
  }
}

TEST(ArtifactStoreTest, WaiterDeadlineExpiresWithoutDisturbingOwner) {
  obs::MetricsRegistry metrics;
  ArtifactStore store(&metrics);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool owner_started = false;
  bool release_owner = false;

  std::thread owner([&] {
    Result<std::shared_ptr<const void>> value = store.GetOrCreate(
        "slow", [&]() -> Result<std::shared_ptr<const void>> {
          // Producing proves ownership; announce it, then hold production
          // until the waiter has timed out.
          std::unique_lock<std::mutex> lock(gate_mutex);
          owner_started = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release_owner; });
          return MakeInt(5);
        });
    EXPECT_TRUE(value.ok());
  });

  // Only query once the owner demonstrably holds the key, so this thread
  // is deterministically a waiter.
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return owner_started; });
  }
  Result<std::shared_ptr<const void>> waited = store.GetOrCreate(
      "slow",
      []() -> Result<std::shared_ptr<const void>> { return MakeInt(9); },
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20));
  // EXPECT (not ASSERT): the owner thread must always be released+joined,
  // even on failure.
  EXPECT_FALSE(waited.ok());
  if (!waited.ok()) {
    EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(
        waited.status().message().find(
            "deadline expired waiting for in-flight production of slow"),
        std::string::npos);
  }

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_owner = true;
  }
  gate_cv.notify_all();
  owner.join();

  // The owner's production completed untouched; the value is memoized.
  Result<std::shared_ptr<const void>> value = store.GetOrCreate(
      "slow",
      []() -> Result<std::shared_ptr<const void>> { return MakeInt(9); });
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*static_cast<const int*>(value->get()), 5);
}

TEST(ArtifactStoreTest, KeysAreSorted) {
  obs::MetricsRegistry metrics;
  ArtifactStore store(&metrics);
  ASSERT_TRUE(store.GetOrCreate("b", []() { return MakeInt(1); }).ok());
  ASSERT_TRUE(store.GetOrCreate("a", []() { return MakeInt(2); }).ok());
  EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
