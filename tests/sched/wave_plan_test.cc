// Wave-plan identity and containment tests (DESIGN.md §15): the execution
// mode ladder (naive / shared / fused) must be a pure performance knob —
// suite report bytes and every cell's cache record sha256 identical across
// modes — the planner's reuse counters must be structural (one plan per
// (dataset, seed) group, one reuse hit per member cell), and a fault
// during plan materialization must degrade to the per-cell rebuild path
// without changing a byte of the cache.
//
// The binary is registered at FAIRCLEAN_THREADS 1, 2, and 4 (plain
// add_test in tests/CMakeLists.txt), so the cross-mode comparison is
// pinned at every suite fan-out width the golden tests use.

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_mode.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/safe_io.h"
#include "obs/metrics.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"
#include "sched/wave_plan.h"

namespace fairclean {
namespace sched {
namespace {

StudyOptions PlanStudy(ExecMode mode) {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 42;
  options.exec_mode = mode;
  return options;
}

std::string FreshDir(const std::string& name) {
  // Per-process paths: the width registrations of this binary run
  // concurrently under ctest -j and must not share cache directories.
  std::string dir = testing::TempDir() + "/wave_plan_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct SuiteRun {
  Status status;
  std::string report;
  /// Cache-file basename -> sha256 of the exact file bytes.
  std::map<std::string, std::string> cell_sha256;
};

// Runs the smoke subset (german missing values x three models) in `mode`
// at the environment's thread width (threads = 0 resolves
// FAIRCLEAN_THREADS — the width this registration is pinned to).
SuiteRun RunSmoke(ExecMode mode, const std::string& cache_dir) {
  SuiteOptions options;
  options.study = PlanStudy(mode);
  options.cache_dir = cache_dir;
  options.threads = 0;
  SuiteScheduler scheduler(options);
  SuiteRun run;
  run.status = scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke"));
  run.report = scheduler.report_json();
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // "class:" classification sidecars (DESIGN.md §16) ride along with
    // every cell; this test pins the cell records proper.
    if (name.rfind("class:", 0) == 0) continue;
    run.cell_sha256[name] =
        Sha256Hex(ReadFileToString(entry.path().string()).ValueOrDie());
  }
  return run;
}

// The fused run every scenario compares against. Computed once per
// process.
const SuiteRun& FusedBaseline() {
  static const SuiteRun* run =
      new SuiteRun(RunSmoke(ExecMode::kFused, FreshDir("fused")));
  return *run;
}

void ExpectMatchesBaseline(const SuiteRun& run, const char* label) {
  const SuiteRun& baseline = FusedBaseline();
  ASSERT_TRUE(run.status.ok()) << label << ": " << run.status.ToString();
  EXPECT_EQ(run.report, baseline.report)
      << label << " report differs from fused";
  ASSERT_EQ(run.cell_sha256.size(), baseline.cell_sha256.size()) << label;
  for (const auto& [name, sha256] : baseline.cell_sha256) {
    ASSERT_TRUE(run.cell_sha256.count(name)) << label << ": " << name;
    EXPECT_EQ(run.cell_sha256.at(name), sha256)
        << label << ": " << name << " cache record sha256 differs";
  }
}

TEST(WavePlan, FusedBaselineSucceeds) {
  const SuiteRun& baseline = FusedBaseline();
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  EXPECT_FALSE(baseline.report.empty());
  // One cache record per smoke cell; completed runs leave no journals.
  EXPECT_EQ(baseline.cell_sha256.size(), 3u);
}

TEST(WavePlan, NaiveModeIsByteIdenticalToFused) {
  SuiteRun naive = RunSmoke(ExecMode::kNaive, FreshDir("naive"));
  ExpectMatchesBaseline(naive, "naive");
}

TEST(WavePlan, SharedModeIsByteIdenticalToFused) {
  SuiteRun shared = RunSmoke(ExecMode::kShared, FreshDir("shared"));
  ExpectMatchesBaseline(shared, "shared");
}

// The planner's counters are structural, not incidental: one smoke wave of
// 3 cells over 1 dataset builds exactly 1 plan and serves exactly 3 cells
// from it, regardless of thread width or cache state.
TEST(WavePlan, ReuseCountersAreStructural) {
  obs::Counter* built =
      obs::MetricsRegistry::Global().GetCounter("sched.wave_plans_built");
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("sched.plan_reuse_hits");
  uint64_t built_before = built->value();
  uint64_t hits_before = hits->value();
  SuiteRun run = RunSmoke(ExecMode::kFused, FreshDir("counters"));
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(built->value() - built_before, 1u);
  EXPECT_EQ(hits->value() - hits_before, 3u);
}

// Naive mode plans nothing — the counters must not move at all.
TEST(WavePlan, NaiveModeBuildsNoPlans) {
  obs::Counter* built =
      obs::MetricsRegistry::Global().GetCounter("sched.wave_plans_built");
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("sched.plan_reuse_hits");
  uint64_t built_before = built->value();
  uint64_t hits_before = hits->value();
  SuiteRun run = RunSmoke(ExecMode::kNaive, FreshDir("naive_counters"));
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(built->value() - built_before, 0u);
  EXPECT_EQ(hits->value() - hits_before, 0u);
}

// A fault during plan materialization drops only the group's plan: the run
// still succeeds, every cell falls back to the per-cell rebuild path, no
// reuse hit is counted, and the report and cache records stay
// byte-identical to the planned baseline — the cache is not corrupted.
TEST(WavePlan, PlanBuildFaultFallsBackWithoutCorruptingCache) {
  obs::Counter* built =
      obs::MetricsRegistry::Global().GetCounter("sched.wave_plans_built");
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("sched.plan_reuse_hits");
  uint64_t built_before = built->value();
  uint64_t hits_before = hits->value();
  ASSERT_TRUE(FaultInjector::Global().Configure("plan_build:1:1", 1).ok());
  SuiteRun faulted = RunSmoke(ExecMode::kFused, FreshDir("fault"));
  FaultInjector::Global().Reset();
  EXPECT_EQ(built->value() - built_before, 0u);
  EXPECT_EQ(hits->value() - hits_before, 0u);
  ExpectMatchesBaseline(faulted, "plan_build fault");
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
