// Multi-process golden identity for the shard execution layer (DESIGN.md
// Section 16): real forked shard processes — 2 and 4, in both static and
// claim mode — produce the smoke grid over one shared cache directory,
// and the merged report plus every cache record must be byte-identical to
// a single-process baseline. The binary is registered at FAIRCLEAN_THREADS
// 1, 2, and 4 (plain add_test), so the multi-process identity is pinned at
// every suite fan-out width.
//
// Every suite run — baseline, shards, merge — happens in a forked child
// that _exits straight after: the shared fold pool is sized and spawned
// once per process, and threads do not survive fork, so the parent
// process must never run a suite before forking workers.

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_mode.h"
#include "common/safe_io.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace sched {
namespace {

StudyOptions GoldenStudy() {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 42;
  options.exec_mode = ExecModeFromEnv().ValueOrDie();
  return options;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/shard_golden_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SuiteOptions ShardOptions(const std::string& cache_dir,
                          const std::string& report_path) {
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = cache_dir;
  options.threads = 0;  // FAIRCLEAN_THREADS: this registration's width
  options.report_path = report_path;
  return options;
}

/// Forks a child that runs one suite entry point and _exits with 0 on OK.
/// No gtest assertions in the child: it reports through its exit status.
enum class ChildRun { kSingle, kShard, kMerge };

pid_t ForkRun(ChildRun what, const SuiteOptions& options) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  SuiteScheduler scheduler(options);
  Status status;
  switch (what) {
    case ChildRun::kSingle:
      status = scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke"));
      break;
    case ChildRun::kShard:
      status =
          scheduler.RunSuiteShard(PaperSuite(), SuiteFilter::Parse("smoke"));
      break;
    case ChildRun::kMerge:
      status =
          scheduler.RunSuiteMerge(PaperSuite(), SuiteFilter::Parse("smoke"));
      break;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "child run failed: %s\n",
                 status.ToString().c_str());
  }
  _exit(status.ok() ? 0 : 1);
}

[[nodiscard]] bool WaitOk(pid_t pid) {
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid) return false;
  return WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
}

std::map<std::string, std::string> ReadDirFiles(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files[entry.path().filename().string()] =
        ReadFileToString(entry.path().string()).ValueOrDie();
  }
  return files;
}

struct Baseline {
  std::string report;
  std::map<std::string, std::string> files;
};

/// The single-process smoke run every sharded scenario must reproduce byte
/// for byte. Computed once per test process, in a forked child.
const Baseline& GetBaseline() {
  static const Baseline* baseline = [] {
    auto* value = new Baseline();
    std::string dir = FreshDir("baseline");
    std::string report = dir + "/report.json";
    if (!WaitOk(ForkRun(ChildRun::kSingle, ShardOptions(dir + "/cache",
                                                        report)))) {
      return value;  // empty: every test asserts non-empty first
    }
    value->report = ReadFileToString(report).ValueOrDie();
    value->files = ReadDirFiles(dir + "/cache");
    return value;
  }();
  return *baseline;
}

void ExpectMatchesBaseline(const std::string& scenario,
                           const std::string& report_path,
                           const std::string& cache_dir) {
  const Baseline& baseline = GetBaseline();
  ASSERT_FALSE(baseline.report.empty());

  Result<std::string> merged = ReadFileToString(report_path);
  ASSERT_TRUE(merged.ok()) << scenario << ": " << merged.status().ToString();
  EXPECT_EQ(*merged, baseline.report)
      << scenario << ": merged report differs from single-process run";

  std::map<std::string, std::string> files = ReadDirFiles(cache_dir);
  ASSERT_EQ(files.size(), baseline.files.size()) << scenario;
  for (const auto& [name, bytes] : baseline.files) {
    ASSERT_TRUE(files.count(name)) << scenario << ": missing " << name;
    EXPECT_EQ(files.at(name), bytes)
        << scenario << ": " << name << " differs byte-for-byte";
  }
}

void RunShards(ShardMode mode, size_t count, const std::string& scenario) {
  const Baseline& baseline = GetBaseline();
  ASSERT_FALSE(baseline.report.empty()) << "baseline run failed";

  std::string dir = FreshDir(scenario);
  std::string cache = dir + "/cache";
  std::string report = dir + "/report.json";

  // All N shard processes run concurrently over the one cache dir — in
  // claim mode that concurrency IS the scenario (conflicts, cache skips,
  // and the merge election only happen with live siblings).
  std::vector<pid_t> pids;
  for (size_t i = 0; i < count; ++i) {
    SuiteOptions options = ShardOptions(cache, report);
    options.shard.mode = mode;
    options.shard.index = i;
    options.shard.count = count;
    pids.push_back(ForkRun(ChildRun::kShard, options));
  }
  for (pid_t pid : pids) {
    EXPECT_TRUE(WaitOk(pid)) << scenario << ": shard process failed";
  }

  // Every shard leaves its partial report behind.
  for (size_t i = 0; i < count; ++i) {
    SuiteOptions options = ShardOptions(cache, report);
    options.shard.mode = mode;
    options.shard.index = i;
    options.shard.count = count;
    EXPECT_TRUE(std::filesystem::exists(
        SuiteScheduler::PartialReportPath(report, options.shard)))
        << scenario << ": missing partial report of shard " << (i + 1);
  }

  if (mode == ShardMode::kStatic) {
    // Static shards do not merge on their own; run the explicit merge
    // pass (validates partials, then executes over the warm cache).
    ASSERT_TRUE(
        WaitOk(ForkRun(ChildRun::kMerge, ShardOptions(cache, report))))
        << scenario << ": merge process failed";
  }
  // Claim mode: the last finishing shard already won the __merge__
  // election and wrote the merged report itself.

  ExpectMatchesBaseline(scenario, report, cache);
}

TEST(ShardGolden, BaselineChildSucceeds) {
  const Baseline& baseline = GetBaseline();
  ASSERT_FALSE(baseline.report.empty());
  // 3 cache records + 3 class records; the report carries the classifier
  // block the partial reports must agree with.
  EXPECT_EQ(baseline.files.size(), 6u);
  EXPECT_NE(baseline.report.find("\"classifier\":"), std::string::npos);
}

TEST(ShardGolden, StaticTwoShardsMergeMatchesSingleProcess) {
  RunShards(ShardMode::kStatic, 2, "static2");
}

TEST(ShardGolden, StaticFourShardsMergeMatchesSingleProcess) {
  RunShards(ShardMode::kStatic, 4, "static4");
}

TEST(ShardGolden, ClaimTwoShardsAutoMergeMatchesSingleProcess) {
  RunShards(ShardMode::kClaim, 2, "claim2");
}

TEST(ShardGolden, ClaimFourShardsAutoMergeMatchesSingleProcess) {
  RunShards(ShardMode::kClaim, 4, "claim4");
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
