// Golden end-to-end suite test (DESIGN.md Section 9): runs the "smoke"
// subset of the paper grid at a tiny scale and pins the scheduler's
// identity contract — the merged report and every cache record are
// byte-identical between a sequential run, a run at the environment's
// thread width, a pure cache-hit rerun, and a killed-and-resumed run; and
// each cell's cache record matches what a standalone StudyDriver produces,
// verified by sha256 of the exact file bytes.
//
// The binary is registered at FAIRCLEAN_THREADS 1, 2, and 4 (plain add_test
// in tests/CMakeLists.txt): the env-width runs resolve threads = 0 against
// that variable, so each registration checks a different suite fan-out
// against the same sequential baseline.

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_mode.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "exec/study_driver.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"
#include "store/blob_store.h"

namespace fairclean {
namespace sched {
namespace {

StudyOptions GoldenStudy() {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 42;
  // The mode-identity registrations (suite_golden_<mode>_t{1,2,4}) rerun
  // this whole binary with FAIRCLEAN_EXEC_MODE=naive/shared: every golden
  // byte contract must hold unchanged on each rung of the §15 ladder.
  options.exec_mode = ExecModeFromEnv().ValueOrDie();
  return options;
}

std::string FreshDir(const std::string& name) {
  // Per-process paths: the width registrations of this binary run
  // concurrently under ctest -j and must not share cache directories.
  std::string dir = testing::TempDir() + "/suite_golden_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct SuiteRun {
  Status status;
  std::string report;
  /// Cache-file basename -> exact file bytes. Includes the per-cell
  /// "class:" classification records the scheduler persists next to each
  /// cache record — their bytes are part of the identity contract too.
  std::map<std::string, std::string> files;
};

/// Cache records proper, excluding the "class:" classification records.
size_t CacheRecordCount(const std::map<std::string, std::string>& files) {
  size_t count = 0;
  for (const auto& [name, bytes] : files) {
    if (name.rfind("class:", 0) != 0) ++count;
  }
  return count;
}

SuiteRun RunSmoke(size_t threads, const std::string& cache_dir) {
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = cache_dir;
  options.threads = threads;
  SuiteScheduler scheduler(options);
  SuiteRun run;
  run.status = scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke"));
  run.report = scheduler.report_json();
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    if (!entry.is_regular_file()) continue;
    run.files[entry.path().filename().string()] =
        ReadFileToString(entry.path().string()).ValueOrDie();
  }
  return run;
}

// Same smoke run against the paged storage backend. The scheduler is
// scoped so its store handle is closed before the collection pass reopens
// the pages file (the engine is single-process single-writer); records are
// collected through the store — the cache directory holds only
// fairclean.pages, so a directory scan would see nothing.
SuiteRun RunSmokePaged(size_t threads, const std::string& cache_dir) {
  SuiteRun run;
  {
    SuiteOptions options;
    options.study = GoldenStudy();
    options.cache_dir = cache_dir;
    options.threads = threads;
    options.store_backend = "paged";
    SuiteScheduler scheduler(options);
    run.status =
        scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke"));
    run.report = scheduler.report_json();
  }
  Result<std::shared_ptr<store::BlobStore>> blob =
      store::OpenBlobStore(cache_dir, "paged", 256, false);
  if (!blob.ok()) {
    run.status = run.status.ok() ? blob.status() : run.status;
    return run;
  }
  auto* paged = static_cast<store::PagedBlobStore*>(blob->get());
  Result<std::vector<std::string>> keys = paged->paged_store().ListKeys();
  if (!keys.ok()) {
    run.status = run.status.ok() ? keys.status() : run.status;
    return run;
  }
  for (const std::string& key : *keys) {
    run.files[key] = (*blob)->Read(key).ValueOrDie();
  }
  return run;
}

// The sequential (threads = 1) run every scenario must reproduce byte for
// byte. Computed once per process; its cache directory stays on disk for
// the cache-hit and sha256 scenarios.
const std::string& BaselineDir() {
  static const std::string* dir = new std::string(FreshDir("baseline"));
  return *dir;
}

const SuiteRun& Baseline() {
  static const SuiteRun* run = new SuiteRun(RunSmoke(1, BaselineDir()));
  return *run;
}

TEST(SuiteGolden, SequentialBaselineSucceeds) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  EXPECT_FALSE(baseline.report.empty());
  // One cache record plus one "class:" classification record per smoke
  // cell (german missing values x three models); completed runs leave no
  // journals behind.
  EXPECT_EQ(baseline.files.size(), 6u);
  EXPECT_EQ(CacheRecordCount(baseline.files), 3u);
  for (const auto& [name, bytes] : baseline.files) {
    EXPECT_FALSE(bytes.empty()) << name;
  }
  // The report's artifacts block is derived structurally from the graph:
  // the smoke graph is 1 dataset node + 3 cell nodes — 4 distinct
  // artifacts, 3 dataset re-reads by the cell producers.
  EXPECT_NE(
      baseline.report.find("\"artifacts\":{\"produced\":4,\"reused\":3}"),
      std::string::npos)
      << baseline.report;
}

// The full-suite figure output is byte-identical to the standalone fig1 /
// fig2 bodies (RunUnit is the figure benches' path): with both figure
// units in one graph, each unit's rendering — in particular its "summary
// vs paper" counts — must cover that unit's own figure nodes only.
TEST(SuiteGolden, FigureUnitsMatchStandaloneUnitRunsByteForByte) {
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = "";  // figure units never touch the driver cache
  options.threads = 1;

  SuiteSpec spec = PaperSuite();
  std::map<std::string, std::string> standalone;
  for (const SuiteUnit& unit : spec.units) {
    if (unit.kind != SuiteUnit::Kind::kFigure) continue;
    SuiteScheduler scheduler(options);
    testing::internal::CaptureStdout();
    Status status = scheduler.RunUnit(unit);
    standalone[unit.name] = testing::internal::GetCapturedStdout();
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_NE(standalone[unit.name].find("== summary vs paper =="),
              std::string::npos)
        << unit.name;
  }
  ASSERT_EQ(standalone.size(), 2u);

  SuiteScheduler scheduler(options);
  testing::internal::CaptureStdout();
  Status status = scheduler.RunSuite(spec, SuiteFilter::Parse("fig1,fig2"));
  std::string suite_out = testing::internal::GetCapturedStdout();
  ASSERT_TRUE(status.ok()) << status.ToString();

  // RunSuite prints heading + body + "\n" per selected unit, RunUnit
  // prints heading + body; units render in spec order.
  EXPECT_EQ(suite_out,
            standalone.at("fig1") + "\n" + standalone.at("fig2") + "\n");

  // On a fresh run the structurally derived artifacts block must agree
  // with the store's runtime counters, and figure units sharing the five
  // datasets must actually reuse artifacts.
  EXPECT_GT(scheduler.artifacts().reused(), 0u);
  std::string artifacts = StrFormat(
      "\"artifacts\":{\"produced\":%llu,\"reused\":%llu}",
      static_cast<unsigned long long>(scheduler.artifacts().produced()),
      static_cast<unsigned long long>(scheduler.artifacts().reused()));
  EXPECT_NE(scheduler.report_json().find(artifacts), std::string::npos)
      << scheduler.report_json();
}

TEST(SuiteGolden, EnvWidthRunMatchesSequentialByteForByte) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());
  // threads = 0 resolves FAIRCLEAN_THREADS — the width this registration
  // of the binary is pinned to.
  std::string dir = FreshDir("env_width");
  SuiteRun parallel = RunSmoke(0, dir);
  ASSERT_TRUE(parallel.status.ok()) << parallel.status.ToString();
  EXPECT_EQ(parallel.report, baseline.report);
  ASSERT_EQ(parallel.files.size(), baseline.files.size());
  for (const auto& [name, bytes] : baseline.files) {
    ASSERT_TRUE(parallel.files.count(name)) << name;
    EXPECT_EQ(parallel.files.at(name), bytes)
        << name << " differs from the sequential record";
  }
}

TEST(SuiteGolden, RerunOnWarmCacheIsByteIdenticalAndAllHits) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = BaselineDir();
  options.threads = 0;
  SuiteScheduler scheduler(options);
  ASSERT_TRUE(
      scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke")).ok());
  EXPECT_EQ(scheduler.report_json(), baseline.report);
  exec::RunDiagnostics diagnostics = scheduler.AggregateDiagnostics();
  EXPECT_EQ(diagnostics.cache_hits, 3u);
  EXPECT_EQ(diagnostics.repeats_run, 0u);
}

// Each cell's cache record is byte-identical to what a standalone
// StudyDriver (the legacy single-bench path) persists for the same
// configuration, pinned via sha256 of the exact file bytes and
// cross-checked against the scheduler's recorded artifact digest.
TEST(SuiteGolden, CellRecordsMatchStandaloneDriverSha256) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());

  SuiteSpec spec = PaperSuite();
  const SuiteUnit* smoke = nullptr;
  for (const SuiteUnit& unit : spec.units) {
    if (unit.name == "smoke") smoke = &unit;
  }
  ASSERT_NE(smoke, nullptr);
  std::vector<CellKey> cells = UnitCells(*smoke);
  ASSERT_EQ(cells.size(), CacheRecordCount(baseline.files));

  // A scheduler over the baseline cache reports each cell's digest.
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = BaselineDir();
  options.threads = 1;
  SuiteScheduler scheduler(options);

  std::string standalone_dir = FreshDir("standalone");
  for (const CellKey& cell : cells) {
    exec::StudyDriverOptions driver_options;
    driver_options.study = GoldenStudy();
    driver_options.cache_dir = standalone_dir;
    driver_options.threads = 1;
    exec::StudyDriver driver(driver_options);
    Result<GeneratedDataset> dataset =
        MakeSuiteDataset(cell.dataset, driver_options.study.seed);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    ASSERT_TRUE(
        driver.RunOrLoad(*dataset, cell.error_type, cell.model).ok());

    std::string path = exec::StudyDriver::CachePath(
        driver_options, cell.dataset, cell.error_type, cell.model);
    Result<std::string> bytes = ReadFileToString(path);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

    std::string basename = std::filesystem::path(path).filename().string();
    ASSERT_TRUE(baseline.files.count(basename)) << basename;
    EXPECT_EQ(*bytes, baseline.files.at(basename)) << cell.Id();

    Result<std::shared_ptr<const CellArtifact>> artifact =
        scheduler.Cell(cell);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    EXPECT_EQ((*artifact)->cache_file, basename);
    EXPECT_EQ((*artifact)->sha256, Sha256Hex(*bytes)) << cell.Id();
  }
}

// Kill-and-resume: an injected hard interruption fails the run mid-suite;
// rerunning over the same cache directory resumes from the journals and
// converges to the exact baseline bytes.
TEST(SuiteGolden, KillAndResumeReproducesReportAndCache) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());

  std::string dir = FreshDir("resume");
  ASSERT_TRUE(FaultInjector::Global().Configure("interrupt:1:1", 1).ok());
  SuiteRun interrupted = RunSmoke(0, dir);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(interrupted.status.ok())
      << "injected interrupt did not surface";

  SuiteRun resumed = RunSmoke(0, dir);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.report, baseline.report);
  ASSERT_EQ(resumed.files.size(), baseline.files.size());
  for (const auto& [name, bytes] : baseline.files) {
    ASSERT_TRUE(resumed.files.count(name)) << name;
    EXPECT_EQ(resumed.files.at(name), bytes)
        << name << " differs after kill-and-resume";
  }
}

// The paged backend is a pure storage substitution: at this registration's
// env width, the report and every cache record are byte-identical to the
// flat sequential baseline — including the cache_file names the report
// embeds — and the cache directory holds nothing but the pages file.
TEST(SuiteGolden, PagedBackendMatchesFlatBaselineByteForByte) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());

  std::string dir = FreshDir("paged");
  SuiteRun paged = RunSmokePaged(0, dir);
  ASSERT_TRUE(paged.status.ok()) << paged.status.ToString();
  EXPECT_EQ(paged.report, baseline.report);
  ASSERT_EQ(paged.files.size(), baseline.files.size());
  for (const auto& [name, bytes] : baseline.files) {
    ASSERT_TRUE(paged.files.count(name)) << name;
    EXPECT_EQ(paged.files.at(name), bytes)
        << name << " differs between flat and paged backends";
  }

  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(),
              store::PagedBlobStore::kPagesFileName);
  }
  EXPECT_EQ(entries, 1u);
}

// Kill-and-resume on the paged backend: the interrupted transaction must
// cost progress only — the resumed run converges to the flat baseline's
// bytes and the pages file recovers with zero torn pages and no
// quarantined records.
TEST(SuiteGolden, PagedKillAndResumeRecoversWithZeroTornPages) {
  const SuiteRun& baseline = Baseline();
  ASSERT_TRUE(baseline.status.ok());

  std::string dir = FreshDir("paged_resume");
  ASSERT_TRUE(FaultInjector::Global().Configure("interrupt:1:1", 1).ok());
  SuiteRun interrupted = RunSmokePaged(0, dir);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(interrupted.status.ok())
      << "injected interrupt did not surface";

  SuiteRun resumed = RunSmokePaged(0, dir);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.report, baseline.report);
  ASSERT_EQ(resumed.files.size(), baseline.files.size());
  for (const auto& [name, bytes] : baseline.files) {
    ASSERT_TRUE(resumed.files.count(name)) << name;
    EXPECT_EQ(resumed.files.at(name), bytes)
        << name << " differs after paged kill-and-resume";
  }

  Result<std::unique_ptr<store::PagedStore>> engine = store::PagedStore::Open(
      dir + "/" + store::PagedBlobStore::kPagesFileName, {});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Result<store::PagedStore::IntegrityReport> integrity =
      (*engine)->CheckIntegrity();
  ASSERT_TRUE(integrity.ok()) << integrity.status().ToString();
  EXPECT_EQ(integrity->torn_pages, 0u)
      << (integrity->errors.empty() ? std::string()
                                    : integrity->errors.front());
  Result<std::vector<std::string>> keys = (*engine)->ListKeys();
  ASSERT_TRUE(keys.ok());
  for (const std::string& key : *keys) {
    EXPECT_EQ(key.find(".corrupt"), std::string::npos)
        << "quarantined record after paged resume: " << key;
  }
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
