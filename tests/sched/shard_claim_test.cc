// Property tests for the shard coordination layer (DESIGN.md Section 16):
// the 1-based "i/N" spec syntax, the static partition's disjoint-exact-
// cover guarantee over the real paper graph's waves, the pure steal rule
// (ClassifyClaim), the LeaseStore protocol itself — acquire / conflict /
// refresh / expired- and dead-owner steal / release-marker semantics,
// including a forked multi-process single-winner race — and the
// classification plumbing (names, counts, report blocks). Claims must
// never leak into the artifact plane: the lease directory is the only
// place a claim byte lives.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "sched/experiment_graph.h"
#include "sched/shard.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"
#include "store/lease.h"

namespace fairclean {
namespace sched {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/shard_claim_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ShardSpecTest, ParsesOneBasedSyntax) {
  Result<ShardSpec> spec = ParseShardSpec(ShardMode::kStatic, "1/4");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->mode, ShardMode::kStatic);
  EXPECT_EQ(spec->index, 0u);
  EXPECT_EQ(spec->count, 4u);
  EXPECT_TRUE(spec->active());
  EXPECT_EQ(spec->Label(), "shard-1/4");

  spec = ParseShardSpec(ShardMode::kClaim, "4/4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->index, 3u);
  EXPECT_EQ(spec->Label(), "shard-4/4");
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "0/4", "5/4", "1/0", "a/b", "1/4x", "1",
                          "1/", "/4", "-1/4", "1/-4", "1 / 4"}) {
    EXPECT_FALSE(ParseShardSpec(ShardMode::kStatic, bad).ok()) << bad;
  }
}

TEST(ShardSpecTest, InactiveByDefault) {
  ShardSpec spec;
  EXPECT_FALSE(spec.active());
}

// The static partition must be a disjoint exact cover of every wave's cell
// positions for every shard count — over the real paper graph, not a toy:
// a missed or doubled position means a cell the merge would find missing
// or a cell two processes compute.
TEST(StaticShardTest, PartitionIsDisjointExactCoverOfPaperWaves) {
  ExperimentGraph graph = ExperimentGraph::Build(PaperSuite(), SuiteFilter());
  std::vector<size_t> wave_cell_counts;
  for (const std::vector<size_t>& wave : graph.Waves()) {
    size_t cells = 0;
    for (size_t id : wave) {
      if (graph.nodes()[id].kind == NodeKind::kCell) ++cells;
    }
    if (cells > 0) wave_cell_counts.push_back(cells);
  }
  ASSERT_FALSE(wave_cell_counts.empty());

  for (size_t count : {1u, 2u, 3u, 4u, 7u}) {
    for (size_t items : wave_cell_counts) {
      std::set<size_t> seen;
      for (size_t shard = 0; shard < count; ++shard) {
        std::vector<size_t> mine = StaticShardIndices(items, shard, count);
        // Order-preserving within a shard.
        for (size_t i = 1; i < mine.size(); ++i) {
          EXPECT_LT(mine[i - 1], mine[i]);
        }
        for (size_t pos : mine) {
          EXPECT_LT(pos, items);
          EXPECT_TRUE(seen.insert(pos).second)
              << "position " << pos << " assigned twice at N=" << count;
        }
      }
      EXPECT_EQ(seen.size(), items) << "N=" << count;
    }
  }
}

TEST(StaticShardTest, MoreShardsThanItemsLeavesTrailingShardsEmpty) {
  EXPECT_TRUE(StaticShardIndices(2, 2, 4).empty());
  EXPECT_TRUE(StaticShardIndices(2, 3, 4).empty());
  EXPECT_EQ(StaticShardIndices(2, 0, 4), (std::vector<size_t>{0}));
  EXPECT_EQ(StaticShardIndices(2, 1, 4), (std::vector<size_t>{1}));
  EXPECT_TRUE(StaticShardIndices(0, 0, 1).empty());
}

// The whole steal rule as a truth table. ClassifyClaim is pure; Acquire
// merely applies it under the file lock, so this is where the protocol's
// correctness lives.
TEST(ClassifyClaimTest, StealRuleTruthTable) {
  store::LeaseRecord record;
  record.pid = 12345;
  record.deadline_mono_s = 100.0;
  record.generation = 3;

  // Live owner inside its lease: held.
  EXPECT_EQ(store::ClassifyClaim(record, 50.0, true),
            store::ClaimState::kHeld);
  // Live owner past its deadline (wedged): stealable.
  EXPECT_EQ(store::ClassifyClaim(record, 100.5, true),
            store::ClaimState::kStealable);
  // Dead owner, deadline irrelevant: stealable.
  EXPECT_EQ(store::ClassifyClaim(record, 50.0, false),
            store::ClaimState::kStealable);
  EXPECT_EQ(store::ClassifyClaim(record, 100.5, false),
            store::ClaimState::kStealable);
  // Released record: free, never a steal.
  record.pid = 0;
  EXPECT_EQ(store::ClassifyClaim(record, 50.0, false),
            store::ClaimState::kFree);
  EXPECT_EQ(store::ClassifyClaim(record, 100.5, true),
            store::ClaimState::kFree);
}

TEST(LeaseRecordTest, EncodeDecodeRoundTrip) {
  store::LeaseRecord record;
  record.pid = 4242;
  record.deadline_mono_s = 1234.56789;
  record.generation = 17;
  record.owner = "shard-2/4";
  Result<store::LeaseRecord> decoded =
      store::LeaseStore::Decode(store::LeaseStore::Encode(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->pid, record.pid);
  EXPECT_NEAR(decoded->deadline_mono_s, record.deadline_mono_s, 1e-6);
  EXPECT_EQ(decoded->generation, record.generation);
  EXPECT_EQ(decoded->owner, record.owner);
}

TEST(LeaseStoreTest, AcquireRefreshReleaseLifecycle) {
  store::LeaseStore store(FreshDir("lifecycle"));
  Result<store::LeaseToken> token = store.Acquire("cell-a", "me", 30.0);
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  EXPECT_FALSE(token->stolen);
  EXPECT_EQ(token->key, "cell-a");

  Result<store::LeaseRecord> record = store.Read("cell-a");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->pid, static_cast<int64_t>(::getpid()));
  EXPECT_EQ(record->owner, "me");
  EXPECT_FALSE(record->released());

  ASSERT_TRUE(store.Refresh(*token, 30.0).ok());
  ASSERT_TRUE(store.Release(*token).ok());

  // Release writes a released marker, never unlinks: the file must still
  // exist (unlink under flock reopens the orphan-inode race) and read as
  // free.
  record = store.Read("cell-a");
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(record->released());

  // A fresh acquire of the released key is not a steal.
  token = store.Acquire("cell-a", "me-again", 30.0);
  ASSERT_TRUE(token.ok());
  EXPECT_FALSE(token->stolen);
}

TEST(LeaseStoreTest, ReadOfUnknownKeyIsNotFound) {
  store::LeaseStore store(FreshDir("unknown"));
  Result<store::LeaseRecord> record = store.Read("never-acquired");
  EXPECT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kNotFound);
}

TEST(LeaseStoreTest, GenerationGrowsAcrossOwnershipChanges) {
  store::LeaseStore store(FreshDir("generation"));
  Result<store::LeaseToken> first = store.Acquire("cell-g", "a", 30.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(store.Release(*first).ok());
  Result<store::LeaseToken> second = store.Acquire("cell-g", "b", 30.0);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->generation, first->generation);
}

TEST(LeaseStoreTest, HeldByLiveProcessIsUnavailableAcrossProcesses) {
  std::string dir = FreshDir("held");
  store::LeaseStore store(dir);
  Result<store::LeaseToken> mine = store.Acquire("cell-h", "parent", 60.0);
  ASSERT_TRUE(mine.ok());

  // A forked child (distinct pid) must see the parent's live lease as
  // held, not free and not stealable.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    store::LeaseStore child_store(dir);
    Result<store::LeaseToken> theirs =
        child_store.Acquire("cell-h", "child", 60.0);
    if (theirs.ok()) _exit(10);
    _exit(theirs.status().code() == StatusCode::kUnavailable ? 0 : 11);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0)
      << "child acquire of a live held lease did not fail Unavailable";
  ASSERT_TRUE(store.Release(*mine).ok());
}

TEST(LeaseStoreTest, DeadOwnersClaimIsStolenWithJournalIntact) {
  std::string dir = FreshDir("dead");
  // A child acquires the claim and dies without releasing.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    store::LeaseStore child_store(dir);
    Result<store::LeaseToken> token =
        child_store.Acquire("cell-d", "victim", 3600.0);
    _exit(token.ok() ? 0 : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);

  store::LeaseStore store(dir);
  Result<store::LeaseRecord> record = store.Read("cell-d");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->pid, static_cast<int64_t>(pid));
  EXPECT_FALSE(store::PidAlive(record->pid));
  EXPECT_EQ(store::ClassifyClaim(*record, store::MonotonicSeconds(),
                                 store::PidAlive(record->pid)),
            store::ClaimState::kStealable);

  // Stealing from the dead owner works immediately — no need to wait out
  // the hour-long lease — and the token says so.
  Result<store::LeaseToken> stolen = store.Acquire("cell-d", "thief", 30.0);
  ASSERT_TRUE(stolen.ok()) << stolen.status().ToString();
  EXPECT_TRUE(stolen->stolen);
  EXPECT_GT(stolen->generation, 1u);
}

TEST(LeaseStoreTest, ExpiredLeaseOfLiveProcessIsStolen) {
  std::string dir = FreshDir("expired");
  store::LeaseStore store(dir);
  // The parent holds with a microscopic lease, then a forked child (live
  // but distinct pid) steals after the deadline passes.
  Result<store::LeaseToken> mine = store.Acquire("cell-e", "slow", 0.01);
  ASSERT_TRUE(mine.ok());
  usleep(50 * 1000);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    store::LeaseStore child_store(dir);
    Result<store::LeaseToken> token =
        child_store.Acquire("cell-e", "thief", 30.0);
    if (!token.ok()) _exit(1);
    _exit(token->stolen ? 0 : 2);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0)
      << "expired lease of a live owner was not stolen";

  // The original owner lost the key: Refresh must refuse, so the loser
  // knows to stop trusting its claim.
  EXPECT_FALSE(store.Refresh(*mine, 30.0).ok());
  // Releasing the stolen-away token is a harmless no-op; the thief's
  // record survives.
  EXPECT_TRUE(store.Release(*mine).ok());
  Result<store::LeaseRecord> record = store.Read("cell-e");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->owner, "thief");
}

// The single-winner race, with real processes: N forked children race to
// acquire one free key. Exactly one may win. The children synchronize
// through pipes so no winner can exit (and look dead) before every
// sibling has attempted its acquire.
TEST(LeaseStoreTest, ForkedRaceHasExactlyOneWinner) {
  std::string dir = FreshDir("race");
  constexpr int kChildren = 8;

  int report_pipe[2];  // children -> parent: one result byte each
  int gate_pipe[2];    // parent -> children: closed when all reported
  ASSERT_EQ(pipe(report_pipe), 0);
  ASSERT_EQ(pipe(gate_pipe), 0);

  std::vector<pid_t> pids;
  for (int i = 0; i < kChildren; ++i) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(report_pipe[0]);
      close(gate_pipe[1]);
      store::LeaseStore store(dir);
      Result<store::LeaseToken> token =
          store.Acquire("contested", "racer", 3600.0);
      char result;
      if (token.ok()) {
        result = token->stolen ? 'S' : 'W';
      } else {
        result =
            token.status().code() == StatusCode::kUnavailable ? 'L' : 'E';
      }
      (void)!write(report_pipe[1], &result, 1);
      // Stay alive (pid valid, lease held) until the parent has every
      // result: a winner that exited early would read as dead and allow a
      // legitimate second winner via the steal rule.
      char gate;
      (void)!read(gate_pipe[0], &gate, 1);
      _exit(0);
    }
    pids.push_back(pid);
  }
  close(report_pipe[1]);
  close(gate_pipe[0]);

  int winners = 0, losers = 0, steals = 0, errors = 0;
  for (int i = 0; i < kChildren; ++i) {
    char result = 0;
    ASSERT_EQ(read(report_pipe[0], &result, 1), 1);
    if (result == 'W') ++winners;
    if (result == 'L') ++losers;
    if (result == 'S') ++steals;
    if (result == 'E') ++errors;
  }
  close(gate_pipe[1]);  // open the gate: children may exit
  for (pid_t pid : pids) {
    int wstatus = 0;
    EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
  }
  close(report_pipe[0]);

  EXPECT_EQ(winners, 1);
  EXPECT_EQ(steals, 0);
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(losers, kChildren - 1);
}

// Claims are coordination state, not artifacts: everything the LeaseStore
// writes lives under the claims/ subdirectory, so a top-level scan of the
// cache dir — which is exactly what the golden byte-identity comparisons
// do — sees no lease bytes, and artifact-reuse counters cannot tick for
// them.
TEST(LeaseStoreTest, ClaimFilesStayOutOfTheCacheDirTopLevel) {
  std::string cache = FreshDir("cache_plane");
  store::LeaseStore store(cache + "/claims");
  ASSERT_TRUE(store.Acquire(ClaimKeyFor(CellKey{"german", "missing_values",
                                                "xgboost"}),
                            "shard-1/2", 30.0)
                  .ok());
  size_t top_level_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(cache)) {
    if (entry.is_regular_file()) ++top_level_files;
  }
  EXPECT_EQ(top_level_files, 0u);
  EXPECT_FALSE(std::filesystem::is_empty(cache + "/claims"));
}

TEST(ShardClassTest, ClaimAndClassKeysAreNamespaced) {
  CellKey cell{"german", "missing_values", "xgboost"};
  EXPECT_EQ(ClaimKeyFor(cell), "claim:" + cell.Id());
  EXPECT_EQ(ClassKeyFor("german_x.json"), "class:german_x.json");
}

TEST(ShardClassTest, ClassNamesRoundTrip) {
  for (CellClass cls :
       {CellClass::kStolen, CellClass::kBudgetExceeded, CellClass::kSkipped,
        CellClass::kDegenerateRetry, CellClass::kPass}) {
    Result<CellClass> parsed = CellClassFromName(CellClassName(cls));
    ASSERT_TRUE(parsed.ok()) << CellClassName(cls);
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(CellClassFromName("bogus").ok());
  EXPECT_FALSE(CellClassFromName("").ok());
}

TEST(ShardClassTest, ClassifierCountsRenderFixedKeyOrder) {
  ClassifierCounts counts;
  counts.Add(CellClass::kPass);
  counts.Add(CellClass::kPass);
  counts.Add(CellClass::kDegenerateRetry);
  counts.Add(CellClass::kStolen);
  EXPECT_EQ(counts.ToJson(),
            "{\"pass\":2,\"degenerate_retry\":1,\"skipped\":0,"
            "\"budget_exceeded\":0,\"stolen\":1}");
}

TEST(ShardReportTest, PartialReportPathEmbedsOneBasedIndex) {
  Result<ShardSpec> spec = ParseShardSpec(ShardMode::kClaim, "2/4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(SuiteScheduler::PartialReportPath("out/report.json", *spec),
            "out/report.json.shard2of4");
}

TEST(ShardOptionsTest, LeaseSecondsKnobParsesStrictly) {
  ASSERT_EQ(setenv("FAIRCLEAN_SHARD_LEASE_S", "12.5", 1), 0);
  Result<SuiteOptions> options = TrySuiteOptionsFromEnv();
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_DOUBLE_EQ(options->shard_lease_s, 12.5);

  for (const char* bad : {"0", "-1", "abc", "1.5x", "nan"}) {
    ASSERT_EQ(setenv("FAIRCLEAN_SHARD_LEASE_S", bad, 1), 0);
    EXPECT_FALSE(TrySuiteOptionsFromEnv().ok()) << bad;
  }
  ASSERT_EQ(unsetenv("FAIRCLEAN_SHARD_LEASE_S"), 0);
  options = TrySuiteOptionsFromEnv();
  ASSERT_TRUE(options.ok());
  EXPECT_DOUBLE_EQ(options->shard_lease_s, 30.0);
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
