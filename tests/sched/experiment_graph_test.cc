// Structural properties of the suite DAG: creation-ordered node ids (a
// regression guard — ids assigned before a dependency lookup that appends a
// node once corrupted the value slots), dataset/cell deduplication across
// units, wave consistency, filter semantics, and the resolve-once contract
// of SuiteOptionsFromEnv.

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/experiment_graph.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace sched {
namespace {

ExperimentGraph BuildWithFilter(const std::string& filter_csv) {
  return ExperimentGraph::Build(PaperSuite(), SuiteFilter::Parse(filter_csv));
}

// Node ids must equal their index in nodes(): everything downstream
// (node_values_ slots, dep edges, wave ordering) indexes by id. The "smoke"
// build is the historical regression case — its table unit is the first to
// request a dataset node, so an id taken before the dependency lookup
// appends that node is stale.
TEST(ExperimentGraph, NodeIdsMatchIndices) {
  for (const std::string& filter : {std::string(), std::string("smoke"),
                                    std::string("fig1"),
                                    std::string("table_models")}) {
    ExperimentGraph graph = BuildWithFilter(filter);
    ASSERT_FALSE(graph.nodes().empty()) << "filter=" << filter;
    for (size_t i = 0; i < graph.nodes().size(); ++i) {
      EXPECT_EQ(graph.nodes()[i].id, i) << "filter=" << filter;
    }
  }
}

TEST(ExperimentGraph, DepsAreValidAndAcyclicByConstruction) {
  ExperimentGraph graph = BuildWithFilter("");
  for (const GraphNode& node : graph.nodes()) {
    for (size_t dep : node.deps) {
      ASSERT_LT(dep, graph.nodes().size());
      // Creation order is a topological order: deps precede their node.
      EXPECT_LT(dep, node.id);
    }
  }
}

TEST(ExperimentGraph, CellNodesDependOnExactlyTheirDataset) {
  ExperimentGraph graph = BuildWithFilter("");
  size_t cells = 0;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kCell) continue;
    ++cells;
    ASSERT_EQ(node.deps.size(), 1u) << node.label;
    const GraphNode& dep = graph.nodes()[node.deps[0]];
    EXPECT_EQ(dep.kind, NodeKind::kDataset) << node.label;
    EXPECT_EQ(dep.dataset, node.cell.dataset) << node.label;
  }
  EXPECT_EQ(cells, graph.CountKind(NodeKind::kCell));
}

// Content addressing at the graph level: one node per dataset and per cell
// key, no matter how many units consume them. The model unit spans all
// three scopes and must add zero new cell nodes.
TEST(ExperimentGraph, SharedDatasetAndCellNodesAreDeduplicated) {
  ExperimentGraph graph = BuildWithFilter("");
  std::set<std::string> datasets;
  std::set<std::string> cells;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == NodeKind::kDataset) {
      EXPECT_TRUE(datasets.insert(node.dataset).second)
          << "duplicate dataset node " << node.dataset;
    } else if (node.kind == NodeKind::kCell) {
      EXPECT_TRUE(cells.insert(node.cell.Id()).second)
          << "duplicate cell node " << node.cell.Id();
    }
  }

  SuiteSpec spec = PaperSuite();
  std::set<std::string> expected_cells;
  size_t with_repetition = 0;
  for (size_t index : graph.selected_units()) {
    for (const CellKey& cell : UnitCells(spec.units[index])) {
      expected_cells.insert(cell.Id());
      ++with_repetition;
    }
  }
  EXPECT_EQ(cells, expected_cells);
  // The model-table unit re-consumes every table unit's cells, so the
  // deduplicated count is well below the with-repetition count.
  EXPECT_LT(cells.size(), with_repetition);
}

TEST(ExperimentGraph, WavesPartitionNodesAndRespectDependencies) {
  ExperimentGraph graph = BuildWithFilter("");
  std::vector<std::vector<size_t>> waves = graph.Waves();
  std::map<size_t, size_t> wave_of;
  size_t total = 0;
  for (size_t w = 0; w < waves.size(); ++w) {
    size_t previous = 0;
    for (size_t i = 0; i < waves[w].size(); ++i) {
      size_t id = waves[w][i];
      ASSERT_TRUE(wave_of.emplace(id, w).second) << "node in two waves";
      if (i > 0) {
        EXPECT_GT(id, previous) << "ids not ascending in wave";
      }
      previous = id;
      ++total;
    }
  }
  ASSERT_EQ(total, graph.nodes().size());
  for (const GraphNode& node : graph.nodes()) {
    for (size_t dep : node.deps) {
      EXPECT_LT(wave_of.at(dep), wave_of.at(node.id))
          << node.label << " not strictly after its dependency";
    }
  }
  // Wave 0 is exactly the dependency-free nodes (the datasets).
  for (size_t id : waves.empty() ? std::vector<size_t>{} : waves[0]) {
    EXPECT_TRUE(graph.nodes()[id].deps.empty());
  }
}

TEST(ExperimentGraph, DefaultBuildExcludesFilterOnlyUnits) {
  SuiteSpec spec = PaperSuite();
  ExperimentGraph graph = BuildWithFilter("");
  for (size_t index : graph.selected_units()) {
    EXPECT_FALSE(spec.units[index].only_on_filter)
        << spec.units[index].name << " selected without a filter";
  }
  EXPECT_TRUE(graph.narrowed_units().empty());
}

TEST(ExperimentGraph, SmokeFilterSelectsOnlyTheSmokeUnit) {
  SuiteSpec spec = PaperSuite();
  ExperimentGraph graph = BuildWithFilter("smoke");
  ASSERT_EQ(graph.selected_units().size(), 1u);
  EXPECT_EQ(spec.units[graph.selected_units()[0]].name, "smoke");
  EXPECT_TRUE(graph.narrowed_units().empty());
  // One dataset, its three model cells, and the unit's table aggregation.
  EXPECT_EQ(graph.CountKind(NodeKind::kDataset), 1u);
  EXPECT_EQ(graph.CountKind(NodeKind::kCell), 3u);
}

TEST(ExperimentGraph, CellTokenNarrowsItsUnit) {
  ExperimentGraph graph = BuildWithFilter("german/missing_values/knn");
  EXPECT_EQ(graph.CountKind(NodeKind::kCell), 1u);
  EXPECT_FALSE(graph.narrowed_units().empty());
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == NodeKind::kCell) {
      EXPECT_EQ(node.cell.Id(), "german/missing_values/knn");
    }
  }
}

// Satellite contract: suite options are resolved from the environment
// exactly once, at the SuiteOptionsFromEnv call — a later environment
// change must not leak into an already-resolved options struct, and a new
// call must observe it.
TEST(SuiteOptions, EnvironmentIsResolvedOnceAtTheCall) {
  ASSERT_EQ(::setenv("FAIRCLEAN_SAMPLE", "777", 1), 0);
  ASSERT_EQ(::setenv("FAIRCLEAN_MAX_RETRIES", "5", 1), 0);
  SuiteOptions first = SuiteOptionsFromEnv();
  EXPECT_EQ(first.study.sample_size, 777u);
  EXPECT_EQ(first.max_retries, 5u);

  ASSERT_EQ(::setenv("FAIRCLEAN_SAMPLE", "888", 1), 0);
  EXPECT_EQ(first.study.sample_size, 777u);
  SuiteOptions second = SuiteOptionsFromEnv();
  EXPECT_EQ(second.study.sample_size, 888u);

  ASSERT_EQ(::unsetenv("FAIRCLEAN_SAMPLE"), 0);
  ASSERT_EQ(::unsetenv("FAIRCLEAN_MAX_RETRIES"), 0);
  SuiteOptions defaults = SuiteOptionsFromEnv();
  EXPECT_EQ(defaults.study.sample_size, 3500u);
  EXPECT_EQ(defaults.max_retries, 2u);
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
