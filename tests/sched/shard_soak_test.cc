// Kill -9 work-stealing soak for the claim shard layer (DESIGN.md Section
// 16): a claiming shard process — with write faults armed — SIGKILLs
// itself at its first successful journal checkpoint, mid-cell, holding
// every claim of the wave. A survivor shard started afterwards must see
// the dead owner's claims as stealable, steal them, resume the victim's
// partial repeats from its journal, auto-merge, and converge to the exact
// bytes of an unfaulted single-process run — with the stolen cells
// classified "stolen" in the merged report and zero quarantined files.
//
// All suite runs happen in forked children (threads never survive fork;
// see shard_golden_test.cc), and the victim's crash point is the
// scheduler's cell checkpoint hook — deterministic, because the hook only
// fires after a journal record is durably on disk.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_mode.h"
#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"
#include "store/lease.h"

namespace fairclean {
namespace sched {
namespace {

StudyOptions GoldenStudy() {
  StudyOptions options;
  options.sample_size = 300;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 42;
  options.exec_mode = ExecModeFromEnv().ValueOrDie();
  return options;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/shard_soak_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SuiteOptions SoakOptions(const std::string& cache_dir,
                         const std::string& report_path) {
  SuiteOptions options;
  options.study = GoldenStudy();
  options.cache_dir = cache_dir;
  options.report_path = report_path;
  return options;
}

std::map<std::string, std::string> ReadCacheRecords(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("class:", 0) == 0) continue;  // classes diverge: stolen
    files[name] = ReadFileToString(entry.path().string()).ValueOrDie();
  }
  return files;
}

TEST(ShardSoak, KilledClaimShardIsStolenResumedAndByteIdentical) {
  // Unfaulted single-process baseline in its own cache dir.
  std::string baseline_dir = FreshDir("baseline");
  std::string baseline_report = baseline_dir + "/report.json";
  pid_t baseline_pid = fork();
  ASSERT_GE(baseline_pid, 0);
  if (baseline_pid == 0) {
    SuiteScheduler scheduler(
        SoakOptions(baseline_dir + "/cache", baseline_report));
    Status status =
        scheduler.RunSuite(PaperSuite(), SuiteFilter::Parse("smoke"));
    _exit(status.ok() ? 0 : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(baseline_pid, &wstatus, 0), baseline_pid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "baseline run failed";

  std::string dir = FreshDir("soak");
  std::string cache = dir + "/cache";
  std::string report = dir + "/report.json";

  // The victim: claim shard 1/2, sequential for a deterministic fault
  // draw order, cache-write faults armed (page_write rides along but the
  // flat backend never probes it), SIGKILLing itself at the first
  // successful journal checkpoint. At width 1 the guided claim chunk is
  // one cell, so the victim dies holding exactly the first wave cell's
  // claim, with one repeat of it durably journaled.
  pid_t victim = fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    if (!FaultInjector::Global()
             .Configure("cache_write:0.25,page_write:0.25", 11)
             .ok()) {
      _exit(2);
    }
    SuiteOptions options = SoakOptions(cache, report);
    options.threads = 1;
    options.shard.mode = ShardMode::kClaim;
    options.shard.index = 0;
    options.shard.count = 2;
    SuiteScheduler scheduler(options);
    scheduler.set_cell_checkpoint_hook(
        [](const CellKey&) { raise(SIGKILL); });
    Status status =
        scheduler.RunSuiteShard(PaperSuite(), SuiteFilter::Parse("smoke"));
    // Reaching here means the hook never fired: fail loudly instead of
    // masquerading as a crash.
    _exit(status.ok() ? 3 : 4);
  }
  ASSERT_EQ(waitpid(victim, &wstatus, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "victim exited instead of dying at its checkpoint: status "
      << wstatus;
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The victim died holding its claimed cell: that lease must read as the
  // dead pid's and classify stealable — immediately, without waiting out
  // the lease, because the owner is gone. Exactly one claim exists (the
  // guided chunk at width 1 is one cell); the rest of the wave was never
  // claimed.
  store::LeaseStore leases(cache + "/claims");
  SuiteSpec spec = PaperSuite();
  const SuiteUnit* smoke = nullptr;
  for (const SuiteUnit& unit : spec.units) {
    if (unit.name == "smoke") smoke = &unit;
  }
  ASSERT_NE(smoke, nullptr);
  std::vector<CellKey> cells = UnitCells(*smoke);
  ASSERT_EQ(cells.size(), 3u);
  size_t dead_claims = 0;
  for (const CellKey& cell : cells) {
    Result<store::LeaseRecord> record = leases.Read(ClaimKeyFor(cell));
    if (!record.ok()) continue;  // never claimed
    ++dead_claims;
    EXPECT_EQ(record->pid, static_cast<int64_t>(victim)) << cell.Id();
    EXPECT_FALSE(record->released()) << cell.Id();
    EXPECT_EQ(store::ClassifyClaim(*record, store::MonotonicSeconds(),
                                   store::PidAlive(record->pid)),
              store::ClaimState::kStealable)
        << cell.Id();
  }
  EXPECT_EQ(dead_claims, 1u);

  // The kill fired after a durable journal write: the partial repeats the
  // survivor must resume are on disk.
  size_t journals = 0;
  for (const auto& entry : std::filesystem::directory_iterator(cache)) {
    if (entry.path().filename().string().find(".journal") !=
        std::string::npos) {
      ++journals;
    }
  }
  EXPECT_GE(journals, 1u) << "victim left no journal to resume";

  // The survivor: claim shard 2/2, unfaulted. It must steal the dead
  // claim, resume its journaled repeats rather than recompute them, claim
  // the untouched cells normally, and — as the only finisher — win the
  // merge election and assemble the merged report itself.
  pid_t survivor = fork();
  ASSERT_GE(survivor, 0);
  if (survivor == 0) {
    SuiteOptions options = SoakOptions(cache, report);
    options.shard.mode = ShardMode::kClaim;
    options.shard.index = 1;
    options.shard.count = 2;
    SuiteScheduler scheduler(options);
    Status status =
        scheduler.RunSuiteShard(PaperSuite(), SuiteFilter::Parse("smoke"));
    if (!status.ok()) {
      std::fprintf(stderr, "survivor failed: %s\n",
                   status.ToString().c_str());
      _exit(1);
    }
    exec::RunDiagnostics diagnostics = scheduler.AggregateDiagnostics();
    if (diagnostics.journal_resumes < 1) _exit(5);
    if (diagnostics.repeats_resumed < 1) _exit(6);
    _exit(0);
  }
  ASSERT_EQ(waitpid(survivor, &wstatus, 0), survivor);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0)
      << "survivor failed (5: no journal resume, 6: no repeats resumed)";

  // The survivor's partial report counts the steal and classifies the
  // stolen cell, and so does the merged report it assembled (the class
  // records persist the classification across the merge's cache hits).
  // The stolen cell is german/log-reg — degenerate-retry in the baseline,
  // but stolen takes precedence; the other two cells pass.
  SuiteOptions probe = SoakOptions(cache, report);
  probe.shard.mode = ShardMode::kClaim;
  probe.shard.index = 1;
  probe.shard.count = 2;
  Result<std::string> partial = ReadFileToString(
      SuiteScheduler::PartialReportPath(report, probe.shard));
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_NE(partial->find("\"steals\":1"), std::string::npos) << *partial;
  EXPECT_NE(partial->find("\"produced\":3"), std::string::npos) << *partial;
  EXPECT_NE(partial->find("\"classifier\":{\"pass\":2,"
                          "\"degenerate_retry\":0,\"skipped\":0,"
                          "\"budget_exceeded\":0,\"stolen\":1}"),
            std::string::npos)
      << *partial;

  Result<std::string> merged = ReadFileToString(report);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_NE(merged->find("\"classifier\":{\"pass\":2,"
                         "\"degenerate_retry\":0,\"skipped\":0,"
                         "\"budget_exceeded\":0,\"stolen\":1}"),
            std::string::npos)
      << *merged;

  // Crash-safety payoff: every cache record converges to the unfaulted
  // baseline's exact bytes, no file was quarantined, and no journal
  // outlives its completed cell.
  std::map<std::string, std::string> baseline_files =
      ReadCacheRecords(baseline_dir + "/cache");
  std::map<std::string, std::string> soak_files = ReadCacheRecords(cache);
  ASSERT_EQ(baseline_files.size(), 3u);
  ASSERT_EQ(soak_files.size(), baseline_files.size());
  for (const auto& [name, bytes] : baseline_files) {
    ASSERT_TRUE(soak_files.count(name)) << name;
    EXPECT_EQ(soak_files.at(name), bytes)
        << name << " differs from the unfaulted baseline";
  }
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".corrupt"), std::string::npos)
        << "quarantined file after soak: " << entry.path();
    EXPECT_EQ(name.find(".journal"), std::string::npos)
        << "stale journal after soak: " << entry.path();
  }

  // Apart from the classifier/class divergence (stolen vs pass), the
  // merged report matches the baseline: stripping both runs' class
  // annotations yields identical bytes.
  Result<std::string> baseline_bytes = ReadFileToString(baseline_report);
  ASSERT_TRUE(baseline_bytes.ok());
  auto strip_classes = [](std::string text) {
    for (const char* cls :
         {"\"stolen\"", "\"pass\"", "\"degenerate_retry\""}) {
      size_t pos;
      const std::string needle = std::string("\"class\":") + cls + ",";
      while ((pos = text.find(needle)) != std::string::npos) {
        text.erase(pos, needle.size());
      }
    }
    const std::string classifier = "\"classifier\":{";
    size_t start = text.find(classifier);
    if (start != std::string::npos) {
      size_t end = text.find('}', start);
      if (end != std::string::npos) {
        text.erase(start, end - start + 1);
      }
    }
    return text;
  };
  EXPECT_EQ(strip_classes(*merged), strip_classes(*baseline_bytes));
}

}  // namespace
}  // namespace sched
}  // namespace fairclean
