#include "core/disparity.h"

#include <gtest/gtest.h>

#include "datasets/generator.h"

namespace fairclean {
namespace {

TEST(DisparityTest, SingleAttributeRowsCoverAllGroupDetectorPairs) {
  Rng rng(1);
  GeneratedDataset dataset = MakeDataset("german", 1000, &rng).ValueOrDie();
  DisparityOptions options;
  Rng analysis_rng(2);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, /*intersectional=*/false, options,
                         &analysis_rng);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // german: 5 detectors x 2 sensitive attributes.
  EXPECT_EQ(rows->size(), 10u);
  for (const DisparityRow& row : *rows) {
    EXPECT_EQ(row.dataset, "german");
    EXPECT_FALSE(row.intersectional);
    EXPECT_EQ(row.privileged_total + row.disadvantaged_total,
              dataset.frame.num_rows());
    EXPECT_LE(row.privileged_flagged, row.privileged_total);
    EXPECT_LE(row.disadvantaged_flagged, row.disadvantaged_total);
    EXPECT_GE(row.g2.p_value, 0.0);
    EXPECT_LE(row.g2.p_value, 1.0);
  }
}

TEST(DisparityTest, IntersectionalRowsExcludeMixedTuples) {
  Rng rng(3);
  GeneratedDataset dataset = MakeDataset("heart", 3000, &rng).ValueOrDie();
  DisparityOptions options;
  Rng analysis_rng(4);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, /*intersectional=*/true, options,
                         &analysis_rng);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  for (const DisparityRow& row : *rows) {
    EXPECT_TRUE(row.intersectional);
    EXPECT_EQ(row.group_key, "sex*age");
    EXPECT_LT(row.privileged_total + row.disadvantaged_total,
              dataset.frame.num_rows());
  }
}

TEST(DisparityTest, CreditHasNoIntersectionalDefinition) {
  Rng rng(5);
  GeneratedDataset dataset = MakeDataset("credit", 2000, &rng).ValueOrDie();
  DisparityOptions options;
  Rng analysis_rng(6);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, /*intersectional=*/true, options,
                         &analysis_rng);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(DisparityTest, DetectorFilterRestrictsAnalysis) {
  Rng rng(7);
  GeneratedDataset dataset = MakeDataset("adult", 2000, &rng).ValueOrDie();
  DisparityOptions options;
  options.detectors = {"missing_values"};
  Rng analysis_rng(8);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, false, options, &analysis_rng);
  ASSERT_TRUE(rows.ok());
  for (const DisparityRow& row : *rows) {
    EXPECT_EQ(row.detector, "missing_values");
  }
}

TEST(DisparityTest, AdultMissingValuesDisparityIsSignificant) {
  // The generator plants higher missingness for disadvantaged groups in
  // adult (the paper's RQ1 headline finding); with 12k rows the G^2 test
  // must pick it up.
  Rng rng(9);
  GeneratedDataset dataset = MakeDataset("adult", 0, &rng).ValueOrDie();
  DisparityOptions options;
  options.detectors = {"missing_values"};
  Rng analysis_rng(10);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, false, options, &analysis_rng);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);  // sex and race
  for (const DisparityRow& row : *rows) {
    EXPECT_TRUE(row.significant) << row.group_key;
    EXPECT_GT(row.DisadvantagedFraction(), row.PrivilegedFraction())
        << row.group_key;
  }
}

TEST(DisparityTest, FormatProducesOneLinePerRow) {
  Rng rng(11);
  GeneratedDataset dataset = MakeDataset("german", 500, &rng).ValueOrDie();
  DisparityOptions options;
  options.detectors = {"missing_values", "outliers-sd"};
  Rng analysis_rng(12);
  std::vector<DisparityRow> rows =
      AnalyzeDisparities(dataset, false, options, &analysis_rng)
          .ValueOrDie();
  std::string table = FormatDisparityTable(rows);
  size_t lines = static_cast<size_t>(
      std::count(table.begin(), table.end(), '\n'));
  EXPECT_EQ(lines, rows.size() + 2);  // header + separator + rows
  EXPECT_NE(table.find("german"), std::string::npos);
}

TEST(DisparityRowTest, FractionsHandleEmptyGroups) {
  DisparityRow row;
  EXPECT_DOUBLE_EQ(row.PrivilegedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(row.DisadvantagedFraction(), 0.0);
  row.privileged_total = 10;
  row.privileged_flagged = 3;
  EXPECT_DOUBLE_EQ(row.PrivilegedFraction(), 0.3);
}

}  // namespace
}  // namespace fairclean
