#include "core/cleaning.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datasets/generator.h"

namespace fairclean {
namespace {

TEST(CleaningMethodsTest, MissingValuesHasSixCombinations) {
  Result<std::vector<CleaningMethod>> methods =
      CleaningMethodsFor("missing_values");
  ASSERT_TRUE(methods.ok());
  EXPECT_EQ(methods->size(), 6u);
  std::set<std::string> names;
  for (const CleaningMethod& method : *methods) names.insert(method.Name());
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.count("impute_mean_dummy"));
  EXPECT_TRUE(names.count("impute_mode_mode"));
}

TEST(CleaningMethodsTest, OutliersHasNineCombinations) {
  Result<std::vector<CleaningMethod>> methods = CleaningMethodsFor("outliers");
  ASSERT_TRUE(methods.ok());
  EXPECT_EQ(methods->size(), 9u);
  std::set<std::string> names;
  for (const CleaningMethod& method : *methods) names.insert(method.Name());
  EXPECT_TRUE(names.count("outliers-iqr__impute_median"));
  EXPECT_TRUE(names.count("outliers-if__impute_mode"));
}

TEST(CleaningMethodsTest, MislabelsHasOne) {
  Result<std::vector<CleaningMethod>> methods =
      CleaningMethodsFor("mislabels");
  ASSERT_TRUE(methods.ok());
  ASSERT_EQ(methods->size(), 1u);
  EXPECT_EQ((*methods)[0].Name(), "flip_mislabels");
}

TEST(CleaningMethodsTest, UnknownErrorTypeFails) {
  EXPECT_FALSE(CleaningMethodsFor("typos").ok());
}

class ProtocolTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    dataset_ = MakeDataset("german", 1000, &rng).ValueOrDie();
    DataFrame& frame = dataset_.frame;
    std::vector<size_t> train_rows;
    std::vector<size_t> test_rows;
    for (size_t i = 0; i < frame.num_rows(); ++i) {
      (i % 4 == 0 ? test_rows : train_rows).push_back(i);
    }
    train_ = frame.Take(train_rows);
    test_ = frame.Take(test_rows);
  }

  size_t CountMissingFeatureRows(const DataFrame& frame) {
    std::vector<std::string> features = dataset_.spec.FeatureColumns(frame);
    size_t count = 0;
    for (size_t row = 0; row < frame.num_rows(); ++row) {
      for (const std::string& name : features) {
        if (frame.column(name).IsMissing(row)) {
          ++count;
          break;
        }
      }
    }
    return count;
  }

  GeneratedDataset dataset_;
  DataFrame train_;
  DataFrame test_;
};

TEST_F(ProtocolTest, MissingValueDirtyDropsTrainRowsAndImputesTest) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "missing_values")
          .ValueOrDie();
  EXPECT_EQ(base.train.num_rows(), train_.num_rows());  // raw passthrough
  PreparedData dirty =
      MakeDirtyVersion(base, dataset_.spec, "missing_values").ValueOrDie();
  EXPECT_LT(dirty.train.num_rows(), train_.num_rows());
  EXPECT_EQ(CountMissingFeatureRows(dirty.train), 0u);
  // Test rows are never dropped, only imputed.
  EXPECT_EQ(dirty.test.num_rows(), test_.num_rows());
  EXPECT_EQ(CountMissingFeatureRows(dirty.test), 0u);
}

TEST_F(ProtocolTest, MissingValueRepairImputesBothSplits) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "missing_values")
          .ValueOrDie();
  CleaningMethod method;
  method.error_type = "missing_values";
  method.detector = "missing_values";
  method.numeric_impute = NumericImpute::kMedian;
  method.categorical_impute = CategoricalImpute::kDummy;
  Rng rng(4);
  PreparedData repaired =
      MakeRepairedVersion(base, dataset_.spec, method, &rng).ValueOrDie();
  EXPECT_EQ(repaired.train.num_rows(), train_.num_rows());  // nothing dropped
  EXPECT_EQ(CountMissingFeatureRows(repaired.train), 0u);
  EXPECT_EQ(CountMissingFeatureRows(repaired.test), 0u);
  // Dummy imputation introduced the indicator category on train.
  EXPECT_NE(repaired.train.column("savings").CodeOf("missing_dummy"),
            Column::kMissingCode);
}

TEST_F(ProtocolTest, OutlierBaseRemovesIncompleteTuples) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "outliers").ValueOrDie();
  EXPECT_EQ(CountMissingFeatureRows(base.train), 0u);
  EXPECT_EQ(CountMissingFeatureRows(base.test), 0u);
  EXPECT_LT(base.train.num_rows(), train_.num_rows());
}

TEST_F(ProtocolTest, OutlierDirtyKeepsDataAsIs) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "outliers").ValueOrDie();
  PreparedData dirty =
      MakeDirtyVersion(base, dataset_.spec, "outliers").ValueOrDie();
  EXPECT_EQ(dirty.train.num_rows(), base.train.num_rows());
  // Spot-check equality of a numeric column.
  for (size_t row = 0; row < base.train.num_rows(); ++row) {
    EXPECT_EQ(base.train.column("credit_amount").Value(row),
              dirty.train.column("credit_amount").Value(row));
  }
}

TEST_F(ProtocolTest, OutlierRepairChangesFlaggedCellsOnly) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "outliers").ValueOrDie();
  CleaningMethod method;
  method.error_type = "outliers";
  method.detector = "outliers-iqr";
  method.numeric_impute = NumericImpute::kMedian;
  Rng rng(5);
  PreparedData repaired =
      MakeRepairedVersion(base, dataset_.spec, method, &rng).ValueOrDie();
  size_t changed = 0;
  const Column& before = base.train.column("credit_amount");
  const Column& after = repaired.train.column("credit_amount");
  for (size_t row = 0; row < base.train.num_rows(); ++row) {
    if (before.Value(row) != after.Value(row)) ++changed;
  }
  EXPECT_GT(changed, 0u);                          // something repaired
  EXPECT_LT(changed, base.train.num_rows() / 2);   // but not everything
}

TEST_F(ProtocolTest, MislabelRepairFlipsTrainOnly) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "mislabels").ValueOrDie();
  CleaningMethod method;
  method.error_type = "mislabels";
  method.detector = "mislabels";
  Rng rng(6);
  PreparedData repaired =
      MakeRepairedVersion(base, dataset_.spec, method, &rng).ValueOrDie();
  size_t train_changed = 0;
  for (size_t row = 0; row < base.train.num_rows(); ++row) {
    if (base.train.column("credit").Value(row) !=
        repaired.train.column("credit").Value(row)) {
      ++train_changed;
    }
  }
  EXPECT_GT(train_changed, 0u);
  // Labels are never flipped on the test set.
  for (size_t row = 0; row < base.test.num_rows(); ++row) {
    EXPECT_EQ(base.test.column("credit").Value(row),
              repaired.test.column("credit").Value(row));
  }
}

TEST_F(ProtocolTest, FeatureValuesUntouchedByMislabelRepair) {
  PreparedData base =
      PrepareBase(train_, test_, dataset_.spec, "mislabels").ValueOrDie();
  CleaningMethod method;
  method.error_type = "mislabels";
  method.detector = "mislabels";
  Rng rng(7);
  PreparedData repaired =
      MakeRepairedVersion(base, dataset_.spec, method, &rng).ValueOrDie();
  for (size_t row = 0; row < base.train.num_rows(); ++row) {
    EXPECT_EQ(base.train.column("duration").Value(row),
              repaired.train.column("duration").Value(row));
  }
}

}  // namespace
}  // namespace fairclean
