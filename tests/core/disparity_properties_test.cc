// Metamorphic properties of the RQ1 disparity analysis (Figures 1-2):
// seeded determinism, internal consistency of every row, group-swap
// symmetry of the G^2 test, and invariance of the flag-rate fractions
// under exact row duplication. The deterministic missing-values detector is
// used for the metamorphic cases so no detector randomness interferes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/disparity.h"
#include "datasets/generator.h"

namespace fairclean {
namespace {

GeneratedDataset SmallGerman() {
  Rng rng(77);
  return MakeDataset("german", 2000, &rng).ValueOrDie();
}

TEST(DisparityProperties, SeededRunsAreIdentical) {
  GeneratedDataset dataset = SmallGerman();
  DisparityOptions options;
  Rng rng_a(5);
  Rng rng_b(5);
  Result<std::vector<DisparityRow>> a =
      AnalyzeDisparities(dataset, false, options, &rng_a);
  Result<std::vector<DisparityRow>> b =
      AnalyzeDisparities(dataset, false, options, &rng_b);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].detector, (*b)[i].detector);
    EXPECT_EQ((*a)[i].group_key, (*b)[i].group_key);
    EXPECT_EQ((*a)[i].privileged_flagged, (*b)[i].privileged_flagged);
    EXPECT_EQ((*a)[i].disadvantaged_flagged, (*b)[i].disadvantaged_flagged);
    EXPECT_DOUBLE_EQ((*a)[i].g2.statistic, (*b)[i].g2.statistic);
    EXPECT_DOUBLE_EQ((*a)[i].g2.p_value, (*b)[i].g2.p_value);
  }
}

TEST(DisparityProperties, EveryRowIsInternallyConsistent) {
  GeneratedDataset dataset = SmallGerman();
  DisparityOptions options;
  Rng rng(5);
  Result<std::vector<DisparityRow>> rows =
      AnalyzeDisparities(dataset, false, options, &rng);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  for (const DisparityRow& row : *rows) {
    EXPECT_LE(row.privileged_flagged, row.privileged_total);
    EXPECT_LE(row.disadvantaged_flagged, row.disadvantaged_total);
    EXPECT_EQ(row.privileged_total + row.disadvantaged_total,
              dataset.frame.num_rows());
    EXPECT_GE(row.PrivilegedFraction(), 0.0);
    EXPECT_LE(row.PrivilegedFraction(), 1.0);
    EXPECT_GE(row.DisadvantagedFraction(), 0.0);
    EXPECT_LE(row.DisadvantagedFraction(), 1.0);
    EXPECT_EQ(row.significant, row.g2.SignificantAt(options.alpha));
  }
}

// Complementing the privileged predicate (sex = male -> sex = female on the
// binary attribute) swaps the two groups: the flag fractions trade places
// and the G^2 statistic — symmetric in the groups — is unchanged.
TEST(DisparityProperties, GroupSwapSwapsFractionsAndKeepsG2) {
  GeneratedDataset dataset = SmallGerman();
  DisparityOptions options;
  options.detectors = {"missing_values"};

  GeneratedDataset swapped = dataset;
  ASSERT_EQ(swapped.spec.sensitive_attributes[0].name, "sex");
  swapped.spec.sensitive_attributes[0].privileged =
      GroupPredicate::CategoryEq("sex", "female");

  Rng rng_a(9);
  Rng rng_b(9);
  Result<std::vector<DisparityRow>> original =
      AnalyzeDisparities(dataset, false, options, &rng_a);
  Result<std::vector<DisparityRow>> flipped =
      AnalyzeDisparities(swapped, false, options, &rng_b);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(flipped.ok());

  bool compared = false;
  for (const DisparityRow& row : *original) {
    if (row.group_key != "sex") continue;
    for (const DisparityRow& other : *flipped) {
      if (other.group_key != "sex") continue;
      compared = true;
      EXPECT_EQ(row.privileged_flagged, other.disadvantaged_flagged);
      EXPECT_EQ(row.disadvantaged_flagged, other.privileged_flagged);
      EXPECT_EQ(row.privileged_total, other.disadvantaged_total);
      EXPECT_DOUBLE_EQ(row.g2.statistic, other.g2.statistic);
      EXPECT_DOUBLE_EQ(row.g2.p_value, other.g2.p_value);
    }
  }
  EXPECT_TRUE(compared);
}

// Duplicating every row doubles all counts exactly, so the flag-rate
// fractions are bit-identical (the G^2 statistic grows with the sample and
// is deliberately not compared).
TEST(DisparityProperties, RowDuplicationKeepsFlagFractions) {
  GeneratedDataset dataset = SmallGerman();
  DisparityOptions options;
  options.detectors = {"missing_values"};

  GeneratedDataset doubled = dataset;
  std::vector<size_t> indices;
  indices.reserve(2 * dataset.frame.num_rows());
  for (int copy = 0; copy < 2; ++copy) {
    for (size_t i = 0; i < dataset.frame.num_rows(); ++i) {
      indices.push_back(i);
    }
  }
  doubled.frame = dataset.frame.Take(indices);
  doubled.true_labels.insert(doubled.true_labels.end(),
                             dataset.true_labels.begin(),
                             dataset.true_labels.end());

  Rng rng_a(13);
  Rng rng_b(13);
  Result<std::vector<DisparityRow>> original =
      AnalyzeDisparities(dataset, false, options, &rng_a);
  Result<std::vector<DisparityRow>> duplicated =
      AnalyzeDisparities(doubled, false, options, &rng_b);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(duplicated.ok());
  ASSERT_EQ(original->size(), duplicated->size());
  for (size_t i = 0; i < original->size(); ++i) {
    const DisparityRow& row = (*original)[i];
    const DisparityRow& doubled_row = (*duplicated)[i];
    EXPECT_EQ(row.group_key, doubled_row.group_key);
    EXPECT_EQ(2 * row.privileged_flagged, doubled_row.privileged_flagged);
    EXPECT_EQ(2 * row.disadvantaged_flagged,
              doubled_row.disadvantaged_flagged);
    EXPECT_DOUBLE_EQ(row.PrivilegedFraction(),
                     doubled_row.PrivilegedFraction());
    EXPECT_DOUBLE_EQ(row.DisadvantagedFraction(),
                     doubled_row.DisadvantagedFraction());
  }
}

}  // namespace
}  // namespace fairclean
