#include "core/fair_tuning.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

// A problem where the tuned hyperparameter trades accuracy for fairness:
// group +1 points are separated along axis 0, group -1 points carry a
// weaker version of the signal, so flexible models learn the privileged
// group better and open a recall gap.
struct GroupedProblem {
  Matrix x;
  std::vector<int> y;
  std::vector<int> membership;
};

GroupedProblem MakeGroupedProblem(size_t n, uint64_t seed) {
  Rng rng(seed);
  GroupedProblem problem;
  problem.x = Matrix(n, 2);
  problem.y.resize(n);
  problem.membership.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool privileged = rng.Bernoulli(0.5);
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    double separation = privileged ? 3.0 : 1.0;
    problem.x(i, 0) =
        rng.Normal(label == 1 ? separation / 2 : -separation / 2, 1.0);
    problem.x(i, 1) = rng.Normal(privileged ? 1.0 : -1.0, 0.5);
    problem.y[i] = label;
    problem.membership[i] = privileged ? 1 : -1;
  }
  return problem;
}

TEST(FairTuneTest, SelectsFromGridAndTrains) {
  GroupedProblem problem = MakeGroupedProblem(400, 1);
  FairTuneOptions options;
  options.max_unfairness = 1.0;  // no effective constraint
  Rng rng(2);
  Result<FairTuneOutcome> outcome = FairTuneAndFit(
      LogRegFamily(), problem.x, problem.y, problem.membership, options,
      &rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->within_budget);
  bool in_grid = false;
  for (double param : LogRegFamily().param_grid) {
    if (param == outcome->best_param) in_grid = true;
  }
  EXPECT_TRUE(in_grid);
  EXPECT_GT(outcome->best_cv_accuracy, 0.6);
  ASSERT_NE(outcome->model, nullptr);
  EXPECT_EQ(outcome->model->Predict(problem.x).size(), 400u);
}

TEST(FairTuneTest, TightBudgetSelectsFairerCandidate) {
  GroupedProblem problem = MakeGroupedProblem(500, 3);
  Rng rng_loose(4);
  FairTuneOptions loose;
  loose.max_unfairness = 1.0;
  FairTuneOutcome unconstrained =
      FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                     problem.membership, loose, &rng_loose)
          .ValueOrDie();

  Rng rng_tight(4);
  FairTuneOptions tight;
  tight.max_unfairness = 0.0;  // nothing fits: fairest candidate wins
  FairTuneOutcome constrained =
      FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                     problem.membership, tight, &rng_tight)
          .ValueOrDie();
  EXPECT_FALSE(constrained.within_budget);
  // The fairest candidate can be no less fair than the most accurate one.
  EXPECT_LE(constrained.best_cv_unfairness,
            unconstrained.best_cv_unfairness + 1e-12);
}

TEST(FairTuneTest, ZeroBudgetNeverWithinBudgetOnUnfairProblem) {
  GroupedProblem problem = MakeGroupedProblem(300, 5);
  FairTuneOptions options;
  options.max_unfairness = 0.0;
  Rng rng(6);
  FairTuneOutcome outcome =
      FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                     problem.membership, options, &rng)
          .ValueOrDie();
  EXPECT_FALSE(outcome.within_budget);
  EXPECT_GT(outcome.best_cv_unfairness, 0.0);
}

TEST(FairTuneTest, FoldParallelismDoesNotChangeTheOutcome) {
  // See TuneAndFitTest.FoldParallelismDoesNotChangeTheOutcome: env must be
  // set before the shared pool's first use; calling from inside a pool task
  // forces the inline fold path as the reference.
  ASSERT_EQ(setenv("FAIRCLEAN_THREADS", "4", 1), 0);
  GroupedProblem problem = MakeGroupedProblem(400, 11);
  FairTuneOptions options;
  options.max_unfairness = 0.05;

  Rng rng_pooled(12);
  Result<FairTuneOutcome> pooled =
      FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                     problem.membership, options, &rng_pooled);

  Rng rng_inline(12);
  ThreadPool probe(1);
  Result<FairTuneOutcome> inlined =
      probe
          .Submit([&]() {
            return FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                                  problem.membership, options, &rng_inline);
          })
          .get();

  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(inlined.ok());
  EXPECT_EQ(pooled->best_param, inlined->best_param);
  EXPECT_EQ(pooled->best_cv_accuracy, inlined->best_cv_accuracy);
  EXPECT_EQ(pooled->best_cv_unfairness, inlined->best_cv_unfairness);
  EXPECT_EQ(pooled->within_budget, inlined->within_budget);
  EXPECT_EQ(pooled->model->Predict(problem.x),
            inlined->model->Predict(problem.x));
  ASSERT_EQ(unsetenv("FAIRCLEAN_THREADS"), 0);
}

TEST(FairTuneTest, RejectsBadInput) {
  GroupedProblem problem = MakeGroupedProblem(100, 7);
  FairTuneOptions options;
  Rng rng(8);
  TunedModelFamily empty = LogRegFamily();
  empty.param_grid.clear();
  EXPECT_FALSE(FairTuneAndFit(empty, problem.x, problem.y,
                              problem.membership, options, &rng)
                   .ok());
  std::vector<int> short_membership(10, 1);
  EXPECT_FALSE(FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                              short_membership, options, &rng)
                   .ok());
  FairTuneOptions negative_budget;
  negative_budget.max_unfairness = -0.1;
  EXPECT_FALSE(FairTuneAndFit(LogRegFamily(), problem.x, problem.y,
                              problem.membership, negative_budget, &rng)
                   .ok());
}

TEST(FairTuneTest, MembershipFromAssignmentEncoding) {
  GroupAssignment assignment;
  assignment.privileged = {true, false, false};
  assignment.disadvantaged = {false, true, false};
  std::vector<int> membership = MembershipFromAssignment(assignment);
  EXPECT_EQ(membership, (std::vector<int>{1, -1, 0}));
}

TEST(FairTuneTest, WorksWithAllModelFamilies) {
  GroupedProblem problem = MakeGroupedProblem(200, 9);
  FairTuneOptions options;
  options.max_unfairness = 1.0;
  for (const std::string& name : AllModelNames()) {
    Rng rng(10);
    Result<FairTuneOutcome> outcome =
        FairTuneAndFit(ModelFamilyByName(name).ValueOrDie(), problem.x,
                       problem.y, problem.membership, options, &rng);
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_NE(outcome->model, nullptr) << name;
  }
}

}  // namespace
}  // namespace fairclean
