#include "core/impact.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

std::vector<double> Constant(size_t n, double value) {
  return std::vector<double>(n, value);
}

std::vector<double> Wiggle(size_t n, double base, double step) {
  std::vector<double> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(base + (i % 2 == 0 ? step : -step));
  }
  return out;
}

TEST(ClassifyImpactTest, ClearImprovementHigherIsBetter) {
  std::vector<double> dirty = Wiggle(10, 0.70, 0.01);
  std::vector<double> repaired = Wiggle(10, 0.80, 0.01);
  Result<Impact> impact =
      ClassifyImpact(dirty, repaired, 0.05, /*higher_is_better=*/true);
  ASSERT_TRUE(impact.ok());
  EXPECT_EQ(*impact, Impact::kBetter);
}

TEST(ClassifyImpactTest, ClearDegradationHigherIsBetter) {
  std::vector<double> dirty = Wiggle(10, 0.80, 0.01);
  std::vector<double> repaired = Wiggle(10, 0.70, 0.01);
  Result<Impact> impact = ClassifyImpact(dirty, repaired, 0.05, true);
  ASSERT_TRUE(impact.ok());
  EXPECT_EQ(*impact, Impact::kWorse);
}

TEST(ClassifyImpactTest, LowerIsBetterFlipsDirection) {
  // Unfairness dropping from 0.3 to 0.1 is an improvement.
  std::vector<double> dirty = Wiggle(10, 0.30, 0.01);
  std::vector<double> repaired = Wiggle(10, 0.10, 0.01);
  Result<Impact> impact =
      ClassifyImpact(dirty, repaired, 0.05, /*higher_is_better=*/false);
  ASSERT_TRUE(impact.ok());
  EXPECT_EQ(*impact, Impact::kBetter);
  Result<Impact> reverse = ClassifyImpact(repaired, dirty, 0.05, false);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(*reverse, Impact::kWorse);
}

TEST(ClassifyImpactTest, NoisySmallDifferenceIsInsignificant) {
  std::vector<double> dirty = {0.70, 0.75, 0.68, 0.77, 0.71, 0.73};
  std::vector<double> repaired = {0.71, 0.73, 0.70, 0.75, 0.73, 0.70};
  Result<Impact> impact = ClassifyImpact(dirty, repaired, 0.05, true);
  ASSERT_TRUE(impact.ok());
  EXPECT_EQ(*impact, Impact::kInsignificant);
}

TEST(ClassifyImpactTest, IdenticalScoresInsignificant) {
  std::vector<double> scores = Constant(8, 0.8);
  Result<Impact> impact = ClassifyImpact(scores, scores, 0.05, true);
  ASSERT_TRUE(impact.ok());
  EXPECT_EQ(*impact, Impact::kInsignificant);
}

TEST(ClassifyImpactTest, StricterAlphaSuppressesBorderlineEffects) {
  std::vector<double> dirty = {0.70, 0.72, 0.69, 0.73, 0.71, 0.70};
  std::vector<double> repaired = {0.72, 0.74, 0.70, 0.74, 0.73, 0.72};
  Result<Impact> loose = ClassifyImpact(dirty, repaired, 0.05, true);
  Result<Impact> strict = ClassifyImpact(dirty, repaired, 1e-7, true);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(*loose, Impact::kBetter);
  EXPECT_EQ(*strict, Impact::kInsignificant);
}

TEST(ClassifyImpactTest, RejectsTooFewPairs) {
  EXPECT_FALSE(ClassifyImpact({1.0}, {2.0}, 0.05, true).ok());
}

TEST(ImpactNameTest, AllNames) {
  EXPECT_STREQ(ImpactName(Impact::kWorse), "worse");
  EXPECT_STREQ(ImpactName(Impact::kInsignificant), "insignificant");
  EXPECT_STREQ(ImpactName(Impact::kBetter), "better");
}

TEST(ImpactTableTest, CountsAndTotals) {
  ImpactTable table;
  table.Add(Impact::kWorse, Impact::kBetter);
  table.Add(Impact::kWorse, Impact::kBetter);
  table.Add(Impact::kBetter, Impact::kInsignificant);
  table.Add(Impact::kInsignificant, Impact::kInsignificant);
  EXPECT_EQ(table.cell(Impact::kWorse, Impact::kBetter), 2);
  EXPECT_EQ(table.cell(Impact::kBetter, Impact::kWorse), 0);
  EXPECT_EQ(table.RowTotal(Impact::kWorse), 2);
  EXPECT_EQ(table.ColumnTotal(Impact::kInsignificant), 2);
  EXPECT_EQ(table.Total(), 4);
  EXPECT_DOUBLE_EQ(table.CellPercent(Impact::kWorse, Impact::kBetter), 50.0);
}

TEST(ImpactTableTest, EmptyTablePercentIsZero) {
  ImpactTable table;
  EXPECT_DOUBLE_EQ(table.CellPercent(Impact::kWorse, Impact::kWorse), 0.0);
  EXPECT_EQ(table.Total(), 0);
}

TEST(ImpactTableTest, AccumulationOperator) {
  ImpactTable a;
  a.Add(Impact::kWorse, Impact::kWorse);
  ImpactTable b;
  b.Add(Impact::kWorse, Impact::kWorse);
  b.Add(Impact::kBetter, Impact::kBetter);
  a += b;
  EXPECT_EQ(a.cell(Impact::kWorse, Impact::kWorse), 2);
  EXPECT_EQ(a.cell(Impact::kBetter, Impact::kBetter), 1);
  EXPECT_EQ(a.Total(), 3);
}

TEST(ImpactTableTest, FormatContainsCountsAndTitle) {
  ImpactTable table;
  table.Add(Impact::kWorse, Impact::kBetter);
  table.Add(Impact::kBetter, Impact::kBetter);
  std::string formatted = table.Format("Test Table");
  EXPECT_NE(formatted.find("Test Table"), std::string::npos);
  EXPECT_NE(formatted.find("fairness worse"), std::string::npos);
  EXPECT_NE(formatted.find("50.0%"), std::string::npos);
  EXPECT_NE(formatted.find("acc. better"), std::string::npos);
}

}  // namespace
}  // namespace fairclean
