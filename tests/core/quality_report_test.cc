#include "core/quality_report.h"

#include <gtest/gtest.h>

#include "datasets/generator.h"

namespace fairclean {
namespace {

TEST(QualityReportTest, CoversEveryColumn) {
  Rng rng(1);
  GeneratedDataset dataset = MakeDataset("german", 800, &rng).ValueOrDie();
  Rng report_rng(2);
  QualityReport report =
      ComputeQualityReport(dataset, &report_rng).ValueOrDie();
  EXPECT_EQ(report.dataset, "german");
  EXPECT_EQ(report.num_rows, 800u);
  EXPECT_EQ(report.columns.size(), dataset.frame.num_columns());
  for (const ColumnQuality& column : report.columns) {
    EXPECT_TRUE(dataset.frame.HasColumn(column.name));
    EXPECT_GE(column.missing_fraction, 0.0);
    EXPECT_LE(column.missing_fraction, 1.0);
    if (!column.numeric) {
      EXPECT_GT(column.cardinality, 0u);
    }
  }
}

TEST(QualityReportTest, DetectorsMatchErrorTypes) {
  Rng rng(3);
  GeneratedDataset heart = MakeDataset("heart", 1500, &rng).ValueOrDie();
  Rng report_rng(4);
  QualityReport report =
      ComputeQualityReport(heart, &report_rng).ValueOrDie();
  // heart has outliers + mislabels but no missing values.
  ASSERT_EQ(report.detectors.size(), 4u);
  for (const DetectorQuality& detector : report.detectors) {
    EXPECT_NE(detector.detector, "missing_values");
    EXPECT_LE(detector.flagged_fraction, 1.0);
  }
}

TEST(QualityReportTest, GroupsIncludeIntersectional) {
  Rng rng(5);
  GeneratedDataset adult = MakeDataset("adult", 2000, &rng).ValueOrDie();
  Rng report_rng(6);
  QualityReport report =
      ComputeQualityReport(adult, &report_rng).ValueOrDie();
  ASSERT_EQ(report.groups.size(), 3u);  // sex, race, sex*race
  for (const GroupQuality& group : report.groups) {
    EXPECT_GT(group.privileged_count, 0u);
    EXPECT_GT(group.disadvantaged_count, 0u);
    EXPECT_GE(group.privileged_positive_rate, 0.0);
    EXPECT_LE(group.privileged_positive_rate, 1.0);
  }
}

TEST(QualityReportTest, MissingStatisticsMatchFrame) {
  Rng rng(7);
  GeneratedDataset german = MakeDataset("german", 600, &rng).ValueOrDie();
  Rng report_rng(8);
  QualityReport report =
      ComputeQualityReport(german, &report_rng).ValueOrDie();
  for (const ColumnQuality& column : report.columns) {
    EXPECT_EQ(column.missing_count,
              german.frame.column(column.name).MissingCount())
        << column.name;
  }
}

TEST(QualityReportTest, FormatMentionsKeySections) {
  Rng rng(9);
  GeneratedDataset credit = MakeDataset("credit", 800, &rng).ValueOrDie();
  Rng report_rng(10);
  QualityReport report =
      ComputeQualityReport(credit, &report_rng).ValueOrDie();
  std::string text = report.Format();
  EXPECT_NE(text.find("credit"), std::string::npos);
  EXPECT_NE(text.find("columns:"), std::string::npos);
  EXPECT_NE(text.find("detectors:"), std::string::npos);
  EXPECT_NE(text.find("groups:"), std::string::npos);
  EXPECT_NE(text.find("outliers-iqr"), std::string::npos);
}

TEST(QualityReportTest, RejectsEmptyDataset) {
  GeneratedDataset empty;
  empty.spec.name = "empty";
  empty.spec.label = "y";
  Rng rng(11);
  EXPECT_FALSE(ComputeQualityReport(empty, &rng).ok());
}

}  // namespace
}  // namespace fairclean
