#include "core/results.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ResultStoreTest, PutGetContains) {
  ResultStore store;
  EXPECT_FALSE(store.Contains("a"));
  store.Put("a", 1.5);
  EXPECT_TRUE(store.Contains("a"));
  Result<double> value = store.Get("a");
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 1.5);
  EXPECT_FALSE(store.Get("missing").ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStoreTest, PutOverwrites) {
  ResultStore store;
  store.Put("a", 1.0);
  store.Put("a", 2.0);
  EXPECT_DOUBLE_EQ(*store.Get("a"), 2.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStoreTest, KeysWithPrefixSorted) {
  ResultStore store;
  store.Put("b/x", 1.0);
  store.Put("a/z", 2.0);
  store.Put("a/y", 3.0);
  store.Put("ab", 4.0);
  std::vector<std::string> keys = store.KeysWithPrefix("a/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/y");
  EXPECT_EQ(keys[1], "a/z");
}

TEST(ResultStoreTest, JsonRoundTrip) {
  ResultStore store;
  store.Put("german/missing_values/impute_mean_dummy/logreg/test_acc",
            0.7133333333333334);
  store.Put("german/v1/sex_priv__fp", 22.0);
  store.Put("negative", -1.25e-8);
  std::string json = store.ToJson();
  Result<ResultStore> parsed = ResultStore::FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_DOUBLE_EQ(
      *parsed->Get("german/missing_values/impute_mean_dummy/logreg/test_acc"),
      0.7133333333333334);
  EXPECT_DOUBLE_EQ(*parsed->Get("negative"), -1.25e-8);
}

TEST(ResultStoreTest, JsonKeysAreSorted) {
  // The stable key ordering is the defence against the CleanML
  // key-reshuffling reproducibility bug the paper reports.
  ResultStore store;
  store.Put("zebra", 1.0);
  store.Put("alpha", 2.0);
  std::string json = store.ToJson();
  EXPECT_LT(json.find("alpha"), json.find("zebra"));
}

TEST(ResultStoreTest, JsonEscapesSpecialCharacters) {
  ResultStore store;
  store.Put("key\"with\\quotes", 1.0);
  Result<ResultStore> parsed = ResultStore::FromJson(store.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Contains("key\"with\\quotes"));
}

TEST(ResultStoreTest, NanSerializesAsNull) {
  ResultStore store;
  store.Put("nan_key", std::nan(""));
  std::string json = store.ToJson();
  EXPECT_NE(json.find("null"), std::string::npos);
  Result<ResultStore> parsed = ResultStore::FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isnan(*parsed->Get("nan_key")));
}

TEST(ResultStoreTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(ResultStore::FromJson("not json").ok());
  EXPECT_FALSE(ResultStore::FromJson("{\"a\": }").ok());
  EXPECT_FALSE(ResultStore::FromJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ResultStore::FromJson("{\"unterminated").ok());
}

TEST(ResultStoreTest, EmptyStoreRoundTrips) {
  ResultStore store;
  Result<ResultStore> parsed = ResultStore::FromJson(store.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
}

TEST(ResultStoreTest, FileRoundTripSupportsResume) {
  ResultStore store;
  store.Put("run/1", 0.5);
  std::string path = testing::TempDir() + "/fairclean_results_test.json";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  Result<ResultStore> loaded = ResultStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(*loaded->Get("run/1"), 0.5);
  std::remove(path.c_str());
  EXPECT_FALSE(ResultStore::LoadFromFile(path).ok());
}

TEST(ResultStoreTest, MergeFromOtherWins) {
  ResultStore a;
  a.Put("x", 1.0);
  a.Put("y", 1.0);
  ResultStore b;
  b.Put("y", 2.0);
  b.Put("z", 3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(*a.Get("y"), 2.0);
}

TEST(MetricKeyTest, JoinsWithDoubleUnderscore) {
  EXPECT_EQ(MetricKey({"impute_mean_dummy", "sex_priv", "fp"}),
            "impute_mean_dummy__sex_priv__fp");
  EXPECT_EQ(MetricKey({"a", "", "b"}), "a__b");
  EXPECT_EQ(MetricKey({}), "");
}

}  // namespace
}  // namespace fairclean
