#include "core/fair_selector.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

// Builds a synthetic experiment result with controlled score series so the
// selector's ranking is fully predictable.
ScoreSeries MakeSeries(double accuracy, double unfairness, size_t n = 8) {
  ScoreSeries series;
  for (size_t i = 0; i < n; ++i) {
    double wiggle = (i % 2 == 0) ? 0.002 : -0.002;
    series.accuracy.push_back(accuracy + wiggle);
    series.f1.push_back(accuracy + wiggle);
    series.unfairness["sex/PP"].push_back(unfairness + wiggle);
    series.unfairness["sex/EO"].push_back(unfairness + wiggle);
  }
  return series;
}

CleaningExperimentResult MakeExperiment() {
  CleaningExperimentResult result;
  result.dataset = "synthetic";
  result.error_type = "missing_values";
  result.model = "log-reg";
  result.dirty = MakeSeries(0.75, 0.20);
  // Method A: improves fairness, keeps accuracy.
  result.repaired["method_a"] = MakeSeries(0.75, 0.10);
  // Method B: improves fairness more, but tanks accuracy.
  result.repaired["method_b"] = MakeSeries(0.60, 0.05);
  // Method C: no change at all.
  result.repaired["method_c"] = MakeSeries(0.75, 0.20);
  // Method D: worsens fairness, improves accuracy.
  result.repaired["method_d"] = MakeSeries(0.85, 0.35);
  return result;
}

TEST(FairSelectorTest, RanksAdmissibleMethodsFirst) {
  CleaningExperimentResult experiment = MakeExperiment();
  Result<std::vector<CleaningRecommendation>> ranked = SelectFairCleaning(
      experiment, "sex", FairnessMetric::kPredictiveParity, 0.05);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  // method_b is inadmissible (accuracy worse) despite best fairness gain;
  // method_d is inadmissible (fairness worse).
  EXPECT_EQ((*ranked)[0].method, "method_a");
  EXPECT_TRUE((*ranked)[0].admissible);
  EXPECT_EQ((*ranked)[0].impact.fairness, Impact::kBetter);
  for (const CleaningRecommendation& rec : *ranked) {
    if (rec.method == "method_b" || rec.method == "method_d") {
      EXPECT_FALSE(rec.admissible) << rec.method;
    }
  }
}

TEST(FairSelectorTest, NoChangeMethodIsAdmissibleButRankedBelowGains) {
  CleaningExperimentResult experiment = MakeExperiment();
  std::vector<CleaningRecommendation> ranked =
      SelectFairCleaning(experiment, "sex",
                         FairnessMetric::kPredictiveParity, 0.05)
          .ValueOrDie();
  size_t pos_a = 0;
  size_t pos_c = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].method == "method_a") pos_a = i;
    if (ranked[i].method == "method_c") pos_c = i;
  }
  EXPECT_LT(pos_a, pos_c);
  EXPECT_TRUE(ranked[pos_c].admissible);
  EXPECT_EQ(ranked[pos_c].impact.fairness, Impact::kInsignificant);
}

TEST(FairSelectorTest, AccuracyObjectivePrefersAccuracyGains) {
  CleaningExperimentResult experiment = MakeExperiment();
  // Add an admissible accuracy-improver.
  experiment.repaired["method_e"] = MakeSeries(0.82, 0.18);
  std::vector<CleaningRecommendation> ranked =
      SelectFairCleaning(experiment, "sex",
                         FairnessMetric::kPredictiveParity, 0.05,
                         SelectionObjective::kMaxAccuracyGain)
          .ValueOrDie();
  EXPECT_EQ(ranked[0].method, "method_e");
}

TEST(FairSelectorTest, AllMethodsHarmfulYieldsNoAdmissible) {
  // Reproduces the paper's "no safe cleaning technique" cases (3 of 40).
  CleaningExperimentResult experiment;
  experiment.dirty = MakeSeries(0.75, 0.20);
  experiment.repaired["bad_1"] = MakeSeries(0.60, 0.30);
  experiment.repaired["bad_2"] = MakeSeries(0.75, 0.40);
  std::vector<CleaningRecommendation> ranked =
      SelectFairCleaning(experiment, "sex",
                         FairnessMetric::kPredictiveParity, 0.05)
          .ValueOrDie();
  for (const CleaningRecommendation& rec : ranked) {
    EXPECT_FALSE(rec.admissible);
  }
}

TEST(FairSelectorTest, UnknownGroupFails) {
  CleaningExperimentResult experiment = MakeExperiment();
  EXPECT_FALSE(SelectFairCleaning(experiment, "race",
                                  FairnessMetric::kPredictiveParity, 0.05)
                   .ok());
}

TEST(FairSelectorTest, StricterAlphaAdmitsBorderlineMethods) {
  CleaningExperimentResult experiment;
  experiment.dirty = MakeSeries(0.75, 0.20);
  // Slightly worse accuracy with noisy paired differences — significant at
  // 0.05 but not at 1e-9 (MakeSeries' deterministic wiggle would give
  // zero-variance differences, so perturb the repaired series).
  ScoreSeries borderline = MakeSeries(0.742, 0.12);
  for (size_t i = 0; i < borderline.accuracy.size(); ++i) {
    borderline.accuracy[i] += (i % 2 == 0 ? 0.001 : -0.001) *
                              static_cast<double>(i % 3);
  }
  experiment.repaired["borderline"] = borderline;
  std::vector<CleaningRecommendation> loose =
      SelectFairCleaning(experiment, "sex",
                         FairnessMetric::kPredictiveParity, 0.05)
          .ValueOrDie();
  std::vector<CleaningRecommendation> strict =
      SelectFairCleaning(experiment, "sex",
                         FairnessMetric::kPredictiveParity, 1e-9)
          .ValueOrDie();
  EXPECT_FALSE(loose[0].admissible);
  EXPECT_TRUE(strict[0].admissible);
}

}  // namespace
}  // namespace fairclean
