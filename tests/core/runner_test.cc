#include "core/runner.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "datasets/generator.h"

namespace fairclean {
namespace {

StudyOptions SmallStudy() {
  StudyOptions options;
  options.sample_size = 500;
  options.num_repeats = 3;
  options.cv_folds = 3;
  options.seed = 99;
  return options;
}

TEST(GroupDefinitionsTest, SingleAndIntersectional) {
  Rng rng(1);
  GeneratedDataset german = MakeDataset("german", 200, &rng).ValueOrDie();
  std::vector<GroupDefinition> groups = GroupDefinitionsFor(german.spec);
  ASSERT_EQ(groups.size(), 3u);  // sex, age, sex*age
  EXPECT_EQ(groups[0].key, "sex");
  EXPECT_FALSE(groups[0].intersectional);
  EXPECT_EQ(groups[2].key, "sex*age");
  EXPECT_TRUE(groups[2].intersectional);
}

TEST(GroupDefinitionsTest, NoIntersectionalForCredit) {
  Rng rng(2);
  GeneratedDataset credit = MakeDataset("credit", 200, &rng).ValueOrDie();
  std::vector<GroupDefinition> groups = GroupDefinitionsFor(credit.spec);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].key, "age");
}

TEST(UnfairnessKeyTest, Format) {
  EXPECT_EQ(UnfairnessKey("sex", FairnessMetric::kPredictiveParity),
            "sex/PP");
  EXPECT_EQ(UnfairnessKey("sex*age", FairnessMetric::kEqualOpportunity),
            "sex*age/EO");
}

TEST(StudyOptionsTest, EnvOverrides) {
  setenv("FAIRCLEAN_SAMPLE", "777", 1);
  setenv("FAIRCLEAN_REPEATS", "9", 1);
  StudyOptions options = StudyOptionsFromEnv();
  EXPECT_EQ(options.sample_size, 777u);
  EXPECT_EQ(options.num_repeats, 9u);
  unsetenv("FAIRCLEAN_SAMPLE");
  unsetenv("FAIRCLEAN_REPEATS");
  StudyOptions defaults = StudyOptionsFromEnv();
  EXPECT_EQ(defaults.sample_size, StudyOptions{}.sample_size);
}

class RunnerTest : public testing::Test {
 protected:
  static const CleaningExperimentResult& GermanMissing() {
    static const CleaningExperimentResult* result = [] {
      Rng rng(7);
      GeneratedDataset dataset =
          MakeDataset("german", 1000, &rng).ValueOrDie();
      auto* out = new CleaningExperimentResult(
          RunCleaningExperiment(dataset, "missing_values", LogRegFamily(),
                                SmallStudy())
              .ValueOrDie());
      return out;
    }();
    return *result;
  }
};

TEST_F(RunnerTest, ProducesAllMethodSeries) {
  const CleaningExperimentResult& result = GermanMissing();
  EXPECT_EQ(result.dataset, "german");
  EXPECT_EQ(result.error_type, "missing_values");
  EXPECT_EQ(result.model, "log-reg");
  EXPECT_EQ(result.repaired.size(), 6u);  // 3 numeric x 2 categorical
  EXPECT_EQ(result.dirty.accuracy.size(), 3u);
  for (const auto& [method, series] : result.repaired) {
    EXPECT_EQ(series.accuracy.size(), 3u) << method;
    EXPECT_EQ(series.f1.size(), 3u) << method;
  }
}

TEST_F(RunnerTest, ScoresAreValidMetrics) {
  const CleaningExperimentResult& result = GermanMissing();
  for (double accuracy : result.dirty.accuracy) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
  for (const auto& [key, series] : result.dirty.unfairness) {
    for (double gap : series) {
      EXPECT_GE(gap, -1.0) << key;  // signed gaps
      EXPECT_LE(gap, 1.0) << key;
    }
  }
}

TEST_F(RunnerTest, UnfairnessSeriesCoverAllGroupsAndMetrics) {
  const CleaningExperimentResult& result = GermanMissing();
  ASSERT_EQ(result.groups.size(), 3u);
  // 3 groups x 5 metrics.
  EXPECT_EQ(result.dirty.unfairness.size(), 15u);
  EXPECT_TRUE(result.dirty.unfairness.count("sex/PP"));
  EXPECT_TRUE(result.dirty.unfairness.count("age/EO"));
  EXPECT_TRUE(result.dirty.unfairness.count("sex*age/PP"));
}

TEST_F(RunnerTest, RecordsContainConfusionCounts) {
  const CleaningExperimentResult& result = GermanMissing();
  EXPECT_GT(result.records.size(), 0u);
  // Dirty baseline record for repeat 0.
  std::vector<std::string> keys = result.records.KeysWithPrefix(
      "german/missing_values/dirty/log-reg/r0");
  EXPECT_FALSE(keys.empty());
  bool found_confusion = false;
  bool found_accuracy = false;
  for (const std::string& key : keys) {
    if (key.find("__sex_priv__tp") != std::string::npos) {
      found_confusion = true;
    }
    if (key.find("__test_acc") != std::string::npos) found_accuracy = true;
  }
  EXPECT_TRUE(found_confusion);
  EXPECT_TRUE(found_accuracy);
}

TEST_F(RunnerTest, ConfusionCountsSumToTestSetSize) {
  const CleaningExperimentResult& result = GermanMissing();
  const ResultStore& records = result.records;
  std::string prefix = "german/missing_values/dirty/log-reg/r0__sex_";
  double total = 0.0;
  for (const char* side : {"priv", "dis"}) {
    for (const char* cell : {"tn", "fp", "fn", "tp"}) {
      Result<double> value =
          records.Get(prefix + side + "__" + cell);
      ASSERT_TRUE(value.ok()) << prefix << side << "__" << cell;
      total += *value;
    }
  }
  // Single-attribute groups partition the test set (sample 500, test 25%).
  EXPECT_DOUBLE_EQ(total, 125.0);
}

TEST_F(RunnerTest, DeterministicAcrossReruns) {
  Rng rng(7);
  GeneratedDataset dataset = MakeDataset("german", 1000, &rng).ValueOrDie();
  Result<CleaningExperimentResult> rerun = RunCleaningExperiment(
      dataset, "missing_values", LogRegFamily(), SmallStudy());
  ASSERT_TRUE(rerun.ok());
  const CleaningExperimentResult& original = GermanMissing();
  ASSERT_EQ(rerun->dirty.accuracy.size(), original.dirty.accuracy.size());
  for (size_t i = 0; i < original.dirty.accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(rerun->dirty.accuracy[i], original.dirty.accuracy[i]);
  }
}

TEST_F(RunnerTest, ComputeImpactWorksOnRunnerOutput) {
  const CleaningExperimentResult& result = GermanMissing();
  const ScoreSeries& series = result.repaired.begin()->second;
  Result<ImpactOutcome> impact =
      ComputeImpact(result.dirty, series, "sex",
                    FairnessMetric::kPredictiveParity, 0.05);
  ASSERT_TRUE(impact.ok());
  // Deltas are bounded by metric ranges.
  EXPECT_LE(std::abs(impact->unfairness_delta), 1.0);
  EXPECT_LE(std::abs(impact->accuracy_delta), 1.0);
}

TEST_F(RunnerTest, ComputeImpactRejectsUnknownGroup) {
  const CleaningExperimentResult& result = GermanMissing();
  const ScoreSeries& series = result.repaired.begin()->second;
  EXPECT_FALSE(ComputeImpact(result.dirty, series, "nationality",
                             FairnessMetric::kPredictiveParity, 0.05)
                   .ok());
}

TEST(RunnerErrorsTest, RejectsInapplicableErrorType) {
  Rng rng(8);
  GeneratedDataset heart = MakeDataset("heart", 500, &rng).ValueOrDie();
  Result<CleaningExperimentResult> result = RunCleaningExperiment(
      heart, "missing_values", LogRegFamily(), SmallStudy());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace fairclean
