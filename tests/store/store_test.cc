// Storage-engine tests (DESIGN.md §11): the LZSS codec, page codec, pager,
// LRU page cache, copy-on-write B-tree, and the PagedStore on top of them —
// round trips, corruption rejection, eviction-order properties, tree
// invariants under splits, fault-injected transaction rollback, torn-meta
// recovery, integrity walks, and flat→paged migration byte identity.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "store/blob_store.h"
#include "store/btree.h"
#include "store/compress.h"
#include "store/page.h"
#include "store/page_cache.h"
#include "store/paged_store.h"
#include "store/pager.h"

namespace fairclean {
namespace store {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/store_test_" +
                    std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Deterministic byte soup: incompressible enough to exercise literal paths,
// seeded so failures reproduce.
std::string RandomBytes(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng() & 0xff));
  }
  return out;
}

// Flips one byte of the backing file inside page `page_id` at `offset`
// bytes past the page header — the kind of damage a torn sector leaves.
void CorruptPageOnDisk(const std::string& path, uint64_t page_id,
                       size_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  auto at = static_cast<std::streamoff>(page_id * kPageSize +
                                        kPageHeaderSize + offset);
  file.seekg(at);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(at);
  file.write(&byte, 1);
  ASSERT_TRUE(file.good()) << path;
}

// ---------------------------------------------------------------- compress

TEST(LzssTest, RoundTripsRepresentativePayloads) {
  std::vector<std::string> payloads = {
      "",
      "x",
      "abc",
      std::string(5000, 'a'),
      "{\"accuracy\": [0.81, 0.82, 0.81], \"accuracy\": [0.81, 0.82]}",
      RandomBytes(10000, 7),
      std::string("\0\0\0binary\0with\0nuls\0", 20),
  };
  for (const std::string& raw : payloads) {
    std::string packed = LzssCompress(raw);
    Result<std::string> unpacked = LzssDecompress(packed, raw.size());
    ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
    EXPECT_EQ(*unpacked, raw);
  }
}

TEST(LzssTest, OutputIsDeterministic) {
  std::string raw = RandomBytes(4096, 11) + std::string(2048, 'z');
  EXPECT_EQ(LzssCompress(raw), LzssCompress(raw));
}

TEST(LzssTest, CompressesRedundantInput) {
  std::string raw;
  for (int i = 0; i < 200; ++i) raw += "the same record line again\n";
  EXPECT_LT(LzssCompress(raw).size(), raw.size() / 4);
}

TEST(LzssTest, RejectsWrongRawSizeAndTruncatedStreams) {
  std::string raw(1000, 'q');
  std::string packed = LzssCompress(raw);
  EXPECT_FALSE(LzssDecompress(packed, raw.size() + 1).ok());
  EXPECT_FALSE(LzssDecompress(packed, raw.size() - 1).ok());
  EXPECT_FALSE(
      LzssDecompress(std::string_view(packed).substr(0, packed.size() / 2),
                     raw.size())
          .ok());
}

// -------------------------------------------------------------------- page

Page MakePage(uint64_t id) {
  Page page;
  page.type = PageType::kData;
  page.flags = 1;
  page.next_page = id + 17;
  page.page_id = id;
  page.payload = RandomBytes(kMaxPayload / 2, static_cast<uint32_t>(id));
  return page;
}

TEST(PageTest, EncodeDecodeRoundTrip) {
  Page page = MakePage(42);
  std::string bytes = EncodePage(page);
  ASSERT_EQ(bytes.size(), kPageSize);
  Result<Page> decoded = DecodePage(bytes, 42);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, page.type);
  EXPECT_EQ(decoded->flags, page.flags);
  EXPECT_EQ(decoded->next_page, page.next_page);
  EXPECT_EQ(decoded->page_id, page.page_id);
  EXPECT_EQ(decoded->payload, page.payload);
}

TEST(PageTest, AnySingleByteFlipIsRejected) {
  std::string bytes = EncodePage(MakePage(3));
  // A sample across header, payload, and zero padding — each flip must
  // break the CRC (or the CRC field itself).
  const std::vector<size_t> flips = {0, 4, 9, 40, 2000, kPageSize - 1};
  for (size_t at : flips) {
    std::string torn = bytes;
    torn[at] = static_cast<char>(torn[at] ^ 0x80);
    Result<Page> decoded = DecodePage(torn, 3);
    ASSERT_FALSE(decoded.ok()) << "flip at " << at;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PageTest, MisdirectedWriteIsRejectedByIdEcho) {
  std::string bytes = EncodePage(MakePage(5));
  Result<Page> decoded = DecodePage(bytes, 6);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PageTest, ShortBufferIsRejected) {
  std::string bytes = EncodePage(MakePage(1));
  Result<Page> decoded =
      DecodePage(std::string_view(bytes).substr(0, kPageSize - 1), 1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- pager

TEST(PagerTest, RoundTripsAcrossReopen) {
  std::string path = FreshDir("pager") + "/pages";
  {
    Result<std::unique_ptr<Pager>> pager = Pager::Open(path);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    EXPECT_EQ((*pager)->PageCount(), 0u);
    for (uint64_t id = 0; id < 8; ++id) {
      ASSERT_TRUE((*pager)->Write(MakePage(id)).ok());
    }
    ASSERT_TRUE((*pager)->Sync().ok());
    EXPECT_EQ((*pager)->PageCount(), 8u);
  }
  Result<std::unique_ptr<Pager>> pager = Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->PageCount(), 8u);
  for (uint64_t id = 0; id < 8; ++id) {
    Result<Page> page = (*pager)->Read(id);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(page->payload, MakePage(id).payload);
  }
}

TEST(PagerTest, TornPageOnDiskIsInvalidArgument) {
  std::string path = FreshDir("pager_torn") + "/pages";
  Result<std::unique_ptr<Pager>> pager = Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Write(MakePage(0)).ok());
  CorruptPageOnDisk(path, 0, 10);
  Result<Page> page = (*pager)->Read(0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
}

TEST(PagerTest, ReadPastEofIsInvalidArgumentNotIoError) {
  // A short read is a torn/absent page (fallback territory), not a failed
  // syscall — the meta-recovery path depends on the distinction.
  std::string path = FreshDir("pager_eof") + "/pages";
  Result<std::unique_ptr<Pager>> pager = Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  Result<Page> page = (*pager)->Read(99);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
}

TEST(PagerTest, FaultSitesFireAsIoErrors) {
  std::string path = FreshDir("pager_fault") + "/pages";
  Result<std::unique_ptr<Pager>> pager = Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Write(MakePage(0)).ok());

  ASSERT_TRUE(FaultInjector::Global().Configure("page_write:1:1", 3).ok());
  Status write = (*pager)->Write(MakePage(1));
  EXPECT_EQ(write.code(), StatusCode::kIoError);
  ASSERT_TRUE((*pager)->Write(MakePage(1)).ok());  // max_fires exhausted

  ASSERT_TRUE(FaultInjector::Global().Configure("page_read:1:1", 3).ok());
  Result<Page> read = (*pager)->Read(0);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_TRUE((*pager)->Read(0).ok());
}

// -------------------------------------------------------------- page cache

TEST(PageCacheTest, EvictsLeastRecentlyUsedFirst) {
  PageCache cache(2);
  cache.Put(1, MakePage(1));
  cache.Put(2, MakePage(2));
  ASSERT_TRUE(cache.Get(1).has_value());  // bump 1 to MRU
  cache.Put(3, MakePage(3));              // evicts 2, the LRU
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(PageCacheTest, MatchesReferenceLruModelUnderRandomOps) {
  // Property test: drive the cache and a trivially correct reference LRU
  // through the same op sequence; membership must agree after every op.
  constexpr size_t kCapacity = 8;
  PageCache cache(kCapacity);
  std::vector<uint64_t> model;  // MRU at front
  auto model_touch = [&](uint64_t id, bool insert) {
    auto it = std::find(model.begin(), model.end(), id);
    if (it != model.end()) {
      model.erase(it);
    } else if (!insert) {
      return false;
    }
    model.insert(model.begin(), id);
    if (model.size() > kCapacity) model.pop_back();
    return true;
  };
  std::mt19937 rng(13);
  for (int op = 0; op < 4000; ++op) {
    uint64_t id = rng() % 24;
    switch (rng() % 3) {
      case 0:
        cache.Put(id, MakePage(id));
        model_touch(id, /*insert=*/true);
        break;
      case 1: {
        bool hit = cache.Get(id).has_value();
        EXPECT_EQ(hit, model_touch(id, /*insert=*/false)) << "op " << op;
        break;
      }
      case 2: {
        cache.Erase(id);
        auto it = std::find(model.begin(), model.end(), id);
        if (it != model.end()) model.erase(it);
        break;
      }
    }
    ASSERT_EQ(cache.size(), model.size()) << "op " << op;
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(PageCacheTest, ZeroCapacityNeverCaches) {
  PageCache cache(0);
  cache.Put(1, MakePage(1));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PageCacheTest, ClearDropsEverything) {
  PageCache cache(4);
  for (uint64_t id = 0; id < 4; ++id) cache.Put(id, MakePage(id));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(0).has_value());
}

// ------------------------------------------------------------------- btree

// NodeIo over a map: never reuses a page id, so superseded (copy-on-write)
// roots stay readable — which the CowKeepsOldRootReadable test relies on.
class InMemoryNodeIo : public NodeIo {
 public:
  Result<Page> ReadNode(uint64_t page_id) override {
    auto it = nodes_.find(page_id);
    if (it == nodes_.end()) {
      return Status::InvalidArgument("no node page " +
                                     std::to_string(page_id));
    }
    Page page;
    page.type = PageType::kIndex;
    page.page_id = page_id;
    page.payload = it->second;
    return page;
  }
  Result<uint64_t> WriteNode(const std::string& payload) override {
    uint64_t id = next_id_++;
    nodes_[id] = payload;
    return id;
  }
  void FreeNode(uint64_t page_id) override { freed_.push_back(page_id); }

  size_t node_count() const { return nodes_.size(); }
  const std::vector<uint64_t>& freed() const { return freed_; }

 private:
  uint64_t next_id_ = 2;  // 0 is the empty-tree sentinel, 1 a meta slot
  std::map<uint64_t, std::string> nodes_;
  std::vector<uint64_t> freed_;
};

std::string NthKey(int i) {
  // 48-byte keys force splits after ~70 leaf entries.
  return StrFormat("adult_outliers_LR_s%04d_n300_r3_f0.json.padpadpad", i);
}

TEST(BTreeTest, InsertLookupIterateStaySortedAcrossSplits) {
  InMemoryNodeIo io;
  uint64_t root = 0;
  constexpr int kKeys = 500;
  std::vector<int> order(kKeys);
  for (int i = 0; i < kKeys; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), std::mt19937(29));
  for (int i : order) {
    Result<uint64_t> next = BTreeInsert(io, root, NthKey(i), 1000u + i);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    root = *next;
  }
  // Shuffled inserts of 500 wide keys must have split into a real tree.
  EXPECT_GT(io.node_count(), 5u);

  for (int i = 0; i < kKeys; ++i) {
    Result<std::optional<uint64_t>> hit = BTreeLookup(io, root, NthKey(i));
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ASSERT_TRUE(hit->has_value()) << NthKey(i);
    EXPECT_EQ(**hit, 1000u + i);
  }
  Result<std::optional<uint64_t>> miss =
      BTreeLookup(io, root, "no_such_key");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->has_value());

  std::vector<std::string> keys;
  ASSERT_TRUE(BTreeIterate(io, root, [&](std::string_view key, uint64_t) {
                keys.emplace_back(key);
                return Status::OK();
              }).ok());
  ASSERT_EQ(keys.size(), static_cast<size_t>(kKeys));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  std::vector<uint64_t> pages;
  ASSERT_TRUE(BTreeCollectPages(io, root, &pages).ok());
  EXPECT_GT(pages.size(), 5u);
}

TEST(BTreeTest, InsertReplacesExistingValue) {
  InMemoryNodeIo io;
  uint64_t root = 0;
  root = *BTreeInsert(io, root, "key", 1);
  root = *BTreeInsert(io, root, "key", 2);
  Result<std::optional<uint64_t>> hit = BTreeLookup(io, root, "key");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(**hit, 2u);
  std::vector<std::string> keys;
  ASSERT_TRUE(BTreeIterate(io, root, [&](std::string_view key, uint64_t) {
                keys.emplace_back(key);
                return Status::OK();
              }).ok());
  EXPECT_EQ(keys.size(), 1u);
}

TEST(BTreeTest, DeleteRemovesAndReportsFound) {
  InMemoryNodeIo io;
  uint64_t root = 0;
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    root = *BTreeInsert(io, root, NthKey(i), i);
  }
  for (int i = 0; i < kKeys; i += 2) {
    Result<BTreeDeleteOutcome> out = BTreeDelete(io, root, NthKey(i));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(out->found) << NthKey(i);
    root = out->root;
  }
  Result<BTreeDeleteOutcome> missing = BTreeDelete(io, root, "absent");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->found);
  for (int i = 0; i < kKeys; ++i) {
    Result<std::optional<uint64_t>> hit = BTreeLookup(io, root, NthKey(i));
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->has_value(), i % 2 == 1) << NthKey(i);
  }
  // Delete is copy-on-write too: superseded nodes were handed to FreeNode.
  EXPECT_FALSE(io.freed().empty());
}

TEST(BTreeTest, CowKeepsOldRootReadable) {
  InMemoryNodeIo io;
  uint64_t root = 0;
  for (int i = 0; i < 100; ++i) {
    root = *BTreeInsert(io, root, NthKey(i), i);
  }
  uint64_t old_root = root;
  root = *BTreeInsert(io, root, NthKey(100), 100);
  // The committed tree from before the insert still answers correctly.
  Result<std::optional<uint64_t>> stale =
      BTreeLookup(io, old_root, NthKey(100));
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->has_value());
  Result<std::optional<uint64_t>> fresh = BTreeLookup(io, root, NthKey(100));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->has_value());
}

TEST(BTreeTest, RejectsEmptyAndOversizedKeys) {
  InMemoryNodeIo io;
  std::string huge(kMaxKeyLen + 1, 'k');
  EXPECT_EQ(BTreeInsert(io, 0, "", 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BTreeInsert(io, 0, huge, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BTreeLookup(io, 0, huge).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- paged store

PagedStoreOptions FastOptions() {
  PagedStoreOptions options;
  options.fsync = false;  // tmpfs durability is not under test; speed is
  return options;
}

TEST(PagedStoreTest, PutGetDeleteRenameListAcrossReopen) {
  std::string path = FreshDir("basic") + "/fairclean.pages";
  std::string binary = RandomBytes(500, 21);
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(path, FastOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Put("a.json", "alpha").ok());
    ASSERT_TRUE((*store)->Put("b.json", binary).ok());
    ASSERT_TRUE((*store)->Put("c.json", "gamma").ok());
    ASSERT_TRUE((*store)->Put("a.json", "alpha-2").ok());  // overwrite
    ASSERT_TRUE((*store)->Delete("c.json").ok());
    EXPECT_EQ((*store)->Delete("c.json").code(), StatusCode::kNotFound);
    ASSERT_TRUE((*store)->Rename("b.json", "b.corrupt").ok());
    EXPECT_EQ((*store)->Rename("ghost", "x").code(), StatusCode::kNotFound);
    EXPECT_EQ((*store)->Rename("a.json", "b.corrupt").code(),
              StatusCode::kAlreadyExists);
    EXPECT_EQ((*store)->entry_count(), 2u);
  }
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->entry_count(), 2u);
  EXPECT_EQ(*(*store)->Get("a.json"), "alpha-2");
  EXPECT_EQ(*(*store)->Get("b.corrupt"), binary);
  EXPECT_EQ((*store)->Get("c.json").status().code(), StatusCode::kNotFound);
  Result<std::vector<std::string>> keys = (*store)->ListKeys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"a.json", "b.corrupt"}));
  Result<bool> has = (*store)->Contains("a.json");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
}

TEST(PagedStoreTest, MultiPageChainsRoundTrip) {
  std::string path = FreshDir("chains") + "/fairclean.pages";
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok());
  // Exercise the chunking edges: below, at, just past, and far past one
  // page of payload (minus the 16-byte record header).
  const std::vector<size_t> sizes = {0,           100,
                                     kMaxPayload - 16, kMaxPayload - 15,
                                     kMaxPayload,      3 * kMaxPayload + 7};
  for (size_t size : sizes) {
    std::string value = RandomBytes(size, static_cast<uint32_t>(size));
    std::string key = StrFormat("len_%zu", size);
    ASSERT_TRUE((*store)->Put(key, value).ok()) << key;
    Result<std::string> read = (*store)->Get(key);
    ASSERT_TRUE(read.ok()) << key;
    EXPECT_EQ(*read, value) << key;
  }
  Result<PagedStore::IntegrityReport> report = (*store)->CheckIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->torn_pages, 0u);
  EXPECT_EQ(report->entries, 6u);
}

TEST(PagedStoreTest, CompressionIsByteTransparentAndSavesPages) {
  std::string dir = FreshDir("compress");
  std::string value;
  for (int i = 0; i < 400; ++i) {
    value += StrFormat("{\"accuracy\": 0.8%02d, \"f1\": 0.7%02d}\n", i % 100,
                       i % 100);
  }
  uint64_t plain_pages = 0;
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(dir + "/plain.pages", FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", value).ok());
    plain_pages = (*store)->CheckIntegrity()->pages_total;
  }
  PagedStoreOptions options = FastOptions();
  options.compress = true;
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(dir + "/packed.pages", options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", value).ok());
  EXPECT_EQ(*(*store)->Get("k"), value);  // exact original bytes
  EXPECT_LT((*store)->CheckIntegrity()->pages_total, plain_pages);

  // A compressed record survives reopen by a non-compressing store: the
  // flag travels with the record, not the options.
  store = PagedStore::Open(dir + "/packed.pages", FastOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("k"), value);
}

TEST(PagedStoreTest, FaultedPutRollsBackCleanly) {
  std::string path = FreshDir("rollback") + "/fairclean.pages";
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("stable.json", "committed bytes").ok());
  uint64_t txn_before = (*store)->txn_id();

  // An injected write fault mid-transaction (the commit-point crash is
  // covered by TornLatestMetaFallsBackToPreviousTxn) must leave the
  // committed state untouched — twice in a row, to prove the rollback
  // itself restores a reusable snapshot.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(
        FaultInjector::Global().Configure("page_write:1:1", 5).ok());
    Status put = (*store)->Put("doomed.json", RandomBytes(9000, 3));
    FaultInjector::Global().Reset();
    ASSERT_FALSE(put.ok()) << "round " << round;
    EXPECT_EQ(put.code(), StatusCode::kIoError);

    EXPECT_EQ((*store)->txn_id(), txn_before);
    EXPECT_EQ((*store)->entry_count(), 1u);
    EXPECT_EQ(*(*store)->Get("stable.json"), "committed bytes");
    EXPECT_EQ((*store)->Get("doomed.json").status().code(),
              StatusCode::kNotFound);
    Result<PagedStore::IntegrityReport> report = (*store)->CheckIntegrity();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->torn_pages, 0u) << "round " << round;
  }

  // The store is not wedged: the same Put succeeds once faults clear.
  ASSERT_TRUE((*store)->Put("doomed.json", RandomBytes(9000, 3)).ok());
  EXPECT_EQ((*store)->entry_count(), 2u);
}

TEST(PagedStoreTest, TornLatestMetaFallsBackToPreviousTxn) {
  std::string path = FreshDir("meta_fallback") + "/fairclean.pages";
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("first.json", "survives").ok());   // txn 1
    ASSERT_TRUE((*store)->Put("second.json", "vanishes").ok());  // txn 2
    ASSERT_EQ((*store)->txn_id(), 2u);
  }
  // Tear the meta slot txn 2 wrote (slot 2 % 2 == 0), the way a crash
  // between its write and its fsync would.
  CorruptPageOnDisk(path, 0, 20);

  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->txn_id(), 1u);
  EXPECT_EQ((*store)->entry_count(), 1u);
  EXPECT_EQ(*(*store)->Get("first.json"), "survives");
  EXPECT_EQ((*store)->Get("second.json").status().code(),
            StatusCode::kNotFound);
  // The recovered state is fully intact — the torn slot cost the last
  // transaction, never a reachable page.
  Result<PagedStore::IntegrityReport> report = (*store)->CheckIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->torn_pages, 0u);

  // And the store moves on: the next commit rewrites the torn slot.
  ASSERT_TRUE((*store)->Put("third.json", "fresh").ok());
  EXPECT_EQ((*store)->txn_id(), 2u);
}

TEST(PagedStoreTest, BothMetasTornFailsOpenLoudly) {
  std::string path = FreshDir("meta_gone") + "/fairclean.pages";
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", "v").ok());
  }
  CorruptPageOnDisk(path, 0, 8);
  CorruptPageOnDisk(path, 1, 8);
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
}

TEST(PagedStoreTest, CheckIntegrityReportsTornDataPage) {
  std::string path = FreshDir("torn_data") + "/fairclean.pages";
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(path, FastOptions());
    ASSERT_TRUE(store.ok());
    // Txn 1 allocates page 2 for the data chain, page 3 for the leaf.
    ASSERT_TRUE((*store)->Put("k.json", RandomBytes(200, 5)).ok());
  }
  CorruptPageOnDisk(path, 2, 30);
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok());
  Result<std::string> read = (*store)->Get("k.json");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  Result<PagedStore::IntegrityReport> report = (*store)->CheckIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->torn_pages, 1u);
  ASSERT_FALSE(report->errors.empty());
  EXPECT_NE(report->errors.front().find("k.json"), std::string::npos);
}

TEST(PagedStoreTest, FreeListSpillSurvivesReopenAndRecyclesPages) {
  // Overwriting a ~600-page record frees more page ids than the meta's
  // ~501 inline slots hold, forcing the free list to spill into chain
  // pages — then reopen must recover every freed page, and further
  // rewrites must recycle them instead of growing the file.
  std::string path = FreshDir("spill") + "/fairclean.pages";
  std::string big = RandomBytes(600 * kMaxPayload, 17);
  {
    Result<std::unique_ptr<PagedStore>> store =
        PagedStore::Open(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", big).ok());
    ASSERT_TRUE((*store)->Put("k", big).ok());  // frees the first chain
    Result<PagedStore::IntegrityReport> before = (*store)->CheckIntegrity();
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before->torn_pages, 0u);
    EXPECT_GT(before->pages_free, 550u);  // past inline capacity: spilled
  }
  Result<std::unique_ptr<PagedStore>> store =
      PagedStore::Open(path, FastOptions());
  ASSERT_TRUE(store.ok());
  Result<PagedStore::IntegrityReport> reopened = (*store)->CheckIntegrity();
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->torn_pages, 0u);
  EXPECT_GT(reopened->pages_free, 550u);
  EXPECT_EQ(*(*store)->Get("k"), big);

  uint64_t pages_before = reopened->pages_total;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*store)->Put("k", big).ok());
  }
  Result<PagedStore::IntegrityReport> after = (*store)->CheckIntegrity();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->torn_pages, 0u);
  // Rewrites recycle freed pages instead of growing the file unboundedly;
  // the slack covers spill-chain churn (spill pages always come from EOF).
  EXPECT_LE(after->pages_total, pages_before + 40);
}

// -------------------------------------------------------------- blob store

TEST(BlobStoreTest, FlatAndPagedBackendsShareSemantics) {
  for (const char* backend : {"flat", "paged"}) {
    std::string dir = FreshDir(std::string("blob_") + backend);
    Result<std::shared_ptr<BlobStore>> store =
        OpenBlobStore(dir, backend, 64, false);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_STREQ((*store)->backend(), backend);

    std::string bytes = AppendChecksumFooter("{\"records\": []}\n");
    ASSERT_TRUE((*store)->Write("cell.json", bytes).ok());
    EXPECT_EQ(*(*store)->Read("cell.json"), bytes);
    EXPECT_TRUE(*(*store)->Contains("cell.json"));
    EXPECT_EQ((*store)->Read("ghost.json").status().code(),
              StatusCode::kNotFound);
    EXPECT_FALSE(*(*store)->Contains("ghost.json"));
    ASSERT_TRUE((*store)->Remove("cell.json").ok());
    EXPECT_TRUE((*store)->Remove("cell.json").ok());  // idempotent
    EXPECT_FALSE(*(*store)->Contains("cell.json"));
    EXPECT_NE((*store)->Describe("cell.json").find("cell.json"),
              std::string::npos);
  }
}

TEST(BlobStoreTest, WriteProbesCacheWriteSiteOnBothBackends) {
  for (const char* backend : {"flat", "paged"}) {
    std::string dir = FreshDir(std::string("blob_fault_") + backend);
    Result<std::shared_ptr<BlobStore>> store =
        OpenBlobStore(dir, backend, 64, false);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(FaultInjector::Global().Configure("cache_write:1:1", 9).ok());
    Status write = (*store)->Write("k.json", "bytes");
    FaultInjector::Global().Reset();
    EXPECT_EQ(write.code(), StatusCode::kIoError) << backend;
    EXPECT_FALSE(*(*store)->Contains("k.json")) << backend;
    ASSERT_TRUE((*store)->Write("k.json", "bytes").ok()) << backend;
  }
}

TEST(BlobStoreTest, QuarantineUsesUniqueKeys) {
  for (const char* backend : {"flat", "paged"}) {
    std::string dir = FreshDir(std::string("blob_quar_") + backend);
    Result<std::shared_ptr<BlobStore>> store =
        OpenBlobStore(dir, backend, 64, false);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Write("k.json", "first damage").ok());
    Result<std::string> first = (*store)->Quarantine("k.json");
    ASSERT_TRUE(first.ok()) << backend;
    ASSERT_TRUE((*store)->Write("k.json", "second damage").ok());
    Result<std::string> second = (*store)->Quarantine("k.json");
    ASSERT_TRUE(second.ok()) << backend;
    // Two quarantines of the same key keep BOTH sets of evidence bytes.
    EXPECT_NE(*first, *second) << backend;
    EXPECT_FALSE(*(*store)->Contains("k.json")) << backend;
  }
  // Paged names are predictable keys; assert the exact scheme once.
  std::string dir = FreshDir("blob_quar_names");
  Result<std::shared_ptr<BlobStore>> store =
      OpenBlobStore(dir, "paged", 64, false);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Write("k.json", "a").ok());
  EXPECT_EQ(*(*store)->Quarantine("k.json"), "k.json.corrupt");
  ASSERT_TRUE((*store)->Write("k.json", "b").ok());
  EXPECT_EQ(*(*store)->Quarantine("k.json"), "k.json.corrupt.1");
  EXPECT_EQ(*(*store)->Read("k.json.corrupt"), "a");
  EXPECT_EQ(*(*store)->Read("k.json.corrupt.1"), "b");
}

TEST(BlobStoreTest, PagedStoreMigratesFlatFilesByteForByte) {
  std::string dir = FreshDir("migrate");
  // A pre-existing flat cache, exactly as the flat backend laid it down.
  std::string cache_bytes =
      AppendChecksumFooter("{\"records\": [1, 2, 3]}\n");
  std::string journal_bytes = AppendChecksumFooter("{\"slot\": 0}\n");
  {
    FlatFileStore flat(dir);
    ASSERT_TRUE(flat.Write("cell.json", cache_bytes).ok());
    ASSERT_TRUE(flat.Write("cell.json.journal", journal_bytes).ok());
  }
  Result<std::shared_ptr<BlobStore>> store =
      OpenBlobStore(dir, "paged", 64, false);
  ASSERT_TRUE(store.ok());
  // Contains sees the flat file before any migration...
  EXPECT_TRUE(*(*store)->Contains("cell.json"));
  // ...and Read absorbs it, byte for byte, footer included.
  EXPECT_EQ(*(*store)->Read("cell.json"), cache_bytes);
  EXPECT_EQ(*(*store)->Read("cell.json.journal"), journal_bytes);
  // The flat originals stay on disk as fallback copies...
  EXPECT_TRUE(std::filesystem::exists(dir + "/cell.json"));
  // ...and the pages file now owns the keys.
  PagedStore& paged =
      static_cast<PagedBlobStore*>(store->get())->paged_store();
  EXPECT_EQ(paged.entry_count(), 2u);
  EXPECT_EQ(*paged.Get("cell.json"), cache_bytes);
}

TEST(BlobStoreTest, EnvSelectionAndStrictKnobParsing) {
  std::string dir = FreshDir("env");
  ::setenv("FAIRCLEAN_STORE", "paged", 1);
  ::setenv("FAIRCLEAN_STORE_COMPRESS", "1", 1);
  Result<std::shared_ptr<BlobStore>> store = OpenBlobStoreFromEnv(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_STREQ((*store)->backend(), "paged");

  ::setenv("FAIRCLEAN_STORE", "sqlite", 1);
  EXPECT_EQ(OpenBlobStoreFromEnv(dir).status().code(),
            StatusCode::kInvalidArgument);
  ::setenv("FAIRCLEAN_STORE", "paged", 1);
  ::setenv("FAIRCLEAN_STORE_COMPRESS", "yes", 1);
  EXPECT_EQ(OpenBlobStoreFromEnv(dir).status().code(),
            StatusCode::kInvalidArgument);

  ::unsetenv("FAIRCLEAN_STORE");
  ::unsetenv("FAIRCLEAN_STORE_COMPRESS");
  store = OpenBlobStoreFromEnv(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_STREQ((*store)->backend(), "flat");  // the default
}

}  // namespace
}  // namespace store
}  // namespace fairclean
