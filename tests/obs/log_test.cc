#include "obs/log.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace obs {
namespace {

/// Restores the level around every test so the suite's default (warn)
/// is not perturbed for other tests in the binary.
class LogTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = CurrentLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

  LogLevel saved_;
};

TEST_F(LogTest, LevelNamesParseRoundTrip) {
  EXPECT_EQ(LogLevelFromString("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString("off", LogLevel::kDebug), LogLevel::kOff);
}

TEST_F(LogTest, UnknownNameFallsBack) {
  EXPECT_EQ(LogLevelFromString("chatty", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("", LogLevel::kError), LogLevel::kError);
}

TEST_F(LogTest, ThresholdGatesLowerLevels) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
}

TEST_F(LogTest, MacroSkipsArgumentEvaluationWhenDisabled) {
  SetLogLevel(LogLevel::kError);
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "x";
  };
  FC_LOG_DEBUG("test", "%s", touch());
  EXPECT_FALSE(evaluated);
  SetLogLevel(LogLevel::kOff);  // silence the real write below
  FC_LOG_ERROR("test", "%s", touch());
  EXPECT_FALSE(evaluated);
}

TEST_F(LogTest, LevelNamesAreFixedWidth) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info ");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn ");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

}  // namespace
}  // namespace obs
}  // namespace fairclean
