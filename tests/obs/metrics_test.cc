#include "obs/metrics.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/json_lite.h"

namespace fairclean {
namespace obs {
namespace {

TEST(CounterTest, IncrementsForwardToParent) {
  MetricsRegistry parent;
  MetricsRegistry scoped(&parent);
  scoped.GetCounter("c")->Increment();
  scoped.GetCounter("c")->Increment(4);
  EXPECT_EQ(scoped.GetCounter("c")->value(), 5u);
  EXPECT_EQ(parent.GetCounter("c")->value(), 5u);
}

TEST(GaugeTest, LastWriteWinsAndForwards) {
  MetricsRegistry parent;
  MetricsRegistry scoped(&parent);
  scoped.GetGauge("g")->Set(2.5);
  scoped.GetGauge("g")->Set(-1.0);
  EXPECT_DOUBLE_EQ(scoped.GetGauge("g")->value(), -1.0);
  EXPECT_DOUBLE_EQ(parent.GetGauge("g")->value(), -1.0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0 (<= 1)
  h->Observe(1.0);    // bucket 0 (boundary counts down)
  h->Observe(5.0);    // bucket 1
  h->Observe(50.0);   // bucket 2
  h->Observe(500.0);  // overflow bucket
  std::vector<uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 556.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 500.0);
}

TEST(HistogramTest, PercentilesUseBucketUpperBoundsClampedToMinMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("p", {1.0, 10.0, 100.0});
  for (int i = 0; i < 90; ++i) h->Observe(0.5);
  for (int i = 0; i < 10; ++i) h->Observe(50.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h->Percentile(100.0), 50.0);
  // p50 falls in the first bucket (bound 1.0) but clamps to max(min, ...).
  EXPECT_LE(h->Percentile(50.0), 1.0);
  EXPECT_GE(h->Percentile(50.0), 0.5);
  // p95 falls in the third bucket; its bound clamps to the exact max.
  EXPECT_DOUBLE_EQ(h->Percentile(95.0), 50.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("empty", {1.0});
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(50.0), 0.0);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("stable"), first);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("middle", {1.0});
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[1].name, "middle");
  EXPECT_EQ(snapshot[2].name, "zebra");
}

TEST(MetricsRegistryTest, ToJsonlIsValidJsonPerLine) {
  MetricsRegistry registry;
  registry.GetCounter("jsonl.counter")->Increment(7);
  registry.GetGauge("jsonl.gauge")->Set(1.25);
  Histogram* h = registry.GetHistogram("jsonl.histogram", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  std::string jsonl = registry.ToJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    std::string line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    JsonValue value;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &value, &error)) << error << ": "
                                                        << line;
    ASSERT_TRUE(value.is_object());
    EXPECT_NE(value.Find("metric"), nullptr);
    std::string type = value.StringOr("type", "");
    if (type == "counter") {
      EXPECT_DOUBLE_EQ(value.NumberOr("value", -1), 7.0);
    } else if (type == "gauge") {
      EXPECT_DOUBLE_EQ(value.NumberOr("value", -1), 1.25);
    } else if (type == "histogram") {
      EXPECT_DOUBLE_EQ(value.NumberOr("count", -1), 2.0);
      const JsonValue* bounds = value.Find("bounds");
      ASSERT_NE(bounds, nullptr);
      EXPECT_EQ(bounds->array_items.size(), 2u);
    } else {
      ADD_FAILURE() << "unexpected type " << type;
    }
  }
  EXPECT_EQ(lines, 3u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromPoolWorkersLoseNothing) {
  constexpr size_t kTasks = 32;
  constexpr size_t kIncrementsPerTask = 1000;
  MetricsRegistry parent;
  MetricsRegistry scoped(&parent);
  Counter* counter = scoped.GetCounter("concurrent.counter");
  Histogram* histogram =
      scoped.GetHistogram("concurrent.histogram", {0.25, 0.75});
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (size_t task = 0; task < kTasks; ++task) {
      futures.push_back(pool.Submit([counter, histogram, task] {
        for (size_t i = 0; i < kIncrementsPerTask; ++i) {
          counter->Increment();
          histogram->Observe(task % 2 == 0 ? 0.1 : 0.9);
        }
      }));
    }
    for (auto& future : futures) future.get();
  }
  EXPECT_EQ(counter->value(), kTasks * kIncrementsPerTask);
  EXPECT_EQ(parent.GetCounter("concurrent.counter")->value(),
            kTasks * kIncrementsPerTask);
  EXPECT_EQ(histogram->count(), kTasks * kIncrementsPerTask);
  std::vector<uint64_t> buckets = histogram->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], kTasks / 2 * kIncrementsPerTask);
  EXPECT_EQ(buckets[2], kTasks / 2 * kIncrementsPerTask);
}

TEST(MetricsRegistryTest, DefaultLatencyBoundsAreAscending) {
  const std::vector<double>& bounds =
      MetricsRegistry::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace obs
}  // namespace fairclean
