#include "obs/trace.h"

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/safe_io.h"
#include "common/thread_pool.h"
#include "obs/json_lite.h"

namespace fairclean {
namespace obs {
namespace {

std::string TracePath(const char* name) {
  return testing::TempDir() + "/trace_" + name + ".json";
}

/// Flushes the tracer to `path` and parses the file; the trace must always
/// be valid JSON with a traceEvents array.
JsonValue LoadTrace(const std::string& path) {
  Tracer::Global().Flush();
  Result<std::string> text = ReadFileToString(path);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  JsonValue root;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text.ok() ? *text : "null", &root, &error))
      << error;
  EXPECT_NE(root.Find("traceEvents"), nullptr);
  return root;
}

const JsonValue* FindEvent(const JsonValue& root, const std::string& name) {
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const JsonValue& event : events->array_items) {
    if (event.StringOr("name", "") == name) return &event;
  }
  return nullptr;
}

class TraceTest : public testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  void EnableTo(const char* name) {
    path_ = TracePath(name);
    std::filesystem::remove(path_);
    Tracer::Global().Enable(path_);
  }

  std::string path_;
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(TraceEnabled());
  bool name_materialized = false;
  {
    TraceSpan span("test", [&] {
      name_materialized = true;
      return std::string("never");
    });
  }
  EXPECT_FALSE(name_materialized);
}

TEST_F(TraceTest, SpanRoundTripsThroughJson) {
  EnableTo("roundtrip");
  ASSERT_TRUE(TraceEnabled());
  { TraceSpan span("test", "outer span \"quoted\" \\ name"); }
  JsonValue root = LoadTrace(path_);
  const JsonValue* event = FindEvent(root, "outer span \"quoted\" \\ name");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->StringOr("cat", ""), "test");
  EXPECT_EQ(event->StringOr("ph", ""), "X");
  EXPECT_GE(event->NumberOr("dur", -1.0), 0.0);
  EXPECT_GE(event->NumberOr("ts", -1.0), 0.0);
}

TEST_F(TraceTest, NestedSpansAreContainedInParent) {
  EnableTo("nested");
  {
    TraceSpan outer("test", "nest outer");
    TraceSpan inner("test", "nest inner");
  }
  JsonValue root = LoadTrace(path_);
  const JsonValue* outer = FindEvent(root, "nest outer");
  const JsonValue* inner = FindEvent(root, "nest inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  double outer_ts = outer->NumberOr("ts", -1);
  double outer_end = outer_ts + outer->NumberOr("dur", 0);
  double inner_ts = inner->NumberOr("ts", -1);
  double inner_end = inner_ts + inner->NumberOr("dur", 0);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
  // Same thread: nested spans share the parent's tid.
  EXPECT_EQ(inner->NumberOr("tid", -1), outer->NumberOr("tid", -2));
}

TEST_F(TraceTest, InstantEventCarriesScope) {
  EnableTo("instant");
  TraceInstant("fault", "fault:cache_write");
  JsonValue root = LoadTrace(path_);
  const JsonValue* event = FindEvent(root, "fault:cache_write");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->StringOr("ph", ""), "i");
  EXPECT_EQ(event->StringOr("s", ""), "t");
}

TEST_F(TraceTest, ConcurrentSpansFromPoolWorkersGetDistinctNamedTids) {
  EnableTo("concurrent");
  constexpr size_t kThreads = 4;
  constexpr size_t kSpansPerTask = 25;
  {
    ThreadPool pool(kThreads);
    // One task per worker, each blocking until every worker has one, so
    // all four threads are guaranteed to trace (a fast worker could
    // otherwise drain the whole queue alone).
    std::atomic<size_t> started{0};
    std::vector<std::future<void>> futures;
    for (size_t task = 0; task < kThreads; ++task) {
      futures.push_back(pool.Submit([task, &started] {
        started.fetch_add(1);
        while (started.load() < kThreads) std::this_thread::yield();
        for (size_t i = 0; i < kSpansPerTask; ++i) {
          TraceSpan span("test", [task] {
            return "concurrent t" + std::to_string(task);
          });
        }
      }));
    }
    for (auto& future : futures) future.get();
  }
  JsonValue root = LoadTrace(path_);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t spans = 0;
  std::set<double> tids;
  std::set<std::string> worker_names;
  for (const JsonValue& event : events->array_items) {
    std::string name = event.StringOr("name", "");
    if (event.StringOr("ph", "") == "X" &&
        name.rfind("concurrent t", 0) == 0) {
      ++spans;
      tids.insert(event.NumberOr("tid", -1));
    }
    if (event.StringOr("ph", "") == "M" && name == "thread_name") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      std::string thread_name = args->StringOr("name", "");
      if (thread_name.rfind("worker-", 0) == 0) {
        worker_names.insert(thread_name);
      }
    }
  }
  EXPECT_EQ(spans, kThreads * kSpansPerTask);
  // Every pool worker traced at least once and got its own tid + name.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_GE(worker_names.size(), tids.size());
}

TEST_F(TraceTest, DisableStopsRecordingAndClearsPath) {
  EnableTo("disable");
  { TraceSpan span("test", "before disable"); }
  Tracer::Global().Disable();
  EXPECT_FALSE(TraceEnabled());
  EXPECT_EQ(Tracer::Global().path(), "");
  // The file written by Disable's flush still holds the earlier span.
  Result<std::string> text = ReadFileToString(path_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("before disable"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace fairclean
