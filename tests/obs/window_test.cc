#include "obs/window.h"

#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace fairclean {
namespace obs {
namespace {

// ----------------------------------------------- PercentileFromBuckets --

TEST(PercentileFromBucketsTest, EdgePercentilesReturnMinAndMax) {
  std::vector<double> bounds = {1.0, 10.0};
  std::vector<uint64_t> buckets = {3, 2, 0};
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 5, 0.2, 7.0, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 5, 0.2, 7.0, -5.0), 0.2);
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 5, 0.2, 7.0, 100.0), 7.0);
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 5, 0.2, 7.0, 250.0), 7.0);
}

TEST(PercentileFromBucketsTest, EmptyDistributionIsZeroEverywhere) {
  std::vector<double> bounds = {1.0};
  std::vector<uint64_t> buckets = {0, 0};
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(PercentileFromBuckets(bounds, buckets, 0, 0.0, 0.0, p),
                     0.0)
        << "p=" << p;
  }
}

TEST(PercentileFromBucketsTest, SingleObservationIsEveryPercentile) {
  std::vector<double> bounds = {1.0, 10.0};
  std::vector<uint64_t> buckets = {0, 1, 0};
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    // The bucket bound (10.0) clamps to the only value ever seen.
    EXPECT_DOUBLE_EQ(
        PercentileFromBuckets(bounds, buckets, 1, 4.2, 4.2, p), 4.2)
        << "p=" << p;
  }
}

TEST(PercentileFromBucketsTest, OverflowBucketClampsToMax) {
  // Everything above the last bound lands in the implicit overflow bucket,
  // which has no upper bound of its own — the observed max caps it.
  std::vector<double> bounds = {1.0};
  std::vector<uint64_t> buckets = {1, 9};
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 10, 0.5, 123.0, 95.0), 123.0);
  // The p that still lands in the first bucket uses its bound, floored at
  // the observed min.
  EXPECT_DOUBLE_EQ(
      PercentileFromBuckets(bounds, buckets, 10, 0.5, 123.0, 10.0), 1.0);
}

TEST(HistogramPercentileTest, SingleObservationAndOverflowEdges) {
  MetricsRegistry registry;
  Histogram* one = registry.GetHistogram("one", {1.0, 10.0});
  one->Observe(3.0);
  EXPECT_DOUBLE_EQ(one->Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(one->Percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(one->Percentile(100.0), 3.0);

  Histogram* overflow = registry.GetHistogram("overflow", {1.0});
  overflow->Observe(50.0);   // overflow bucket
  overflow->Observe(500.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(overflow->Percentile(100.0), 500.0);
  EXPECT_DOUBLE_EQ(overflow->Percentile(0.0), 50.0);
  // All mass beyond the last bound: bucket "upper" is the observed max.
  EXPECT_DOUBLE_EQ(overflow->Percentile(75.0), 500.0);
}

// -------------------------------------------------- NaN / Inf rejection --

TEST(DroppedSamplesTest, NonFiniteObservationsCountedNotRecorded) {
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("obs.dropped_samples");
  uint64_t before = dropped->value();

  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("nan", {1.0});
  histogram->Observe(std::numeric_limits<double>::quiet_NaN());
  histogram->Observe(std::numeric_limits<double>::infinity());
  histogram->Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram->count(), 0u);

  SlidingWindowHistogram window({1.0}, 60.0);
  window.ObserveAt(std::numeric_limits<double>::quiet_NaN(), 1.0);
  window.ObserveAt(std::numeric_limits<double>::infinity(), 1.0);
  EXPECT_EQ(window.SnapshotAt(1.0).count, 0u);

  EXPECT_EQ(dropped->value(), before + 5);

  // Finite observations still land after the rejected ones.
  histogram->Observe(0.5);
  window.ObserveAt(0.5, 1.0);
  EXPECT_EQ(histogram->count(), 1u);
  EXPECT_EQ(window.SnapshotAt(1.0).count, 1u);
  EXPECT_EQ(dropped->value(), before + 5);
}

// ------------------------------------------------ sliding-window slices --

TEST(SlidingWindowTest, SnapshotCoversOnlyTheWindow) {
  // 60 s window, 6 slices of 10 s each. Deterministic timestamps drive
  // rotation; nothing here touches the process clock.
  SlidingWindowHistogram window({1.0, 10.0, 100.0}, 60.0, 6);
  window.ObserveAt(0.5, 5.0);    // slot 0
  window.ObserveAt(5.0, 15.0);   // slot 1
  window.ObserveAt(50.0, 25.0);  // slot 2

  SlidingWindowHistogram::WindowSnapshot all = window.SnapshotAt(25.0);
  EXPECT_EQ(all.count, 3u);
  EXPECT_DOUBLE_EQ(all.sum, 55.5);
  EXPECT_DOUBLE_EQ(all.min, 0.5);
  EXPECT_DOUBLE_EQ(all.max, 50.0);
  EXPECT_DOUBLE_EQ(all.window_s, 60.0);

  // Scrape 61 s after the first observation: slot 0 has rotated out of
  // the window, the later two remain.
  SlidingWindowHistogram::WindowSnapshot later = window.SnapshotAt(66.0);
  EXPECT_EQ(later.count, 2u);
  EXPECT_DOUBLE_EQ(later.sum, 55.0);
  EXPECT_DOUBLE_EQ(later.min, 5.0);

  // Far enough out, the window is empty and reports zeros.
  SlidingWindowHistogram::WindowSnapshot idle = window.SnapshotAt(500.0);
  EXPECT_EQ(idle.count, 0u);
  EXPECT_DOUBLE_EQ(idle.min, 0.0);
  EXPECT_DOUBLE_EQ(idle.max, 0.0);
  EXPECT_DOUBLE_EQ(idle.p95, 0.0);
}

TEST(SlidingWindowTest, RotationReusesSlicesDeterministically) {
  SlidingWindowHistogram window({1.0}, 60.0, 6);
  // Fill slot 0 in its first epoch, then come back to the same slot one
  // full ring revolution later: the first epoch's counts must be gone.
  window.ObserveAt(0.5, 1.0);
  EXPECT_EQ(window.SnapshotAt(1.0).count, 1u);
  window.ObserveAt(0.7, 61.0);  // same slot index, next epoch
  SlidingWindowHistogram::WindowSnapshot snapshot = window.SnapshotAt(61.0);
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.7);
}

TEST(SlidingWindowTest, StaleObservationsAreDroppedAndCounted) {
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("obs.dropped_samples");
  uint64_t before = dropped->value();
  SlidingWindowHistogram window({1.0}, 60.0, 6);
  window.ObserveAt(0.5, 120.0);  // slot 12 claims the slice slot 6 shares
  // A full window behind the newest slot ever observed: the slice this
  // timestamp maps to has already been claimed by a later epoch.
  window.ObserveAt(0.9, 60.0);  // slot 6 -> same slice, older epoch
  EXPECT_EQ(window.SnapshotAt(120.0).count, 1u);
  EXPECT_EQ(dropped->value(), before + 1);
}

TEST(SlidingWindowTest, PercentilesComeFromMergedSlices) {
  SlidingWindowHistogram window({0.001, 0.01, 0.1, 1.0}, 60.0, 6);
  // 90 fast + 10 slow across two slices; merged p50 sits in the fast
  // bucket, p95/p99 in the slow one.
  for (int i = 0; i < 90; ++i) window.ObserveAt(0.005, 5.0);
  for (int i = 0; i < 10; ++i) window.ObserveAt(0.5, 15.0);
  SlidingWindowHistogram::WindowSnapshot snapshot = window.SnapshotAt(15.0);
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.p50, 0.01);
  EXPECT_DOUBLE_EQ(snapshot.p95, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.p99, 0.5);
  ASSERT_EQ(snapshot.bucket_counts.size(), 5u);
  EXPECT_EQ(snapshot.bucket_counts[1], 90u);
  EXPECT_EQ(snapshot.bucket_counts[3], 10u);
}

TEST(SlidingWindowTest, ConcurrentObserversLoseNothing) {
  constexpr size_t kTasks = 16;
  constexpr size_t kObsPerTask = 2000;
  SlidingWindowHistogram window({0.25, 0.75}, 60.0, 6);
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (size_t task = 0; task < kTasks; ++task) {
      futures.push_back(pool.Submit([&window, task] {
        for (size_t i = 0; i < kObsPerTask; ++i) {
          // All timestamps inside one window; slot churn is exercised by
          // spreading them over three slices.
          window.ObserveAt(task % 2 == 0 ? 0.1 : 0.9,
                           5.0 + static_cast<double>(i % 3) * 10.0);
        }
      }));
    }
    for (auto& future : futures) future.get();
  }
  SlidingWindowHistogram::WindowSnapshot snapshot = window.SnapshotAt(25.0);
  EXPECT_EQ(snapshot.count, kTasks * kObsPerTask);
  ASSERT_EQ(snapshot.bucket_counts.size(), 3u);
  EXPECT_EQ(snapshot.bucket_counts[0], kTasks / 2 * kObsPerTask);
  EXPECT_EQ(snapshot.bucket_counts[2], kTasks / 2 * kObsPerTask);
}

TEST(SlidingWindowTest, DefaultWindowSecondsIsClampedAndCached) {
  // The knob is read once per process (static cache), so only the
  // contract survivable in-process is checkable: clamped and stable.
  const double window = DefaultMetricsWindowSeconds();
  EXPECT_GE(window, 1.0);
  EXPECT_LE(window, 3600.0);
  setenv("FAIRCLEAN_METRICS_WINDOW_S", "7", 1);
  EXPECT_DOUBLE_EQ(DefaultMetricsWindowSeconds(), window);
  unsetenv("FAIRCLEAN_METRICS_WINDOW_S");
}

}  // namespace
}  // namespace obs
}  // namespace fairclean
