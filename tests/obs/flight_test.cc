#include "obs/flight.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fairclean {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/flight_" + std::to_string(::getpid()) +
         "_" + name;
}

// The recorder is process-global; every test leaves it disabled so the
// trace/serve tests in this binary keep their capture expectations.
class FlightTest : public testing::Test {
 protected:
  void TearDown() override { FlightRecorder::Disable(); }
};

TEST_F(FlightTest, DisabledRecorderRecordsNothing) {
  FlightRecorder::Disable();
  const uint64_t before = FlightRecorder::EventsRecordedOnThisThread();
  FlightRecorder::Record(FlightEventType::kMark,
                         FlightRecorder::Site("flight.disabled"), 1);
  EXPECT_FALSE(FlightEnabled());
  EXPECT_EQ(FlightRecorder::EventsRecordedOnThisThread(), before);
}

TEST_F(FlightTest, RecordDumpDecodeRoundTrip) {
  FlightRecorder::Enable(/*capacity=*/64);
  ASSERT_TRUE(FlightEnabled());
  const uint16_t site = FlightRecorder::Site("flight.roundtrip");
  for (uint32_t i = 0; i < 10; ++i) {
    FlightRecorder::Record(FlightEventType::kMark, site, i);
  }
  FlightRecorder::Record(FlightEventType::kShed,
                         FlightRecorder::Site("serve.shed"), 42);

  const std::string path = TempPath("roundtrip.flight");
  std::string error;
  ASSERT_TRUE(FlightRecorder::Dump(path, kFlightReasonExplicit, &error))
      << error;

  FlightDump dump;
  ASSERT_TRUE(DecodeFlightFile(path, &dump, &error)) << error;
  EXPECT_EQ(dump.reason, kFlightReasonExplicit);
  ASSERT_GT(dump.sites.size(), site);
  EXPECT_EQ(dump.sites[site], "flight.roundtrip");

  // This thread's ring holds the 11 events just recorded, in order, with
  // monotone timestamps and intact args.
  size_t marks = 0, sheds = 0;
  uint64_t last_ts = 0;
  uint32_t next_arg = 0;
  for (const FlightDump::Thread& thread : dump.threads) {
    for (const FlightEntry& entry : thread.events) {
      EXPECT_GE(entry.ts_us, last_ts);
      last_ts = entry.ts_us;
      if (entry.site != site &&
          dump.sites[entry.site] != "serve.shed") {
        continue;
      }
      if (entry.type == static_cast<uint8_t>(FlightEventType::kMark)) {
        EXPECT_EQ(entry.arg, next_arg++);
        ++marks;
      } else if (entry.type ==
                 static_cast<uint8_t>(FlightEventType::kShed)) {
        EXPECT_EQ(entry.arg, 42u);
        ++sheds;
      }
    }
    last_ts = 0;  // ordering only holds within one thread's ring
  }
  EXPECT_EQ(marks, 10u);
  EXPECT_EQ(sheds, 1u);
  std::filesystem::remove(path);
}

TEST_F(FlightTest, RingKeepsTheNewestEventsWhenItWraps) {
  // Rings recycle across threads and keep their original capacity, so the
  // recording thread may inherit any earlier ring (at most the 4096-event
  // default here). Recording 4096 + 64 marks therefore always wraps it;
  // the retained events must be a consecutive suffix ending at the newest
  // mark, with the overflow counted by `recorded` but no longer present.
  constexpr uint32_t kTotal = 4096 + 64;
  FlightRecorder::Enable(/*capacity=*/64);
  const uint16_t site = FlightRecorder::Site("flight.wrap");
  uint64_t recorded_delta = 0;
  std::thread([&] {
    // Prime the lease first: before any Record this thread has no ring, so
    // the counter would read 0 and then jump to the recycled ring's full
    // history on the first append.
    FlightRecorder::Record(FlightEventType::kCheckpoint,
                           FlightRecorder::Site("flight.wrap.prime"));
    const uint64_t before = FlightRecorder::EventsRecordedOnThisThread();
    for (uint32_t i = 0; i < kTotal; ++i) {
      FlightRecorder::Record(FlightEventType::kMark, site, i);
    }
    recorded_delta =
        FlightRecorder::EventsRecordedOnThisThread() - before;
  }).join();
  EXPECT_EQ(recorded_delta, kTotal);

  const std::string path = TempPath("wrap.flight");
  std::string error;
  ASSERT_TRUE(FlightRecorder::Dump(path, kFlightReasonExplicit, &error))
      << error;
  FlightDump dump;
  ASSERT_TRUE(DecodeFlightFile(path, &dump, &error)) << error;

  std::vector<uint32_t> args;
  for (const FlightDump::Thread& thread : dump.threads) {
    for (const FlightEntry& entry : thread.events) {
      if (entry.site == site) args.push_back(entry.arg);
    }
  }
  ASSERT_FALSE(args.empty());
  EXPECT_LT(args.size(), static_cast<size_t>(kTotal)) << "ring never wrapped";
  // Newest events last, consecutive, ending at the final mark.
  EXPECT_EQ(args.back(), kTotal - 1);
  for (size_t i = 1; i < args.size(); ++i) {
    ASSERT_EQ(args[i], args[i - 1] + 1) << "position " << i;
  }
  std::filesystem::remove(path);
}

TEST_F(FlightTest, EveryRecordingThreadAppearsInTheDump) {
  FlightRecorder::Enable(/*capacity=*/64);
  const uint16_t site = FlightRecorder::Site("flight.threads");
  constexpr int kThreads = 3;
  // A thread that exits returns its ring for reuse, so every recorder must
  // stay alive until all have recorded — otherwise two "threads" can share
  // one recycled ring and collapse into a single dump entry.
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([site, t, &done] {
      for (uint32_t i = 0; i < 5; ++i) {
        FlightRecorder::Record(FlightEventType::kMark, site,
                               static_cast<uint32_t>(t) * 100 + i);
      }
      done.fetch_add(1);
      while (done.load() < kThreads) std::this_thread::yield();
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::string path = TempPath("threads.flight");
  std::string error;
  ASSERT_TRUE(FlightRecorder::Dump(path, kFlightReasonExplicit, &error))
      << error;
  FlightDump dump;
  ASSERT_TRUE(DecodeFlightFile(path, &dump, &error)) << error;

  size_t threads_with_marks = 0;
  for (const FlightDump::Thread& thread : dump.threads) {
    size_t marks = 0;
    for (const FlightEntry& entry : thread.events) {
      if (entry.site == site) ++marks;
    }
    if (marks > 0) {
      EXPECT_EQ(marks, 5u) << "tid " << thread.tid;
      ++threads_with_marks;
    }
  }
  EXPECT_EQ(threads_with_marks, static_cast<size_t>(kThreads));
  std::filesystem::remove(path);
}

TEST_F(FlightTest, DumpCarriesReasonCodes) {
  FlightRecorder::Enable(/*capacity=*/16);
  FlightRecorder::Record(FlightEventType::kDeadline,
                         FlightRecorder::Site("sched.deadline"));
  const std::string path = TempPath("reason.flight");
  std::string error;
  ASSERT_TRUE(FlightRecorder::Dump(path, kFlightReasonDeadline, &error))
      << error;
  FlightDump dump;
  ASSERT_TRUE(DecodeFlightFile(path, &dump, &error)) << error;
  EXPECT_EQ(dump.reason, kFlightReasonDeadline);
  std::filesystem::remove(path);
}

TEST_F(FlightTest, DecodeRejectsMissingAndTruncatedFiles) {
  FlightDump dump;
  std::string error;
  EXPECT_FALSE(
      DecodeFlightFile(TempPath("does_not_exist.flight"), &dump, &error));
  EXPECT_FALSE(error.empty());

  // A file that is too short to even hold the header must not decode.
  const std::string path = TempPath("truncated.flight");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("FLT", f);
  std::fclose(f);
  error.clear();
  EXPECT_FALSE(DecodeFlightFile(path, &dump, &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(path);
}

TEST_F(FlightTest, EventTypeNamesDecodeAndTolerateGarbage) {
  EXPECT_STREQ(
      FlightEventTypeName(static_cast<uint8_t>(FlightEventType::kSpanBegin)),
      "span_begin");
  EXPECT_STREQ(
      FlightEventTypeName(static_cast<uint8_t>(FlightEventType::kShed)),
      "shed");
  EXPECT_STREQ(FlightEventTypeName(0), "?");
  EXPECT_STREQ(FlightEventTypeName(200), "?");
}

}  // namespace
}  // namespace obs
}  // namespace fairclean
