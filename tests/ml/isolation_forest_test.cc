#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

// A tight Gaussian cluster with a few far-away anomalies appended.
Matrix MakeClusterWithAnomalies(size_t n_normal, size_t n_anomalies,
                                uint64_t seed) {
  Rng rng(seed);
  Matrix x(n_normal + n_anomalies, 2);
  for (size_t i = 0; i < n_normal; ++i) {
    x(i, 0) = rng.Normal(0.0, 1.0);
    x(i, 1) = rng.Normal(0.0, 1.0);
  }
  for (size_t i = 0; i < n_anomalies; ++i) {
    size_t row = n_normal + i;
    x(row, 0) = rng.Normal(25.0, 0.5);
    x(row, 1) = rng.Normal(-25.0, 0.5);
  }
  return x;
}

TEST(AveragePathLengthTest, KnownValues) {
  EXPECT_DOUBLE_EQ(AveragePathLength(0), 0.0);
  EXPECT_DOUBLE_EQ(AveragePathLength(1), 0.0);
  EXPECT_DOUBLE_EQ(AveragePathLength(2), 1.0);
  // c(n) grows logarithmically.
  EXPECT_GT(AveragePathLength(256), AveragePathLength(64));
  EXPECT_NEAR(AveragePathLength(256),
              2.0 * (std::log(255.0) + 0.5772156649) - 2.0 * 255.0 / 256.0,
              1e-9);
}

TEST(IsolationForestTest, AnomaliesScoreHigherThanInliers) {
  Matrix x = MakeClusterWithAnomalies(500, 10, 1);
  IsolationForest forest;
  Rng rng(2);
  ASSERT_TRUE(forest.Fit(x, &rng).ok());
  std::vector<double> scores = forest.Score(x);
  double max_inlier = *std::max_element(scores.begin(), scores.begin() + 500);
  double min_anomaly =
      *std::min_element(scores.begin() + 500, scores.end());
  EXPECT_GT(min_anomaly, max_inlier);
}

TEST(IsolationForestTest, ScoresInUnitInterval) {
  Matrix x = MakeClusterWithAnomalies(300, 5, 3);
  IsolationForest forest;
  Rng rng(4);
  ASSERT_TRUE(forest.Fit(x, &rng).ok());
  for (double s : forest.Score(x)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, ContaminationControlsFlagFraction) {
  Matrix x = MakeClusterWithAnomalies(1000, 0, 5);
  IsolationForestOptions options;
  options.contamination = 0.05;
  IsolationForest forest(options);
  Rng rng(6);
  ASSERT_TRUE(forest.Fit(x, &rng).ok());
  std::vector<bool> flags = forest.IsAnomaly(x);
  size_t flagged = static_cast<size_t>(
      std::count(flags.begin(), flags.end(), true));
  // ~5% of training rows must be flagged (quantile threshold).
  EXPECT_NEAR(static_cast<double>(flagged) / 1000.0, 0.05, 0.02);
}

TEST(IsolationForestTest, FlagsThePlantedAnomalies) {
  Matrix x = MakeClusterWithAnomalies(990, 10, 7);
  IsolationForestOptions options;
  options.contamination = 0.01;
  IsolationForest forest(options);
  Rng rng(8);
  ASSERT_TRUE(forest.Fit(x, &rng).ok());
  std::vector<bool> flags = forest.IsAnomaly(x);
  size_t anomalies_flagged = 0;
  for (size_t i = 990; i < 1000; ++i) {
    if (flags[i]) ++anomalies_flagged;
  }
  EXPECT_GE(anomalies_flagged, 8u);
}

TEST(IsolationForestTest, DeterministicGivenSeed) {
  Matrix x = MakeClusterWithAnomalies(200, 5, 9);
  IsolationForest a;
  IsolationForest b;
  Rng rng_a(10);
  Rng rng_b(10);
  ASSERT_TRUE(a.Fit(x, &rng_a).ok());
  ASSERT_TRUE(b.Fit(x, &rng_b).ok());
  std::vector<double> sa = a.Score(x);
  std::vector<double> sb = b.Score(x);
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i], sb[i]);
  }
}

TEST(IsolationForestTest, ConstantDataDoesNotCrash) {
  Matrix x(100, 2);  // all zeros
  IsolationForest forest;
  Rng rng(11);
  ASSERT_TRUE(forest.Fit(x, &rng).ok());
  std::vector<double> scores = forest.Score(x);
  // All points identical: identical scores.
  for (double s : scores) {
    EXPECT_DOUBLE_EQ(s, scores[0]);
  }
}

TEST(IsolationForestTest, RejectsBadInput) {
  Rng rng(12);
  Matrix empty(0, 2);
  IsolationForest forest;
  EXPECT_FALSE(forest.Fit(empty, &rng).ok());
  IsolationForestOptions bad;
  bad.contamination = 0.7;
  Matrix x(10, 1);
  EXPECT_FALSE(IsolationForest(bad).Fit(x, &rng).ok());
}

}  // namespace
}  // namespace fairclean
