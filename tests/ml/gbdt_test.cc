#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

TEST(GbdtTest, LearnsSeparableBlobs) {
  test::BlobData train = test::MakeBlobs(400, 3, 4.0, 1);
  test::BlobData test = test::MakeBlobs(150, 3, 4.0, 2);
  GradientBoostedTrees model;
  Rng rng(3);
  ASSERT_TRUE(model.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(AccuracyScore(test.y, model.Predict(test.x)), 0.88);
}

TEST(GbdtTest, LearnsNonLinearXor) {
  // XOR pattern that defeats a linear model but not boosted trees.
  Rng data_rng(4);
  Matrix x(400, 2);
  std::vector<int> y(400);
  for (size_t i = 0; i < 400; ++i) {
    double a = data_rng.Normal(0, 1);
    double b = data_rng.Normal(0, 1);
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = (a > 0) != (b > 0) ? 1 : 0;
  }
  GbdtOptions options;
  options.num_rounds = 60;
  options.max_depth = 3;
  GradientBoostedTrees model(options);
  Rng rng(5);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  EXPECT_GT(AccuracyScore(y, model.Predict(x)), 0.9);
}

TEST(GbdtTest, TrainingLossDecreasesMonotonically) {
  test::BlobData data = test::MakeBlobs(300, 2, 2.0, 6);
  GbdtOptions options;
  options.subsample = 1.0;  // deterministic full-batch boosting
  GradientBoostedTrees model(options);
  Rng rng(7);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  const std::vector<double>& curve = model.training_loss_curve();
  ASSERT_EQ(curve.size(), static_cast<size_t>(options.num_rounds));
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9);
  }
}

TEST(GbdtTest, NumTreesMatchesRounds) {
  test::BlobData data = test::MakeBlobs(100, 2, 3.0, 8);
  GbdtOptions options;
  options.num_rounds = 17;
  GradientBoostedTrees model(options);
  Rng rng(9);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  EXPECT_EQ(model.num_trees(), 17u);
}

TEST(GbdtTest, ProbabilitiesInUnitInterval) {
  test::BlobData data = test::MakeBlobs(200, 2, 1.0, 10);
  GradientBoostedTrees model;
  Rng rng(11);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  for (double p : model.PredictProba(data.x)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(GbdtTest, DeterministicGivenSeed) {
  test::BlobData data = test::MakeBlobs(200, 2, 2.0, 12);
  GradientBoostedTrees a;
  GradientBoostedTrees b;
  Rng rng_a(99);
  Rng rng_b(99);
  ASSERT_TRUE(a.Fit(data.x, data.y, &rng_a).ok());
  ASSERT_TRUE(b.Fit(data.x, data.y, &rng_b).ok());
  std::vector<double> pa = a.PredictProba(data.x);
  std::vector<double> pb = b.PredictProba(data.x);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(GbdtTest, SingleClassTrainingPredictsThatClass) {
  Matrix x(50, 1);
  Rng noise(13);
  for (size_t i = 0; i < 50; ++i) x(i, 0) = noise.Normal(0, 1);
  std::vector<int> y(50, 0);
  GradientBoostedTrees model;
  Rng rng(14);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  for (int prediction : model.Predict(x)) {
    EXPECT_EQ(prediction, 0);
  }
}

TEST(GbdtTest, RejectsBadOptions) {
  Matrix x(2, 1);
  std::vector<int> y = {0, 1};
  Rng rng(15);
  GbdtOptions bad_rounds;
  bad_rounds.num_rounds = 0;
  EXPECT_FALSE(GradientBoostedTrees(bad_rounds).Fit(x, y, &rng).ok());
  GbdtOptions bad_subsample;
  bad_subsample.subsample = 0.0;
  EXPECT_FALSE(GradientBoostedTrees(bad_subsample).Fit(x, y, &rng).ok());
  GradientBoostedTrees model;
  EXPECT_FALSE(model.Fit(x, {1}, &rng).ok());
}

}  // namespace
}  // namespace fairclean
