#include "ml/regression_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairclean {
namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(RegressionTreeTest, DepthZeroIsSingleLeaf) {
  Matrix x(4, 1);
  std::vector<double> grad = {1.0, 1.0, -1.0, -1.0};
  std::vector<double> hess = {1.0, 1.0, 1.0, 1.0};
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  // Leaf weight = -sum(g) / (sum(h) + lambda) = 0 / 5.
  double row = 0.0;
  EXPECT_DOUBLE_EQ(tree.PredictOne(&row), 0.0);
}

TEST(RegressionTreeTest, SplitsOnInformativeFeature) {
  // Gradients perfectly separated by x < 0.5.
  Matrix x(6, 2);
  std::vector<double> grad(6);
  std::vector<double> hess(6, 1.0);
  for (size_t i = 0; i < 6; ++i) {
    x(i, 0) = i < 3 ? 0.0 : 1.0;
    x(i, 1) = static_cast<double>(i % 2);  // uninformative
    grad[i] = i < 3 ? 2.0 : -2.0;
  }
  RegressionTreeOptions options;
  options.max_depth = 1;
  options.lambda = 0.0;
  options.min_child_weight = 0.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(6), options).ok());
  EXPECT_EQ(tree.num_leaves(), 2u);
  double left_row[2] = {0.0, 0.0};
  double right_row[2] = {1.0, 0.0};
  // Leaf weights: -G/H = -6/3 = -2 and +2.
  EXPECT_DOUBLE_EQ(tree.PredictOne(left_row), -2.0);
  EXPECT_DOUBLE_EQ(tree.PredictOne(right_row), 2.0);
}

TEST(RegressionTreeTest, ConstantFeaturesYieldLeaf) {
  Matrix x(5, 2);  // all zeros
  std::vector<double> grad = {1, -1, 1, -1, 1};
  std::vector<double> hess(5, 1.0);
  RegressionTreeOptions options;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(5), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  Rng rng(1);
  Matrix x(200, 3);
  std::vector<double> grad(200);
  std::vector<double> hess(200, 1.0);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t d = 0; d < 3; ++d) x(i, d) = rng.Normal(0, 1);
    grad[i] = rng.Normal(0, 1);
  }
  RegressionTreeOptions options;
  options.max_depth = 2;
  options.min_child_weight = 0.0;
  options.lambda = 0.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(200), options).ok());
  EXPECT_LE(tree.num_leaves(), 4u);  // 2^depth
}

TEST(RegressionTreeTest, MinChildWeightBlocksSplit) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> grad = {2, 2, -2, -2};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 3;
  options.min_child_weight = 10.0;  // no child can reach hessian sum 10
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, GammaBlocksLowGainSplits) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> grad = {0.1, -0.1, 0.1, -0.1};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 3;
  options.gamma = 100.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, FitsOnSubsetOnly) {
  Matrix x(4, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 0.0;
  x(3, 0) = 1.0;
  std::vector<double> grad = {5.0, -5.0, 100.0, -100.0};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 1;
  options.lambda = 0.0;
  options.min_child_weight = 0.0;
  RegressionTree tree;
  // Only rows 0 and 1 participate; large gradients of 2,3 are ignored.
  ASSERT_TRUE(tree.Fit(x, grad, hess, {0, 1}, options).ok());
  double left_row = 0.0;
  EXPECT_DOUBLE_EQ(tree.PredictOne(&left_row), -5.0);
}

TEST(RegressionTreeTest, RejectsBadInput) {
  Matrix x(2, 1);
  RegressionTree tree;
  RegressionTreeOptions options;
  EXPECT_FALSE(tree.Fit(x, {1.0}, {1.0, 1.0}, {0}, options).ok());
  EXPECT_FALSE(tree.Fit(x, {1.0, 1.0}, {1.0, 1.0}, {}, options).ok());
}

}  // namespace
}  // namespace fairclean
