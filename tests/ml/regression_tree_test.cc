#include "ml/regression_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairclean {
namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(RegressionTreeTest, DepthZeroIsSingleLeaf) {
  Matrix x(4, 1);
  std::vector<double> grad = {1.0, 1.0, -1.0, -1.0};
  std::vector<double> hess = {1.0, 1.0, 1.0, 1.0};
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  // Leaf weight = -sum(g) / (sum(h) + lambda) = 0 / 5.
  double row = 0.0;
  EXPECT_DOUBLE_EQ(tree.PredictOne(&row), 0.0);
}

TEST(RegressionTreeTest, SplitsOnInformativeFeature) {
  // Gradients perfectly separated by x < 0.5.
  Matrix x(6, 2);
  std::vector<double> grad(6);
  std::vector<double> hess(6, 1.0);
  for (size_t i = 0; i < 6; ++i) {
    x(i, 0) = i < 3 ? 0.0 : 1.0;
    x(i, 1) = static_cast<double>(i % 2);  // uninformative
    grad[i] = i < 3 ? 2.0 : -2.0;
  }
  RegressionTreeOptions options;
  options.max_depth = 1;
  options.lambda = 0.0;
  options.min_child_weight = 0.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(6), options).ok());
  EXPECT_EQ(tree.num_leaves(), 2u);
  double left_row[2] = {0.0, 0.0};
  double right_row[2] = {1.0, 0.0};
  // Leaf weights: -G/H = -6/3 = -2 and +2.
  EXPECT_DOUBLE_EQ(tree.PredictOne(left_row), -2.0);
  EXPECT_DOUBLE_EQ(tree.PredictOne(right_row), 2.0);
}

TEST(RegressionTreeTest, ConstantFeaturesYieldLeaf) {
  Matrix x(5, 2);  // all zeros
  std::vector<double> grad = {1, -1, 1, -1, 1};
  std::vector<double> hess(5, 1.0);
  RegressionTreeOptions options;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(5), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  Rng rng(1);
  Matrix x(200, 3);
  std::vector<double> grad(200);
  std::vector<double> hess(200, 1.0);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t d = 0; d < 3; ++d) x(i, d) = rng.Normal(0, 1);
    grad[i] = rng.Normal(0, 1);
  }
  RegressionTreeOptions options;
  options.max_depth = 2;
  options.min_child_weight = 0.0;
  options.lambda = 0.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(200), options).ok());
  EXPECT_LE(tree.num_leaves(), 4u);  // 2^depth
}

TEST(RegressionTreeTest, MinChildWeightBlocksSplit) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> grad = {2, 2, -2, -2};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 3;
  options.min_child_weight = 10.0;  // no child can reach hessian sum 10
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, GammaBlocksLowGainSplits) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> grad = {0.1, -0.1, 0.1, -0.1};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 3;
  options.gamma = 100.0;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, grad, hess, AllIndices(4), options).ok());
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(RegressionTreeTest, FitsOnSubsetOnly) {
  Matrix x(4, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 0.0;
  x(3, 0) = 1.0;
  std::vector<double> grad = {5.0, -5.0, 100.0, -100.0};
  std::vector<double> hess(4, 1.0);
  RegressionTreeOptions options;
  options.max_depth = 1;
  options.lambda = 0.0;
  options.min_child_weight = 0.0;
  RegressionTree tree;
  // Only rows 0 and 1 participate; large gradients of 2,3 are ignored.
  ASSERT_TRUE(tree.Fit(x, grad, hess, {0, 1}, options).ok());
  double left_row = 0.0;
  EXPECT_DOUBLE_EQ(tree.PredictOne(&left_row), -5.0);
}

TEST(PresortedFeaturesTest, FilterIntoPreservesRelativeOrder) {
  Rng rng(3);
  Matrix x(40, 2);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t d = 0; d < 2; ++d) x(i, d) = rng.Normal(0, 1);
  }
  PresortedFeatures full = PresortedFeatures::Compute(x);
  std::vector<char> member(40, 0);
  size_t member_count = 0;
  for (size_t i = 0; i < 40; i += 3) {
    member[i] = 1;
    ++member_count;
  }
  PresortedFeatures filtered;
  full.FilterInto(member, member_count, &filtered);
  ASSERT_EQ(filtered.order.size(), full.order.size());
  for (size_t f = 0; f < full.order.size(); ++f) {
    // The filtered order must be exactly the full order with non-members
    // dropped — same rows, same relative positions.
    std::vector<size_t> expected;
    for (size_t row : full.order[f]) {
      if (member[row]) expected.push_back(row);
    }
    EXPECT_EQ(filtered.order[f], expected) << "feature " << f;
    // The streamed values stay in lockstep with the filtered order.
    ASSERT_EQ(filtered.values[f].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(filtered.values[f][i], x(expected[i], f))
          << "feature " << f << " pos " << i;
    }
  }
}

TEST(PresortedFeaturesTest, FilterIntoReusesOutputBuffers) {
  Matrix x(6, 1);
  for (size_t i = 0; i < 6; ++i) x(i, 0) = static_cast<double>(i);
  PresortedFeatures full = PresortedFeatures::Compute(x);
  PresortedFeatures filtered;
  std::vector<char> member = {1, 0, 1, 0, 1, 0};
  full.FilterInto(member, 3, &filtered);
  EXPECT_EQ(filtered.order[0], (std::vector<size_t>{0, 2, 4}));
  // Second filter into the same object must fully replace the first.
  member = {0, 1, 0, 1, 0, 1};
  full.FilterInto(member, 3, &filtered);
  EXPECT_EQ(filtered.order[0], (std::vector<size_t>{1, 3, 5}));
}

TEST(RegressionTreeTest, FilteredPresortMatchesGlobalPresort) {
  // Fitting on a subsample must give bit-identical trees whether the scan
  // skips non-members of the global presort or walks a FilterInto view.
  Rng rng(9);
  Matrix x(120, 3);
  std::vector<double> grad(120);
  std::vector<double> hess(120, 1.0);
  for (size_t i = 0; i < 120; ++i) {
    for (size_t d = 0; d < 3; ++d) x(i, d) = rng.Normal(0, 1);
    grad[i] = rng.Normal(0, 1);
  }
  std::vector<size_t> sample;
  std::vector<char> member(120, 0);
  for (size_t i = 0; i < 120; i += 2) {
    sample.push_back(i);
    member[i] = 1;
  }
  PresortedFeatures full = PresortedFeatures::Compute(x);
  PresortedFeatures filtered;
  full.FilterInto(member, sample.size(), &filtered);
  RegressionTreeOptions options;
  options.max_depth = 4;
  RegressionTree from_full;
  RegressionTree from_filtered;
  ASSERT_TRUE(
      from_full.FitPresorted(x, grad, hess, sample, full, options).ok());
  ASSERT_TRUE(
      from_filtered.FitPresorted(x, grad, hess, sample, filtered, options)
          .ok());
  ASSERT_EQ(from_full.num_nodes(), from_filtered.num_nodes());
  EXPECT_EQ(from_full.num_leaves(), from_filtered.num_leaves());
  Rng probe_rng(10);
  for (size_t i = 0; i < 50; ++i) {
    double row[3] = {probe_rng.Normal(0, 1), probe_rng.Normal(0, 1),
                     probe_rng.Normal(0, 1)};
    EXPECT_EQ(from_full.PredictOne(row), from_filtered.PredictOne(row));
  }
}

TEST(RegressionTreeTest, WorkspaceReuseMatchesFreshWorkspace) {
  Rng rng(12);
  Matrix x(80, 2);
  std::vector<double> grad(80);
  std::vector<double> hess(80, 1.0);
  for (size_t i = 0; i < 80; ++i) {
    for (size_t d = 0; d < 2; ++d) x(i, d) = rng.Normal(0, 1);
    grad[i] = rng.Normal(0, 1);
  }
  PresortedFeatures presorted = PresortedFeatures::Compute(x);
  RegressionTreeOptions options;
  options.max_depth = 3;
  TreeFitWorkspace workspace;
  RegressionTree first;
  ASSERT_TRUE(first
                  .FitPresorted(x, grad, hess, AllIndices(80), presorted,
                                options, &workspace)
                  .ok());
  // Refit with the dirty workspace and different gradients; results must
  // match a fit with a fresh workspace (the workspace carries no state
  // between fits, only capacity).
  for (size_t i = 0; i < 80; ++i) grad[i] = -grad[i] + 0.25;
  RegressionTree reused;
  RegressionTree fresh;
  ASSERT_TRUE(reused
                  .FitPresorted(x, grad, hess, AllIndices(80), presorted,
                                options, &workspace)
                  .ok());
  ASSERT_TRUE(
      fresh.FitPresorted(x, grad, hess, AllIndices(80), presorted, options)
          .ok());
  ASSERT_EQ(reused.num_nodes(), fresh.num_nodes());
  Rng probe_rng(13);
  for (size_t i = 0; i < 50; ++i) {
    double row[2] = {probe_rng.Normal(0, 1), probe_rng.Normal(0, 1)};
    EXPECT_EQ(reused.PredictOne(row), fresh.PredictOne(row));
  }
}

TEST(RegressionTreeTest, RejectsBadInput) {
  Matrix x(2, 1);
  RegressionTree tree;
  RegressionTreeOptions options;
  EXPECT_FALSE(tree.Fit(x, {1.0}, {1.0, 1.0}, {0}, options).ok());
  EXPECT_FALSE(tree.Fit(x, {1.0, 1.0}, {1.0, 1.0}, {}, options).ok());
}

}  // namespace
}  // namespace fairclean
