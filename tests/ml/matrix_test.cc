#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
  }
}

TEST(MatrixTest, ReadWrite) {
  Matrix m(2, 2);
  m(0, 1) = 5.0;
  m(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
}

TEST(MatrixTest, RowIsContiguous) {
  Matrix m(2, 3);
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  m(1, 2) = 3.0;
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[2], 3.0);
}

TEST(MatrixTest, MutableRowWritesThrough) {
  Matrix m(1, 2);
  m.MutableRow(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(MatrixTest, TakeRowsSelectsAndRepeats) {
  Matrix m(3, 2);
  for (size_t r = 0; r < 3; ++r) m(r, 0) = static_cast<double>(r);
  Matrix taken = m.TakeRows({2, 0, 2});
  ASSERT_EQ(taken.rows(), 3u);
  EXPECT_DOUBLE_EQ(taken(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(taken(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(taken(2, 0), 2.0);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

}  // namespace
}  // namespace fairclean
