#include "ml/knn.h"

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "ml/linalg.h"
#include "ml/metrics.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

TEST(KnnTest, NearestNeighborMemorizesTrainingSet) {
  test::BlobData data = test::MakeBlobs(100, 2, 3.0, 1);
  KnnOptions options;
  options.k = 1;
  KnnClassifier model(options);
  Rng rng(2);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  EXPECT_DOUBLE_EQ(AccuracyScore(data.y, model.Predict(data.x)), 1.0);
}

TEST(KnnTest, LearnsSeparableBlobs) {
  test::BlobData train = test::MakeBlobs(300, 3, 4.0, 3);
  test::BlobData test = test::MakeBlobs(100, 3, 4.0, 4);
  KnnClassifier model;
  Rng rng(5);
  ASSERT_TRUE(model.Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(AccuracyScore(test.y, model.Predict(test.x)), 0.85);
}

TEST(KnnTest, ProbaIsNeighborFraction) {
  // 4 points: 3 positive near origin, 1 negative far away; k=3 query at
  // origin must see probability 1.0.
  Matrix x(4, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 0.1;
  x(2, 0) = -0.1;
  x(3, 0) = 10.0;
  std::vector<int> y = {1, 1, 1, 0};
  KnnOptions options;
  options.k = 3;
  KnnClassifier model(options);
  Rng rng(6);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  Matrix query(1, 1);
  query(0, 0) = 0.0;
  std::vector<double> proba = model.PredictProba(query);
  EXPECT_DOUBLE_EQ(proba[0], 1.0);

  KnnOptions k4;
  k4.k = 4;
  KnnClassifier model4(k4);
  ASSERT_TRUE(model4.Fit(x, y, &rng).ok());
  EXPECT_DOUBLE_EQ(model4.PredictProba(query)[0], 0.75);
}

TEST(KnnTest, KLargerThanTrainingSetIsCapped) {
  Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  std::vector<int> y = {1, 0};
  KnnOptions options;
  options.k = 100;
  KnnClassifier model(options);
  Rng rng(7);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  Matrix query(1, 1);
  query(0, 0) = 0.5;
  EXPECT_DOUBLE_EQ(model.PredictProba(query)[0], 0.5);
}

TEST(KnnTest, RejectsBadInput) {
  Matrix x(2, 1);
  KnnClassifier model;
  Rng rng(8);
  EXPECT_FALSE(model.Fit(x, {1}, &rng).ok());
  Matrix empty(0, 1);
  EXPECT_FALSE(model.Fit(empty, {}, &rng).ok());
  KnnOptions bad;
  bad.k = 0;
  KnnClassifier bad_model(bad);
  EXPECT_FALSE(bad_model.Fit(x, {0, 1}, &rng).ok());
}

TEST(KnnTest, BlockedPredictMatchesNaivePath) {
  // Reimplements the pre-blocking predict loop (reference distance kernel,
  // one query at a time) and demands exact equality with PredictProba —
  // the query blocking must be invisible in the output bits.
  test::BlobData train = test::MakeBlobs(300, 4, 1.5, 51);
  test::BlobData queries = test::MakeBlobs(150, 4, 1.5, 52);  // > 2 blocks
  KnnOptions options;
  options.k = 7;
  KnnClassifier model(options);
  Rng rng(53);
  ASSERT_TRUE(model.Fit(train.x, train.y, &rng).ok());
  std::vector<double> blocked = model.PredictProba(queries.x);

  size_t n_train = train.x.rows();
  std::vector<double> sq(n_train);
  std::vector<std::pair<double, size_t>> dist(n_train);
  for (size_t q = 0; q < queries.x.rows(); ++q) {
    SquaredDistancesToRow(train.x, queries.x.Row(q), sq.data());
    for (size_t t = 0; t < n_train; ++t) dist[t] = {sq[t], t};
    std::partial_sort(dist.begin(), dist.begin() + 7, dist.end());
    int positives = 0;
    for (size_t j = 0; j < 7; ++j) positives += train.y[dist[j].second];
    EXPECT_EQ(blocked[q], static_cast<double>(positives) / 7.0)
        << "query " << q;
  }
}

TEST(KnnTest, CloneHasSameHyperparameters) {
  KnnOptions options;
  options.k = 7;
  KnnClassifier model(options);
  std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_EQ(clone->name(), "knn");
}

}  // namespace
}  // namespace fairclean
