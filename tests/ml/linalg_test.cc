#include "ml/linalg.h"

#include <gtest/gtest.h>

#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

// Fills `out` with distances from every query to every train row using the
// reference kernel — the oracle the blocked kernel must match bit for bit.
std::vector<double> ReferenceDistances(const Matrix& queries,
                                       size_t query_begin, size_t query_end,
                                       const Matrix& train) {
  std::vector<double> out((query_end - query_begin) * train.rows());
  for (size_t q = query_begin; q < query_end; ++q) {
    SquaredDistancesToRow(train, queries.Row(q),
                          out.data() + (q - query_begin) * train.rows());
  }
  return out;
}

TEST(BlockedSquaredDistancesTest, BitEqualsReferenceKernel) {
  test::BlobData train = test::MakeBlobs(97, 5, 1.5, 41);
  test::BlobData queries = test::MakeBlobs(23, 5, 1.5, 42);
  std::vector<double> blocked(queries.x.rows() * train.x.rows());
  BlockedSquaredDistances(queries.x, 0, queries.x.rows(), train.x,
                          blocked.data());
  std::vector<double> reference =
      ReferenceDistances(queries.x, 0, queries.x.rows(), train.x);
  ASSERT_EQ(blocked.size(), reference.size());
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(blocked[i], reference[i]) << "entry " << i;
  }
}

TEST(BlockedSquaredDistancesTest, OddSizesAcrossTileBoundary) {
  // 131 train rows leave a ragged tail behind the last full register panel
  // (16 rows on AVX2, 8 on SSE2); full panels and the zero-padded tail
  // must both match the reference exactly.
  test::BlobData train = test::MakeBlobs(131, 3, 2.0, 43);
  test::BlobData queries = test::MakeBlobs(7, 3, 2.0, 44);
  std::vector<double> blocked(queries.x.rows() * train.x.rows());
  BlockedSquaredDistances(queries.x, 0, queries.x.rows(), train.x,
                          blocked.data());
  std::vector<double> reference =
      ReferenceDistances(queries.x, 0, queries.x.rows(), train.x);
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(blocked[i], reference[i]) << "entry " << i;
  }
}

TEST(BlockedSquaredDistancesTest, SubRangeOfQueries) {
  test::BlobData train = test::MakeBlobs(50, 4, 1.0, 45);
  test::BlobData queries = test::MakeBlobs(20, 4, 1.0, 46);
  std::vector<double> blocked(5 * train.x.rows());
  BlockedSquaredDistances(queries.x, 11, 16, train.x, blocked.data());
  std::vector<double> reference = ReferenceDistances(queries.x, 11, 16,
                                                     train.x);
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(blocked[i], reference[i]) << "entry " << i;
  }
}

TEST(BlockedSquaredDistancesTest, ZeroDistanceToSelf) {
  test::BlobData train = test::MakeBlobs(10, 3, 1.0, 47);
  std::vector<double> blocked(train.x.rows() * train.x.rows());
  BlockedSquaredDistances(train.x, 0, train.x.rows(), train.x,
                          blocked.data());
  for (size_t i = 0; i < train.x.rows(); ++i) {
    EXPECT_EQ(blocked[i * train.x.rows() + i], 0.0);
  }
}

TEST(CholeskyTest, SolvesIdentity) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {3, -4};
  Result<std::vector<double>> x = SolveCholesky(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], -4.0, 1e-12);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  Result<std::vector<double>> x = SolveCholesky(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(CholeskyTest, Solves3x3) {
  // A = [[6,2,1],[2,5,2],[1,2,4]]: SPD. Verify A*x == b.
  std::vector<double> a = {6, 2, 1, 2, 5, 2, 1, 2, 4};
  std::vector<double> b = {1, 2, 3};
  Result<std::vector<double>> x = SolveCholesky(a, b, 3);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < 3; ++j) acc += a[i * 3 + j] * (*x)[j];
    EXPECT_NEAR(acc, b[i], 1e-10);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(SolveCholesky(a, b, 2).ok());
}

TEST(CholeskyTest, RejectsSingular) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(SolveCholesky(a, b, 2).ok());
}

TEST(CholeskyJitterTest, RecoversSingularWithJitter) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {2, 2};
  Result<std::vector<double>> x = SolveCholeskyWithJitter(a, b, 2);
  ASSERT_TRUE(x.ok());
  // Jittered solution approximately solves the system.
  EXPECT_NEAR((*x)[0] + (*x)[1], 2.0, 1e-4);
}

TEST(CholeskyJitterTest, PassthroughWhenAlreadySpd) {
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  Result<std::vector<double>> x = SolveCholeskyWithJitter(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
}

}  // namespace
}  // namespace fairclean
