#include "ml/linalg.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(CholeskyTest, SolvesIdentity) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {3, -4};
  Result<std::vector<double>> x = SolveCholesky(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], -4.0, 1e-12);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  Result<std::vector<double>> x = SolveCholesky(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(CholeskyTest, Solves3x3) {
  // A = [[6,2,1],[2,5,2],[1,2,4]]: SPD. Verify A*x == b.
  std::vector<double> a = {6, 2, 1, 2, 5, 2, 1, 2, 4};
  std::vector<double> b = {1, 2, 3};
  Result<std::vector<double>> x = SolveCholesky(a, b, 3);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < 3; ++j) acc += a[i * 3 + j] * (*x)[j];
    EXPECT_NEAR(acc, b[i], 1e-10);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(SolveCholesky(a, b, 2).ok());
}

TEST(CholeskyTest, RejectsSingular) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(SolveCholesky(a, b, 2).ok());
}

TEST(CholeskyJitterTest, RecoversSingularWithJitter) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {2, 2};
  Result<std::vector<double>> x = SolveCholeskyWithJitter(a, b, 2);
  ASSERT_TRUE(x.ok());
  // Jittered solution approximately solves the system.
  EXPECT_NEAR((*x)[0] + (*x)[1], 2.0, 1e-4);
}

TEST(CholeskyJitterTest, PassthroughWhenAlreadySpd) {
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  Result<std::vector<double>> x = SolveCholeskyWithJitter(a, b, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
}

}  // namespace
}  // namespace fairclean
