// Golden byte-identity tests for the kernel layer (DESIGN.md §8).
//
// These tests pin the exact bit patterns of TuneAndFit / FairTuneAndFit /
// GBDT / KNN / MislabelDetector outputs for fixed seeds. The values were
// captured from the sequential reference implementation and must never
// drift: any kernel change that reorders floating-point accumulation, a
// random draw, or a tie-break will flip at least one bit here.
//
// The binary is registered three times in tests/CMakeLists.txt with
// FAIRCLEAN_THREADS ∈ {1, 2, 8} so the same goldens are enforced at every
// thread width — parallel schedules must be byte-identical to sequential.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fair_tuning.h"
#include "data/dataframe.h"
#include "detect/mislabel_detector.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/tuning.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

// EXPECT_EQ on double compares exact bit patterns for these finite values;
// golden constants are hexfloat literals so no decimal rounding intervenes.
void ExpectBitEqual(const std::vector<double>& actual,
                    const std::vector<double>& golden_prefix) {
  ASSERT_GE(actual.size(), golden_prefix.size());
  for (size_t i = 0; i < golden_prefix.size(); ++i) {
    EXPECT_EQ(actual[i], golden_prefix[i]) << "index " << i;
  }
}

struct TuneGolden {
  std::string family;
  double param;
  double cv_accuracy;
  std::vector<double> proba;
};

TEST(KernelIdentityTest, TuneAndFitGolden) {
  const std::vector<TuneGolden> goldens = {
      {"log-reg",
       0x1.999999999999ap-4,
       0x1.8eeeeeeeeeeefp-1,
       {0x1.a24a8b8f20baep-2, 0x1.85f1354893ef5p-2, 0x1.585605f53877bp-1,
        0x1.dd93f049f17eap-1, 0x1.af7d1e1e1e459p-4, 0x1.479143c72cf09p-3,
        0x1.c696eb62034a3p-1, 0x1.5025ebf7a89f8p-1}},
      {"knn",
       0x1.fp+4,
       0x1.8888888888888p-1,
       {0x1.8c6318c6318c6p-2, 0x1.ef7bdef7bdef8p-2, 0x1.39ce739ce739dp-1,
        0x1.ce739ce739ce7p-1, 0x1.8c6318c6318c6p-4, 0x1.4a5294a5294a5p-3,
        0x1.6b5ad6b5ad6b6p-1, 0x1.39ce739ce739dp-1}},
      {"xgboost",
       0x1p+1,
       0x1.7333333333333p-1,
       {0x1.1dbf09ebe997ep-1, 0x1.fbb85ad50db12p-3, 0x1.c04a84d417a32p-1,
        0x1.ef22bddecb955p-1, 0x1.b60a7ab897053p-5, 0x1.fa0fef665cef2p-5,
        0x1.d967b1363d606p-1, 0x1.0d452886d712cp-1}},
  };
  for (const TuneGolden& golden : goldens) {
    SCOPED_TRACE(golden.family);
    test::BlobData data = test::MakeBlobs(240, 4, 2.0, 21);
    Result<TunedModelFamily> family = ModelFamilyByName(golden.family);
    ASSERT_TRUE(family.ok());
    Rng rng(7);
    Result<TuneOutcome> outcome = TuneAndFit(*family, data.x, data.y, 3, &rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->best_param, golden.param);
    EXPECT_EQ(outcome->best_cv_accuracy, golden.cv_accuracy);
    ExpectBitEqual(outcome->model->PredictProba(data.x), golden.proba);
  }
}

struct FairTuneGolden {
  std::string family;
  double param;
  double cv_accuracy;
  double cv_unfairness;
  bool within_budget;
  std::vector<double> proba;
};

TEST(KernelIdentityTest, FairTuneAndFitGolden) {
  const std::vector<FairTuneGolden> goldens = {
      {"xgboost",
       0x1p+2,
       0x1.a222222222223p-1,
       0x1.7f57f57f57f58p-4,
       true,
       {0x1.eee9c974ad137p-1, 0x1.fcb71ca988dbap-1, 0x1.07e6102620dc5p-5,
        0x1.fd778325d5da2p-1, 0x1.fa4fd9691bee5p-1, 0x1.fe8a0cc1dfb09p-1,
        0x1.f7412305c7849p-1, 0x1.838ac3070db0dp-7}},
      {"log-reg",
       0x1.999999999999ap-4,
       0x1.b111111111111p-1,
       0x1.77d77d77d77d8p-4,
       true,
       {0x1.cca57a1f84967p-1, 0x1.f972c04bc51ecp-1, 0x1.7988340491971p-5,
        0x1.ce70550801b09p-1, 0x1.eb6fe38cfb8f7p-1, 0x1.c4895b0a1969dp-1,
        0x1.fe3db5181652bp-1, 0x1.433668afdadbep-4}},
  };
  for (const FairTuneGolden& golden : goldens) {
    SCOPED_TRACE(golden.family);
    test::BlobData data = test::MakeBlobs(240, 4, 2.0, 33);
    std::vector<int> membership(data.y.size());
    for (size_t i = 0; i < membership.size(); ++i) {
      membership[i] = i % 3 == 0 ? 1 : (i % 3 == 1 ? -1 : 0);
    }
    Result<TunedModelFamily> family = ModelFamilyByName(golden.family);
    ASSERT_TRUE(family.ok());
    FairTuneOptions options;
    Rng rng(13);
    Result<FairTuneOutcome> outcome =
        FairTuneAndFit(*family, data.x, data.y, membership, options, &rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->best_param, golden.param);
    EXPECT_EQ(outcome->best_cv_accuracy, golden.cv_accuracy);
    EXPECT_EQ(outcome->best_cv_unfairness, golden.cv_unfairness);
    EXPECT_EQ(outcome->within_budget, golden.within_budget);
    ExpectBitEqual(outcome->model->PredictProba(data.x), golden.proba);
  }
}

TEST(KernelIdentityTest, GbdtFitGolden) {
  test::BlobData data = test::MakeBlobs(300, 3, 2.5, 5);
  GradientBoostedTrees model;
  Rng rng(11);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  EXPECT_EQ(model.num_trees(), 50u);
  EXPECT_EQ(model.training_loss_curve().back(), 0x1.cd99c9d488b77p-4);
  ExpectBitEqual(model.PredictProba(data.x),
                 {0x1.19c1128a900cp-6, 0x1.dba9768a358b1p-7,
                  0x1.97ddf2271573bp-1, 0x1.709bf93f7f44cp-8,
                  0x1.f643e4a637c14p-1, 0x1.8b878defd1fb9p-1,
                  0x1.70a4361f3372ep-8, 0x1.3007802da7d5ap-3});
}

TEST(KernelIdentityTest, KnnPredictGolden) {
  test::BlobData data = test::MakeBlobs(400, 6, 1.5, 9);
  KnnClassifier model;
  Rng rng(23);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  test::BlobData queries = test::MakeBlobs(37, 6, 1.5, 10);
  ExpectBitEqual(model.PredictProba(queries.x),
                 {0x1.ddddddddddddep-2, 0x1.5555555555555p-1,
                  0x1.999999999999ap-2, 0x1.1111111111111p-3,
                  0x1.999999999999ap-2, 0x1.999999999999ap-1,
                  0x1.1111111111111p-2, 0x0p+0, 0x1.1111111111111p-1,
                  0x1.999999999999ap-2, 0x1.7777777777777p-1,
                  0x1.3333333333333p-1});
}

// The §15 execution-mode ladder at the kernel layer: the naive reference
// kNN path (per-query distance rows, no batching), the blocked kernel, and
// the packed fused kernel must produce the same bits for every query.
TEST(KernelIdentityTest, KnnModeLadderBitIdentical) {
  test::BlobData data = test::MakeBlobs(400, 6, 1.5, 9);
  test::BlobData queries = test::MakeBlobs(37, 6, 1.5, 10);
  std::vector<std::vector<double>> proba;
  for (int rung = 0; rung < 3; ++rung) {
    KnnOptions options;
    options.blocked = rung > 0;
    options.packed_reuse = rung > 1;
    KnnClassifier model(options);
    Rng rng(23);
    ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
    proba.push_back(model.PredictProba(queries.x));
  }
  EXPECT_EQ(proba[0], proba[1]) << "naive vs blocked";
  EXPECT_EQ(proba[1], proba[2]) << "blocked vs packed";
}

// The fused grid kernel answers the whole k grid from one top-max(k) sweep;
// its accuracies must equal fitting one classifier per k and scoring its
// 0.5-thresholded predictions — exactly, not approximately.
TEST(KernelIdentityTest, KnnGridMatchesPerKOracle) {
  test::BlobData train = test::MakeBlobs(300, 5, 1.2, 29);
  test::BlobData valid = test::MakeBlobs(83, 5, 1.2, 30);
  const std::vector<int> ks = {5, 15, 31};
  std::vector<double> grid =
      KnnGridAccuracies(train.x, train.y, valid.x, valid.y, ks);
  ASSERT_EQ(grid.size(), ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    KnnOptions options;
    options.k = ks[i];
    KnnClassifier model(options);
    Rng rng(23);
    ASSERT_TRUE(model.Fit(train.x, train.y, &rng).ok());
    std::vector<double> proba = model.PredictProba(valid.x);
    size_t correct = 0;
    for (size_t q = 0; q < proba.size(); ++q) {
      int pred = proba[q] >= 0.5 ? 1 : 0;
      if (pred == valid.y[q]) ++correct;
    }
    double oracle =
        static_cast<double>(correct) / static_cast<double>(proba.size());
    EXPECT_EQ(grid[i], oracle) << "k=" << ks[i];
  }
}

// GBDT stacked prediction (trees-outer over row blocks) against the plain
// per-row tree walk: same model, same bits.
TEST(KernelIdentityTest, GbdtStackedPredictBitIdentical) {
  test::BlobData data = test::MakeBlobs(250, 4, 1.0, 21);
  test::BlobData queries = test::MakeBlobs(97, 4, 1.0, 22);
  std::vector<std::vector<double>> proba;
  for (bool stacked : {false, true}) {
    GbdtOptions options;
    options.stacked_predict = stacked;
    GradientBoostedTrees model(options);
    Rng rng(19);
    ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
    proba.push_back(model.PredictProba(queries.x));
  }
  EXPECT_EQ(proba[0], proba[1]);
}

// Whole-tune mode identity: for every model family, TuneAndFit under
// naive, shared, and fused selects the same hyperparameter, reports the
// same CV accuracy, and trains a bit-identical final model. This is the
// kernel-layer half of the suite-level mode identity the wave_plan and
// suite_golden registrations pin.
TEST(KernelIdentityTest, TuneAndFitModeLadderBitIdentical) {
  test::BlobData data = test::MakeBlobs(180, 4, 1.3, 41);
  test::BlobData queries = test::MakeBlobs(23, 4, 1.3, 42);
  for (const std::string& name : AllModelNames()) {
    struct ModeOutcome {
      double param;
      double cv_accuracy;
      std::vector<double> proba;
    };
    std::vector<ModeOutcome> outcomes;
    for (ExecMode mode :
         {ExecMode::kNaive, ExecMode::kShared, ExecMode::kFused}) {
      Result<TunedModelFamily> family = ModelFamilyByName(name, mode);
      ASSERT_TRUE(family.ok()) << name;
      Rng rng(77);
      Result<TuneOutcome> outcome =
          TuneAndFit(*family, data.x, data.y, 3, &rng, mode);
      ASSERT_TRUE(outcome.ok()) << name << ": "
                                << outcome.status().ToString();
      outcomes.push_back({outcome->best_param, outcome->best_cv_accuracy,
                          outcome->model->PredictProba(queries.x)});
    }
    for (size_t m = 1; m < outcomes.size(); ++m) {
      EXPECT_EQ(outcomes[m].param, outcomes[0].param) << name;
      EXPECT_EQ(outcomes[m].cv_accuracy, outcomes[0].cv_accuracy) << name;
      EXPECT_EQ(outcomes[m].proba, outcomes[0].proba) << name;
    }
  }
}

TEST(KernelIdentityTest, MislabelDetectGolden) {
  test::BlobData data = test::MakeBlobs(150, 3, 2.0, 17);
  DataFrame frame;
  for (size_t d = 0; d < 3; ++d) {
    std::vector<double> col(data.x.rows());
    for (size_t i = 0; i < col.size(); ++i) col[i] = data.x(i, d);
    frame.AddColumn(Column::Numeric("f" + std::to_string(d), col));
  }
  std::vector<double> label_col(data.y.begin(), data.y.end());
  frame.AddColumn(Column::Numeric("label", label_col));
  DetectionContext context;
  context.inspect_columns = {"f0", "f1", "f2"};
  context.label_column = "label";
  MislabelDetector detector;
  Rng rng(19);
  Result<ErrorMask> mask = detector.Detect(frame, context, &rng);
  ASSERT_TRUE(mask.ok()) << mask.status().ToString();
  std::vector<size_t> flagged;
  for (size_t i = 0; i < mask->num_rows(); ++i) {
    if (mask->RowFlagged(i)) flagged.push_back(i);
  }
  EXPECT_EQ(flagged, (std::vector<size_t>{62, 81, 84, 105, 113, 138}));
}

}  // namespace
}  // namespace fairclean
