#include "ml/encoder.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairclean {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(Column::Numeric("num", {1.0, 2.0, 3.0, 4.0})).ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::Categorical("cat", {0, 1, 0, 2},
                                                 {"a", "b", "c"}))
                  .ok());
  EXPECT_TRUE(
      frame.AddColumn(Column::Numeric("label", {0.0, 1.0, 0.0, 1.0})).ok());
  return frame;
}

TEST(FeatureEncoderTest, DimensionsAndStandardization) {
  DataFrame frame = MakeFrame();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"num", "cat"}).ok());
  EXPECT_EQ(encoder.num_features(), 1u + 3u);
  Result<Matrix> x = encoder.Transform(frame);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->rows(), 4u);
  // Standardized numeric column has mean 0.
  double sum = 0.0;
  for (size_t r = 0; r < 4; ++r) sum += (*x)(r, 0);
  EXPECT_NEAR(sum, 0.0, 1e-12);
  // Sample stddev 1: values (1,2,3,4), mean 2.5, sd ~1.29.
  EXPECT_NEAR((*x)(0, 0), (1.0 - 2.5) / std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(FeatureEncoderTest, OneHotLayout) {
  DataFrame frame = MakeFrame();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"cat"}).ok());
  Matrix x = encoder.Transform(frame).ValueOrDie();
  // Row 0 has category a -> slot 0.
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 0.0);
  // Row 3 has category c -> slot 2.
  EXPECT_DOUBLE_EQ(x(3, 2), 1.0);
  // Exactly one slot active per row.
  for (size_t r = 0; r < 4; ++r) {
    double sum = x(r, 0) + x(r, 1) + x(r, 2);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(FeatureEncoderTest, MissingNumericEncodesToZero) {
  DataFrame frame;
  ASSERT_TRUE(
      frame.AddColumn(Column::Numeric("num", {1.0, std::nan(""), 3.0})).ok());
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"num"}).ok());
  Matrix x = encoder.Transform(frame).ValueOrDie();
  EXPECT_DOUBLE_EQ(x(1, 0), 0.0);  // imputed to fitted mean -> standardized 0
}

TEST(FeatureEncoderTest, MissingCategoricalEncodesAllZero) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Categorical(
                      "cat", {0, Column::kMissingCode}, {"a", "b"}))
                  .ok());
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"cat"}).ok());
  Matrix x = encoder.Transform(frame).ValueOrDie();
  EXPECT_DOUBLE_EQ(x(1, 0) + x(1, 1), 0.0);
}

TEST(FeatureEncoderTest, ConstantColumnDoesNotDivideByZero) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("num", {5.0, 5.0, 5.0})).ok());
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"num"}).ok());
  Matrix x = encoder.Transform(frame).ValueOrDie();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(std::isfinite(x(r, 0)));
    EXPECT_DOUBLE_EQ(x(r, 0), 0.0);
  }
}

TEST(FeatureEncoderTest, FitErrors) {
  DataFrame frame = MakeFrame();
  FeatureEncoder encoder;
  EXPECT_FALSE(encoder.Fit(frame, {}).ok());
  EXPECT_FALSE(encoder.Fit(frame, {"nonexistent"}).ok());
  EXPECT_FALSE(encoder.Transform(frame).ok());  // unfitted
}

TEST(FeatureEncoderTest, TransformValidatesSchema) {
  DataFrame frame = MakeFrame();
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(frame, {"num"}).ok());
  DataFrame other;
  ASSERT_TRUE(other.AddColumn(Column::FromStrings("num", {"x"})).ok());
  EXPECT_FALSE(encoder.Transform(other).ok());  // type changed
}

TEST(FeatureEncoderTest, DummyCategoryAddedAfterFitIsRepresentable) {
  // Dummy imputation may extend the dictionary on train before Fit; test
  // frames with the same extended dictionary encode consistently, and codes
  // beyond the fitted cardinality fall back to all-zeros.
  DataFrame train = MakeFrame();
  train.mutable_column("cat").GetOrAddCategory("dummy");
  FeatureEncoder encoder;
  ASSERT_TRUE(encoder.Fit(train, {"cat"}).ok());
  EXPECT_EQ(encoder.num_features(), 4u);
  DataFrame test = MakeFrame();
  int32_t dummy_code = test.mutable_column("cat").GetOrAddCategory("dummy");
  test.mutable_column("cat").SetCode(0, dummy_code);
  Matrix x = encoder.Transform(test).ValueOrDie();
  EXPECT_DOUBLE_EQ(x(0, 3), 1.0);
}

TEST(ExtractBinaryLabelsTest, NumericLabels) {
  DataFrame frame = MakeFrame();
  Result<std::vector<int>> labels = ExtractBinaryLabels(frame, "label");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<int>{0, 1, 0, 1}));
}

TEST(ExtractBinaryLabelsTest, RejectsNonBinaryNumeric) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Numeric("label", {0.0, 2.0})).ok());
  EXPECT_FALSE(ExtractBinaryLabels(frame, "label").ok());
}

TEST(ExtractBinaryLabelsTest, CategoricalWithPositiveCategory) {
  DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(Column::Categorical("label", {0, 1, 0},
                                                 {"bad", "good"}))
                  .ok());
  Result<std::vector<int>> labels =
      ExtractBinaryLabels(frame, "label", "good");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<int>{0, 1, 0}));
  Result<std::vector<int>> inverted =
      ExtractBinaryLabels(frame, "label", "bad");
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(*inverted, (std::vector<int>{1, 0, 1}));
}

TEST(ExtractBinaryLabelsTest, Errors) {
  DataFrame frame = MakeFrame();
  EXPECT_FALSE(ExtractBinaryLabels(frame, "nope").ok());
  DataFrame three_cat;
  ASSERT_TRUE(three_cat
                  .AddColumn(Column::Categorical("label", {0, 1, 2},
                                                 {"a", "b", "c"}))
                  .ok());
  EXPECT_FALSE(ExtractBinaryLabels(three_cat, "label").ok());
  DataFrame missing;
  ASSERT_TRUE(missing
                  .AddColumn(Column::Categorical(
                      "label", {0, Column::kMissingCode}, {"a", "b"}))
                  .ok());
  EXPECT_FALSE(ExtractBinaryLabels(missing, "label").ok());
}

}  // namespace
}  // namespace fairclean
