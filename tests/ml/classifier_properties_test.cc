// Property-style sweep over all three classifier families: every model must
// satisfy the same behavioural contract (learn separable data, emit valid
// probabilities, be deterministic given the rng, survive degenerate
// labels). TEST_P keeps the properties in one place.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/tuning.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

class ClassifierContractTest : public testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Classifier> MakeModel() {
    TunedModelFamily family = ModelFamilyByName(GetParam()).ValueOrDie();
    return family.make(family.param_grid[family.param_grid.size() / 2]);
  }
};

TEST_P(ClassifierContractTest, LearnsWellSeparatedBlobs) {
  test::BlobData train = test::MakeBlobs(400, 3, 5.0, 101);
  test::BlobData test = test::MakeBlobs(200, 3, 5.0, 102);
  std::unique_ptr<Classifier> model = MakeModel();
  Rng rng(103);
  ASSERT_TRUE(model->Fit(train.x, train.y, &rng).ok());
  EXPECT_GT(AccuracyScore(test.y, model->Predict(test.x)), 0.9);
}

TEST_P(ClassifierContractTest, ProbabilitiesInUnitInterval) {
  test::BlobData data = test::MakeBlobs(200, 2, 1.0, 104);
  std::unique_ptr<Classifier> model = MakeModel();
  Rng rng(105);
  ASSERT_TRUE(model->Fit(data.x, data.y, &rng).ok());
  for (double p : model->PredictProba(data.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(ClassifierContractTest, PredictionsAreBinaryAndThresholded) {
  test::BlobData data = test::MakeBlobs(150, 2, 2.0, 106);
  std::unique_ptr<Classifier> model = MakeModel();
  Rng rng(107);
  ASSERT_TRUE(model->Fit(data.x, data.y, &rng).ok());
  std::vector<double> proba = model->PredictProba(data.x);
  std::vector<int> predictions = model->Predict(data.x);
  for (size_t i = 0; i < predictions.size(); ++i) {
    EXPECT_TRUE(predictions[i] == 0 || predictions[i] == 1);
    EXPECT_EQ(predictions[i], proba[i] >= 0.5 ? 1 : 0);
  }
}

TEST_P(ClassifierContractTest, DeterministicGivenRngState) {
  test::BlobData data = test::MakeBlobs(200, 2, 2.0, 108);
  std::unique_ptr<Classifier> a = MakeModel();
  std::unique_ptr<Classifier> b = MakeModel();
  Rng rng_a(109);
  Rng rng_b(109);
  ASSERT_TRUE(a->Fit(data.x, data.y, &rng_a).ok());
  ASSERT_TRUE(b->Fit(data.x, data.y, &rng_b).ok());
  std::vector<double> pa = a->PredictProba(data.x);
  std::vector<double> pb = b->PredictProba(data.x);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST_P(ClassifierContractTest, RejectsMismatchedLabels) {
  test::BlobData data = test::MakeBlobs(50, 2, 2.0, 110);
  std::unique_ptr<Classifier> model = MakeModel();
  Rng rng(111);
  std::vector<int> short_labels(10, 1);
  EXPECT_FALSE(model->Fit(data.x, short_labels, &rng).ok());
}

TEST_P(ClassifierContractTest, CloneProducesIndependentTrainableModel) {
  test::BlobData data = test::MakeBlobs(120, 2, 3.0, 112);
  std::unique_ptr<Classifier> model = MakeModel();
  std::unique_ptr<Classifier> clone = model->Clone();
  EXPECT_EQ(clone->name(), GetParam());
  Rng rng(113);
  ASSERT_TRUE(clone->Fit(data.x, data.y, &rng).ok());
  EXPECT_GT(AccuracyScore(data.y, clone->Predict(data.x)), 0.8);
}

TEST_P(ClassifierContractTest, HandlesConstantFeatures) {
  Matrix x(60, 3);  // all zeros
  std::vector<int> y(60);
  for (size_t i = 0; i < 60; ++i) y[i] = i % 2;
  std::unique_ptr<Classifier> model = MakeModel();
  Rng rng(114);
  ASSERT_TRUE(model->Fit(x, y, &rng).ok());
  // No information: predictions must still be valid.
  for (double p : model->PredictProba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ClassifierContractTest,
                         testing::ValuesIn(AllModelNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fairclean
