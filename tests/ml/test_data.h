#ifndef FAIRCLEAN_TESTS_ML_TEST_DATA_H_
#define FAIRCLEAN_TESTS_ML_TEST_DATA_H_

#include <vector>

#include "common/random.h"
#include "ml/matrix.h"

namespace fairclean {
namespace test {

/// A linearly separable-ish binary problem: two Gaussian blobs in `dims`
/// dimensions separated along the first axis.
struct BlobData {
  Matrix x;
  std::vector<int> y;
};

inline BlobData MakeBlobs(size_t n, size_t dims, double separation,
                          uint64_t seed) {
  Rng rng(seed);
  BlobData data;
  data.x = Matrix(n, dims);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    data.y[i] = label;
    double center = label == 1 ? separation / 2.0 : -separation / 2.0;
    data.x(i, 0) = rng.Normal(center, 1.0);
    for (size_t d = 1; d < dims; ++d) {
      data.x(i, d) = rng.Normal(0.0, 1.0);
    }
  }
  return data;
}

}  // namespace test
}  // namespace fairclean

#endif  // FAIRCLEAN_TESTS_ML_TEST_DATA_H_
