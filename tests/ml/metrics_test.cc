#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace fairclean {
namespace {

TEST(ConfusionMatrixTest, TalliesCorrectly) {
  std::vector<int> y_true = {1, 1, 0, 0, 1, 0};
  std::vector<int> y_pred = {1, 0, 1, 0, 1, 0};
  Result<ConfusionMatrix> cm = ConfusionMatrix::From(y_true, y_pred);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->tp, 2);
  EXPECT_EQ(cm->fn, 1);
  EXPECT_EQ(cm->fp, 1);
  EXPECT_EQ(cm->tn, 2);
  EXPECT_EQ(cm->total(), 6);
}

TEST(ConfusionMatrixTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(ConfusionMatrix::From({1}, {1, 0}).ok());
}

TEST(ConfusionMatrixTest, RejectsNonBinary) {
  EXPECT_FALSE(ConfusionMatrix::From({2}, {1}).ok());
  EXPECT_FALSE(ConfusionMatrix::From({1}, {-1}).ok());
}

TEST(ConfusionMatrixTest, DerivedMetrics) {
  ConfusionMatrix cm;
  cm.tp = 6;
  cm.fp = 2;
  cm.fn = 3;
  cm.tn = 9;
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 15.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 6.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.PositiveRate(), 8.0 / 20.0);
  double p = 0.75;
  double r = 6.0 / 9.0;
  EXPECT_DOUBLE_EQ(cm.F1(), 2.0 * p * r / (p + r));
}

TEST(ConfusionMatrixTest, UndefinedPrecisionAndRecall) {
  ConfusionMatrix cm;  // all zeros
  EXPECT_DOUBLE_EQ(cm.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0.5), 0.5);
  EXPECT_DOUBLE_EQ(cm.Recall(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(), 0.0);
}

TEST(ConfusionMatrixTest, AdditionAggregates) {
  ConfusionMatrix a;
  a.tp = 1;
  a.fn = 2;
  ConfusionMatrix b;
  b.tp = 3;
  b.tn = 4;
  ConfusionMatrix sum = a + b;
  EXPECT_EQ(sum.tp, 4);
  EXPECT_EQ(sum.fn, 2);
  EXPECT_EQ(sum.tn, 4);
}

TEST(AccuracyScoreTest, Basic) {
  EXPECT_DOUBLE_EQ(AccuracyScore({1, 0, 1, 0}, {1, 0, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(AccuracyScore({}, {}), 0.0);
}

TEST(F1ScoreTest, MatchesConfusionMatrix) {
  std::vector<int> y_true = {1, 1, 0, 1, 0};
  std::vector<int> y_pred = {1, 0, 1, 1, 0};
  ConfusionMatrix cm = ConfusionMatrix::From(y_true, y_pred).ValueOrDie();
  EXPECT_DOUBLE_EQ(F1Score(y_true, y_pred), cm.F1());
}

TEST(F1ScoreTest, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
}

}  // namespace
}  // namespace fairclean
