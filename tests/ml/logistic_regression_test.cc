#include "ml/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

TEST(LogisticRegressionTest, LearnsSeparableBlobs) {
  test::BlobData data = test::MakeBlobs(400, 3, 4.0, 1);
  LogisticRegression model;
  Rng rng(2);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  double accuracy = AccuracyScore(data.y, model.Predict(data.x));
  EXPECT_GT(accuracy, 0.9);
}

TEST(LogisticRegressionTest, CoefficientSignMatchesSeparation) {
  test::BlobData data = test::MakeBlobs(400, 3, 4.0, 3);
  LogisticRegression model;
  Rng rng(4);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  ASSERT_EQ(model.coefficients().size(), 3u);
  EXPECT_GT(model.coefficients()[0], 0.5);  // axis 0 separates the classes
  EXPECT_LT(std::abs(model.coefficients()[1]), 0.5);
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  test::BlobData data = test::MakeBlobs(200, 2, 2.0, 5);
  LogisticRegression model;
  Rng rng(6);
  ASSERT_TRUE(model.Fit(data.x, data.y, &rng).ok());
  for (double p : model.PredictProba(data.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, StrongerRegularizationShrinksWeights) {
  test::BlobData data = test::MakeBlobs(300, 3, 4.0, 7);
  LogisticRegressionOptions weak;
  weak.c = 100.0;
  LogisticRegressionOptions strong;
  strong.c = 0.01;
  LogisticRegression weak_model(weak);
  LogisticRegression strong_model(strong);
  Rng rng(8);
  ASSERT_TRUE(weak_model.Fit(data.x, data.y, &rng).ok());
  ASSERT_TRUE(strong_model.Fit(data.x, data.y, &rng).ok());
  double weak_norm = 0.0;
  double strong_norm = 0.0;
  for (double w : weak_model.coefficients()) weak_norm += w * w;
  for (double w : strong_model.coefficients()) strong_norm += w * w;
  EXPECT_GT(weak_norm, strong_norm);
}

TEST(LogisticRegressionTest, InterceptCapturesBaseRate) {
  // All labels positive except a few: intercept must be strongly positive.
  Matrix x(100, 1);
  std::vector<int> y(100, 1);
  Rng noise(9);
  for (size_t i = 0; i < 100; ++i) x(i, 0) = noise.Normal(0.0, 1.0);
  for (size_t i = 0; i < 5; ++i) y[i] = 0;
  LogisticRegression model;
  Rng rng(10);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  EXPECT_GT(model.intercept(), 1.0);
}

TEST(LogisticRegressionTest, DeterministicFit) {
  test::BlobData data = test::MakeBlobs(200, 2, 3.0, 11);
  LogisticRegression a;
  LogisticRegression b;
  Rng rng_a(1);
  Rng rng_b(2);  // rng is unused by IRLS; fits must still agree
  ASSERT_TRUE(a.Fit(data.x, data.y, &rng_a).ok());
  ASSERT_TRUE(b.Fit(data.x, data.y, &rng_b).ok());
  for (size_t i = 0; i < a.coefficients().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coefficients()[i], b.coefficients()[i]);
  }
}

TEST(LogisticRegressionTest, RejectsBadInput) {
  Matrix x(2, 1);
  LogisticRegression model;
  Rng rng(1);
  EXPECT_FALSE(model.Fit(x, {1}, &rng).ok());  // size mismatch
  Matrix empty(0, 1);
  EXPECT_FALSE(model.Fit(empty, {}, &rng).ok());
  LogisticRegressionOptions bad;
  bad.c = 0.0;
  LogisticRegression bad_model(bad);
  EXPECT_FALSE(bad_model.Fit(x, {0, 1}, &rng).ok());
}

TEST(LogisticRegressionTest, SingleClassTrainingStillFits) {
  // Degenerate but must not crash or diverge: regularization keeps the
  // problem well-posed.
  Matrix x(50, 2);
  Rng noise(12);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = noise.Normal(0.0, 1.0);
    x(i, 1) = noise.Normal(0.0, 1.0);
  }
  std::vector<int> y(50, 1);
  LogisticRegression model;
  Rng rng(13);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  std::vector<double> proba = model.PredictProba(x);
  for (double p : proba) EXPECT_GT(p, 0.5);
}

TEST(LogisticRegressionTest, CloneIsUntrainedWithSameOptions) {
  LogisticRegressionOptions options;
  options.c = 2.5;
  LogisticRegression model(options);
  std::unique_ptr<Classifier> clone = model.Clone();
  EXPECT_EQ(clone->name(), "log-reg");
  test::BlobData data = test::MakeBlobs(100, 2, 3.0, 14);
  Rng rng(15);
  EXPECT_TRUE(clone->Fit(data.x, data.y, &rng).ok());
}

}  // namespace
}  // namespace fairclean
