#include "ml/tuning.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "tests/ml/test_data.h"

namespace fairclean {
namespace {

TEST(ModelFamilyTest, RegistryResolvesAllNames) {
  for (const std::string& name : AllModelNames()) {
    Result<TunedModelFamily> family = ModelFamilyByName(name);
    ASSERT_TRUE(family.ok()) << name;
    EXPECT_EQ(family->name, name);
    EXPECT_FALSE(family->param_grid.empty());
    std::unique_ptr<Classifier> model =
        family->make(family->param_grid.front());
    EXPECT_EQ(model->name(), name);
  }
  EXPECT_FALSE(ModelFamilyByName("svm").ok());
}

TEST(ModelFamilyTest, PaperOrder) {
  std::vector<std::string> names = AllModelNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "log-reg");
  EXPECT_EQ(names[1], "knn");
  EXPECT_EQ(names[2], "xgboost");
}

TEST(TuneAndFitTest, TrainsAWorkingModel) {
  test::BlobData data = test::MakeBlobs(300, 3, 4.0, 1);
  Rng rng(2);
  Result<TuneOutcome> outcome =
      TuneAndFit(LogRegFamily(), data.x, data.y, 3, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->best_cv_accuracy, 0.85);
  EXPECT_GT(AccuracyScore(data.y, outcome->model->Predict(data.x)), 0.85);
}

TEST(TuneAndFitTest, SelectsFromGrid) {
  test::BlobData data = test::MakeBlobs(200, 2, 3.0, 3);
  TunedModelFamily family = KnnFamily();
  Rng rng(4);
  Result<TuneOutcome> outcome = TuneAndFit(family, data.x, data.y, 3, &rng);
  ASSERT_TRUE(outcome.ok());
  bool in_grid = false;
  for (double param : family.param_grid) {
    if (param == outcome->best_param) in_grid = true;
  }
  EXPECT_TRUE(in_grid);
}

TEST(TuneAndFitTest, DeterministicGivenSeed) {
  test::BlobData data = test::MakeBlobs(200, 2, 2.0, 5);
  Rng rng_a(7);
  Rng rng_b(7);
  Result<TuneOutcome> a = TuneAndFit(GbdtFamily(), data.x, data.y, 3, &rng_a);
  Result<TuneOutcome> b = TuneAndFit(GbdtFamily(), data.x, data.y, 3, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->best_param, b->best_param);
  EXPECT_DOUBLE_EQ(a->best_cv_accuracy, b->best_cv_accuracy);
}

TEST(TuneAndFitTest, FoldParallelismDoesNotChangeTheOutcome) {
  // Arm the shared fold pool before its first (lazily cached) use. ctest
  // runs each test in its own process, so this sticks; under a monolithic
  // run the pool may already be fixed and both sides just run inline.
  ASSERT_EQ(setenv("FAIRCLEAN_THREADS", "4", 1), 0);
  test::BlobData data = test::MakeBlobs(200, 2, 2.0, 5);

  Rng rng_pooled(7);
  Result<TuneOutcome> pooled =
      TuneAndFit(GbdtFamily(), data.x, data.y, 3, &rng_pooled);

  // Calling from inside a pool task forces the inline (sequential) fold
  // path via OnWorkerThread — the reference the pooled run must match.
  Rng rng_inline(7);
  ThreadPool probe(1);
  Result<TuneOutcome> inlined =
      probe
          .Submit([&]() {
            return TuneAndFit(GbdtFamily(), data.x, data.y, 3, &rng_inline);
          })
          .get();

  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(inlined.ok());
  EXPECT_EQ(pooled->best_param, inlined->best_param);
  EXPECT_EQ(pooled->best_cv_accuracy, inlined->best_cv_accuracy);
  EXPECT_EQ(pooled->model->Predict(data.x), inlined->model->Predict(data.x));
  ASSERT_EQ(unsetenv("FAIRCLEAN_THREADS"), 0);
}

TEST(TuneAndFitTest, RejectsBadInput) {
  test::BlobData data = test::MakeBlobs(10, 2, 2.0, 8);
  Rng rng(9);
  TunedModelFamily empty_grid = LogRegFamily();
  empty_grid.param_grid.clear();
  EXPECT_FALSE(TuneAndFit(empty_grid, data.x, data.y, 3, &rng).ok());
  EXPECT_FALSE(
      TuneAndFit(LogRegFamily(), data.x, data.y, 100, &rng).ok());  // folds>n
  std::vector<int> short_y = {0, 1};
  EXPECT_FALSE(TuneAndFit(LogRegFamily(), data.x, short_y, 3, &rng).ok());
}

TEST(TuneAndFitTest, PicksRegularizationThatGeneralizes) {
  // Tiny noisy training set: heavy regularization (small C) should win or
  // at least be evaluable; mainly assert the search completes and returns a
  // grid value with a sensible CV accuracy.
  test::BlobData data = test::MakeBlobs(60, 5, 1.0, 10);
  Rng rng(11);
  Result<TuneOutcome> outcome =
      TuneAndFit(LogRegFamily(), data.x, data.y, 3, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->best_cv_accuracy, 0.3);
  EXPECT_LE(outcome->best_cv_accuracy, 1.0);
}

TEST(MaterializeTuningFoldsTest, SlicesMatchFoldIndices) {
  test::BlobData data = test::MakeBlobs(45, 3, 1.0, 61);
  Rng fold_rng(62);
  std::vector<TrainTestIndices> folds = KFoldIndices(45, 3, &fold_rng);
  std::vector<int> membership(45);
  for (size_t i = 0; i < 45; ++i) membership[i] = i % 2 == 0 ? 1 : -1;
  std::vector<TuningFoldData> fold_data = MaterializeTuningFolds(
      data.x, data.y, folds, /*with_presort=*/false, &membership);
  ASSERT_EQ(fold_data.size(), folds.size());
  for (size_t f = 0; f < folds.size(); ++f) {
    const TuningFoldData& fd = fold_data[f];
    ASSERT_EQ(fd.train_x.rows(), folds[f].train.size());
    ASSERT_EQ(fd.valid_x.rows(), folds[f].test.size());
    EXPECT_FALSE(fd.has_presort);
    for (size_t i = 0; i < folds[f].train.size(); ++i) {
      EXPECT_EQ(fd.train_y[i], data.y[folds[f].train[i]]);
      for (size_t d = 0; d < 3; ++d) {
        EXPECT_EQ(fd.train_x(i, d), data.x(folds[f].train[i], d));
      }
    }
    for (size_t i = 0; i < folds[f].test.size(); ++i) {
      EXPECT_EQ(fd.valid_y[i], data.y[folds[f].test[i]]);
      EXPECT_EQ(fd.valid_membership[i], membership[folds[f].test[i]]);
    }
  }
}

TEST(MaterializeTuningFoldsTest, PresortBuiltOnDemandAndMatchesCompute) {
  test::BlobData data = test::MakeBlobs(30, 2, 1.0, 63);
  Rng fold_rng(64);
  std::vector<TrainTestIndices> folds = KFoldIndices(30, 3, &fold_rng);
  std::vector<TuningFoldData> fold_data =
      MaterializeTuningFolds(data.x, data.y, folds, /*with_presort=*/true);
  for (size_t f = 0; f < folds.size(); ++f) {
    ASSERT_TRUE(fold_data[f].has_presort);
    PresortedFeatures expected =
        PresortedFeatures::Compute(fold_data[f].train_x);
    EXPECT_EQ(fold_data[f].train_presort.order, expected.order);
  }
}

}  // namespace
}  // namespace fairclean
