// Healthcare triage: the paper's healthcare motivation scenario, with an
// intersectional lens.
//
// A hospital uses a model on the heart dataset to prioritize patients for
// cardiac care. The recorded labels carry asymmetric noise (sick women and
// younger patients are more often recorded as healthy), so the hospital
// evaluates repairing predicted label errors with confident learning. The
// example contrasts the single-attribute view (sex, age) with the
// intersectional view (male/over-45 vs female/under-45) — the paper's key
// point that the two views can tell different stories.

#include <cstdio>

#include "common/random.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

void PrintGroupStory(const CleaningExperimentResult& experiment,
                     const std::string& group_key, double alpha) {
  const ScoreSeries& repaired = experiment.repaired.at("flip_mislabels");
  std::printf("  group %-10s:", group_key.c_str());
  for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                FairnessMetric::kEqualOpportunity}) {
    Result<ImpactOutcome> impact = ComputeImpact(
        experiment.dirty, repaired, group_key, metric, alpha);
    if (!impact.ok()) continue;
    std::printf("  %s %-13s (gap %+.4f -> %+.4f)",
                FairnessMetricShortName(metric), ImpactName(impact->fairness),
                *Mean(experiment.dirty.unfairness.at(
                    UnfairnessKey(group_key, metric))),
                *Mean(repaired.unfairness.at(
                    UnfairnessKey(group_key, metric))));
  }
  std::printf("\n");
}

int Run() {
  Rng rng(77);
  Result<GeneratedDataset> dataset = MakeDataset("heart", 0, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("heart dataset: %zu patients, %zu columns; label = %s\n\n",
              dataset->frame.num_rows(), dataset->frame.num_columns(),
              dataset->spec.label.c_str());

  StudyOptions options = StudyOptionsFromEnv();
  options.sample_size = 2000;
  options.num_repeats = 8;

  Result<CleaningExperimentResult> experiment =
      RunCleaningExperiment(*dataset, "mislabels", LogRegFamily(), options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  const ScoreSeries& repaired = experiment->repaired.at("flip_mislabels");
  std::printf("accuracy: dirty %.4f -> repaired %.4f\n\n",
              *Mean(experiment->dirty.accuracy), *Mean(repaired.accuracy));

  double alpha = 0.05;  // single cleaning method, no correction needed
  std::printf("single-attribute view:\n");
  PrintGroupStory(*experiment, "sex", alpha);
  PrintGroupStory(*experiment, "age", alpha);
  std::printf("\nintersectional view (male/over-45 vs female/under-45):\n");
  PrintGroupStory(*experiment, "sex*age", alpha);

  std::printf(
      "\nThe paper's Tables X-XIII pattern: repairing label errors improves "
      "equal opportunity (the model stops denying priority care to sick "
      "members of the disadvantaged group) while predictive parity can "
      "worsen, and the intersectional effects are stronger than the "
      "single-attribute ones.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
