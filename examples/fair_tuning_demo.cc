// Fairness-constrained hyperparameter search — the paper's Section VII
// direction of extending cross-validation to adhere to fairness
// constraints during the selection procedure.
//
// Trains the study's three model families on the heart dataset twice: once
// with plain accuracy-maximizing grid search and once with an equal
// opportunity budget on the validation folds, and compares the selected
// hyperparameters, validation accuracy and validation unfairness.

#include <cstdio>

#include "common/random.h"
#include "core/fair_tuning.h"
#include "datasets/generator.h"
#include "ml/encoder.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

int Run() {
  Rng rng(99);
  Result<GeneratedDataset> dataset = MakeDataset("heart", 6000, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // Encode features and resolve the sex groups.
  FeatureEncoder encoder;
  std::vector<std::string> features =
      dataset->spec.FeatureColumns(dataset->frame);
  if (!encoder.Fit(dataset->frame, features).ok()) return 1;
  Result<Matrix> x = encoder.Transform(dataset->frame);
  Result<std::vector<int>> y =
      ExtractBinaryLabels(dataset->frame, dataset->spec.label);
  Result<SensitiveAttribute> sex =
      dataset->spec.SensitiveAttributeByName("sex");
  if (!x.ok() || !y.ok() || !sex.ok()) return 1;
  Result<GroupAssignment> groups =
      SingleAttributeGroups(dataset->frame, sex->privileged);
  if (!groups.ok()) return 1;
  std::vector<int> membership = MembershipFromAssignment(*groups);

  std::printf(
      "heart, %zu patients; tuning with and without an EO budget of 0.05 "
      "across sex groups\n\n",
      dataset->frame.num_rows());
  std::printf("%-10s %-22s %-22s %s\n", "model",
              "accuracy-only search", "fairness-constrained", "budget met");

  for (const std::string& name : AllModelNames()) {
    Result<TunedModelFamily> family = ModelFamilyByName(name);
    if (!family.ok()) continue;

    FairTuneOptions unconstrained;
    unconstrained.metric = FairnessMetric::kEqualOpportunity;
    unconstrained.max_unfairness = 1.0;  // effectively no budget
    Rng rng_a(7);
    Result<FairTuneOutcome> plain =
        FairTuneAndFit(*family, *x, *y, membership, unconstrained, &rng_a);

    FairTuneOptions constrained = unconstrained;
    constrained.max_unfairness = 0.05;
    Rng rng_b(7);
    Result<FairTuneOutcome> fair =
        FairTuneAndFit(*family, *x, *y, membership, constrained, &rng_b);

    if (!plain.ok() || !fair.ok()) {
      std::fprintf(stderr, "tuning failed for %s\n", name.c_str());
      continue;
    }
    std::printf(
        "%-10s param %-4g acc %.3f    param %-4g acc %.3f    %s (|EO gap| "
        "%.3f -> %.3f)\n",
        name.c_str(), plain->best_param, plain->best_cv_accuracy,
        fair->best_param, fair->best_cv_accuracy,
        fair->within_budget ? "yes" : "no", plain->best_cv_unfairness,
        fair->best_cv_unfairness);
  }

  std::printf(
      "\nWhen the budget cannot be met by any hyperparameter, the search "
      "returns the fairest candidate and reports within_budget=false — the "
      "signal that model selection alone cannot fix the disparity and a "
      "data-side intervention (cleaning choice) is needed.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
