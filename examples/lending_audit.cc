// Lending audit: the paper's finance motivation scenario.
//
// A bank retrains a credit-scoring model nightly on freshly ingested data
// and wants to know whether its automated outlier cleaning changes who gets
// approved. This example runs the dirty-vs-repaired protocol on the credit
// dataset for all nine outlier cleaning configurations and reports, per
// configuration, the impact on overall accuracy, on predictive parity (the
// bank's precision interest) and on equal opportunity (the applicants'
// recall interest) across age groups.

#include <cstdio>

#include "common/random.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

int Run() {
  Rng rng(2024);
  Result<GeneratedDataset> dataset = MakeDataset("credit", 0, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("credit dataset: %zu applicants, label = %s, sensitive "
              "attribute: age (privileged: %s)\n\n",
              dataset->frame.num_rows(), dataset->spec.label.c_str(),
              dataset->spec.sensitive_attributes[0]
                  .privileged.Description()
                  .c_str());

  StudyOptions options = StudyOptionsFromEnv();
  options.sample_size = 1500;
  options.num_repeats = 8;
  Result<CleaningExperimentResult> experiment =
      RunCleaningExperiment(*dataset, "outliers", LogRegFamily(), options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  Result<double> dirty_acc = Mean(experiment->dirty.accuracy);
  std::printf("dirty baseline: accuracy %.4f, |PP gap| %.4f, |EO gap| %.4f\n\n",
              dirty_acc.ok() ? *dirty_acc : 0.0,
              *Mean(experiment->dirty.unfairness.at("age/PP")),
              *Mean(experiment->dirty.unfairness.at("age/EO")));

  double alpha = BonferroniAlpha(options.alpha, experiment->repaired.size());
  std::printf("%-28s %-24s %-28s %-28s\n", "cleaning configuration",
              "accuracy", "predictive parity (bank)",
              "equal opportunity (applicants)");
  for (const auto& [method, series] : experiment->repaired) {
    Result<ImpactOutcome> pp = ComputeImpact(
        experiment->dirty, series, "age", FairnessMetric::kPredictiveParity,
        alpha);
    Result<ImpactOutcome> eo = ComputeImpact(
        experiment->dirty, series, "age", FairnessMetric::kEqualOpportunity,
        alpha);
    if (!pp.ok() || !eo.ok()) continue;
    std::printf("%-28s %-13s (%+.4f) %-17s (%+.4f) %-17s (%+.4f)\n",
                method.c_str(), ImpactName(pp->accuracy),
                pp->accuracy_delta, ImpactName(pp->fairness),
                pp->unfairness_delta, ImpactName(eo->fairness),
                eo->unfairness_delta);
  }

  std::printf(
      "\nReading the table: a 'worse' in the fairness columns means the gap "
      "between age groups widened after automated cleaning — the paper's "
      "central warning. Deltas are changes in mean |gap| (negative = "
      "fairer) and mean accuracy (positive = more accurate).\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
