// Data-quality report for the five benchmark datasets.
//
// Uses the library's QualityReport profiler to print, for each dataset,
// the schema with per-column missing rates and distribution statistics,
// the fraction of tuples flagged by each applicable error-detection
// strategy, and the label base rates per protected group — the raw
// material behind the paper's Section III analysis. Useful to sanity-check
// a generator after changing its parameters.

#include <cstdio>

#include "common/random.h"
#include "core/quality_report.h"
#include "datasets/generator.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

int Run() {
  for (const std::string& name : AllDatasetNames()) {
    Rng rng(13);
    Result<GeneratedDataset> dataset = MakeDataset(name, 0, &rng);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed for %s: %s\n", name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    Rng report_rng(17);
    Result<QualityReport> report =
        ComputeQualityReport(*dataset, &report_rng);
    if (!report.ok()) {
      std::fprintf(stderr, "profiling failed for %s: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->Format().c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
