// Quickstart: the full fairclean pipeline on the german credit dataset.
//
// Generates the dataset, inspects it with every applicable error-detection
// strategy, runs the paper's dirty-vs-repaired experiment protocol for
// missing values with a logistic-regression model, and reports the impact
// of each imputation method on accuracy and fairness (predictive parity
// and equal opportunity) for the sex and age groups.

#include <cstdio>

#include "common/random.h"
#include "core/disparity.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

int RunQuickstart() {
  Rng rng(7);
  Result<GeneratedDataset> dataset = MakeDataset("german", 0, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("german credit dataset: %zu rows, %zu columns\n",
              dataset->frame.num_rows(), dataset->frame.num_columns());
  std::printf("label = %s, sensitive attributes:", dataset->spec.label.c_str());
  for (const SensitiveAttribute& attr : dataset->spec.sensitive_attributes) {
    std::printf(" %s (privileged: %s)", attr.name.c_str(),
                attr.privileged.Description().c_str());
  }
  std::printf("\n\n== RQ1: do detected errors track group membership? ==\n");

  DisparityOptions disparity_options;
  Rng disparity_rng(11);
  Result<std::vector<DisparityRow>> disparities = AnalyzeDisparities(
      *dataset, /*intersectional=*/false, disparity_options, &disparity_rng);
  if (!disparities.ok()) {
    std::fprintf(stderr, "disparity analysis failed: %s\n",
                 disparities.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", FormatDisparityTable(*disparities).c_str());

  std::printf("== RQ2: impact of auto-cleaning missing values ==\n");
  StudyOptions options = StudyOptionsFromEnv();
  options.num_repeats = 8;
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      *dataset, "missing_values", LogRegFamily(), options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  double alpha = BonferroniAlpha(options.alpha, experiment->repaired.size());
  for (const auto& [method, series] : experiment->repaired) {
    std::printf("\n  method %s:\n", method.c_str());
    for (const GroupDefinition& group : experiment->groups) {
      for (FairnessMetric metric : {FairnessMetric::kPredictiveParity,
                                    FairnessMetric::kEqualOpportunity}) {
        Result<ImpactOutcome> impact = ComputeImpact(
            experiment->dirty, series, group.key, metric, alpha);
        if (!impact.ok()) continue;
        std::printf(
            "    group %-10s %-3s: fairness %-13s (gap %+0.4f), accuracy "
            "%-13s (%+0.4f)\n",
            group.key.c_str(), FairnessMetricShortName(metric),
            ImpactName(impact->fairness), impact->unfairness_delta,
            ImpactName(impact->accuracy), impact->accuracy_delta);
      }
    }
  }
  std::printf("\nDone. Raw records collected: %zu\n",
              experiment->records.size());
  return 0;
}

}  // namespace

int main() { return RunQuickstart(); }
