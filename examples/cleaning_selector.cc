// Fairness-aware cleaning selection: a working prototype of the paper's
// Section VII vision.
//
// The paper finds that for almost every case there exists at least one
// cleaning configuration that does not hurt fairness — the problem is
// choosing it. This example runs the missing-value experiment on the adult
// dataset and asks the selector for the best imputation method under two
// policies: maximize the fairness gain, and maximize the accuracy gain
// subject to not worsening fairness. It prints the full ranking with the
// admissibility constraint (neither accuracy nor fairness significantly
// worse than the dirty baseline).

#include <cstdio>

#include "common/random.h"
#include "core/fair_selector.h"
#include "datasets/generator.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;  // NOLINT: example brevity

void PrintRanking(const std::vector<CleaningRecommendation>& ranking,
                  const char* policy) {
  std::printf("policy: %s\n", policy);
  std::printf("  %-22s %-11s %-26s %-26s\n", "method", "admissible",
              "fairness impact (delta)", "accuracy impact (delta)");
  for (const CleaningRecommendation& rec : ranking) {
    std::printf("  %-22s %-11s %-13s (%+.4f)     %-13s (%+.4f)\n",
                rec.method.c_str(), rec.admissible ? "yes" : "no",
                ImpactName(rec.impact.fairness), rec.impact.unfairness_delta,
                ImpactName(rec.impact.accuracy), rec.impact.accuracy_delta);
  }
  if (!ranking.empty() && ranking.front().admissible) {
    std::printf("  -> recommended: %s\n\n", ranking.front().method.c_str());
  } else {
    std::printf("  -> no admissible cleaning method (the paper finds 3 of "
                "40 such cases)\n\n");
  }
}

int Run() {
  Rng rng(4711);
  Result<GeneratedDataset> dataset = MakeDataset("adult", 0, &rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  StudyOptions options = StudyOptionsFromEnv();
  options.sample_size = 1500;
  options.num_repeats = 8;
  std::printf("Tuning the missing-value cleaning of 'adult' for equal "
              "opportunity across sex groups...\n\n");
  Result<CleaningExperimentResult> experiment = RunCleaningExperiment(
      *dataset, "missing_values", LogRegFamily(), options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }

  double alpha = BonferroniAlpha(options.alpha, experiment->repaired.size());
  Result<std::vector<CleaningRecommendation>> fairness_first =
      SelectFairCleaning(*experiment, "sex",
                         FairnessMetric::kEqualOpportunity, alpha,
                         SelectionObjective::kMaxFairnessGain);
  if (!fairness_first.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 fairness_first.status().ToString().c_str());
    return 1;
  }
  PrintRanking(*fairness_first, "max fairness gain (EO, sex)");

  Result<std::vector<CleaningRecommendation>> accuracy_first =
      SelectFairCleaning(*experiment, "sex",
                         FairnessMetric::kEqualOpportunity, alpha,
                         SelectionObjective::kMaxAccuracyGain);
  if (accuracy_first.ok()) {
    PrintRanking(*accuracy_first,
                 "max accuracy gain subject to fairness not worsening");
  }

  // The intersectional target can prefer a different method — the paper's
  // point that the choice of group definition matters.
  Result<std::vector<CleaningRecommendation>> intersectional =
      SelectFairCleaning(*experiment, "sex*race",
                         FairnessMetric::kEqualOpportunity, alpha,
                         SelectionObjective::kMaxFairnessGain);
  if (intersectional.ok()) {
    PrintRanking(*intersectional, "max fairness gain (EO, sex*race)");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
