#ifndef FAIRCLEAN_SCHED_WAVE_PLAN_H_
#define FAIRCLEAN_SCHED_WAVE_PLAN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_mode.h"
#include "common/status.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "exec/study_driver.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace sched {

/// Shared immutable materialization for one (dataset, seed) group of ready
/// cells in a Kahn wave (DESIGN.md §15): the generated dataset artifact,
/// its group definitions, and the mode-resolved tuned family per model
/// name. Built once per group before the wave fans out; strictly read-only
/// while the wave runs, so any number of worker threads can consume one
/// plan without synchronization. Every field is a pure function of
/// (dataset name, seed, exec mode), which is why planned and per-cell
/// rebuilt runs stay byte-identical.
struct WavePlan {
  std::string dataset;
  uint64_t seed = 0;
  std::shared_ptr<const GeneratedDataset> data;
  std::shared_ptr<const std::vector<GroupDefinition>> groups;
  /// Tuned families keyed by model name, resolved under the suite's
  /// execution mode.
  std::map<std::string, std::shared_ptr<const TunedModelFamily>> families;
  /// Cells of the wave this plan was built for (structural: counted at
  /// build time from the wave's cell list, not from runtime consumption).
  size_t members = 0;

  /// The plan's inputs in the study driver's shape for one model. The
  /// family pointer is null when `model` was not seen at build time (the
  /// driver then resolves it per cell).
  exec::CellPlanInputs InputsFor(const std::string& model) const;
};

/// Relative cost rank of one cell for longest-processing-time-first wave
/// ordering: the scheduler submits a wave's fan-out in descending rank so
/// the expensive cells start first and the cheap ones fill the tail,
/// tightening the wave's makespan. Pure scheduling — results land in
/// id-indexed slots and failures are still reported in deterministic node
/// order, so the bytes cannot change. Mode-aware because the dominant cost
/// shifts: under the naive per-query kernels kNN tuning is the longest
/// pole; once the batched grid kernel absorbs it (shared/fused), GBDT
/// tuning is.
int CellCostRank(const CellKey& cell, ExecMode mode);

/// Builds and serves per-(dataset, seed) WavePlans for the cells of one
/// wave. The protocol mirrors the scheduler's wave loop:
///
///   PlanWave(k, cells)   — single-threaded, before the wave's fan-out
///   Consume(cell)        — from any worker, read-only, during the wave
///   EndWave()            — single-threaded, after the wave joins
///
/// Naive mode plans nothing (every cell rebuilds its own inputs — the
/// measurable baseline). A "plan_build" fault during one group's
/// materialization drops only that group's plan: its cells fall back to
/// the per-cell rebuild path and the run's bytes do not change.
///
/// Observability: each group build runs under a "sched"-category
/// "plan.build w<k> <dataset>" span, `sched.wave_plans_built` counts built
/// plans, and `sched.plan_reuse_hits` counts cells served by a plan.
class WavePlanner {
 public:
  using DatasetFn = std::function<
      Result<std::shared_ptr<const GeneratedDataset>>(const std::string&)>;

  /// `dataset_fn` resolves the shared dataset artifact (the scheduler's
  /// ArtifactStore-backed lookup); `seed` is the suite's study seed.
  WavePlanner(ExecMode mode, uint64_t seed, DatasetFn dataset_fn);

  /// Materializes one plan per dataset group of `cells` (the seed is fixed
  /// per suite, so the dataset name keys the group). Clears any previous
  /// wave's plans first.
  void PlanWave(size_t wave_index, const std::vector<CellKey>& cells);

  /// The plan serving `cell`, or null (naive mode, build fault, or an
  /// unplanned execution path). Counts a plan reuse hit when found.
  const WavePlan* Consume(const CellKey& cell);

  /// Drops the current wave's plans (their shared_ptr payloads stay alive
  /// in any CellPlanInputs still holding them).
  void EndWave();

  ExecMode mode() const { return mode_; }

 private:
  ExecMode mode_;
  uint64_t seed_;
  DatasetFn dataset_fn_;
  /// Current wave's plans, keyed by dataset name. Mutated only in
  /// PlanWave/EndWave (between fan-outs); read-only during a wave.
  std::map<std::string, WavePlan> plans_;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_WAVE_PLAN_H_
