#ifndef FAIRCLEAN_SCHED_SUITE_SPEC_H_
#define FAIRCLEAN_SCHED_SUITE_SPEC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "fairness/fairness_metrics.h"

namespace fairclean {
namespace sched {

/// One (dataset, sensitive attribute) pair of the single-attribute
/// analysis.
struct PairSpec {
  std::string dataset;
  std::string attribute;
};

/// The exact experiment scope of one error type, derived from the paper's
/// table denominators (DESIGN.md Section 4).
struct StudyScope {
  std::string error_type;
  std::vector<PairSpec> single_pairs;
  std::vector<std::string> intersectional_datasets;

  /// Distinct dataset names touched by this scope.
  std::vector<std::string> Datasets() const;
};

/// missing values: 6 single pairs (adult/folk/german), 3 intersectional.
StudyScope MissingScope();
/// outliers: 7 single pairs (adult/folk/credit/heart), 4 intersectional.
StudyScope OutlierScope();
/// mislabels: same 7 single pairs, 4 intersectional.
StudyScope MislabelScope();

/// Reference percentages of a paper table (row-major: fairness worse /
/// insignificant / better x accuracy worse / insignificant / better).
struct PaperTable {
  const char* label;
  double cells[3][3];
};

/// One measured-vs-paper impact table of a table unit.
struct TableSpec {
  bool intersectional;
  FairnessMetric metric;
  PaperTable reference;
};

/// Paper reference row of the per-model analysis (Table XIV percentages).
struct ModelReference {
  const char* model;
  double worse;
  double better;
  double both;
};

/// One schedulable unit of the suite: a table group over one error-type
/// scope, the per-model breakdown spanning all three scopes, or a
/// disparity figure.
struct SuiteUnit {
  enum class Kind { kTables, kModelTable, kFigure };

  std::string name;
  Kind kind = Kind::kTables;
  /// Bench heading, e.g. "Tables II-V: impact of auto-cleaning missing
  /// values".
  std::string heading;
  /// kTables: the scope whose cells feed this unit's aggregations.
  StudyScope scope;
  /// kTables: the measured-vs-paper tables, in print order.
  std::vector<TableSpec> tables;
  /// kModelTable: the paper's per-model reference rows (Table XIV), in
  /// print order.
  std::vector<ModelReference> model_references;
  /// kFigure: true for the intersectional analysis (Fig. 2).
  bool fig_intersectional = false;
  /// Units excluded from a default full run; selected only when a filter
  /// token names them (the CI "smoke" subset).
  bool only_on_filter = false;
};

/// A named collection of suite units.
struct SuiteSpec {
  std::string name;
  std::vector<SuiteUnit> units;
};

/// The full paper grid as one suite: Figures 1-2, Tables II-XIII (three
/// table units), Table XIV (model unit), plus the filter-only "smoke"
/// subset used by CI.
SuiteSpec PaperSuite();

/// One experiment cell of the grid: the unit of driver work and caching.
struct CellKey {
  std::string dataset;
  std::string error_type;
  std::string model;

  /// "<dataset>/<error_type>/<model>" — stable display and filter id.
  std::string Id() const;

  bool operator<(const CellKey& other) const;
  bool operator==(const CellKey& other) const;
};

/// The distinct experiment cells a unit consumes, in deterministic order
/// (scope dataset order x AllModelNames). The model unit spans the three
/// error-type scopes; figure units consume no cells.
std::vector<CellKey> UnitCells(const SuiteUnit& unit);

/// Comma-separated substring filter over unit names and cell/figure ids.
/// An empty filter selects every default unit. A token that matches a unit
/// name selects the whole unit (including only_on_filter units); a token
/// that matches a cell id narrows a unit to the matching cells, which makes
/// its table aggregations report as skipped-incomplete.
struct SuiteFilter {
  std::vector<std::string> tokens;

  static SuiteFilter Parse(const std::string& csv);

  bool Empty() const { return tokens.empty(); }
  /// Any token is a substring of `name`.
  bool MatchesName(const std::string& name) const;
};

/// Generates the named dataset with the canonical suite seed derivation
/// (seed * golden-ratio-odd + FNV-1a(name)) — the exact formula the benches
/// have always used, so every pre-existing driver cache stays valid.
Result<GeneratedDataset> MakeSuiteDataset(const std::string& name,
                                          uint64_t study_seed);

/// Content-address key of a generated dataset artifact. Generation is
/// deterministic given (name, study seed), so the key pins the bytes.
std::string DatasetArtifactKey(const std::string& name, uint64_t study_seed);

/// Content-address key of an experiment-cell artifact; mirrors the study
/// driver's cache-file naming so one (cell, scale) maps to one record.
std::string CellArtifactKey(const CellKey& cell, const StudyOptions& study);

/// Content-address key of a per-dataset disparity analysis (detector
/// outputs + G^2 rows). The figure-specific rng seed is part of the key:
/// Fig. 1 and Fig. 2 deliberately draw from distinct streams, so their
/// detector outputs are distinct artifacts by construction.
std::string DisparityArtifactKey(const std::string& dataset,
                                 bool intersectional, uint64_t study_seed);

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_SUITE_SPEC_H_
