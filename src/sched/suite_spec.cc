#include "sched/suite_spec.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <tuple>

#include "common/hash.h"
#include "common/strings.h"
#include "ml/tuning.h"

namespace fairclean {
namespace sched {

std::vector<std::string> StudyScope::Datasets() const {
  std::set<std::string> names;
  for (const PairSpec& pair : single_pairs) names.insert(pair.dataset);
  for (const std::string& name : intersectional_datasets) names.insert(name);
  return std::vector<std::string>(names.begin(), names.end());
}

StudyScope MissingScope() {
  StudyScope scope;
  scope.error_type = "missing_values";
  scope.single_pairs = {{"adult", "sex"},  {"adult", "race"},
                        {"folk", "sex"},   {"folk", "race"},
                        {"german", "sex"}, {"german", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german"};
  return scope;
}

StudyScope OutlierScope() {
  StudyScope scope;
  scope.error_type = "outliers";
  scope.single_pairs = {{"adult", "sex"}, {"adult", "race"},
                        {"folk", "sex"},  {"folk", "race"},
                        {"credit", "age"}, {"heart", "sex"},
                        {"heart", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german", "heart"};
  return scope;
}

StudyScope MislabelScope() {
  StudyScope scope = OutlierScope();
  scope.error_type = "mislabels";
  return scope;
}

namespace {

std::vector<TableSpec> StandardTables(const PaperTable references[4]) {
  // Print order of every table bench: single-PP, single-EO,
  // intersectional-PP, intersectional-EO.
  return {
      {false, FairnessMetric::kPredictiveParity, references[0]},
      {false, FairnessMetric::kEqualOpportunity, references[1]},
      {true, FairnessMetric::kPredictiveParity, references[2]},
      {true, FairnessMetric::kEqualOpportunity, references[3]},
  };
}

const PaperTable kMissingReferences[4] = {
    {"Table II: missing values, single-attribute, PP",
     {{3.7, 1.9, 16.7}, {5.6, 34.3, 7.4}, {3.7, 7.4, 19.4}}},
    {"Table III: missing values, single-attribute, EO",
     {{1.9, 15.7, 19.4}, {9.3, 25.9, 13.0}, {1.9, 1.9, 11.1}}},
    {"Table IV: missing values, intersectional, PP",
     {{0.0, 0.0, 5.6}, {3.7, 27.8, 11.1}, {3.7, 14.8, 33.3}}},
    {"Table V: missing values, intersectional, EO",
     {{0.0, 11.1, 11.1}, {7.4, 20.4, 22.2}, {0.0, 11.1, 16.7}}},
};

const PaperTable kOutlierReferences[4] = {
    {"Table VI: outliers, single-attribute, PP",
     {{21.2, 1.1, 1.6}, {21.2, 25.9, 14.3}, {5.3, 3.2, 6.3}}},
    {"Table VII: outliers, single-attribute, EO",
     {{28.0, 5.8, 14.8}, {15.9, 24.3, 7.4}, {3.7, 0.0, 0.0}}},
    {"Table VIII: outliers, intersectional, PP",
     {{14.8, 0.9, 0.9}, {28.7, 25.0, 8.3}, {4.6, 2.8, 13.9}}},
    {"Table IX: outliers, intersectional, EO",
     {{15.7, 0.9, 16.7}, {32.4, 26.9, 6.5}, {0.0, 0.9, 0.0}}},
};

const PaperTable kMislabelReferences[4] = {
    {"Table X: mislabels, single-attribute, PP",
     {{14.3, 14.3, 19.0}, {9.5, 0.0, 9.5}, {0.0, 0.0, 33.3}}},
    {"Table XI: mislabels, single-attribute, EO",
     {{0.0, 4.8, 0.0}, {0.0, 0.0, 14.3}, {23.8, 9.5, 47.6}}},
    {"Table XII: mislabels, intersectional, PP",
     {{25.0, 8.3, 33.3}, {0.0, 0.0, 0.0}, {0.0, 0.0, 33.3}}},
    {"Table XIII: mislabels, intersectional, EO",
     {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {25.0, 8.3, 66.7}}},
};

}  // namespace

SuiteSpec PaperSuite() {
  SuiteSpec spec;
  spec.name = "paper";

  SuiteUnit fig1;
  fig1.name = "fig1";
  fig1.kind = SuiteUnit::Kind::kFigure;
  fig1.heading =
      "Figure 1: single-attribute disparity of error-detector flag rates";
  fig1.fig_intersectional = false;
  spec.units.push_back(fig1);

  SuiteUnit fig2;
  fig2.name = "fig2";
  fig2.kind = SuiteUnit::Kind::kFigure;
  fig2.heading =
      "Figure 2: intersectional disparity of error-detector flag rates";
  fig2.fig_intersectional = true;
  spec.units.push_back(fig2);

  SuiteUnit missing;
  missing.name = "tables_missing";
  missing.heading = "Tables II-V: impact of auto-cleaning missing values";
  missing.scope = MissingScope();
  missing.tables = StandardTables(kMissingReferences);
  spec.units.push_back(missing);

  SuiteUnit outliers;
  outliers.name = "tables_outliers";
  outliers.heading = "Tables VI-IX: impact of auto-cleaning outliers";
  outliers.scope = OutlierScope();
  outliers.tables = StandardTables(kOutlierReferences);
  spec.units.push_back(outliers);

  SuiteUnit mislabels;
  mislabels.name = "tables_mislabels";
  mislabels.heading = "Tables X-XIII: impact of auto-cleaning label errors";
  mislabels.scope = MislabelScope();
  mislabels.tables = StandardTables(kMislabelReferences);
  spec.units.push_back(mislabels);

  SuiteUnit models;
  models.name = "table_models";
  models.kind = SuiteUnit::Kind::kModelTable;
  models.heading =
      "Table XIV: impact of auto-cleaning per ML model "
      "(single-attribute analysis)";
  models.model_references = {{"xgboost", 32.1, 17.0, 1.9},
                             {"knn", 31.6, 12.7, 11.3},
                             {"log-reg", 36.3, 21.2, 16.0}};
  spec.units.push_back(models);

  // CI smoke subset: one dataset with every missing-values cell, aggregated
  // against the full-scope paper references (the shape check is
  // informational at this scale). Selected only via --filter smoke.
  SuiteUnit smoke;
  smoke.name = "smoke";
  smoke.heading = "Smoke subset: german missing values";
  smoke.scope.error_type = "missing_values";
  smoke.scope.single_pairs = {{"german", "sex"}, {"german", "age"}};
  smoke.scope.intersectional_datasets = {"german"};
  smoke.tables = StandardTables(kMissingReferences);
  smoke.only_on_filter = true;
  spec.units.push_back(smoke);

  return spec;
}

std::string CellKey::Id() const {
  return dataset + "/" + error_type + "/" + model;
}

bool CellKey::operator<(const CellKey& other) const {
  return std::tie(dataset, error_type, model) <
         std::tie(other.dataset, other.error_type, other.model);
}

bool CellKey::operator==(const CellKey& other) const {
  return dataset == other.dataset && error_type == other.error_type &&
         model == other.model;
}

std::vector<CellKey> UnitCells(const SuiteUnit& unit) {
  std::vector<CellKey> cells;
  auto add_scope = [&cells](const StudyScope& scope) {
    for (const std::string& dataset : scope.Datasets()) {
      for (const std::string& model : AllModelNames()) {
        cells.push_back({dataset, scope.error_type, model});
      }
    }
  };
  switch (unit.kind) {
    case SuiteUnit::Kind::kTables:
      add_scope(unit.scope);
      break;
    case SuiteUnit::Kind::kModelTable:
      add_scope(MissingScope());
      add_scope(OutlierScope());
      add_scope(MislabelScope());
      break;
    case SuiteUnit::Kind::kFigure:
      break;
  }
  return cells;
}

SuiteFilter SuiteFilter::Parse(const std::string& csv) {
  SuiteFilter filter;
  std::string token;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) filter.tokens.push_back(token);
      token.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      token.push_back(c);
    }
  }
  return filter;
}

bool SuiteFilter::MatchesName(const std::string& name) const {
  for (const std::string& token : tokens) {
    if (name.find(token) != std::string::npos) return true;
  }
  return false;
}

Result<GeneratedDataset> MakeSuiteDataset(const std::string& name,
                                          uint64_t study_seed) {
  // Dataset synthesis is decoupled from the runner's per-repeat seeds but
  // still derives from the global study seed.
  Rng rng(study_seed * 0x9e3779b97f4a7c15ULL + Fnv1a64(name));
  return MakeDataset(name, 0, &rng);
}

std::string DatasetArtifactKey(const std::string& name, uint64_t study_seed) {
  return StrFormat("dataset:%s:s%llu", name.c_str(),
                   static_cast<unsigned long long>(study_seed));
}

std::string CellArtifactKey(const CellKey& cell, const StudyOptions& study) {
  return StrFormat("cell:%s:%s:%s:s%llu:n%zu:r%zu:f%zu", cell.dataset.c_str(),
                   cell.error_type.c_str(), cell.model.c_str(),
                   static_cast<unsigned long long>(study.seed),
                   study.sample_size, study.num_repeats, study.cv_folds);
}

std::string DisparityArtifactKey(const std::string& dataset,
                                 bool intersectional, uint64_t study_seed) {
  // Seed offsets 17/19 are the historical Fig. 1 / Fig. 2 rng streams.
  return StrFormat("disparity:%s:%s:s%llu", dataset.c_str(),
                   intersectional ? "intersectional" : "single",
                   static_cast<unsigned long long>(
                       study_seed + (intersectional ? 19 : 17)));
}

}  // namespace sched
}  // namespace fairclean
