#ifndef FAIRCLEAN_SCHED_SHARD_H_
#define FAIRCLEAN_SCHED_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace sched {

/// How a suite run coordinates with sibling processes over one cache dir
/// (DESIGN.md Section 16).
enum class ShardMode {
  kNone,    ///< single process: the historical RunSuite path
  kStatic,  ///< --shard i/N: deterministic per-wave partition, no claims
  kClaim,   ///< --shard-claim i/N: work stealing through lease records
};

const char* ShardModeName(ShardMode mode);

/// One process's slice of a sharded run. `index` is 0-based internally;
/// the CLI syntax "i/N" is 1-based (shard 1 of 4 = index 0).
struct ShardSpec {
  ShardMode mode = ShardMode::kNone;
  size_t index = 0;
  size_t count = 1;

  bool active() const { return mode != ShardMode::kNone; }
  /// "shard-1/4" (1-based), used for trace tags and claim owner labels.
  std::string Label() const;
};

/// Parses the 1-based "i/N" CLI syntax (i in [1, N], N >= 1) into a spec
/// with the given mode.
Result<ShardSpec> ParseShardSpec(ShardMode mode, const std::string& text);

/// The positions of `item_count` wave items owned by static shard
/// `shard_index` of `shard_count`: position j belongs to shard
/// j % shard_count. Pure and order-preserving, so the N shards' index sets
/// form a disjoint exact cover of [0, item_count) — the property test pins
/// this for every wave of the paper graph.
std::vector<size_t> StaticShardIndices(size_t item_count, size_t shard_index,
                                       size_t shard_count);

/// Lease-store key of one cell's claim. Distinct namespace from cache
/// records on purpose: claims live in the LeaseStore (flat files under
/// <cache_dir>/claims), never in the BlobStore or ArtifactStore, so they
/// cannot leak into artifact-reuse counters or cache-byte comparisons.
std::string ClaimKeyFor(const CellKey& cell);

/// BlobStore key of a cell's persisted classification (written next to the
/// cell's cache record, read back on cache hits so fresh, warm, resumed,
/// and merged runs report identical classes).
std::string ClassKeyFor(const std::string& cache_key);

/// Mass-run classification of one produced cell, precedence highest first:
/// a stolen cell stays stolen however it finished; a cell that ever hit
/// the time budget stays budget-exceeded until a later attempt completes
/// it; skips outrank retries outrank a clean pass.
enum class CellClass {
  kStolen = 0,
  kBudgetExceeded = 1,
  kSkipped = 2,
  kDegenerateRetry = 3,
  kPass = 4,
};

/// Stable wire name: "stolen", "budget_exceeded", "skipped",
/// "degenerate_retry", "pass".
const char* CellClassName(CellClass cls);
Result<CellClass> CellClassFromName(const std::string& name);

/// Per-class cell totals for the report's "classifier" block.
struct ClassifierCounts {
  uint64_t pass = 0;
  uint64_t degenerate_retry = 0;
  uint64_t skipped = 0;
  uint64_t budget_exceeded = 0;
  uint64_t stolen = 0;

  void Add(CellClass cls);
  /// {"pass":N,"degenerate_retry":N,"skipped":N,"budget_exceeded":N,
  ///  "stolen":N} — fixed key order, deterministic bytes.
  std::string ToJson() const;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_SHARD_H_
