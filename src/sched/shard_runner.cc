// Shard execution layer of the suite scheduler (DESIGN.md Section 16):
// RunSuiteShard produces this process's slice of the cell grid — static
// per-wave partition or lease-based work stealing — and RunSuiteMerge
// assembles the merged report without stitching: it validates the
// per-shard partials against the shared cache, then executes the full
// graph over the warm cache, which by the fresh==warm identity contract
// yields bytes identical to a single-process run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sched/suite_runner.h"

namespace fairclean {
namespace sched {

namespace {

std::string JsonString(const std::string& text) {
  return "\"" + obs::JsonEscape(text) + "\"";
}

constexpr char kMergeClaimKey[] = "__merge__";

/// Backoff between claim scans when every remaining cell of a wave is held
/// by a live sibling: short enough to notice a freed or expired lease
/// quickly, long enough not to hammer the claims directory.
constexpr std::chrono::milliseconds kClaimScanBackoff(25);

}  // namespace

std::string SuiteScheduler::PartialReportPath(const std::string& report_path,
                                              const ShardSpec& shard) {
  return StrFormat("%s.shard%zuof%zu", report_path.c_str(), shard.index + 1,
                   shard.count);
}

std::string SuiteScheduler::CellCacheKey(const CellKey& cell) const {
  exec::StudyDriverOptions driver_options;
  driver_options.study = options_.study;
  return exec::StudyDriver::CacheKey(driver_options, cell.dataset,
                                     cell.error_type, cell.model);
}

bool SuiteScheduler::IsStolenCell(const CellKey& cell) const {
  std::lock_guard<std::mutex> lock(shard_mutex_);
  return stolen_cells_.count(cell.Id()) != 0;
}

void SuiteScheduler::RefreshCellLease(const CellKey& cell) {
  if (lease_store_ == nullptr) return;
  store::LeaseToken token;
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    auto it = claim_tokens_.find(cell.Id());
    if (it == claim_tokens_.end()) return;
    token = it->second;
  }
  Status refreshed = lease_store_->Refresh(token, options_.shard_lease_s);
  std::lock_guard<std::mutex> lock(shard_mutex_);
  if (refreshed.ok()) {
    ++shard_counters_.lease_refreshes;
    metrics_.GetCounter("sched.shard.lease_refreshes")->Increment();
  } else {
    // The claim was stolen (our lease lapsed) or the file vanished. The
    // computation stays byte-valid either way — finish it; worst case the
    // thief duplicates work it would have cache-hit a moment later.
    ++shard_counters_.lease_lost;
    metrics_.GetCounter("sched.shard.lease_lost")->Increment();
    FC_LOG_WARN("sched", "lease refresh lost for %s: %s",
                cell.Id().c_str(), refreshed.ToString().c_str());
  }
}

Status SuiteScheduler::ProduceWaveCells(const SuiteSpec& spec,
                                        const ExperimentGraph& graph,
                                        size_t wave_index,
                                        const std::vector<size_t>& ids) {
  if (ids.empty()) return Status::OK();
  std::vector<CellKey> wave_cells;
  wave_cells.reserve(ids.size());
  for (size_t id : ids) wave_cells.push_back(graph.nodes()[id].cell);
  current_wave_ = wave_index;
  planner_.PlanWave(wave_index, wave_cells);
  // Same LPT submission discipline as ExecuteGraph: longest-first with
  // ascending node id as the deterministic tiebreak.
  std::vector<size_t> order = ids;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ra = CellCostRank(graph.nodes()[a].cell, options_.study.exec_mode);
    int rb = CellCostRank(graph.nodes()[b].cell, options_.study.exec_mode);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  std::vector<Status> statuses =
      RunIndexed(pool_.get(), order.size(), [&](size_t i) {
        return InvokeWithStatusCapture(
            [&, i] { return RunNode(spec, graph, order[i]); });
      });
  planner_.EndWave();
  current_wave_ = kNoWave;
  size_t failed_pos = order.size();
  for (size_t i = 0; i < order.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (failed_pos == order.size() || order[i] < order[failed_pos]) {
      failed_pos = i;
    }
  }
  if (failed_pos != order.size()) return statuses[failed_pos];
  return Status::OK();
}

Status SuiteScheduler::RunClaimWave(const SuiteSpec& spec,
                                    const ExperimentGraph& graph,
                                    size_t wave_index,
                                    const std::vector<size_t>& cell_ids,
                                    std::vector<size_t>* produced_ids) {
  FC_ASSIGN_OR_RETURN(std::shared_ptr<store::BlobStore> blob, SharedStore());
  const std::string owner = options_.shard.Label();
  std::vector<size_t> pending = cell_ids;
  while (!pending.empty()) {
    // Claim exactly one pool-width of cells per scan, then produce and
    // rescan. Greedy one-batch-at-a-time claiming is what makes skewed
    // grids scale: cell costs vary by an order of magnitude (xgboost vs
    // log-reg), so any coarser chunk risks one process batching several
    // expensive cells back to back while its siblings drain the cheap
    // remainder and idle. Claims are one flock'd file each — microseconds
    // against cells that take seconds — so the extra scans are free.
    const size_t chunk = width_;
    std::vector<size_t> batch;
    std::vector<size_t> next_pending;
    bool saw_conflict = false;
    for (size_t id : pending) {
      const CellKey& cell = graph.nodes()[id].cell;
      if (batch.size() >= chunk) {
        next_pending.push_back(id);
        continue;
      }
      // Done marker = the cell's cache record exists. A sibling (or a
      // previous incarnation of this shard) finished it; the merge pass
      // will cache-hit it, so it belongs in nobody's new partial.
      FC_ASSIGN_OR_RETURN(bool cached, blob->Contains(CellCacheKey(cell)));
      if (cached) {
        std::lock_guard<std::mutex> lock(shard_mutex_);
        ++shard_counters_.cache_skips;
        metrics_.GetCounter("sched.shard.cache_skips")->Increment();
        continue;
      }
      Result<store::LeaseToken> token = lease_store_->Acquire(
          ClaimKeyFor(cell), owner, options_.shard_lease_s);
      if (!token.ok()) {
        if (token.status().code() == StatusCode::kUnavailable) {
          // A live sibling inside its lease holds this cell.
          {
            std::lock_guard<std::mutex> lock(shard_mutex_);
            ++shard_counters_.claim_conflicts;
            metrics_.GetCounter("sched.shard.claim_conflicts")->Increment();
          }
          saw_conflict = true;
          next_pending.push_back(id);
          continue;
        }
        return token.status();
      }
      // Re-check the done marker now that the claim is held: a sibling
      // may have produced the cell and released its claim in the window
      // between the Contains probe above and this Acquire. Producers
      // write the cache record strictly before releasing, so under the
      // claim this check is authoritative and closes the race.
      FC_ASSIGN_OR_RETURN(bool now_cached,
                          blob->Contains(CellCacheKey(cell)));
      if (now_cached) {
        Status released = lease_store_->Release(*token);
        if (!released.ok()) {
          FC_LOG_WARN("sched", "claim release failed for %s: %s",
                      cell.Id().c_str(), released.ToString().c_str());
        }
        std::lock_guard<std::mutex> lock(shard_mutex_);
        ++shard_counters_.cache_skips;
        metrics_.GetCounter("sched.shard.cache_skips")->Increment();
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(shard_mutex_);
        claim_tokens_[cell.Id()] = *token;
        if (token->stolen) {
          // Dead or expired owner: we take over. Its journal (if any)
          // lives in the shared cache dir, so ProduceCell resumes the
          // partial repeats instead of recomputing them.
          stolen_cells_.insert(cell.Id());
          ++shard_counters_.steals;
          metrics_.GetCounter("sched.shard.steals")->Increment();
          FC_LOG_INFO("sched", "%s stole claim for %s", owner.c_str(),
                      cell.Id().c_str());
        }
      }
      batch.push_back(id);
    }
    if (!batch.empty()) {
      Status produced = ProduceWaveCells(spec, graph, wave_index, batch);
      for (size_t id : batch) {
        const CellKey& cell = graph.nodes()[id].cell;
        store::LeaseToken token;
        bool have_token = false;
        {
          std::lock_guard<std::mutex> lock(shard_mutex_);
          auto it = claim_tokens_.find(cell.Id());
          if (it != claim_tokens_.end()) {
            token = it->second;
            claim_tokens_.erase(it);
            have_token = true;
          }
        }
        if (have_token) {
          Status released = lease_store_->Release(token);
          if (!released.ok()) {
            FC_LOG_WARN("sched", "claim release failed for %s: %s",
                        cell.Id().c_str(), released.ToString().c_str());
          }
        }
      }
      FC_RETURN_IF_ERROR(produced);
      {
        std::lock_guard<std::mutex> lock(shard_mutex_);
        shard_counters_.produced += batch.size();
        metrics_.GetCounter("sched.shard.cells_produced")
            ->Increment(batch.size());
      }
      produced_ids->insert(produced_ids->end(), batch.begin(), batch.end());
    } else if (saw_conflict) {
      // Every remaining cell is held by a live sibling: wait for it to
      // finish (its cache record appears) or for its lease to expire
      // (then we steal).
      std::this_thread::sleep_for(kClaimScanBackoff);
    }
    pending = std::move(next_pending);
  }
  return Status::OK();
}

Status SuiteScheduler::WritePartialReport(
    const SuiteSpec& spec, const ExperimentGraph& graph,
    const SuiteFilter& filter, const std::vector<size_t>& produced_ids)
    const {
  std::vector<size_t> ids = produced_ids;
  std::sort(ids.begin(), ids.end());
  ShardCounters counters;
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    counters = shard_counters_;
  }
  ClassifierCounts classifier;
  std::string cells = "[";
  bool first = true;
  for (size_t id : ids) {
    auto artifact =
        std::static_pointer_cast<const CellArtifact>(node_values_[id]);
    if (artifact == nullptr) continue;
    classifier.Add(artifact->cell_class);
    cells += StrFormat(
        "%s{\"id\":%s,\"cache_file\":%s,\"sha256\":%s,\"class\":%s,"
        "\"repeats\":%zu}",
        first ? "" : ",", JsonString(graph.nodes()[id].label).c_str(),
        JsonString(artifact->cache_file).c_str(),
        JsonString(artifact->sha256).c_str(),
        JsonString(CellClassName(artifact->cell_class)).c_str(),
        artifact->result.dirty.accuracy.size());
    first = false;
  }
  cells += "]";

  std::string filter_text;
  for (size_t i = 0; i < filter.tokens.size(); ++i) {
    if (i) filter_text += ",";
    filter_text += filter.tokens[i];
  }

  std::string out = "{";
  out += StrFormat(
      "\"shard\":{\"mode\":%s,\"index\":%zu,\"count\":%zu,\"label\":%s}",
      JsonString(ShardModeName(options_.shard.mode)).c_str(),
      options_.shard.index + 1, options_.shard.count,
      JsonString(options_.shard.Label()).c_str());
  out += ",\"suite\":" + JsonString(spec.name);
  out += ",\"filter\":" + JsonString(filter_text);
  out += StrFormat(
      ",\"counters\":{\"produced\":%llu,\"steals\":%llu,"
      "\"claim_conflicts\":%llu,\"cache_skips\":%llu,"
      "\"lease_refreshes\":%llu,\"lease_lost\":%llu}",
      static_cast<unsigned long long>(counters.produced),
      static_cast<unsigned long long>(counters.steals),
      static_cast<unsigned long long>(counters.claim_conflicts),
      static_cast<unsigned long long>(counters.cache_skips),
      static_cast<unsigned long long>(counters.lease_refreshes),
      static_cast<unsigned long long>(counters.lease_lost));
  out += ",\"classifier\":" + classifier.ToJson();
  out += ",\"cells\":" + cells;
  out += "}\n";

  const std::string path =
      PartialReportPath(options_.report_path, options_.shard);
  FC_RETURN_IF_ERROR(WriteFileAtomic(path, out));
  FC_LOG_INFO("sched", "%s: partial report written to %s (%llu cells)",
              options_.shard.Label().c_str(), path.c_str(),
              static_cast<unsigned long long>(counters.produced));
  return Status::OK();
}

Status SuiteScheduler::RunSuiteShard(const SuiteSpec& spec,
                                     const SuiteFilter& filter) {
  const ShardSpec& shard = options_.shard;
  if (!shard.active()) {
    return Status::InvalidArgument(
        "RunSuiteShard requires an active shard spec (--shard or "
        "--shard-claim)");
  }
  if (options_.cache_dir.empty()) {
    return Status::InvalidArgument(
        "sharded runs need a cache dir: the shared cache is the "
        "coordination plane");
  }
  if (options_.store_backend != "flat") {
    return Status::InvalidArgument(
        "sharded runs require the flat store backend: the paged backend "
        "has a single writer per process");
  }
  if (options_.report_path.empty()) {
    return Status::InvalidArgument(
        "sharded runs need a report path for the per-shard partial report");
  }
  obs::Tracer::SetProcessLabel(shard.Label());
  obs::TraceSpan span("sched", [&] {
    return "suite-shard " + spec.name + " " + shard.Label();
  });
  if (shard.mode == ShardMode::kClaim && lease_store_ == nullptr) {
    lease_store_ =
        std::make_unique<store::LeaseStore>(options_.cache_dir + "/claims");
  }

  ExperimentGraph graph = ExperimentGraph::Build(spec, filter);
  FC_LOG_INFO("sched", "%s %s: %zu cells across the graph, width %zu",
              shard.Label().c_str(), ShardModeName(shard.mode),
              graph.CountKind(NodeKind::kCell), width_);
  node_values_.assign(graph.nodes().size(), nullptr);

  std::vector<size_t> produced_ids;
  const std::vector<std::vector<size_t>> waves = graph.Waves();
  for (size_t w = 0; w < waves.size(); ++w) {
    std::vector<size_t> cell_ids;
    for (size_t id : waves[w]) {
      if (graph.nodes()[id].kind == NodeKind::kCell) cell_ids.push_back(id);
    }
    if (cell_ids.empty()) continue;
    if (shard.mode == ShardMode::kStatic) {
      std::vector<size_t> mine;
      for (size_t pos :
           StaticShardIndices(cell_ids.size(), shard.index, shard.count)) {
        mine.push_back(cell_ids[pos]);
      }
      FC_RETURN_IF_ERROR(ProduceWaveCells(spec, graph, w, mine));
      {
        std::lock_guard<std::mutex> lock(shard_mutex_);
        shard_counters_.produced += mine.size();
        metrics_.GetCounter("sched.shard.cells_produced")
            ->Increment(mine.size());
      }
      produced_ids.insert(produced_ids.end(), mine.begin(), mine.end());
    } else {
      FC_RETURN_IF_ERROR(
          RunClaimWave(spec, graph, w, cell_ids, &produced_ids));
    }
  }

  FC_RETURN_IF_ERROR(WritePartialReport(spec, graph, filter, produced_ids));

  if (shard.mode == ShardMode::kClaim) {
    // Merge election: a claim shard only reaches this point once every
    // cell of every wave has a cache record (its scan loop cannot finish
    // otherwise), so any finisher could merge — the __merge__ lease picks
    // one. Re-merging after a release would be harmless (the merged
    // report is byte-identical by construction), just wasted work.
    Result<store::LeaseToken> merge = lease_store_->Acquire(
        kMergeClaimKey, shard.Label(), options_.shard_lease_s);
    if (merge.ok()) {
      Status merged = RunSuiteMerge(spec, filter);
      Status released = lease_store_->Release(*merge);
      if (!released.ok()) {
        FC_LOG_WARN("sched", "merge claim release failed: %s",
                    released.ToString().c_str());
      }
      FC_RETURN_IF_ERROR(merged);
    } else if (merge.status().code() == StatusCode::kUnavailable) {
      FC_LOG_INFO("sched", "%s: merge already claimed by a sibling shard",
                  shard.Label().c_str());
    } else {
      return merge.status();
    }
  }
  return Status::OK();
}

Status SuiteScheduler::RunSuiteMerge(const SuiteSpec& spec,
                                     const SuiteFilter& filter) {
  obs::TraceSpan span("sched", "suite-merge");
  if (!options_.cache_dir.empty() && !options_.report_path.empty()) {
    // Cross-check every partial report against the shared cache before
    // trusting it: a cell whose recorded sha256 no longer matches the
    // cache bytes means two shards ran inconsistent configurations (or
    // the cache was tampered with) — merging would silently bless it.
    FC_ASSIGN_OR_RETURN(std::shared_ptr<store::BlobStore> blob,
                        SharedStore());
    namespace fs = std::filesystem;
    fs::path report(options_.report_path);
    fs::path dir = report.parent_path();
    if (dir.empty()) dir = ".";
    const std::string prefix = report.filename().string() + ".shard";
    std::vector<fs::path> partials;
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) partials.push_back(entry.path());
    }
    std::sort(partials.begin(), partials.end());
    size_t validated = 0;
    for (const fs::path& path : partials) {
      FC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path.string()));
      obs::JsonValue parsed;
      std::string error;
      if (!obs::JsonValue::Parse(text, &parsed, &error)) {
        return Status::InvalidArgument("malformed partial report " +
                                       path.string() + ": " + error);
      }
      const obs::JsonValue* cells = parsed.Find("cells");
      if (cells == nullptr || cells->type != obs::JsonValue::Type::kArray) {
        return Status::InvalidArgument("partial report " + path.string() +
                                       " has no cells array");
      }
      for (const obs::JsonValue& cell : cells->array_items) {
        const std::string cache_file = cell.StringOr("cache_file", "");
        const std::string claimed = cell.StringOr("sha256", "");
        if (cache_file.empty() || claimed.empty()) {
          return Status::InvalidArgument("partial report " + path.string() +
                                         " lists a cell without "
                                         "cache_file/sha256");
        }
        FC_ASSIGN_OR_RETURN(std::string bytes, blob->Read(cache_file));
        const std::string actual = Sha256Hex(bytes);
        if (actual != claimed) {
          return Status::Internal(
              StrFormat("merge validation failed: %s claims sha256 %s for "
                        "%s but the shared cache holds %s",
                        path.string().c_str(), claimed.c_str(),
                        cache_file.c_str(), actual.c_str()));
        }
        ++validated;
      }
    }
    FC_LOG_INFO("sched",
                "merge: %zu partial reports validated (%zu cell records)",
                partials.size(), validated);
  }
  // The merge itself is a full-graph run over the warm cache: every cell
  // is a cache hit, and fresh==warm byte identity makes the merged report
  // identical to a single-process run. No stitching, no partial-order
  // reasoning — the cache is the merge.
  return RunSuite(spec, filter);
}

}  // namespace sched
}  // namespace fairclean
