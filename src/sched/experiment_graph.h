#ifndef FAIRCLEAN_SCHED_EXPERIMENT_GRAPH_H_
#define FAIRCLEAN_SCHED_EXPERIMENT_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace sched {

/// Node kinds of the suite DAG, in dependency order: dataset artifacts feed
/// experiment cells and figure analyses, which feed table aggregations.
enum class NodeKind { kDataset, kCell, kFigure, kTable, kModelTable };

const char* NodeKindName(NodeKind kind);

/// One node of the suite DAG. Payload fields are kind-specific.
struct GraphNode {
  size_t id = 0;
  NodeKind kind = NodeKind::kDataset;
  /// Stable display/filter id: "dataset/adult", "adult/outliers/knn",
  /// "fig1/adult", "tables_missing/Table II...".
  std::string label;
  std::vector<size_t> deps;

  std::string dataset;          ///< kDataset / kFigure
  bool intersectional = false;  ///< kFigure
  CellKey cell;                 ///< kCell
  size_t unit_index = 0;        ///< kFigure / kTable / kModelTable
  size_t table_index = 0;       ///< kTable: index into unit.tables
};

/// The paper grid as an explicit DAG: dataset and experiment-cell nodes are
/// deduplicated across units (content addressing at the graph level — a
/// cell consumed by both its table unit and the model unit is one node),
/// so building the graph for the whole suite yields each shared artifact
/// exactly once. Construction is deterministic given (spec, filter); node
/// ids are creation-ordered.
class ExperimentGraph {
 public:
  static ExperimentGraph Build(const SuiteSpec& spec,
                               const SuiteFilter& filter);

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  /// Indices into spec.units of the selected units, in spec order.
  const std::vector<size_t>& selected_units() const { return selected_; }
  /// Unit indices whose cell set was narrowed by the filter (their table
  /// aggregations cannot be complete).
  const std::vector<size_t>& narrowed_units() const { return narrowed_; }

  size_t CountKind(NodeKind kind) const;

  /// Topological waves (Kahn levels): wave k holds every node whose longest
  /// dependency chain has length k, ids ascending within a wave. Nodes of
  /// one wave never depend on each other, so a wave can execute with full
  /// parallelism; waves execute in order.
  std::vector<std::vector<size_t>> Waves() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<size_t> selected_;
  std::vector<size_t> narrowed_;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_EXPERIMENT_GRAPH_H_
