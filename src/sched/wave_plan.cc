#include "sched/wave_plan.h"

#include <utility>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {
namespace sched {

namespace {

obs::Counter* PlansBuiltCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("sched.wave_plans_built");
  return counter;
}

obs::Counter* ReuseHitsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("sched.plan_reuse_hits");
  return counter;
}

}  // namespace

int CellCostRank(const CellKey& cell, ExecMode mode) {
  if (cell.model == "xgboost") return 30;
  if (cell.model == "knn") return mode == ExecMode::kNaive ? 40 : 20;
  return 10;  // log-reg and anything unknown: cheap, fills the tail
}

exec::CellPlanInputs WavePlan::InputsFor(const std::string& model) const {
  exec::CellPlanInputs inputs;
  inputs.groups = groups;
  auto it = families.find(model);
  if (it != families.end()) inputs.family = it->second;
  return inputs;
}

WavePlanner::WavePlanner(ExecMode mode, uint64_t seed, DatasetFn dataset_fn)
    : mode_(mode), seed_(seed), dataset_fn_(std::move(dataset_fn)) {}

void WavePlanner::PlanWave(size_t wave_index,
                           const std::vector<CellKey>& cells) {
  plans_.clear();
  // Naive mode is the deliberately unshared baseline: every cell rebuilds
  // its dataset, groups, and family itself.
  if (mode_ == ExecMode::kNaive || cells.empty()) return;

  // Group the wave's cells by dataset (the suite seed is fixed per run, so
  // (dataset, seed) groups collapse to dataset groups) and count members
  // structurally from the wave's cell list.
  std::map<std::string, std::vector<const CellKey*>> groups;
  for (const CellKey& cell : cells) {
    groups[cell.dataset].push_back(&cell);
  }

  for (const auto& [dataset, members] : groups) {
    obs::TraceSpan span("sched", [&, wave_index] {
      return StrFormat("plan.build w%zu %s", wave_index, dataset.c_str());
    });
    // Fault containment: a fired "plan_build" (or a dataset/family
    // resolution failure) drops this group's plan only. Its cells fall
    // back to the per-cell rebuild path and still produce identical
    // bytes — the plan is an accelerator, never a correctness dependency.
    Status injected = FaultInjector::Global().Inject("plan_build");
    if (!injected.ok()) {
      FC_LOG_WARN("sched", "plan build fault for wave %zu group %s: %s",
                  wave_index, dataset.c_str(), injected.ToString().c_str());
      continue;
    }
    Result<std::shared_ptr<const GeneratedDataset>> data =
        dataset_fn_(dataset);
    if (!data.ok()) {
      FC_LOG_WARN("sched", "plan build for %s failed (%s); cells rebuild",
                  dataset.c_str(), data.status().ToString().c_str());
      continue;
    }
    WavePlan plan;
    plan.dataset = dataset;
    plan.seed = seed_;
    plan.data = *data;
    plan.groups = std::make_shared<const std::vector<GroupDefinition>>(
        GroupDefinitionsFor(plan.data->spec));
    bool families_ok = true;
    for (const CellKey* member : members) {
      if (plan.families.count(member->model) != 0) continue;
      Result<TunedModelFamily> family =
          ModelFamilyByName(member->model, mode_);
      if (!family.ok()) {
        FC_LOG_WARN("sched", "plan build for %s: unknown model %s (%s)",
                    dataset.c_str(), member->model.c_str(),
                    family.status().ToString().c_str());
        families_ok = false;
        break;
      }
      plan.families.emplace(
          member->model,
          std::make_shared<const TunedModelFamily>(std::move(*family)));
    }
    if (!families_ok) continue;
    plan.members = members.size();
    PlansBuiltCounter()->Increment();
    plans_.emplace(dataset, std::move(plan));
  }
}

const WavePlan* WavePlanner::Consume(const CellKey& cell) {
  auto it = plans_.find(cell.dataset);
  if (it == plans_.end()) return nullptr;
  ReuseHitsCounter()->Increment();
  return &it->second;
}

void WavePlanner::EndWave() { plans_.clear(); }

}  // namespace sched
}  // namespace fairclean
