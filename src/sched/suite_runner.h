#ifndef FAIRCLEAN_SCHED_SUITE_RUNNER_H_
#define FAIRCLEAN_SCHED_SUITE_RUNNER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/disparity.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "exec/study_driver.h"
#include "obs/metrics.h"
#include "sched/artifact_store.h"
#include "sched/experiment_graph.h"
#include "sched/shard.h"
#include "sched/suite_spec.h"
#include "sched/wave_plan.h"
#include "store/lease.h"

namespace fairclean {
namespace sched {

/// EX_TEMPFAIL: the run stopped at its time budget with resumable state.
constexpr int kExitResumable = 75;

/// Suite-wide options: study scale, the driver's fault-tolerance knobs, and
/// the suite-level fan-out width. Resolved ONCE (SuiteOptionsFromEnv) and
/// threaded through every cell, so a mid-run environment change cannot
/// split one suite across inconsistent knobs.
struct SuiteOptions {
  StudyOptions study;
  /// Directory for cached experiment records ("" disables caching).
  std::string cache_dir = "fairclean_cache";
  /// Extra attempts per degenerate repeat before it is skipped.
  size_t max_retries = 2;
  /// Soft wall-clock budget in seconds for the whole suite (<= 0:
  /// unlimited); on exhaustion the suite checkpoints and reports a
  /// resumable failure (exit 75).
  double time_budget_s = 0.0;
  /// Worker threads for the suite-level experiment fan-out (0:
  /// FAIRCLEAN_THREADS, whose own default is hardware_concurrency; 1:
  /// sequential). Results are byte-identical across widths.
  size_t threads = 0;
  /// Where RunSuite writes the merged JSON report ("" keeps it in memory
  /// only; see SuiteScheduler::report_json()).
  std::string report_path;
  /// Artifact-store backend under cache_dir: "flat" (one file per record,
  /// the historical layout) or "paged" (single crash-safe pages file, see
  /// DESIGN.md Section 11). Reports and cache-record fingerprints are
  /// byte-identical across backends.
  std::string store_backend = "flat";
  /// Page-cache capacity of the paged backend (FAIRCLEAN_STORE_CACHE_PAGES).
  size_t store_cache_pages = 256;
  /// Per-record compression in the paged backend (FAIRCLEAN_STORE_COMPRESS).
  bool store_compress = false;
  /// This process's slice of a multi-process run (--shard / --shard-claim;
  /// inactive by default). Sharding requires a non-empty cache_dir on a
  /// flat backend: the shared cache IS the coordination plane.
  ShardSpec shard;
  /// Claim-lease duration in seconds (FAIRCLEAN_SHARD_LEASE_S). A claim
  /// whose owner neither finishes nor refreshes (each journal checkpoint
  /// refreshes) within this window becomes stealable.
  double shard_lease_s = 30.0;
};

/// The bench-scale defaults (sample 3500, 16 repeats, 3 folds, holdout
/// 0.3, seed 42) overridable via FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS /
/// FAIRCLEAN_FOLDS / FAIRCLEAN_SEED / FAIRCLEAN_EXEC_MODE /
/// FAIRCLEAN_CACHE_DIR / FAIRCLEAN_MAX_RETRIES / FAIRCLEAN_TIME_BUDGET_S /
/// FAIRCLEAN_THREADS / FAIRCLEAN_SUITE_REPORT / FAIRCLEAN_STORE /
/// FAIRCLEAN_STORE_CACHE_PAGES /
/// FAIRCLEAN_STORE_COMPRESS. Reads the environment exactly once, at the
/// call. Count and budget knobs parse strictly (GetEnvCount /
/// GetEnvBudgetSeconds): trailing garbage, NaN/inf, or a negative value is
/// an InvalidArgument instead of a silent fallback to the default.
Result<SuiteOptions> TrySuiteOptionsFromEnv();

/// TrySuiteOptionsFromEnv for contexts without an error channel (benches,
/// tests): a malformed knob aborts the process with the parse error, which
/// beats silently running the whole suite at an unintended scale.
SuiteOptions SuiteOptionsFromEnv();

/// One produced experiment-cell artifact: the driver result plus the byte
/// identity of its persisted cache record (sha256 of the exact file bytes,
/// or of the bytes SaveToFile would write when caching is disabled).
struct CellArtifact {
  CleaningExperimentResult result;
  /// Cache file basename ("" when caching is disabled). Basename, not
  /// path, so reports are identical across cache directories.
  std::string cache_file;
  std::string sha256;
  /// Mass-run classification (persisted as a class: record next to the
  /// cache record, read back on cache hits — so fresh, warm, resumed, and
  /// merged runs report the same class).
  CellClass cell_class = CellClass::kPass;
};

/// One per-dataset disparity analysis (Fig. 1 / Fig. 2 panel).
struct DisparityArtifact {
  std::vector<DisparityRow> rows;
};

/// Scope results keyed "<dataset>/<model>", shared with the artifact store.
using ScopeResults = std::map<std::string, std::shared_ptr<const CellArtifact>>;

/// Aggregates a scope's results into the paper's 3x3 impact table for one
/// (grouping, fairness metric): every (pair-or-dataset, method, model)
/// configuration contributes one cell. `alpha` is the base level; it is
/// Bonferroni-adjusted by the scope's cleaning-method count.
Result<ImpactTable> AggregateImpactTable(const ScopeResults& results,
                                         const StudyScope& scope,
                                         bool intersectional,
                                         FairnessMetric metric, double alpha);

/// Prints measured-vs-paper tables side by side plus a qualitative shape
/// check (dominant-row agreement). Byte-identical to the historical bench
/// output.
void PrintTableWithReference(const ImpactTable& measured,
                             const PaperTable& reference,
                             const std::string& title);

/// Runs the paper grid as one DAG: dataset and experiment-cell nodes are
/// deduplicated across units and produced exactly once through a
/// content-addressed ArtifactStore, ready nodes fan out across a
/// suite-level ThreadPool (each cell runs a sequential StudyDriver, so the
/// per-repeat fan-out is replaced by experiment-level parallelism without
/// nesting pools), and aggregation nodes fold cell artifacts into the
/// paper's tables and figures.
///
/// Identity contract (DESIGN.md Section 9): each cell's cache record is
/// byte-identical to what the standalone table bench produces, at any
/// thread width, and the merged report is byte-identical between
/// sequential, parallel, and killed-and-resumed runs.
///
/// RunSuite / RunUnit / RunScopeCells must be called from one thread at a
/// time; internal fan-out is the scheduler's own concern.
class SuiteScheduler {
 public:
  explicit SuiteScheduler(SuiteOptions options);

  const SuiteOptions& options() const { return options_; }
  /// Resolved suite fan-out width.
  size_t width() const { return width_; }
  ArtifactStore& artifacts() { return artifacts_; }

  /// Runs every unit the filter selects, prints each unit's report
  /// (byte-identical to the standalone benches' bodies), and assembles the
  /// merged JSON report (written to options.report_path when set).
  Status RunSuite(const SuiteSpec& spec, const SuiteFilter& filter);

  /// Runs this process's shard of the suite (options.shard must be
  /// active): produces cell artifacts only — static mode takes a
  /// deterministic per-wave partition, claim mode work-steals cells
  /// through lease records under <cache_dir>/claims — then writes a
  /// partial report next to options.report_path. In claim mode the last
  /// finishing shard wins a __merge__ lease election and assembles the
  /// merged report itself (DESIGN.md Section 16); static shards rely on an
  /// explicit RunSuiteMerge pass.
  Status RunSuiteShard(const SuiteSpec& spec, const SuiteFilter& filter);

  /// Merge step of a sharded run: validates every partial report found
  /// next to options.report_path (each listed cell's sha256 must match the
  /// shared cache's actual bytes), then executes the full graph over the
  /// warm cache — every cell is a cache hit — so the merged report is
  /// byte-identical to a single-process run by the fresh==warm identity
  /// contract. Partial reports are never stitched.
  Status RunSuiteMerge(const SuiteSpec& spec, const SuiteFilter& filter);

  /// Partial-report path of one shard: "<report_path>.shard<i>of<N>"
  /// (1-based i).
  static std::string PartialReportPath(const std::string& report_path,
                                       const ShardSpec& shard);

  /// Invoked (with the cell) after every successful journal checkpoint of
  /// a cell driver, in addition to the claim-lease refresh the shard layer
  /// performs there. The shard soak test uses it as a deterministic
  /// mid-cell crash point (raise SIGKILL after the first checkpoint).
  void set_cell_checkpoint_hook(std::function<void(const CellKey&)> hook) {
    cell_checkpoint_hook_ = std::move(hook);
  }

  /// Runs a single unit for the legacy bench binaries: prints the unit
  /// heading up front (progress visibility), executes the unit's subgraph,
  /// then prints the unit body. No merged report.
  Status RunUnit(const SuiteUnit& unit);

  /// Runs (or reuses) every cell of one scope across the suite pool and
  /// returns them keyed "<dataset>/<model>". Shared-artifact path for the
  /// Table XIV and deep-dive consumers: repeated calls reuse datasets and
  /// cells through the store.
  Result<ScopeResults> RunScopeCells(const StudyScope& scope);

  /// Shared dataset / cell / disparity artifacts (produced on first use).
  Result<std::shared_ptr<const GeneratedDataset>> Dataset(
      const std::string& name);
  Result<std::shared_ptr<const CellArtifact>> Cell(const CellKey& cell);
  Result<std::shared_ptr<const DisparityArtifact>> Disparity(
      const std::string& dataset, bool intersectional);

  /// Sum of every cell driver's diagnostics; `threads` reports the suite
  /// width (per-cell drivers are sequential by construction).
  exec::RunDiagnostics AggregateDiagnostics() const;

  /// Prints the aggregate diagnostics (and, at info level, the process
  /// metric instruments) to stdout — the benches' historical run summary.
  void PrintRunSummary() const;

  /// Reports a failed run to stderr (message, diagnostics, resume hint on
  /// deadline) and returns the process exit code: kExitResumable for a
  /// resumable deadline, 1 otherwise.
  int ReportFailure(const Status& status) const;

  /// The merged report of the last successful RunSuite (deterministic
  /// bytes: no wall times, no thread counts, artifact counts derived
  /// structurally from the graph rather than from runtime counters).
  const std::string& report_json() const { return report_json_; }

  double ElapsedSeconds() const;

  static int ExitCode(const Status& status) {
    if (status.ok()) return 0;
    return status.code() == StatusCode::kDeadlineExceeded ? kExitResumable
                                                          : 1;
  }

 private:
  struct FigureValue {
    bool skipped = false;  ///< dataset has no intersectional definition
    std::shared_ptr<const DisparityArtifact> rows;
  };
  struct TableValue {
    bool skipped = false;  ///< filter narrowed the unit: cannot aggregate
    ImpactTable table;
  };
  struct ModelTableValue {
    struct Tally {
      int64_t total = 0;
      int64_t fairness_worse = 0;
      int64_t fairness_better = 0;
      int64_t both_better = 0;
    };
    bool skipped = false;
    std::map<std::string, Tally> tallies;
  };

  /// Driver options for one cell: the suite options with threads pinned to
  /// 1, the time budget reduced to what remains of the suite budget, and
  /// the shared blob store attached. DeadlineExceeded when the suite
  /// budget is already exhausted.
  Result<exec::StudyDriverOptions> CellDriverOptions() const;

  /// The one blob store every cell driver of this suite shares (opened on
  /// first use; the paged backend's pages file has a single writer per
  /// process). Thread-safe: cells fan out across the pool.
  Result<std::shared_ptr<store::BlobStore>> SharedStore() const;

  Result<CellArtifact> ProduceCell(const CellKey& cell);
  void Accumulate(const exec::RunDiagnostics& diagnostics);

  /// Classification + class-record persistence for one freshly produced
  /// (non-cache-hit) cell; reads the sticky record back on cache hits.
  CellClass ClassifyProducedCell(const CellKey& cell,
                                 const exec::RunDiagnostics& diag,
                                 store::BlobStore* blob,
                                 const std::string& cache_key);

  /// Shard helpers (shard_runner.cc).
  struct ShardCounters {
    uint64_t produced = 0;
    uint64_t steals = 0;
    uint64_t claim_conflicts = 0;
    uint64_t cache_skips = 0;
    uint64_t lease_refreshes = 0;
    uint64_t lease_lost = 0;
  };
  /// Cache key of one cell under this suite's scale (pure; no store I/O).
  std::string CellCacheKey(const CellKey& cell) const;
  /// Produces the given cell nodes of wave `w` through the planner + pool
  /// (the fan-out slice of ExecuteGraph, cells only).
  Status ProduceWaveCells(const SuiteSpec& spec, const ExperimentGraph& graph,
                          size_t wave_index, const std::vector<size_t>& ids);
  Status RunClaimWave(const SuiteSpec& spec, const ExperimentGraph& graph,
                      size_t wave_index, const std::vector<size_t>& cell_ids,
                      std::vector<size_t>* produced_ids);
  Status WritePartialReport(const SuiteSpec& spec,
                            const ExperimentGraph& graph,
                            const SuiteFilter& filter,
                            const std::vector<size_t>& produced_ids) const;
  /// True when this cell's claim was stolen by this process.
  bool IsStolenCell(const CellKey& cell) const;
  /// Lease refresh driven by the cell driver's journal checkpoints.
  void RefreshCellLease(const CellKey& cell);

  /// Executes the graph wave by wave: dataset/cell/figure nodes fan out
  /// across the pool, aggregation nodes run inline; node results land in
  /// node_values_. On failure returns the failed node with the smallest id
  /// (deterministic across widths).
  Status ExecuteGraph(const SuiteSpec& spec, const ExperimentGraph& graph);
  Status RunNode(const SuiteSpec& spec, const ExperimentGraph& graph,
                 size_t id);
  bool Narrowed(const ExperimentGraph& graph, size_t unit_index) const;
  /// Cell artifacts among `node`'s deps with the given error type, keyed
  /// "<dataset>/<model>".
  ScopeResults ScopeFromDeps(const ExperimentGraph& graph,
                             const GraphNode& node,
                             const std::string& error_type) const;

  void PrintUnitHeading(const SuiteUnit& unit) const;
  Status RenderUnitBody(const SuiteSpec& spec, const ExperimentGraph& graph,
                        size_t unit_index) const;
  /// Prints the unit's "summary vs paper" block over the figure nodes of
  /// `unit_index` only — in a full-suite graph both fig1's and fig2's
  /// nodes coexist, and mixing them would corrupt the counts.
  void RenderFigureSummary(const SuiteUnit& unit, const ExperimentGraph& graph,
                           size_t unit_index) const;

  std::string BuildReportJson(const SuiteSpec& spec,
                              const ExperimentGraph& graph,
                              const SuiteFilter& filter) const;

  SuiteOptions options_;
  size_t width_ = 1;
  /// Scoped registry: suite counters forward to MetricsRegistry::Global()
  /// while staying separable for perf reporting.
  obs::MetricsRegistry metrics_;
  ArtifactStore artifacts_;
  /// Wave-level execution planner (DESIGN.md §15): materializes the shared
  /// per-(dataset, seed) inputs of each wave's cell group once, before the
  /// wave fans out.
  WavePlanner planner_;
  /// Wave index of the fan-out currently executing; kNoWave outside one.
  /// Tags cell spans "cell w<k> ..." so trace summaries can group the
  /// planner's materialization cost with the wave it paid for. Written
  /// only on the scheduling thread between fan-outs.
  static constexpr size_t kNoWave = static_cast<size_t>(-1);
  size_t current_wave_ = kNoWave;
  std::unique_ptr<ThreadPool> pool_;  ///< null when width_ == 1
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex diag_mutex_;
  exec::RunDiagnostics total_;

  mutable std::mutex store_mutex_;
  mutable std::shared_ptr<store::BlobStore> blob_store_;

  /// Claim coordination state of a sharded run (null/empty otherwise).
  /// shard_mutex_ guards the token map, stolen set, and counters — the
  /// checkpoint hook touches them from pool workers.
  std::unique_ptr<store::LeaseStore> lease_store_;
  mutable std::mutex shard_mutex_;
  std::map<std::string, store::LeaseToken> claim_tokens_;  ///< by cell id
  std::set<std::string> stolen_cells_;                     ///< cell ids
  ShardCounters shard_counters_;
  std::function<void(const CellKey&)> cell_checkpoint_hook_;

  /// Node results of the last ExecuteGraph, indexed by node id. Holds
  /// CellArtifact / GeneratedDataset / FigureValue / TableValue /
  /// ModelTableValue per the node kind.
  std::vector<std::shared_ptr<const void>> node_values_;
  std::string report_json_;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_SUITE_RUNNER_H_
