#include "sched/suite_runner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/env.h"
#include "common/exec_mode.h"
#include "common/hash.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "core/cleaning.h"
#include "obs/flight.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "stats/tests.h"

namespace fairclean {
namespace sched {

Result<SuiteOptions> TrySuiteOptionsFromEnv() {
  SuiteOptions options;
  FC_ASSIGN_OR_RETURN(int64_t sample, GetEnvCount("FAIRCLEAN_SAMPLE", 3500));
  options.study.sample_size = static_cast<size_t>(sample);
  FC_ASSIGN_OR_RETURN(int64_t repeats, GetEnvCount("FAIRCLEAN_REPEATS", 16));
  options.study.num_repeats = static_cast<size_t>(repeats);
  FC_ASSIGN_OR_RETURN(int64_t folds, GetEnvCount("FAIRCLEAN_FOLDS", 3));
  options.study.cv_folds = static_cast<size_t>(folds);
  // A larger holdout than the library default stabilizes the group-wise
  // precision/recall estimates that the fairness metrics compare.
  options.study.test_fraction = 0.3;
  options.study.seed =
      static_cast<uint64_t>(GetEnvInt64("FAIRCLEAN_SEED", 42));
  FC_ASSIGN_OR_RETURN(options.study.exec_mode, ExecModeFromEnv());
  options.cache_dir = GetEnvString("FAIRCLEAN_CACHE_DIR", "fairclean_cache");
  FC_ASSIGN_OR_RETURN(
      int64_t max_retries,
      GetEnvCount("FAIRCLEAN_MAX_RETRIES",
                  static_cast<int64_t>(options.max_retries)));
  options.max_retries = static_cast<size_t>(max_retries);
  FC_ASSIGN_OR_RETURN(
      options.time_budget_s,
      GetEnvBudgetSeconds("FAIRCLEAN_TIME_BUDGET_S", options.time_budget_s));
  FC_ASSIGN_OR_RETURN(int64_t threads, GetEnvCount("FAIRCLEAN_THREADS", 0));
  options.threads = static_cast<size_t>(threads);
  options.report_path = GetEnvString("FAIRCLEAN_SUITE_REPORT", "");
  options.store_backend = GetEnvString("FAIRCLEAN_STORE", "flat");
  if (options.store_backend != "flat" && options.store_backend != "paged") {
    return Status::InvalidArgument(
        "FAIRCLEAN_STORE must be \"flat\" or \"paged\", got \"" +
        options.store_backend + "\"");
  }
  FC_ASSIGN_OR_RETURN(
      int64_t store_cache_pages,
      GetEnvCount("FAIRCLEAN_STORE_CACHE_PAGES",
                  static_cast<int64_t>(options.store_cache_pages)));
  options.store_cache_pages = static_cast<size_t>(store_cache_pages);
  std::string compress = GetEnvString("FAIRCLEAN_STORE_COMPRESS", "0");
  if (compress != "0" && compress != "1") {
    return Status::InvalidArgument(
        "FAIRCLEAN_STORE_COMPRESS must be \"0\" or \"1\", got \"" +
        compress + "\"");
  }
  options.store_compress = compress == "1";
  FC_ASSIGN_OR_RETURN(options.shard_lease_s,
                      GetEnvBudgetSeconds("FAIRCLEAN_SHARD_LEASE_S",
                                          options.shard_lease_s));
  if (options.shard_lease_s <= 0.0) {
    return Status::InvalidArgument(
        "FAIRCLEAN_SHARD_LEASE_S must be positive");
  }
  return options;
}

SuiteOptions SuiteOptionsFromEnv() {
  Result<SuiteOptions> options = TrySuiteOptionsFromEnv();
  // ValueOrDie prints the offending knob and aborts on a parse error.
  return std::move(options).ValueOrDie();
}

Result<ImpactTable> AggregateImpactTable(const ScopeResults& results,
                                         const StudyScope& scope,
                                         bool intersectional,
                                         FairnessMetric metric, double alpha) {
  ImpactTable table;
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(scope.error_type));
  double adjusted = BonferroniAlpha(alpha, methods.size());

  auto add_configurations = [&](const CleaningExperimentResult& result,
                                const std::string& group_key) -> Status {
    for (const auto& [method, series] : result.repaired) {
      FC_ASSIGN_OR_RETURN(
          ImpactOutcome impact,
          ComputeImpact(result.dirty, series, group_key, metric, adjusted));
      table.Add(impact.fairness, impact.accuracy);
    }
    return Status::OK();
  };

  for (const std::string& model : AllModelNames()) {
    if (!intersectional) {
      for (const PairSpec& pair : scope.single_pairs) {
        auto it = results.find(pair.dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + pair.dataset + "/" +
                                  model);
        }
        FC_RETURN_IF_ERROR(
            add_configurations(it->second->result, pair.attribute));
      }
    } else {
      for (const std::string& dataset : scope.intersectional_datasets) {
        auto it = results.find(dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + dataset + "/" + model);
        }
        const CleaningExperimentResult& result = it->second->result;
        std::string group_key;
        for (const GroupDefinition& group : result.groups) {
          if (group.intersectional) group_key = group.key;
        }
        if (group_key.empty()) {
          return Status::InvalidArgument(
              "dataset has no intersectional group: " + dataset);
        }
        FC_RETURN_IF_ERROR(add_configurations(result, group_key));
      }
    }
  }
  return table;
}

void PrintTableWithReference(const ImpactTable& measured,
                             const PaperTable& reference,
                             const std::string& title) {
  std::printf("%s\n", measured.Format(title).c_str());
  std::printf("paper reference (%s):\n", reference.label);
  const char* row_labels[3] = {"fairness worse", "fairness insign.",
                               "fairness better"};
  for (size_t r = 0; r < 3; ++r) {
    std::printf("%-22s |", row_labels[r]);
    for (size_t c = 0; c < 3; ++c) {
      std::printf(" %5.1f%%        ", reference.cells[r][c]);
    }
    std::printf("\n");
  }

  // Qualitative shape checks against the paper.
  double paper_worse = reference.cells[0][0] + reference.cells[0][1] +
                       reference.cells[0][2];
  double paper_better = reference.cells[2][0] + reference.cells[2][1] +
                        reference.cells[2][2];
  int64_t total = measured.Total();
  double measured_worse =
      total ? 100.0 * measured.RowTotal(Impact::kWorse) / total : 0.0;
  double measured_better =
      total ? 100.0 * measured.RowTotal(Impact::kBetter) / total : 0.0;
  bool paper_direction = paper_worse > paper_better;
  bool measured_direction = measured_worse > measured_better;
  std::printf(
      "shape check: fairness worse vs better — paper %.1f%% / %.1f%% (%s), "
      "measured %.1f%% / %.1f%% (%s) -> %s\n\n",
      paper_worse, paper_better,
      paper_direction ? "worse dominates" : "better dominates",
      measured_worse, measured_better,
      measured_direction ? "worse dominates" : "better dominates",
      paper_direction == measured_direction ? "MATCH" : "MISMATCH");
}

SuiteScheduler::SuiteScheduler(SuiteOptions options)
    : options_(std::move(options)),
      width_(options_.threads != 0 ? options_.threads
                                   : ThreadPool::DefaultThreadCount()),
      metrics_(&obs::MetricsRegistry::Global()),
      artifacts_(&metrics_),
      planner_(options_.study.exec_mode, options_.study.seed,
               [this](const std::string& name) { return Dataset(name); }),
      start_(std::chrono::steady_clock::now()) {
  if (width_ > 1) pool_ = std::make_unique<ThreadPool>(width_);
  total_.threads = width_;
}

double SuiteScheduler::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

Result<std::shared_ptr<store::BlobStore>> SuiteScheduler::SharedStore()
    const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (blob_store_ == nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(options_.cache_dir, ec);
    FC_ASSIGN_OR_RETURN(
        blob_store_,
        store::OpenBlobStore(options_.cache_dir, options_.store_backend,
                             options_.store_cache_pages,
                             options_.store_compress));
  }
  return blob_store_;
}

Result<exec::StudyDriverOptions> SuiteScheduler::CellDriverOptions() const {
  exec::StudyDriverOptions driver_options;
  driver_options.study = options_.study;
  driver_options.cache_dir = options_.cache_dir;
  driver_options.max_retries = options_.max_retries;
  if (!options_.cache_dir.empty()) {
    FC_ASSIGN_OR_RETURN(driver_options.blob_store, SharedStore());
  }
  // Parallelism lives at the suite level; each cell driver runs the
  // strictly-sequential path (also keeps pool-in-pool nesting impossible).
  driver_options.threads = 1;
  if (options_.time_budget_s > 0.0) {
    double remaining = options_.time_budget_s - ElapsedSeconds();
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded("suite time budget exhausted");
    }
    driver_options.time_budget_s = remaining;
  }
  return driver_options;
}

void SuiteScheduler::Accumulate(const exec::RunDiagnostics& diagnostics) {
  std::lock_guard<std::mutex> lock(diag_mutex_);
  total_.experiments += diagnostics.experiments;
  total_.cache_hits += diagnostics.cache_hits;
  total_.journal_resumes += diagnostics.journal_resumes;
  total_.repeats_resumed += diagnostics.repeats_resumed;
  total_.repeats_run += diagnostics.repeats_run;
  total_.retries += diagnostics.retries;
  total_.skips += diagnostics.skips;
  total_.corrupt_quarantined += diagnostics.corrupt_quarantined;
  total_.checkpoints += diagnostics.checkpoints;
  total_.budget_exhausted |= diagnostics.budget_exhausted;
  for (const auto& [stage, seconds] : diagnostics.stage_seconds) {
    total_.stage_seconds[stage] += seconds;
  }
  for (const auto& [stage, seconds] : diagnostics.stage_cpu_seconds) {
    total_.stage_cpu_seconds[stage] += seconds;
  }
}

exec::RunDiagnostics SuiteScheduler::AggregateDiagnostics() const {
  std::lock_guard<std::mutex> lock(diag_mutex_);
  exec::RunDiagnostics copy = total_;
  copy.threads = width_;
  return copy;
}

void SuiteScheduler::PrintRunSummary() const {
  std::printf("%s", AggregateDiagnostics().Format().c_str());
  if (obs::LogEnabled(obs::LogLevel::kInfo)) {
    std::printf("process metrics:\n%s",
                obs::MetricsRegistry::Global().FormatSummary().c_str());
  }
}

int SuiteScheduler::ReportFailure(const Status& status) const {
  std::fprintf(stderr, "suite run failed: %s\n", status.ToString().c_str());
  std::fprintf(stderr, "%s", AggregateDiagnostics().Format().c_str());
  if (status.code() == StatusCode::kDeadlineExceeded) {
    // Deadline overruns are exactly what the flight recorder exists for:
    // dump the rings so the stall is reconstructible post-mortem.
    if (obs::FlightEnabled()) {
      std::string flight_error;
      const std::string flight_path = obs::FlightRecorder::DefaultPath();
      if (obs::FlightRecorder::Dump(flight_path, obs::kFlightReasonDeadline,
                                    &flight_error)) {
        std::fprintf(stderr, "flight recorder dumped to %s\n",
                     flight_path.c_str());
      }
    }
    std::fprintf(stderr,
                 "completed repeats are checkpointed in %s — re-run to "
                 "resume where this run stopped\n",
                 options_.cache_dir.c_str());
    return kExitResumable;
  }
  return 1;
}

Result<std::shared_ptr<const GeneratedDataset>> SuiteScheduler::Dataset(
    const std::string& name) {
  return artifacts_.GetOrCreateAs<GeneratedDataset>(
      DatasetArtifactKey(name, options_.study.seed),
      [&]() -> Result<GeneratedDataset> {
        obs::TraceSpan span("sched", [&] { return "dataset " + name; });
        return MakeSuiteDataset(name, options_.study.seed);
      });
}

Result<CellArtifact> SuiteScheduler::ProduceCell(const CellKey& cell) {
  const size_t wave = current_wave_;
  obs::TraceSpan span("sched", [&cell, wave] {
    return wave == kNoWave
               ? "cell " + cell.Id()
               : StrFormat("cell w%zu %s", wave, cell.Id().c_str());
  });
  // Shared inputs from the wave planner when this cell's group was planned;
  // otherwise rebuild per cell. Both paths are byte-identical — the plan
  // only removes redundant work (DESIGN.md §15).
  const WavePlan* plan = planner_.Consume(cell);
  std::shared_ptr<const GeneratedDataset> dataset;
  if (plan != nullptr && plan->data != nullptr) {
    dataset = plan->data;
  } else if (options_.study.exec_mode == ExecMode::kNaive) {
    // Naive baseline: regenerate the dataset for every cell instead of
    // touching the shared artifact — the deliberately unshared cost the
    // planner exists to remove. Generation is a pure function of
    // (name, seed), so the bytes do not change.
    FC_ASSIGN_OR_RETURN(GeneratedDataset rebuilt,
                        MakeSuiteDataset(cell.dataset, options_.study.seed));
    dataset = std::make_shared<const GeneratedDataset>(std::move(rebuilt));
  } else {
    FC_ASSIGN_OR_RETURN(dataset, Dataset(cell.dataset));
  }
  FC_ASSIGN_OR_RETURN(exec::StudyDriverOptions driver_options,
                      CellDriverOptions());
  if (options_.shard.mode == ShardMode::kClaim || cell_checkpoint_hook_) {
    // Each successful journal checkpoint proves the cell is making repeat
    // progress: extend its claim lease so a live shard is never stolen
    // from mid-cell (and give tests their deterministic crash point).
    CellKey hooked = cell;
    driver_options.checkpoint_hook = [this, hooked] {
      if (options_.shard.mode == ShardMode::kClaim) RefreshCellLease(hooked);
      if (cell_checkpoint_hook_) cell_checkpoint_hook_(hooked);
    };
  }
  exec::StudyDriver driver(driver_options);
  exec::CellPlanInputs inputs;
  const exec::CellPlanInputs* plan_inputs = nullptr;
  if (plan != nullptr) {
    inputs = plan->InputsFor(cell.model);
    plan_inputs = &inputs;
  }
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(*dataset, cell.error_type, cell.model, plan_inputs);
  Accumulate(driver.diagnostics());
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded &&
        !options_.cache_dir.empty() &&
        driver_options.blob_store != nullptr) {
      // Sticky attempt marker: the cell hit the budget with resumable
      // state. A later attempt that completes the cell overwrites it, so
      // final-success reports stay byte-identical to fresh runs.
      driver_options.blob_store
          ->Write(ClassKeyFor(CellCacheKey(cell)),
                  std::string(CellClassName(CellClass::kBudgetExceeded)) +
                      "\n")
          .ok();
    }
    return result.status();
  }

  CellArtifact artifact;
  artifact.result = std::move(*result);
  std::string bytes;
  if (!options_.cache_dir.empty()) {
    std::string key = exec::StudyDriver::CacheKey(
        driver_options, cell.dataset, cell.error_type, cell.model);
    FC_ASSIGN_OR_RETURN(bytes, driver_options.blob_store->Read(key));
    artifact.cache_file = key;
    artifact.cell_class = ClassifyProducedCell(
        cell, driver.diagnostics(), driver_options.blob_store.get(), key);
  } else {
    // In-memory runs: digest the exact bytes SaveToFile would persist, so
    // the identity is comparable either way.
    bytes = AppendChecksumFooter(artifact.result.records.ToJson());
    artifact.cell_class =
        ClassifyProducedCell(cell, driver.diagnostics(), nullptr, "");
  }
  artifact.sha256 = Sha256Hex(bytes);
  return artifact;
}

CellClass SuiteScheduler::ClassifyProducedCell(
    const CellKey& cell, const exec::RunDiagnostics& diag,
    store::BlobStore* blob, const std::string& cache_key) {
  // Each cell runs its own driver, so the diagnostics describe exactly
  // this production. A pure cache hit preserves the class recorded by
  // whichever run computed the cell (absent record: a pre-classifier
  // cache — pass); a computed (fresh or journal-resumed) cell classifies
  // from what this run observed and persists the verdict next to the
  // cache record, best-effort like the journal writes.
  const bool cache_hit = diag.cache_hits > 0;
  if (cache_hit && blob != nullptr) {
    CellClass cls = CellClass::kPass;
    Result<std::string> recorded = blob->Read(ClassKeyFor(cache_key));
    if (recorded.ok()) {
      std::string name = *recorded;
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
      Result<CellClass> parsed = CellClassFromName(name);
      if (parsed.ok()) cls = *parsed;
    }
    return cls;
  }
  CellClass cls = CellClass::kPass;
  if (diag.skips > 0) {
    cls = CellClass::kSkipped;
  } else if (diag.retries > 0) {
    cls = CellClass::kDegenerateRetry;
  }
  if (IsStolenCell(cell)) cls = CellClass::kStolen;
  if (blob != nullptr) {
    Status written =
        blob->Write(ClassKeyFor(cache_key),
                    std::string(CellClassName(cls)) + "\n");
    if (!written.ok()) {
      FC_LOG_WARN("sched", "class record write failed for %s: %s",
                  cell.Id().c_str(), written.ToString().c_str());
    }
  }
  return cls;
}

Result<std::shared_ptr<const CellArtifact>> SuiteScheduler::Cell(
    const CellKey& cell) {
  return artifacts_.GetOrCreateAs<CellArtifact>(
      CellArtifactKey(cell, options_.study),
      [&]() -> Result<CellArtifact> { return ProduceCell(cell); });
}

Result<std::shared_ptr<const DisparityArtifact>> SuiteScheduler::Disparity(
    const std::string& dataset, bool intersectional) {
  return artifacts_.GetOrCreateAs<DisparityArtifact>(
      DisparityArtifactKey(dataset, intersectional, options_.study.seed),
      [&]() -> Result<DisparityArtifact> {
        obs::TraceSpan span("sched", [&] {
          return StrFormat("disparity %s/%s", dataset.c_str(),
                           intersectional ? "intersectional" : "single");
        });
        FC_ASSIGN_OR_RETURN(std::shared_ptr<const GeneratedDataset> generated,
                            Dataset(dataset));
        DisparityOptions disparity_options;
        // The historical per-figure rng streams (Fig. 1: seed+17, Fig. 2:
        // seed+19), fresh per dataset, so each panel's bytes match the
        // standalone figure bench exactly.
        Rng rng(options_.study.seed + (intersectional ? 19 : 17));
        DisparityArtifact artifact;
        FC_ASSIGN_OR_RETURN(
            artifact.rows,
            AnalyzeDisparities(*generated, intersectional, disparity_options,
                               &rng));
        return artifact;
      });
}

Result<ScopeResults> SuiteScheduler::RunScopeCells(const StudyScope& scope) {
  std::vector<CellKey> cells;
  for (const std::string& dataset : scope.Datasets()) {
    for (const std::string& model : AllModelNames()) {
      cells.push_back({dataset, scope.error_type, model});
    }
  }
  // The scope fan-out is a single pseudo-wave: plan its (dataset, seed)
  // groups up front exactly like a graph wave, so the legacy bench path
  // shares materializations too.
  current_wave_ = 0;
  planner_.PlanWave(0, cells);
  // Longest-first submission order (see ExecuteGraph); results are mapped
  // back to cell order below, so only the makespan changes.
  std::vector<size_t> order(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ra = CellCostRank(cells[a], options_.study.exec_mode);
    int rb = CellCostRank(cells[b], options_.study.exec_mode);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  std::vector<Result<std::shared_ptr<const CellArtifact>>> produced =
      RunIndexed(pool_.get(), order.size(),
                 [&](size_t i) { return Cell(cells[order[i]]); });
  planner_.EndWave();
  current_wave_ = kNoWave;
  std::vector<Result<std::shared_ptr<const CellArtifact>>*> by_cell(
      cells.size());
  for (size_t i = 0; i < order.size(); ++i) by_cell[order[i]] = &produced[i];
  ScopeResults results;
  for (size_t i = 0; i < cells.size(); ++i) {
    // First failure in cell order, deterministic across widths and
    // submission orders.
    if (!by_cell[i]->ok()) return by_cell[i]->status();
    results.emplace(cells[i].dataset + "/" + cells[i].model,
                    std::move(**by_cell[i]));
  }
  return results;
}

bool SuiteScheduler::Narrowed(const ExperimentGraph& graph,
                              size_t unit_index) const {
  for (size_t narrowed : graph.narrowed_units()) {
    if (narrowed == unit_index) return true;
  }
  return false;
}

ScopeResults SuiteScheduler::ScopeFromDeps(
    const ExperimentGraph& graph, const GraphNode& node,
    const std::string& error_type) const {
  ScopeResults results;
  for (size_t dep : node.deps) {
    const GraphNode& cell = graph.nodes()[dep];
    if (cell.kind != NodeKind::kCell) continue;
    if (cell.cell.error_type != error_type) continue;
    results.emplace(
        cell.cell.dataset + "/" + cell.cell.model,
        std::static_pointer_cast<const CellArtifact>(node_values_[dep]));
  }
  return results;
}

Status SuiteScheduler::RunNode(const SuiteSpec& spec,
                               const ExperimentGraph& graph, size_t id) {
  const GraphNode& node = graph.nodes()[id];
  switch (node.kind) {
    case NodeKind::kDataset: {
      FC_ASSIGN_OR_RETURN(std::shared_ptr<const GeneratedDataset> dataset,
                          Dataset(node.dataset));
      node_values_[id] = dataset;
      return Status::OK();
    }
    case NodeKind::kCell: {
      FC_ASSIGN_OR_RETURN(std::shared_ptr<const CellArtifact> artifact,
                          Cell(node.cell));
      node_values_[id] = artifact;
      return Status::OK();
    }
    case NodeKind::kFigure: {
      auto value = std::make_shared<FigureValue>();
      FC_ASSIGN_OR_RETURN(std::shared_ptr<const GeneratedDataset> dataset,
                          Dataset(node.dataset));
      if (node.intersectional && !dataset->spec.intersectional) {
        value->skipped = true;
      } else {
        FC_ASSIGN_OR_RETURN(value->rows,
                            Disparity(node.dataset, node.intersectional));
      }
      node_values_[id] = value;
      return Status::OK();
    }
    case NodeKind::kTable: {
      const SuiteUnit& unit = spec.units[node.unit_index];
      auto value = std::make_shared<TableValue>();
      if (Narrowed(graph, node.unit_index)) {
        value->skipped = true;
      } else {
        ScopeResults results =
            ScopeFromDeps(graph, node, unit.scope.error_type);
        const TableSpec& table = unit.tables[node.table_index];
        FC_ASSIGN_OR_RETURN(
            value->table,
            AggregateImpactTable(results, unit.scope, table.intersectional,
                                 table.metric, options_.study.alpha));
      }
      node_values_[id] = value;
      return Status::OK();
    }
    case NodeKind::kModelTable: {
      auto value = std::make_shared<ModelTableValue>();
      if (Narrowed(graph, node.unit_index)) {
        value->skipped = true;
        node_values_[id] = value;
        return Status::OK();
      }
      const StudyScope scopes[3] = {MissingScope(), OutlierScope(),
                                    MislabelScope()};
      for (const StudyScope& scope : scopes) {
        ScopeResults results = ScopeFromDeps(graph, node, scope.error_type);
        FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                            CleaningMethodsFor(scope.error_type));
        double alpha = BonferroniAlpha(options_.study.alpha, methods.size());
        for (const std::string& model : AllModelNames()) {
          for (const PairSpec& pair : scope.single_pairs) {
            auto it = results.find(pair.dataset + "/" + model);
            if (it == results.end()) {
              return Status::NotFound("no results for " + pair.dataset + "/" +
                                      model);
            }
            const CleaningExperimentResult& result = it->second->result;
            for (const auto& [method, series] : result.repaired) {
              for (FairnessMetric metric :
                   {FairnessMetric::kPredictiveParity,
                    FairnessMetric::kEqualOpportunity}) {
                FC_ASSIGN_OR_RETURN(
                    ImpactOutcome impact,
                    ComputeImpact(result.dirty, series, pair.attribute,
                                  metric, alpha));
                ModelTableValue::Tally& tally = value->tallies[model];
                ++tally.total;
                if (impact.fairness == Impact::kWorse) ++tally.fairness_worse;
                if (impact.fairness == Impact::kBetter) {
                  ++tally.fairness_better;
                }
                if (impact.fairness == Impact::kBetter &&
                    impact.accuracy == Impact::kBetter) {
                  ++tally.both_better;
                }
              }
            }
          }
        }
      }
      node_values_[id] = value;
      return Status::OK();
    }
  }
  return Status::Internal("unknown node kind");
}

Status SuiteScheduler::ExecuteGraph(const SuiteSpec& spec,
                                    const ExperimentGraph& graph) {
  node_values_.assign(graph.nodes().size(), nullptr);
  const std::vector<std::vector<size_t>> waves = graph.Waves();
  for (size_t w = 0; w < waves.size(); ++w) {
    const std::vector<size_t>& wave = waves[w];
    std::vector<size_t> fan_out;
    std::vector<size_t> serial;
    std::vector<CellKey> wave_cells;
    for (size_t id : wave) {
      switch (graph.nodes()[id].kind) {
        case NodeKind::kCell:
          wave_cells.push_back(graph.nodes()[id].cell);
          [[fallthrough]];
        case NodeKind::kDataset:
        case NodeKind::kFigure:
          fan_out.push_back(id);
          break;
        default:
          serial.push_back(id);
      }
    }
    // Materialize the wave's shared (dataset, seed) group inputs once,
    // single-threaded, before the fan-out (DESIGN.md §15). Cell nodes
    // depend on their dataset node in an earlier wave, so the planner's
    // dataset lookups are artifact-store cache hits.
    current_wave_ = w;
    planner_.PlanWave(w, wave_cells);
    // Submit the wave longest-first (LPT): expensive cells start before
    // cheap ones, so the tail of the wave fills idle workers instead of
    // stranding one long cell at the end. Stable sort with ascending id as
    // the tiebreak keeps the order deterministic.
    std::stable_sort(fan_out.begin(), fan_out.end(),
                     [&](size_t a, size_t b) {
                       const GraphNode& na = graph.nodes()[a];
                       const GraphNode& nb = graph.nodes()[b];
                       auto rank = [this](const GraphNode& node) {
                         return node.kind == NodeKind::kCell
                                    ? CellCostRank(node.cell,
                                                   options_.study.exec_mode)
                                    : 15;  // datasets/figures: mid-weight
                       };
                       int ra = rank(na);
                       int rb = rank(nb);
                       if (ra != rb) return ra > rb;
                       return a < b;
                     });
    // Compute-heavy nodes fan out across the suite pool; results land in
    // their node slot. Failures are reported by smallest node id so every
    // width (and every submission order) sees the same first error.
    std::vector<Status> statuses =
        RunIndexed(pool_.get(), fan_out.size(), [&](size_t i) {
          return InvokeWithStatusCapture(
              [&, i] { return RunNode(spec, graph, fan_out[i]); });
        });
    planner_.EndWave();
    current_wave_ = kNoWave;
    size_t failed_pos = fan_out.size();
    for (size_t i = 0; i < fan_out.size(); ++i) {
      if (statuses[i].ok()) continue;
      if (failed_pos == fan_out.size() ||
          fan_out[i] < fan_out[failed_pos]) {
        failed_pos = i;
      }
    }
    if (failed_pos != fan_out.size()) return statuses[failed_pos];
    // Aggregation nodes are cheap and read many deps: run inline.
    for (size_t id : serial) FC_RETURN_IF_ERROR(RunNode(spec, graph, id));
  }
  return Status::OK();
}

void SuiteScheduler::PrintUnitHeading(const SuiteUnit& unit) const {
  if (unit.kind == SuiteUnit::Kind::kTables) {
    std::printf("== %s ==\n", unit.heading.c_str());
    std::printf(
        "scale: sample=%zu repeats=%zu folds=%zu seed=%llu threads=%zu "
        "(override via FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS / FAIRCLEAN_FOLDS "
        "/ FAIRCLEAN_SEED / FAIRCLEAN_THREADS)\n\n",
        options_.study.sample_size, options_.study.num_repeats,
        options_.study.cv_folds,
        static_cast<unsigned long long>(options_.study.seed), width_);
  } else {
    std::printf("== %s ==\n\n", unit.heading.c_str());
  }
}

void SuiteScheduler::RenderFigureSummary(const SuiteUnit& unit,
                                         const ExperimentGraph& graph,
                                         size_t unit_index) const {
  size_t missing_cases = 0;
  size_t missing_dis_higher = 0;
  size_t significant_rows = 0;
  size_t total_rows = 0;
  size_t adult_significant = 0;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kFigure || node.unit_index != unit_index) {
      continue;
    }
    auto value =
        std::static_pointer_cast<const FigureValue>(node_values_[node.id]);
    if (value == nullptr || value->skipped) continue;
    for (const DisparityRow& row : value->rows->rows) {
      ++total_rows;
      if (row.significant) {
        ++significant_rows;
        if (row.dataset == "adult") ++adult_significant;
      }
      if (row.detector == "missing_values") {
        ++missing_cases;
        if (row.DisadvantagedFraction() > row.PrivilegedFraction()) {
          ++missing_dis_higher;
        }
      }
    }
  }

  std::printf("== summary vs paper ==\n");
  if (!unit.fig_intersectional) {
    std::printf(
        "missing values flagged more often for the disadvantaged group: "
        "%zu of %zu dataset/attribute cases (paper: 4 of 6)\n",
        missing_dis_higher, missing_cases);
    std::printf(
        "significant disparities: %zu of %zu detector/group rows overall\n",
        significant_rows, total_rows);
    std::printf(
        "adult rows with significant disparity: %zu of 10 (paper: adult is "
        "the only dataset where ALL five detectors flag significant "
        "disparities)\n",
        adult_significant);
  } else {
    std::printf(
        "missing values flagged more often for the intersectionally "
        "disadvantaged group: %zu of %zu cases (paper: 2 of 3)\n",
        missing_dis_higher, missing_cases);
  }
}

Status SuiteScheduler::RenderUnitBody(const SuiteSpec& spec,
                                      const ExperimentGraph& graph,
                                      size_t unit_index) const {
  const SuiteUnit& unit = spec.units[unit_index];
  switch (unit.kind) {
    case SuiteUnit::Kind::kFigure: {
      for (const GraphNode& node : graph.nodes()) {
        if (node.kind != NodeKind::kFigure || node.unit_index != unit_index) {
          continue;
        }
        auto value = std::static_pointer_cast<const FigureValue>(
            node_values_[node.id]);
        if (value->skipped) {
          std::printf("%s: no intersectional definition (skipped, as in the "
                      "paper)\n\n",
                      node.dataset.c_str());
          continue;
        }
        std::printf("%s", FormatDisparityTable(value->rows->rows).c_str());
        std::printf("\n");
      }
      RenderFigureSummary(unit, graph, unit_index);
      return Status::OK();
    }
    case SuiteUnit::Kind::kTables: {
      for (const GraphNode& node : graph.nodes()) {
        if (node.kind != NodeKind::kTable || node.unit_index != unit_index) {
          continue;
        }
        auto value = std::static_pointer_cast<const TableValue>(
            node_values_[node.id]);
        const TableSpec& table = unit.tables[node.table_index];
        if (value->skipped) {
          std::printf("%s: skipped — the filter narrowed this unit's cell "
                      "set, so the aggregation would be incomplete\n\n",
                      table.reference.label);
          continue;
        }
        std::string title = StrFormat(
            "Impact of auto-cleaning %s for %s groups, %s as fairness metric",
            unit.scope.error_type.c_str(),
            table.intersectional ? "intersectional" : "single-attribute",
            FairnessMetricName(table.metric));
        PrintTableWithReference(value->table, table.reference, title);
      }
      return Status::OK();
    }
    case SuiteUnit::Kind::kModelTable: {
      for (const GraphNode& node : graph.nodes()) {
        if (node.kind != NodeKind::kModelTable ||
            node.unit_index != unit_index) {
          continue;
        }
        auto value = std::static_pointer_cast<const ModelTableValue>(
            node_values_[node.id]);
        if (value->skipped) {
          std::printf("%s: skipped — the filter narrowed this unit's cell "
                      "set, so the aggregation would be incomplete\n",
                      unit.name.c_str());
          continue;
        }
        std::printf("%-10s %-22s %-22s %-26s %s\n", "model", "fairness worse",
                    "fairness better", "fairness & acc. better", "configs");
        for (const ModelReference& paper : unit.model_references) {
          auto it = value->tallies.find(paper.model);
          ModelTableValue::Tally tally;
          if (it != value->tallies.end()) tally = it->second;
          double total = static_cast<double>(tally.total);
          std::printf(
              "%-10s %5.1f%% (%3lld)        %5.1f%% (%3lld)        %5.1f%% "
              "(%3lld)            %lld\n",
              paper.model,
              total ? 100.0 * tally.fairness_worse / total : 0.0,
              static_cast<long long>(tally.fairness_worse),
              total ? 100.0 * tally.fairness_better / total : 0.0,
              static_cast<long long>(tally.fairness_better),
              total ? 100.0 * tally.both_better / total : 0.0,
              static_cast<long long>(tally.both_better),
              static_cast<long long>(tally.total));
          std::printf("  paper:   %5.1f%%               %5.1f%%               "
                      "%5.1f%%                    212\n",
                      paper.worse, paper.better, paper.both);
        }

        // Paper's qualitative claims for Table XIV.
        auto tally_of = [&value](const char* model) {
          auto found = value->tallies.find(model);
          return found != value->tallies.end() ? found->second
                                               : ModelTableValue::Tally();
        };
        ModelTableValue::Tally logreg = tally_of("log-reg");
        bool logreg_most_both =
            logreg.both_better >= tally_of("xgboost").both_better &&
            logreg.both_better >= tally_of("knn").both_better;
        std::printf(
            "\nshape check: log-reg benefits most from cleaning "
            "(fairness & accuracy better) -> %s\n",
            logreg_most_both ? "MATCH" : "MISMATCH");
        bool all_worse_dominates = true;
        for (const auto& [model, tally] : value->tallies) {
          if (tally.fairness_worse < tally.fairness_better) {
            all_worse_dominates = false;
          }
        }
        std::printf(
            "shape check: for every model, cleaning worsens fairness more "
            "often than it improves it -> %s\n",
            all_worse_dominates ? "MATCH" : "MISMATCH");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown unit kind");
}

namespace {

std::string JsonString(const std::string& text) {
  return "\"" + obs::JsonEscape(text) + "\"";
}

std::string JsonDouble(double value) { return StrFormat("%.17g", value); }

}  // namespace

std::string SuiteScheduler::BuildReportJson(const SuiteSpec& spec,
                                            const ExperimentGraph& graph,
                                            const SuiteFilter& filter) const {
  // Determinism rules: no wall times, no thread counts, no runtime
  // counters (they could differ between fresh and resumed runs and across
  // widths); cache files by basename only; doubles at full precision;
  // entries in graph-node order. The resulting bytes are identical for
  // sequential, parallel, and killed-and-resumed runs — the suite golden
  // test pins this.
  std::string filter_text;
  for (size_t i = 0; i < filter.tokens.size(); ++i) {
    if (i) filter_text += ",";
    filter_text += filter.tokens[i];
  }

  std::string out = "{";
  out += "\"suite\":" + JsonString(spec.name);
  out += ",\"filter\":" + JsonString(filter_text);
  out += StrFormat(
      ",\"options\":{\"sample_size\":%zu,\"test_fraction\":%s,"
      "\"num_repeats\":%zu,\"cv_folds\":%zu,\"seed\":%llu,\"alpha\":%s,"
      "\"max_retries\":%zu}",
      options_.study.sample_size,
      JsonDouble(options_.study.test_fraction).c_str(),
      options_.study.num_repeats, options_.study.cv_folds,
      static_cast<unsigned long long>(options_.study.seed),
      JsonDouble(options_.study.alpha).c_str(), options_.max_retries);
  // Artifact-sharing summary, derived structurally from the graph rather
  // than read from the store's runtime counters: each node implies a fixed
  // number of store requests under the execution contract (a dataset node
  // produces its dataset; a cell produces its record and re-reads the
  // dataset; a figure node re-reads the dataset and, unless skipped,
  // produces its disparity analysis whose producer re-reads the dataset
  // once more). On a fresh run these equal ArtifactStore::produced() /
  // reused() — the golden test pins that — but counting the graph keeps
  // the report bytes invariant even if a future code path adds
  // conditional store lookups.
  uint64_t artifacts_produced = 0;
  uint64_t artifacts_reused = 0;
  for (const GraphNode& node : graph.nodes()) {
    switch (node.kind) {
      case NodeKind::kDataset:
        ++artifacts_produced;
        break;
      case NodeKind::kCell:
        ++artifacts_produced;
        ++artifacts_reused;
        break;
      case NodeKind::kFigure: {
        ++artifacts_reused;
        auto value = std::static_pointer_cast<const FigureValue>(
            node_values_[node.id]);
        if (value != nullptr && !value->skipped) {
          ++artifacts_produced;
          ++artifacts_reused;
        }
        break;
      }
      default:
        break;
    }
  }
  out += StrFormat(",\"artifacts\":{\"produced\":%llu,\"reused\":%llu}",
                   static_cast<unsigned long long>(artifacts_produced),
                   static_cast<unsigned long long>(artifacts_reused));

  // Mass-run classifier (DESIGN.md Section 16): per-class cell totals.
  // Classes are persisted class: records read back on cache hits, so the
  // block is identical between fresh, warm, resumed, and merged runs.
  ClassifierCounts classifier;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kCell) continue;
    auto artifact =
        std::static_pointer_cast<const CellArtifact>(node_values_[node.id]);
    classifier.Add(artifact->cell_class);
  }
  out += ",\"classifier\":" + classifier.ToJson();

  const Impact kImpacts[3] = {Impact::kWorse, Impact::kInsignificant,
                              Impact::kBetter};

  out += ",\"cells\":[";
  bool first = true;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kCell) continue;
    auto artifact =
        std::static_pointer_cast<const CellArtifact>(node_values_[node.id]);
    out += StrFormat(
        "%s{\"id\":%s,\"cache_file\":%s,\"sha256\":%s,\"class\":%s,"
        "\"repeats\":%zu}",
        first ? "" : ",", JsonString(node.label).c_str(),
        JsonString(artifact->cache_file).c_str(),
        JsonString(artifact->sha256).c_str(),
        JsonString(CellClassName(artifact->cell_class)).c_str(),
        artifact->result.dirty.accuracy.size());
    first = false;
  }
  out += "]";

  out += ",\"figures\":[";
  first = true;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kFigure) continue;
    auto value =
        std::static_pointer_cast<const FigureValue>(node_values_[node.id]);
    out += StrFormat("%s{\"id\":%s,\"skipped\":%s,\"rows\":[",
                     first ? "" : ",", JsonString(node.label).c_str(),
                     value->skipped ? "true" : "false");
    first = false;
    if (!value->skipped) {
      bool first_row = true;
      for (const DisparityRow& row : value->rows->rows) {
        out += StrFormat(
            "%s{\"detector\":%s,\"group\":%s,\"privileged_flagged\":%zu,"
            "\"privileged_total\":%zu,\"disadvantaged_flagged\":%zu,"
            "\"disadvantaged_total\":%zu,\"g2\":%s,\"p\":%s,"
            "\"significant\":%s}",
            first_row ? "" : ",", JsonString(row.detector).c_str(),
            JsonString(row.group_key).c_str(), row.privileged_flagged,
            row.privileged_total, row.disadvantaged_flagged,
            row.disadvantaged_total, JsonDouble(row.g2.statistic).c_str(),
            JsonDouble(row.g2.p_value).c_str(),
            row.significant ? "true" : "false");
        first_row = false;
      }
    }
    out += "]}";
  }
  out += "]";

  out += ",\"tables\":[";
  first = true;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kTable) continue;
    const SuiteUnit& unit = spec.units[node.unit_index];
    const TableSpec& table = unit.tables[node.table_index];
    auto value =
        std::static_pointer_cast<const TableValue>(node_values_[node.id]);
    out += StrFormat("%s{\"id\":%s,\"skipped\":%s", first ? "" : ",",
                     JsonString(node.label).c_str(),
                     value->skipped ? "true" : "false");
    first = false;
    if (!value->skipped) {
      out += StrFormat(",\"total\":%lld,\"counts\":[",
                       static_cast<long long>(value->table.Total()));
      for (size_t r = 0; r < 3; ++r) {
        out += r ? ",[" : "[";
        for (size_t c = 0; c < 3; ++c) {
          out += StrFormat(
              "%s%lld", c ? "," : "",
              static_cast<long long>(
                  value->table.cell(kImpacts[r], kImpacts[c])));
        }
        out += "]";
      }
      out += "],\"reference\":[";
      for (size_t r = 0; r < 3; ++r) {
        out += r ? ",[" : "[";
        for (size_t c = 0; c < 3; ++c) {
          out += StrFormat("%s%s", c ? "," : "",
                           JsonDouble(table.reference.cells[r][c]).c_str());
        }
        out += "]";
      }
      double paper_worse = table.reference.cells[0][0] +
                           table.reference.cells[0][1] +
                           table.reference.cells[0][2];
      double paper_better = table.reference.cells[2][0] +
                            table.reference.cells[2][1] +
                            table.reference.cells[2][2];
      int64_t total = value->table.Total();
      double measured_worse =
          total ? 100.0 * value->table.RowTotal(Impact::kWorse) / total : 0.0;
      double measured_better =
          total ? 100.0 * value->table.RowTotal(Impact::kBetter) / total : 0.0;
      bool shape_match = (paper_worse > paper_better) ==
                         (measured_worse > measured_better);
      out += StrFormat("],\"shape_match\":%s",
                       shape_match ? "true" : "false");
    }
    out += "}";
  }
  out += "]";

  out += ",\"model_tables\":[";
  first = true;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind != NodeKind::kModelTable) continue;
    const SuiteUnit& unit = spec.units[node.unit_index];
    auto value = std::static_pointer_cast<const ModelTableValue>(
        node_values_[node.id]);
    out += StrFormat("%s{\"id\":%s,\"skipped\":%s,\"models\":[",
                     first ? "" : ",", JsonString(node.label).c_str(),
                     value->skipped ? "true" : "false");
    first = false;
    if (!value->skipped) {
      bool first_model = true;
      for (const ModelReference& paper : unit.model_references) {
        auto it = value->tallies.find(paper.model);
        ModelTableValue::Tally tally;
        if (it != value->tallies.end()) tally = it->second;
        out += StrFormat(
            "%s{\"model\":%s,\"total\":%lld,\"fairness_worse\":%lld,"
            "\"fairness_better\":%lld,\"both_better\":%lld}",
            first_model ? "" : ",", JsonString(paper.model).c_str(),
            static_cast<long long>(tally.total),
            static_cast<long long>(tally.fairness_worse),
            static_cast<long long>(tally.fairness_better),
            static_cast<long long>(tally.both_better));
        first_model = false;
      }
    }
    out += "]}";
  }
  out += "]}";
  out += "\n";
  return out;
}

Status SuiteScheduler::RunSuite(const SuiteSpec& spec,
                                const SuiteFilter& filter) {
  obs::TraceSpan span("sched", [&] { return "suite " + spec.name; });
  ExperimentGraph graph = ExperimentGraph::Build(spec, filter);
  FC_LOG_INFO("suite",
              "%s: %zu nodes (%zu datasets, %zu cells, %zu figures), "
              "width %zu",
              spec.name.c_str(), graph.nodes().size(),
              graph.CountKind(NodeKind::kDataset),
              graph.CountKind(NodeKind::kCell),
              graph.CountKind(NodeKind::kFigure), width_);
  FC_RETURN_IF_ERROR(ExecuteGraph(spec, graph));
  for (size_t unit_index : graph.selected_units()) {
    PrintUnitHeading(spec.units[unit_index]);
    FC_RETURN_IF_ERROR(RenderUnitBody(spec, graph, unit_index));
    std::printf("\n");
  }
  report_json_ = BuildReportJson(spec, graph, filter);
  if (!options_.report_path.empty()) {
    FC_RETURN_IF_ERROR(WriteFileAtomic(options_.report_path, report_json_));
    FC_LOG_INFO("suite", "report written to %s", options_.report_path.c_str());
  }
  return Status::OK();
}

Status SuiteScheduler::RunUnit(const SuiteUnit& unit) {
  SuiteSpec spec;
  spec.name = unit.name;
  spec.units.push_back(unit);
  SuiteFilter filter = SuiteFilter::Parse(unit.name);
  ExperimentGraph graph = ExperimentGraph::Build(spec, filter);
  PrintUnitHeading(unit);
  FC_RETURN_IF_ERROR(ExecuteGraph(spec, graph));
  return RenderUnitBody(spec, graph, 0);
}

}  // namespace sched
}  // namespace fairclean
