#ifndef FAIRCLEAN_SCHED_ARTIFACT_STORE_H_
#define FAIRCLEAN_SCHED_ARTIFACT_STORE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fairclean {
namespace sched {

/// Content-addressed, in-process memoization of shared suite artifacts
/// (generated datasets, experiment-cell records, disparity analyses).
///
/// Keys are canonical serializations of everything that determines the
/// artifact's bytes (see DatasetArtifactKey / CellArtifactKey /
/// DisparityArtifactKey): because every producer is deterministic given
/// those inputs, key equality implies byte equality, and an artifact is
/// produced exactly once no matter how many graph nodes consume it.
///
/// Thread-safe: concurrent GetOrCreate calls for the same key block until
/// the first caller's producer finishes, then share its value (or its
/// failure). Production runs outside the store lock, so distinct keys
/// produce concurrently. Counters "sched.artifacts_produced" and
/// "sched.artifacts_reused" record first productions and cache hits.
class ArtifactStore {
 public:
  /// Instruments are registered on `metrics` (pass a scheduler-scoped
  /// registry so suite counters stay separable from the global export).
  explicit ArtifactStore(obs::MetricsRegistry* metrics);

  using Producer = std::function<Result<std::shared_ptr<const void>>()>;
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// Returns the artifact for `key`, running `producer` if and only if this
  /// is the first request. A deterministically failed production is
  /// memoized too: every consumer of the key sees the same status instead
  /// of retrying a deterministic failure. *Transient* failures
  /// (DeadlineExceeded, Unavailable) are NOT memoized — the entry is
  /// dropped so a later request re-runs the producer; the serving layer
  /// relies on this to resume a deadline-expired cell from its journal
  /// instead of being poisoned by the first expiry forever.
  ///
  /// `deadline` bounds how long a non-owning caller waits for another
  /// caller's in-flight production of the same key; on expiry it returns
  /// DeadlineExceeded without disturbing the production. The owning caller
  /// (the one running `producer`) is never interrupted here — per-request
  /// deadlines inside the producer are the producer's own concern.
  Result<std::shared_ptr<const void>> GetOrCreate(const std::string& key,
                                                  const Producer& producer,
                                                  const Deadline& deadline = {});

  /// Typed convenience wrapper: `produce` returns Result<T>.
  template <typename T, typename Fn>
  Result<std::shared_ptr<const T>> GetOrCreateAs(const std::string& key,
                                                 Fn&& produce,
                                                 const Deadline& deadline = {}) {
    Result<std::shared_ptr<const void>> erased = GetOrCreate(
        key,
        [&]() -> Result<std::shared_ptr<const void>> {
          Result<T> value = produce();
          if (!value.ok()) return value.status();
          return std::shared_ptr<const void>(
              std::make_shared<const T>(std::move(*value)));
        },
        deadline);
    if (!erased.ok()) return erased.status();
    // Keys carry a type namespace prefix ("dataset:", "cell:", ...), so a
    // key is only ever requested at one T.
    return std::static_pointer_cast<const T>(*erased);
  }

  /// First productions so far (including failed ones).
  uint64_t produced() const;
  /// Requests served from an already-produced entry.
  uint64_t reused() const;
  /// All keys requested so far, sorted.
  std::vector<std::string> Keys() const;

 private:
  struct Entry {
    bool ready = false;
    Status status = Status::OK();
    std::shared_ptr<const void> value;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  obs::Counter* produced_;
  obs::Counter* reused_;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_ARTIFACT_STORE_H_
