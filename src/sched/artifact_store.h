#ifndef FAIRCLEAN_SCHED_ARTIFACT_STORE_H_
#define FAIRCLEAN_SCHED_ARTIFACT_STORE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fairclean {
namespace sched {

/// Content-addressed, in-process memoization of shared suite artifacts
/// (generated datasets, experiment-cell records, disparity analyses).
///
/// Keys are canonical serializations of everything that determines the
/// artifact's bytes (see DatasetArtifactKey / CellArtifactKey /
/// DisparityArtifactKey): because every producer is deterministic given
/// those inputs, key equality implies byte equality, and an artifact is
/// produced exactly once no matter how many graph nodes consume it.
///
/// Thread-safe: concurrent GetOrCreate calls for the same key block until
/// the first caller's producer finishes, then share its value (or its
/// failure). Production runs outside the store lock, so distinct keys
/// produce concurrently. Counters "sched.artifacts_produced" and
/// "sched.artifacts_reused" record first productions and cache hits.
class ArtifactStore {
 public:
  /// Instruments are registered on `metrics` (pass a scheduler-scoped
  /// registry so suite counters stay separable from the global export).
  explicit ArtifactStore(obs::MetricsRegistry* metrics);

  using Producer = std::function<Result<std::shared_ptr<const void>>()>;

  /// Returns the artifact for `key`, running `producer` if and only if this
  /// is the first request. A failed production is memoized too: every
  /// consumer of the key sees the same status instead of retrying a
  /// deterministic failure.
  Result<std::shared_ptr<const void>> GetOrCreate(const std::string& key,
                                                  const Producer& producer);

  /// Typed convenience wrapper: `produce` returns Result<T>.
  template <typename T, typename Fn>
  Result<std::shared_ptr<const T>> GetOrCreateAs(const std::string& key,
                                                 Fn&& produce) {
    Result<std::shared_ptr<const void>> erased =
        GetOrCreate(key, [&]() -> Result<std::shared_ptr<const void>> {
          Result<T> value = produce();
          if (!value.ok()) return value.status();
          return std::shared_ptr<const void>(
              std::make_shared<const T>(std::move(*value)));
        });
    if (!erased.ok()) return erased.status();
    // Keys carry a type namespace prefix ("dataset:", "cell:", ...), so a
    // key is only ever requested at one T.
    return std::static_pointer_cast<const T>(*erased);
  }

  /// First productions so far (including failed ones).
  uint64_t produced() const;
  /// Requests served from an already-produced entry.
  uint64_t reused() const;
  /// All keys requested so far, sorted.
  std::vector<std::string> Keys() const;

 private:
  struct Entry {
    bool ready = false;
    Status status = Status::OK();
    std::shared_ptr<const void> value;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  obs::Counter* produced_;
  obs::Counter* reused_;
};

}  // namespace sched
}  // namespace fairclean

#endif  // FAIRCLEAN_SCHED_ARTIFACT_STORE_H_
