#include "sched/experiment_graph.h"

#include <algorithm>
#include <map>

#include "datasets/generator.h"

namespace fairclean {
namespace sched {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDataset:
      return "dataset";
    case NodeKind::kCell:
      return "cell";
    case NodeKind::kFigure:
      return "figure";
    case NodeKind::kTable:
      return "table";
    case NodeKind::kModelTable:
      return "model_table";
  }
  return "unknown";
}

ExperimentGraph ExperimentGraph::Build(const SuiteSpec& spec,
                                       const SuiteFilter& filter) {
  ExperimentGraph graph;
  std::map<std::string, size_t> dataset_nodes;
  std::map<std::string, size_t> cell_nodes;

  auto dataset_node = [&](const std::string& name) -> size_t {
    auto it = dataset_nodes.find(name);
    if (it != dataset_nodes.end()) return it->second;
    GraphNode node;
    node.id = graph.nodes_.size();
    node.kind = NodeKind::kDataset;
    node.label = "dataset/" + name;
    node.dataset = name;
    graph.nodes_.push_back(node);
    dataset_nodes.emplace(name, node.id);
    return node.id;
  };

  auto cell_node = [&](const CellKey& cell) -> size_t {
    std::string id = cell.Id();
    auto it = cell_nodes.find(id);
    if (it != cell_nodes.end()) return it->second;
    // Resolve the dataset dependency first: it may append a node, so the
    // cell's own id must be assigned after.
    size_t dataset_dep = dataset_node(cell.dataset);
    GraphNode node;
    node.id = graph.nodes_.size();
    node.kind = NodeKind::kCell;
    node.label = id;
    node.cell = cell;
    node.deps.push_back(dataset_dep);
    graph.nodes_.push_back(node);
    cell_nodes.emplace(id, node.id);
    return node.id;
  };

  for (size_t u = 0; u < spec.units.size(); ++u) {
    const SuiteUnit& unit = spec.units[u];
    bool by_name = filter.MatchesName(unit.name);
    std::vector<CellKey> all_cells = UnitCells(unit);

    // Which cells (or figure datasets) of this unit the filter keeps.
    std::vector<CellKey> kept;
    std::vector<std::string> kept_datasets;
    if (unit.kind == SuiteUnit::Kind::kFigure) {
      for (const std::string& name : AllDatasetNames()) {
        if (filter.Empty() || by_name ||
            filter.MatchesName(unit.name + "/" + name)) {
          kept_datasets.push_back(name);
        }
      }
    } else if (filter.Empty() || by_name) {
      kept = all_cells;
    } else {
      for (const CellKey& cell : all_cells) {
        if (filter.MatchesName(cell.Id())) kept.push_back(cell);
      }
    }

    bool selected;
    if (unit.only_on_filter) {
      selected = by_name;  // smoke-style units need to be named explicitly
    } else if (filter.Empty() || by_name) {
      selected = true;
    } else {
      selected = !kept.empty() || !kept_datasets.empty();
    }
    if (!selected) continue;
    graph.selected_.push_back(u);
    if (unit.kind != SuiteUnit::Kind::kFigure && kept.size() < all_cells.size()) {
      graph.narrowed_.push_back(u);
    }

    std::vector<size_t> cell_ids;
    cell_ids.reserve(kept.size());
    for (const CellKey& cell : kept) cell_ids.push_back(cell_node(cell));

    switch (unit.kind) {
      case SuiteUnit::Kind::kTables:
        for (size_t t = 0; t < unit.tables.size(); ++t) {
          GraphNode node;
          node.id = graph.nodes_.size();
          node.kind = NodeKind::kTable;
          node.label = unit.name + "/" + unit.tables[t].reference.label;
          node.deps = cell_ids;
          node.unit_index = u;
          node.table_index = t;
          graph.nodes_.push_back(node);
        }
        break;
      case SuiteUnit::Kind::kModelTable: {
        GraphNode node;
        node.id = graph.nodes_.size();
        node.kind = NodeKind::kModelTable;
        node.label = unit.name;
        node.deps = cell_ids;
        node.unit_index = u;
        graph.nodes_.push_back(node);
        break;
      }
      case SuiteUnit::Kind::kFigure:
        for (const std::string& name : kept_datasets) {
          size_t dataset_dep = dataset_node(name);  // may append a node
          GraphNode node;
          node.id = graph.nodes_.size();
          node.kind = NodeKind::kFigure;
          node.label = unit.name + "/" + name;
          node.dataset = name;
          node.intersectional = unit.fig_intersectional;
          node.unit_index = u;
          node.deps.push_back(dataset_dep);
          graph.nodes_.push_back(node);
        }
        break;
    }
  }
  return graph;
}

size_t ExperimentGraph::CountKind(NodeKind kind) const {
  size_t count = 0;
  for (const GraphNode& node : nodes_) {
    if (node.kind == kind) ++count;
  }
  return count;
}

std::vector<std::vector<size_t>> ExperimentGraph::Waves() const {
  std::vector<size_t> level(nodes_.size(), 0);
  size_t max_level = 0;
  // Nodes are created after their dependencies, so one forward pass
  // computes longest-chain levels.
  for (const GraphNode& node : nodes_) {
    for (size_t dep : node.deps) {
      level[node.id] = std::max(level[node.id], level[dep] + 1);
    }
    max_level = std::max(max_level, level[node.id]);
  }
  std::vector<std::vector<size_t>> waves(max_level + 1);
  for (const GraphNode& node : nodes_) waves[level[node.id]].push_back(node.id);
  return waves;
}

}  // namespace sched
}  // namespace fairclean
