#include "sched/shard.h"

#include <cstdio>

#include "common/strings.h"

namespace fairclean {
namespace sched {

const char* ShardModeName(ShardMode mode) {
  switch (mode) {
    case ShardMode::kNone:
      return "none";
    case ShardMode::kStatic:
      return "static";
    case ShardMode::kClaim:
      return "claim";
  }
  return "unknown";
}

std::string ShardSpec::Label() const {
  return StrFormat("shard-%zu/%zu", index + 1, count);
}

Result<ShardSpec> ParseShardSpec(ShardMode mode, const std::string& text) {
  // Digits and one '/' only: sscanf's %llu would silently wrap a negative
  // component instead of rejecting it.
  for (char c : text) {
    if (c != '/' && (c < '0' || c > '9')) {
      return Status::InvalidArgument(
          "shard spec must be \"i/N\" with 1 <= i <= N, got \"" + text +
          "\"");
    }
  }
  unsigned long long i = 0;
  unsigned long long n = 0;
  char trailing = '\0';
  int fields = std::sscanf(text.c_str(), "%llu/%llu%c", &i, &n, &trailing);
  if (fields != 2 || i < 1 || n < 1 || i > n) {
    return Status::InvalidArgument(
        "shard spec must be \"i/N\" with 1 <= i <= N, got \"" + text + "\"");
  }
  ShardSpec spec;
  spec.mode = mode;
  spec.index = static_cast<size_t>(i - 1);
  spec.count = static_cast<size_t>(n);
  return spec;
}

std::vector<size_t> StaticShardIndices(size_t item_count, size_t shard_index,
                                       size_t shard_count) {
  std::vector<size_t> mine;
  if (shard_count == 0 || shard_index >= shard_count) return mine;
  for (size_t j = shard_index; j < item_count; j += shard_count) {
    mine.push_back(j);
  }
  return mine;
}

std::string ClaimKeyFor(const CellKey& cell) { return "claim:" + cell.Id(); }

std::string ClassKeyFor(const std::string& cache_key) {
  return "class:" + cache_key;
}

const char* CellClassName(CellClass cls) {
  switch (cls) {
    case CellClass::kStolen:
      return "stolen";
    case CellClass::kBudgetExceeded:
      return "budget_exceeded";
    case CellClass::kSkipped:
      return "skipped";
    case CellClass::kDegenerateRetry:
      return "degenerate_retry";
    case CellClass::kPass:
      return "pass";
  }
  return "unknown";
}

Result<CellClass> CellClassFromName(const std::string& name) {
  for (CellClass cls :
       {CellClass::kStolen, CellClass::kBudgetExceeded, CellClass::kSkipped,
        CellClass::kDegenerateRetry, CellClass::kPass}) {
    if (name == CellClassName(cls)) return cls;
  }
  return Status::InvalidArgument("unknown cell class \"" + name + "\"");
}

void ClassifierCounts::Add(CellClass cls) {
  switch (cls) {
    case CellClass::kStolen:
      ++stolen;
      return;
    case CellClass::kBudgetExceeded:
      ++budget_exceeded;
      return;
    case CellClass::kSkipped:
      ++skipped;
      return;
    case CellClass::kDegenerateRetry:
      ++degenerate_retry;
      return;
    case CellClass::kPass:
      ++pass;
      return;
  }
}

std::string ClassifierCounts::ToJson() const {
  return StrFormat(
      "{\"pass\":%llu,\"degenerate_retry\":%llu,\"skipped\":%llu,"
      "\"budget_exceeded\":%llu,\"stolen\":%llu}",
      static_cast<unsigned long long>(pass),
      static_cast<unsigned long long>(degenerate_retry),
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(budget_exceeded),
      static_cast<unsigned long long>(stolen));
}

}  // namespace sched
}  // namespace fairclean
