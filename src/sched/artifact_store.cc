#include "sched/artifact_store.h"

namespace fairclean {
namespace sched {

ArtifactStore::ArtifactStore(obs::MetricsRegistry* metrics)
    : produced_(metrics->GetCounter("sched.artifacts_produced")),
      reused_(metrics->GetCounter("sched.artifacts_reused")) {}

namespace {

// Failures worth retrying: the producer stopped at a request deadline
// (checkpointed, resumable) or was shed under overload. Everything else is
// deterministic given the key and stays memoized.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

Result<std::shared_ptr<const void>> ArtifactStore::GetOrCreate(
    const std::string& key, const Producer& producer,
    const Deadline& deadline) {
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      owner = true;
    }
    entry = it->second;
  }

  if (owner) {
    // Produce outside the lock so distinct keys build concurrently.
    Result<std::shared_ptr<const void>> value = producer();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (value.ok()) {
        entry->value = *value;
      } else {
        entry->status = value.status();
        if (IsTransient(entry->status)) {
          // Waiters blocked on this entry still observe the transient
          // status (via their shared_ptr), but the key is vacated so the
          // next request re-runs the producer — which resumes from the
          // journal instead of replaying a memoized failure forever.
          auto it = entries_.find(key);
          if (it != entries_.end() && it->second == entry) entries_.erase(it);
        }
      }
      entry->ready = true;
    }
    ready_cv_.notify_all();
    produced_->Increment();
    if (!entry->status.ok()) return entry->status;
    return entry->value;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (deadline.has_value()) {
    if (!ready_cv_.wait_until(lock, *deadline,
                              [&entry] { return entry->ready; })) {
      return Status::DeadlineExceeded(
          "deadline expired waiting for in-flight production of " + key);
    }
  } else {
    ready_cv_.wait(lock, [&entry] { return entry->ready; });
  }
  reused_->Increment();
  if (!entry->status.ok()) return entry->status;
  return entry->value;
}

uint64_t ArtifactStore::produced() const { return produced_->value(); }

uint64_t ArtifactStore::reused() const { return reused_->value(); }

std::vector<std::string> ArtifactStore::Keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace sched
}  // namespace fairclean
