#ifndef FAIRCLEAN_COMMON_THREAD_POOL_H_
#define FAIRCLEAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fairclean {

namespace internal {
/// Observability hooks for Submit (implemented in thread_pool.cc so the
/// template stays header-only without pulling obs headers in here).
/// Returns the enqueue timestamp in microseconds when tracing or metrics
/// export is active, -1 otherwise — so the disabled path never reads a
/// clock.
int64_t QueueEnqueueStamp();
/// Records now - enqueue_us into the "threadpool.queue_wait_s" histogram;
/// no-op when enqueue_us < 0.
void ObserveQueueWait(int64_t enqueue_us);
/// The submitter's ambient trace id (0 = none), captured at Submit so the
/// task inherits the request context it was spawned under.
uint64_t SubmitTraceId();
/// Installs `trace_id` as the worker's ambient context; returns the
/// previous id so the task wrapper can restore it after running.
uint64_t SwapTraceId(uint64_t trace_id);
}  // namespace internal

/// Fixed-size worker pool used to fan out independent units of work
/// (repeat slices in the study driver, cross-validation folds in
/// hyperparameter search).
///
/// Tasks are submitted as callables and their results retrieved through
/// std::future; an exception thrown by a task is captured in the future and
/// rethrown at get(), never on a worker thread. The destructor runs every
/// task already submitted before joining, so futures obtained from Submit
/// are always satisfied and task captures stay alive for the task's whole
/// execution as long as they outlive the pool object.
///
/// Nested parallelism is deliberately not supported: a task that blocks on
/// futures of the same (or another) fixed pool can deadlock once all
/// workers block. Code that may run either at top level or inside a pool
/// task checks OnWorkerThread() and falls back to inline execution.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns the future of its result. Safe to call from
  /// any thread except a worker of this pool (nested submission from a
  /// worker would risk deadlock and is reported via OnWorkerThread()).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    int64_t enqueue_us = internal::QueueEnqueueStamp();
    uint64_t trace_id = internal::SubmitTraceId();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push([task, enqueue_us, trace_id]() {
        // The task runs under the submitter's trace id, so repeat slices
        // fanned out by a request's driver still tag its spans.
        uint64_t previous = internal::SwapTraceId(trace_id);
        internal::ObserveQueueWait(enqueue_us);
        (*task)();  // packaged_task captures exceptions; never throws here
        internal::SwapTraceId(previous);
      });
    }
    cv_.notify_one();
    return future;
  }

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// the fold loops to run inline instead of re-entering a pool from a pool
  /// task.
  static bool OnWorkerThread();

  /// Worker count from FAIRCLEAN_THREADS; unset or <= 0 falls back to
  /// std::thread::hardware_concurrency() (minimum 1).
  static size_t DefaultThreadCount();

  /// Process-wide pool for fold-level parallelism, or nullptr when fold
  /// loops should run inline: on a worker thread (no nesting), or when the
  /// configured thread count is 1. The pool is created on first use with
  /// DefaultThreadCount() workers and lives for the process.
  static ThreadPool* SharedForFolds();

 private:
  void WorkerLoop(size_t worker_index);

  size_t pool_id_ = 0;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Invokes `fn`, converting a thrown exception into Status::Internal so
/// pool tasks whose natural result is a Status never terminate the process.
Status InvokeWithStatusCapture(const std::function<Status()>& fn);

/// Runs fn(0) .. fn(count - 1) — across `pool` when non-null, inline
/// otherwise — and returns the results in index order, so downstream
/// accumulation (float sums, skip counting) is order-independent of the
/// scheduling. Every submitted task is drained before the first captured
/// exception is rethrown, which keeps by-reference captures valid even on
/// failure. `fn` must be safe to call concurrently for distinct indices.
template <typename Fn>
auto RunIndexed(ThreadPool* pool, size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<std::decay_t<Fn>, size_t>> {
  using R = std::invoke_result_t<std::decay_t<Fn>, size_t>;
  std::vector<R> results;
  results.reserve(count);
  if (pool == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool->Submit([&fn, i]() { return fn(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<R>& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_THREAD_POOL_H_
