#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace fairclean {

namespace internal {

int64_t QueueEnqueueStamp() {
  if (!obs::TraceEnabled() && !obs::MetricsExportEnabled()) return -1;
  return obs::Tracer::Global().NowMicros();
}

void ObserveQueueWait(int64_t enqueue_us) {
  if (enqueue_us < 0) return;
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "threadpool.queue_wait_s",
          obs::MetricsRegistry::DefaultLatencyBounds());
  int64_t waited_us = obs::Tracer::Global().NowMicros() - enqueue_us;
  histogram->Observe(static_cast<double>(waited_us) * 1e-6);
}

uint64_t SubmitTraceId() { return obs::CurrentTraceId(); }

uint64_t SwapTraceId(uint64_t trace_id) {
  return obs::SwapCurrentTraceId(trace_id);
}

}  // namespace internal

namespace {

thread_local bool t_on_worker_thread = false;

// Distinguishes workers of different pools in trace thread names.
std::atomic<size_t> g_next_pool_id{1};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : pool_id_(g_next_pool_id.fetch_add(1, std::memory_order_relaxed)) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_on_worker_thread = true;
  // Sticks for the thread's lifetime; spans executed on this worker carry
  // its tid and the trace shows a "worker-<pool>-<index>" lane.
  obs::Tracer::SetCurrentThreadName("worker-" + std::to_string(pool_id_) +
                                    "-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: every submitted future must be
      // satisfied, and tasks may reference state the submitter keeps alive
      // until the pool is destroyed.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

size_t ThreadPool::DefaultThreadCount() {
  int64_t configured = GetEnvInt64("FAIRCLEAN_THREADS", 0);
  if (configured > 0) return static_cast<size_t>(configured);
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<size_t>(hardware);
}

ThreadPool* ThreadPool::SharedForFolds() {
  if (OnWorkerThread()) return nullptr;
  // Sized once at first use; a 1-thread configuration disables fold
  // parallelism entirely rather than paying queue overhead for nothing.
  static ThreadPool* shared = []() -> ThreadPool* {
    size_t count = DefaultThreadCount();
    return count <= 1 ? nullptr : new ThreadPool(count);
  }();
  return shared;
}

Status InvokeWithStatusCapture(const std::function<Status()>& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-standard exception");
  }
}

}  // namespace fairclean
