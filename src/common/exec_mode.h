#ifndef FAIRCLEAN_COMMON_EXEC_MODE_H_
#define FAIRCLEAN_COMMON_EXEC_MODE_H_

#include <string>

#include "common/status.h"

namespace fairclean {

/// How much cross-cell / cross-grid-point work sharing the execution layers
/// are allowed to do. Every mode produces byte-identical suite reports and
/// cache records (DESIGN.md §8/§15); the ladder only trades recomputation
/// for reuse:
///
///   - kNaive: no sharing. Tuning re-materializes fold slices (and GBDT
///     presorts) per grid point, cells regenerate their dataset instead of
///     consuming the wave plan, and predict paths use the plain per-query /
///     per-row kernels.
///   - kShared: one-time materialization is cached and reused — per-tune
///     fold-data cache, per-fold GBDT global presort, and the wave planner's
///     per-(dataset, seed) shared plan.
///   - kFused: everything in kShared, plus batched kernels that score many
///     units per pass: the kNN tuning grid is evaluated from a single
///     top-max(k) sweep, kNN prediction packs the train panels once per
///     call, and GBDT prediction runs trees-outer over row blocks.
enum class ExecMode {
  kNaive,
  kShared,
  kFused,
};

/// Canonical lowercase token for the mode ("naive" / "shared" / "fused").
const char* ExecModeName(ExecMode mode);

/// Strict parse of a mode token. Anything but an exact lowercase match of a
/// known mode is an InvalidArgument naming the known modes.
Result<ExecMode> ParseExecMode(const std::string& token);

/// Resolves FAIRCLEAN_EXEC_MODE (default: fused). Unknown tokens are a
/// hard error, same contract as FAIRCLEAN_STORE.
Result<ExecMode> ExecModeFromEnv();

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_EXEC_MODE_H_
