#ifndef FAIRCLEAN_COMMON_FAULT_INJECTION_H_
#define FAIRCLEAN_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace fairclean {

/// Deterministic, seeded fault-injection harness.
///
/// Production code declares named injection *sites* — the driver's storage
/// and compute boundaries ("cache_write", "cache_read", "csv_parse",
/// "numeric", "interrupt"), the paged storage engine's page IO
/// ("page_read", "page_write"), and the serving layer's request lifecycle
/// ("socket_read", "socket_write", "request_parse", "worker_stall"); each
/// site is a no-op unless a fault was armed for it, so the instrumentation
/// is free on the happy path. Faults are armed from a spec string (usually
/// the FAIRCLEAN_FAULTS environment variable):
///
///   site:probability[:max_fires][,site:probability[:max_fires]...]
///
/// e.g. "cache_write:0.5,csv_parse:1:1" — cache writes fail with
/// probability 0.5, and exactly the first CSV parse fails. Every site draws
/// from its own Rng seeded with `seed ^ fnv1a(site)`, so firing decisions
/// are reproducible and independent of how sites interleave. max_fires
/// bounds how often a site triggers (default: unlimited), which lets tests
/// model transient faults that succeed on retry.
///
/// The injector is process-global and thread-safe: the study driver fans
/// repeat slices out across a thread pool and every slice may probe its
/// sites concurrently. Firing decisions stay reproducible per site because
/// each site draws from its own RNG; under concurrency the *order* in which
/// different call sites consume a shared site's draws is scheduling-
/// dependent, so deterministic tests arm probabilities 0 or 1 (exact
/// never/always semantics) when running multi-threaded. Tests must Reset()
/// the injector when done.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Every site name production code probes, sorted. A spec naming any
  /// other site is rejected by Configure: a typo'd site ("cache_wirte")
  /// would arm nothing and silently turn a chaos test into a false green.
  static const std::vector<std::string>& KnownSites();

  /// Arms faults from a spec string (see class comment). An empty spec
  /// disarms everything. InvalidArgument on a malformed spec, a probability
  /// outside [0, 1], an empty site name, or a site not in KnownSites().
  Status Configure(const std::string& spec, uint64_t seed);

  /// Arms from FAIRCLEAN_FAULTS / FAIRCLEAN_FAULT_SEED (default seed 42).
  /// Aborts start-up by returning the parse error when the spec is bad —
  /// silently ignoring a typo'd fault plan would invalidate a robustness
  /// test without anyone noticing.
  Status ConfigureFromEnv();

  /// Disarms all sites and clears counters.
  void Reset();

  /// True when any site is armed.
  bool enabled() const;

  /// Draws the site's Bernoulli; true when the fault fires. Unarmed sites
  /// never fire and consume no randomness.
  bool ShouldFire(const std::string& site);

  /// IoError("injected fault at <site>") when the site fires, OK otherwise.
  Status Inject(const std::string& site);

  /// Returns NaN when the site fires, `value` untouched otherwise. Used at
  /// numeric boundaries to model corrupted scores.
  double CorruptScore(const std::string& site, double value);

  /// Times the site has fired since Configure/Reset.
  uint64_t fires(const std::string& site) const;

 private:
  struct Site {
    double probability = 0.0;
    uint64_t max_fires = UINT64_MAX;
    uint64_t fires = 0;
    Rng rng{0};
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site> sites_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_FAULT_INJECTION_H_
