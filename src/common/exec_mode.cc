#include "common/exec_mode.h"

#include "common/env.h"

namespace fairclean {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kNaive:
      return "naive";
    case ExecMode::kShared:
      return "shared";
    case ExecMode::kFused:
      return "fused";
  }
  return "fused";
}

Result<ExecMode> ParseExecMode(const std::string& token) {
  if (token == "naive") return ExecMode::kNaive;
  if (token == "shared") return ExecMode::kShared;
  if (token == "fused") return ExecMode::kFused;
  return Status::InvalidArgument(
      "FAIRCLEAN_EXEC_MODE must be \"naive\", \"shared\" or \"fused\", "
      "got \"" +
      token + "\"");
}

Result<ExecMode> ExecModeFromEnv() {
  return ParseExecMode(GetEnvString("FAIRCLEAN_EXEC_MODE", "fused"));
}

}  // namespace fairclean
