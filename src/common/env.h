#ifndef FAIRCLEAN_COMMON_ENV_H_
#define FAIRCLEAN_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace fairclean {

/// Reads an integer knob from the environment, falling back to
/// `default_value` when unset or unparsable. Used by the benchmark harness
/// for scale knobs (FAIRCLEAN_REPEATS, FAIRCLEAN_SAMPLE, FAIRCLEAN_SEED).
int64_t GetEnvInt64(const char* name, int64_t default_value);

/// Reads a floating-point knob from the environment (e.g.
/// FAIRCLEAN_TIME_BUDGET_S), falling back to `default_value` when unset,
/// unparsable, or non-finite.
double GetEnvDouble(const char* name, double default_value);

/// Reads a string knob from the environment.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_ENV_H_
