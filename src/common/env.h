#ifndef FAIRCLEAN_COMMON_ENV_H_
#define FAIRCLEAN_COMMON_ENV_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairclean {

/// Reads an integer knob from the environment, falling back to
/// `default_value` when unset or unparsable. Used by the benchmark harness
/// for scale knobs (FAIRCLEAN_REPEATS, FAIRCLEAN_SAMPLE, FAIRCLEAN_SEED).
int64_t GetEnvInt64(const char* name, int64_t default_value);

/// Reads a floating-point knob from the environment (e.g.
/// FAIRCLEAN_TIME_BUDGET_S), falling back to `default_value` when unset,
/// unparsable, or non-finite.
double GetEnvDouble(const char* name, double default_value);

/// Reads a string knob from the environment.
std::string GetEnvString(const char* name, const std::string& default_value);

/// Strict variant for count knobs (FAIRCLEAN_MAX_RETRIES, FAIRCLEAN_SAMPLE,
/// queue depths): unset/empty yields `default_value`, anything else must be
/// a non-negative decimal integer with no trailing garbage. Unlike
/// GetEnvInt64, a typo'd knob is a hard InvalidArgument instead of a silent
/// fallback — a misread scale or retry budget invalidates a run without
/// anyone noticing.
Result<int64_t> GetEnvCount(const char* name, int64_t default_value);

/// Strict variant for budget/duration knobs (FAIRCLEAN_TIME_BUDGET_S,
/// FAIRCLEAN_SERVE_DEADLINE_S): unset/empty yields `default_value`,
/// anything else must be a finite non-negative double with no trailing
/// garbage ("3.5x", "nan", "inf" and "-1" are all InvalidArgument).
Result<double> GetEnvBudgetSeconds(const char* name, double default_value);

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_ENV_H_
