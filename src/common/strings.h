#ifndef FAIRCLEAN_COMMON_STRINGS_H_
#define FAIRCLEAN_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairclean {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on every occurrence of `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_STRINGS_H_
