#ifndef FAIRCLEAN_COMMON_STATUS_H_
#define FAIRCLEAN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fairclean {

/// Error categories used across the library. Modeled after the Status
/// idiom from Arrow/RocksDB: operations that can fail return a Status (or a
/// Result<T>, below) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Statuses are cheap to copy in the OK case (empty message). Use the
/// factory functions (Status::OK(), Status::InvalidArgument(...)) rather
/// than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A soft deadline (e.g. FAIRCLEAN_TIME_BUDGET_S) was hit; work stopped
  /// cleanly at a resumable boundary rather than being killed mid-write.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service is overloaded (admission queue full) and explicitly shed
  /// this request rather than queueing it unboundedly. Transient by
  /// definition: retrying after a backoff is expected to succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. The value is accessible via
/// ValueOrDie()/operator* only when ok(); accessing it otherwise aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::DieIfError() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(repr_));
}

/// Propagates an error Status from the current function.
#define FC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::fairclean::Status _fc_st = (expr);          \
    if (!_fc_st.ok()) return _fc_st;              \
  } while (false)

#define FC_CONCAT_IMPL_(x, y) x##y
#define FC_CONCAT_(x, y) FC_CONCAT_IMPL_(x, y)

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define FC_ASSIGN_OR_RETURN(lhs, expr)                          \
  FC_ASSIGN_OR_RETURN_IMPL_(FC_CONCAT_(_fc_result_, __LINE__), lhs, expr)

#define FC_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).ValueOrDie();

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_STATUS_H_
