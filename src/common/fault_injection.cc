#include "common/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/env.h"
#include "common/strings.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

// Matches the stable hash used for per-repeat seeds in the runner.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

const std::vector<std::string>& FaultInjector::KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "cache_read",  "cache_write", "csv_parse",    "interrupt", "numeric",
      "page_read",     "page_write",  "plan_build",    "request_parse",
      "socket_read",   "socket_write", "worker_stall"};
  return *sites;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::map<std::string, Site> sites;
  if (!StripAsciiWhitespace(spec).empty()) {
    for (const std::string& entry : Split(spec, ',')) {
      std::string_view trimmed = StripAsciiWhitespace(entry);
      if (trimmed.empty()) continue;
      std::vector<std::string> fields = Split(trimmed, ':');
      if (fields.size() < 2 || fields.size() > 3) {
        return Status::InvalidArgument(
            "fault spec entry must be site:prob[:max_fires]: " +
            std::string(trimmed));
      }
      if (fields[0].empty()) {
        return Status::InvalidArgument("empty fault site in spec: " +
                                       std::string(trimmed));
      }
      const std::vector<std::string>& known = KnownSites();
      if (std::find(known.begin(), known.end(), fields[0]) == known.end()) {
        std::string known_list;
        for (const std::string& site : known) {
          if (!known_list.empty()) known_list += ", ";
          known_list += site;
        }
        return Status::InvalidArgument("unknown fault site \"" + fields[0] +
                                       "\" (known sites: " + known_list + ")");
      }
      char* end = nullptr;
      double probability = std::strtod(fields[1].c_str(), &end);
      if (end == fields[1].c_str() || *end != '\0' ||
          !(probability >= 0.0 && probability <= 1.0)) {
        return Status::InvalidArgument("fault probability must be in [0,1]: " +
                                       std::string(trimmed));
      }
      Site site;
      site.probability = probability;
      if (fields.size() == 3) {
        long long max_fires = std::strtoll(fields[2].c_str(), &end, 10);
        if (end == fields[2].c_str() || *end != '\0' || max_fires < 0) {
          return Status::InvalidArgument("bad max_fires in fault spec: " +
                                         std::string(trimmed));
        }
        site.max_fires = static_cast<uint64_t>(max_fires);
      }
      site.rng = Rng(seed ^ Fnv1a(fields[0]));
      sites[fields[0]] = std::move(site);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sites_ = std::move(sites);
  return Status::OK();
}

Status FaultInjector::ConfigureFromEnv() {
  std::string spec = GetEnvString("FAIRCLEAN_FAULTS", "");
  uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("FAIRCLEAN_FAULT_SEED", 42));
  return Configure(spec, seed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !sites_.empty();
}

bool FaultInjector::ShouldFire(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& armed = it->second;
  if (armed.fires >= armed.max_fires) return false;
  // Branch on the edge probabilities so 0 and 1 are exact, not "almost
  // surely": robustness tests rely on never/always semantics.
  bool fire;
  if (armed.probability <= 0.0) {
    fire = false;
  } else if (armed.probability >= 1.0) {
    fire = true;
  } else {
    fire = armed.rng.Bernoulli(armed.probability);
  }
  if (fire) {
    ++armed.fires;
    // Fires show up in the trace timeline as instant events (file sink and
    // per-trace store both), so injected failures line up visually with
    // the retries they cause and the `trace` op shows them per request.
    if (obs::SpanCaptureEnabled()) {
      obs::Tracer::Global().RecordInstant("fault", "fault:" + site);
    }
    if (obs::FlightEnabled()) {
      obs::FlightRecorder::Record(obs::FlightEventType::kFault,
                                  obs::FlightRecorder::Site(site));
    }
    obs::MetricsRegistry::Global().GetCounter("fault.fires." + site)
        ->Increment();
  }
  return fire;
}

Status FaultInjector::Inject(const std::string& site) {
  if (ShouldFire(site)) {
    return Status::IoError("injected fault at " + site);
  }
  return Status::OK();
}

double FaultInjector::CorruptScore(const std::string& site, double value) {
  if (ShouldFire(site)) return std::numeric_limits<double>::quiet_NaN();
  return value;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace fairclean
