#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace fairclean {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "fairclean: ValueOrDie on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fairclean
