#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace fairclean {

Rng Rng::Fork(uint64_t salt) {
  // Mix the parent stream with the salt via splitmix64-style finalization so
  // that forks with different salts are decorrelated.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FC_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  FC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total += w;
  }
  FC_CHECK_GT(total, 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  Shuffle(&out);
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> perm = Permutation(n);
  if (k < n) perm.resize(k);
  return perm;
}

}  // namespace fairclean
