#ifndef FAIRCLEAN_COMMON_RANDOM_H_
#define FAIRCLEAN_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace fairclean {

/// Deterministic random number generator used throughout the library.
///
/// Every randomized decision (dataset synthesis, splits, model seeds,
/// hyperparameter-search tie-breaking) flows through an explicitly seeded
/// Rng, mirroring the paper's reproducibility requirement that all
/// randomized decisions depend on globally specifiable seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator; `salt` distinguishes siblings
  /// forked from the same parent state.
  Rng Fork(uint64_t salt);

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal draw scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Lognormal draw with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);
  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);
  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// `k` distinct indices sampled uniformly from {0, ..., n-1}. If k >= n,
  /// returns a permutation of all n indices.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_RANDOM_H_
