#ifndef FAIRCLEAN_COMMON_CHECK_H_
#define FAIRCLEAN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. These abort the process on violation and are
/// active in all build types: the library's correctness-critical code paths
/// (experiment bookkeeping, index arithmetic) are cheap relative to model
/// training, so we keep the checks on in Release builds.
#define FC_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define FC_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define FC_CHECK_EQ(a, b) FC_CHECK((a) == (b))
#define FC_CHECK_NE(a, b) FC_CHECK((a) != (b))
#define FC_CHECK_LT(a, b) FC_CHECK((a) < (b))
#define FC_CHECK_LE(a, b) FC_CHECK((a) <= (b))
#define FC_CHECK_GT(a, b) FC_CHECK((a) > (b))
#define FC_CHECK_GE(a, b) FC_CHECK((a) >= (b))

#endif  // FAIRCLEAN_COMMON_CHECK_H_
