#include "common/safe_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

void CountBytesRead(size_t bytes) {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("io.bytes_read");
  counter->Increment(bytes);
}

void CountBytesWritten(size_t bytes) {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("io.bytes_written");
  counter->Increment(bytes);
}

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrc32Table();
  uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

Result<std::string> ReadFileToString(const std::string& path) {
  obs::TraceSpan span("io", [&] { return "read " + path; });
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return Status::IoError("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  if (stream.bad()) {
    return Status::IoError("read failed: " + path);
  }
  std::string content = buffer.str();
  CountBytesRead(content.size());
  return content;
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  obs::TraceSpan span("io", [&] { return "write " + path; });
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("cache_write"));
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open for writing", tmp));
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written,
                        content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError(ErrnoMessage("write failed", tmp));
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: the rename must not become durable before the
  // data it points at.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("fsync failed", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("close failed", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError(ErrnoMessage("rename failed", path));
  }
  CountBytesWritten(content.size());
  return Status::OK();
}

std::string AppendChecksumFooter(const std::string& body) {
  return body + StrFormat("%s%08x len=%zu\n", kChecksumFooterPrefix,
                          Crc32(body), body.size());
}

bool HasChecksumFooter(const std::string& content) {
  size_t footer = content.rfind(kChecksumFooterPrefix);
  if (footer == std::string::npos) return false;
  // The footer must start a line and be the last line.
  if (footer != 0 && content[footer - 1] != '\n') return false;
  return content.find('\n', footer) == content.size() - 1;
}

Result<std::string> VerifyChecksumFooter(const std::string& content) {
  size_t footer = content.rfind(kChecksumFooterPrefix);
  if (footer == std::string::npos ||
      (footer != 0 && content[footer - 1] != '\n')) {
    return Status::InvalidArgument("missing checksum footer");
  }
  std::string body = content.substr(0, footer);
  const char* fields = content.c_str() + footer + sizeof(kChecksumFooterPrefix) - 1;
  unsigned int stored_crc = 0;
  size_t stored_len = 0;
  if (std::sscanf(fields, "%8x len=%zu", &stored_crc, &stored_len) != 2) {
    return Status::InvalidArgument("malformed checksum footer");
  }
  if (stored_len != body.size()) {
    return Status::InvalidArgument(
        StrFormat("checksum footer length mismatch: footer says %zu, "
                  "body has %zu bytes",
                  stored_len, body.size()));
  }
  uint32_t actual = Crc32(body);
  if (actual != stored_crc) {
    return Status::InvalidArgument(
        StrFormat("checksum mismatch: footer %08x, body %08x", stored_crc,
                  actual));
  }
  return body;
}

Status WriteChecksummedFile(const std::string& path,
                            const std::string& body) {
  return WriteFileAtomic(path, AppendChecksumFooter(body));
}

Result<std::string> ReadChecksummedFile(const std::string& path) {
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("cache_read"));
  FC_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  Result<std::string> body = VerifyChecksumFooter(content);
  if (!body.ok()) {
    return Status::InvalidArgument(path + ": " + body.status().message());
  }
  return body;
}

Result<std::string> QuarantineFile(const std::string& path) {
  // Unique suffixes (.corrupt, .corrupt.1, ...): a second corruption of
  // the same path used to silently overwrite the first quarantine, which
  // destroyed exactly the evidence quarantining exists to keep.
  std::string quarantined = path + ".corrupt";
  for (int n = 1; std::filesystem::exists(quarantined); ++n) {
    quarantined = StrFormat("%s.corrupt.%d", path.c_str(), n);
  }
  if (std::rename(path.c_str(), quarantined.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("quarantine rename failed", path));
  }
  return quarantined;
}

}  // namespace fairclean
