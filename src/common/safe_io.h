#ifndef FAIRCLEAN_COMMON_SAFE_IO_H_
#define FAIRCLEAN_COMMON_SAFE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fairclean {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `data`.
uint32_t Crc32(std::string_view data);

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file write: writes `content` to `<path>.tmp`, fsyncs, then
/// atomically renames over `path`. A crash at any point leaves either the
/// old file or the new file, never a truncated mix. Subject to the
/// "cache_write" fault-injection site.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// The footer line AppendChecksumFooter adds:
/// "#fc-crc32 <8 hex digits> len=<body bytes>\n". The '#' prefix keeps the
/// body parseable by readers that stop at the end of the payload.
constexpr char kChecksumFooterPrefix[] = "#fc-crc32 ";

/// Returns `body` with the checksum footer appended.
std::string AppendChecksumFooter(const std::string& body);

/// Splits a footer off `content` and verifies it. Returns the body on
/// success; InvalidArgument when the footer is missing (truncated file) or
/// the checksum / length does not match (bit rot, partial write).
Result<std::string> VerifyChecksumFooter(const std::string& content);

/// True if `content` ends with a checksum footer line (without verifying).
bool HasChecksumFooter(const std::string& content);

/// Writes `body` + checksum footer atomically to `path`.
Status WriteChecksummedFile(const std::string& path, const std::string& body);

/// Reads `path` and verifies its checksum footer, returning the body.
/// IoError when unreadable, InvalidArgument when the footer is missing or
/// wrong. Subject to the "cache_read" fault-injection site.
Result<std::string> ReadChecksummedFile(const std::string& path);

/// Moves a damaged file aside to `<path>.corrupt` — or, when that name is
/// already taken, `<path>.corrupt.1`, `<path>.corrupt.2`, ... — so the
/// caller can recompute without destroying the evidence. Every quarantine
/// is preserved: repeated corruption of the same path never overwrites an
/// earlier quarantined file. Returns the quarantine path.
Result<std::string> QuarantineFile(const std::string& path);

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_SAFE_IO_H_
