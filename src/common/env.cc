#include "common/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace fairclean {

int64_t GetEnvInt64(const char* name, int64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return default_value;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(parsed)) {
    return default_value;
  }
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return default_value;
  return std::string(raw);
}

Result<int64_t> GetEnvCount(const char* name, int64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a non-negative integer, got \"" +
                                   raw + "\"");
  }
  if (parsed < 0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be non-negative, got \"" + raw +
                                   "\"");
  }
  return static_cast<int64_t>(parsed);
}

Result<double> GetEnvBudgetSeconds(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a number of seconds, got \"" +
                                   raw + "\"");
  }
  if (!std::isfinite(parsed)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be finite, got \"" + raw + "\"");
  }
  if (parsed < 0.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be non-negative, got \"" + raw +
                                   "\"");
  }
  return parsed;
}

}  // namespace fairclean
