#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace fairclean {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
           c == '\f';
  };
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace fairclean
