#ifndef FAIRCLEAN_COMMON_HASH_H_
#define FAIRCLEAN_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace fairclean {

/// FNV-1a 64-bit hash. Stable across platforms and builds; used wherever a
/// deterministic name-derived seed or content key is needed (bench dataset
/// seeds, suite artifact keys). Not cryptographic.
uint64_t Fnv1a64(std::string_view text);

/// Incremental FNV-1a 64-bit: feeds `text` into a running hash, so callers
/// can fingerprint structured content (e.g. a data frame column by column)
/// without materializing one big string.
uint64_t Fnv1a64(std::string_view text, uint64_t seed);

/// SHA-256 of `data` as a lowercase hex string (64 characters). Used for
/// the suite report's per-cell cache digests, where collisions must be
/// out of the question for a byte-identity check to mean anything.
std::string Sha256Hex(std::string_view data);

}  // namespace fairclean

#endif  // FAIRCLEAN_COMMON_HASH_H_
