#include "exec/study_driver.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "core/cleaning.h"

namespace fairclean {
namespace exec {

namespace {

constexpr FairnessMetric kAllMetrics[] = {
    FairnessMetric::kPredictiveParity,
    FairnessMetric::kEqualOpportunity,
    FairnessMetric::kDemographicParity,
    FairnessMetric::kFalsePositiveRateParity,
    FairnessMetric::kAccuracyParity,
};

// Paired t-tests need at least two completed repeats per configuration.
constexpr size_t kMinCompletedRepeats = 2;

// Bookkeeping keys stored alongside the metric records. "__meta__" sorts
// before the dataset-name keys and is ignored by every metric consumer
// (they look keys up by configuration prefix).
constexpr char kMetaNextRepeat[] = "__meta__/next_repeat";

std::string SkippedKey(size_t slot) {
  return StrFormat("__meta__/r%zu_skipped", slot);
}

// Accumulates wall-clock time into a per-stage counter.
class StageTimer {
 public:
  explicit StageTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

bool SeriesHasNonFinite(const ScoreSeries& series) {
  for (double v : series.accuracy) {
    if (!std::isfinite(v)) return true;
  }
  for (double v : series.f1) {
    if (!std::isfinite(v)) return true;
  }
  for (const auto& [key, values] : series.unfairness) {
    for (double v : values) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

// A repeat is degenerate when any of its scores is non-finite: an empty
// group slice or single-class fold yields NaN gaps, and an injected
// "numeric" fault yields a NaN accuracy. Such a slice must not reach the
// t-tests.
bool IsDegenerateSlice(const CleaningExperimentResult& slice) {
  if (SeriesHasNonFinite(slice.dirty)) return true;
  for (const auto& [method, series] : slice.repaired) {
    if (SeriesHasNonFinite(series)) return true;
  }
  return false;
}

// A store reassembled into per-repeat score series.
struct Reconstructed {
  CleaningExperimentResult result;
  size_t next_repeat = 0;  ///< slots decided (completed or skipped)
  size_t completed = 0;    ///< slots with scores
  bool complete = false;   ///< all of study.num_repeats slots decided
};

// Rebuilds ScoreSeries from the flat records of a cached or journaled run,
// honoring the skip markers. Returns an error if any expected key is
// absent (stale/partial store -> recompute).
Result<Reconstructed> ReconstructFromStore(const ResultStore& records,
                                           const GeneratedDataset& dataset,
                                           const std::string& error_type,
                                           const std::string& model,
                                           const StudyOptions& study) {
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(error_type));
  Reconstructed out;
  CleaningExperimentResult& result = out.result;
  result.dataset = dataset.spec.name;
  result.error_type = error_type;
  result.model = model;
  result.groups = GroupDefinitionsFor(dataset.spec);
  result.records = records;

  out.next_repeat = study.num_repeats;
  if (records.Contains(kMetaNextRepeat)) {
    FC_ASSIGN_OR_RETURN(double raw, records.Get(kMetaNextRepeat));
    if (!(raw >= 0.0) || raw > static_cast<double>(study.num_repeats)) {
      return Status::InvalidArgument(
          StrFormat("journal cursor %g out of range [0, %zu]", raw,
                    study.num_repeats));
    }
    out.next_repeat = static_cast<size_t>(raw);
  }

  std::vector<std::string> versions = {"dirty"};
  for (const CleaningMethod& method : methods) {
    versions.push_back(method.Name());
  }
  for (size_t repeat = 0; repeat < out.next_repeat; ++repeat) {
    if (records.Contains(SkippedKey(repeat))) continue;
    for (const std::string& version : versions) {
      ScoreSeries* series = version == "dirty"
                                ? &result.dirty
                                : &result.repaired[version];
      std::string prefix =
          StrFormat("%s/%s/%s/%s/r%zu", dataset.spec.name.c_str(),
                    error_type.c_str(), version.c_str(), model.c_str(),
                    repeat);
      FC_ASSIGN_OR_RETURN(double accuracy,
                          records.Get(MetricKey({prefix, "test_acc"})));
      FC_ASSIGN_OR_RETURN(double f1,
                          records.Get(MetricKey({prefix, "test_f1"})));
      series->accuracy.push_back(accuracy);
      series->f1.push_back(f1);
      for (const GroupDefinition& group : result.groups) {
        GroupConfusion confusion;
        const struct {
          const char* suffix;
          ConfusionMatrix* cm;
        } sides[2] = {{"priv", &confusion.privileged},
                      {"dis", &confusion.disadvantaged}};
        for (const auto& side : sides) {
          std::string base = group.key + "_" + side.suffix;
          FC_ASSIGN_OR_RETURN(double tn,
                              records.Get(MetricKey({prefix, base, "tn"})));
          FC_ASSIGN_OR_RETURN(double fp,
                              records.Get(MetricKey({prefix, base, "fp"})));
          FC_ASSIGN_OR_RETURN(double fn,
                              records.Get(MetricKey({prefix, base, "fn"})));
          FC_ASSIGN_OR_RETURN(double tp,
                              records.Get(MetricKey({prefix, base, "tp"})));
          side.cm->tn = static_cast<int64_t>(tn);
          side.cm->fp = static_cast<int64_t>(fp);
          side.cm->fn = static_cast<int64_t>(fn);
          side.cm->tp = static_cast<int64_t>(tp);
        }
        for (FairnessMetric metric : kAllMetrics) {
          series->unfairness[UnfairnessKey(group.key, metric)].push_back(
              FairnessGap(metric, confusion));
        }
      }
    }
    ++out.completed;
  }
  out.complete = out.next_repeat == study.num_repeats;
  return out;
}

}  // namespace

std::string RunDiagnostics::Format() const {
  std::string out = "study driver diagnostics:\n";
  out += StrFormat(
      "  experiments=%zu cache_hits=%zu journal_resumes=%zu "
      "repeats_resumed=%zu\n",
      experiments, cache_hits, journal_resumes, repeats_resumed);
  out += StrFormat(
      "  repeats_run=%zu retries=%zu skips=%zu checkpoints=%zu "
      "corrupt_quarantined=%zu budget_exhausted=%s\n",
      repeats_run, retries, skips, checkpoints, corrupt_quarantined,
      budget_exhausted ? "yes" : "no");
  out += "  wall:";
  for (const auto& [stage, seconds] : stage_seconds) {
    out += StrFormat(" %s=%.2fs", stage.c_str(), seconds);
  }
  out += "\n";
  return out;
}

StudyDriver::StudyDriver(StudyDriverOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {}

std::string StudyDriver::CachePath(const StudyDriverOptions& options,
                                   const std::string& dataset,
                                   const std::string& error_type,
                                   const std::string& model) {
  return StrFormat("%s/%s_%s_%s_s%llu_n%zu_r%zu_f%zu.json",
                   options.cache_dir.c_str(), dataset.c_str(),
                   error_type.c_str(), model.c_str(),
                   static_cast<unsigned long long>(options.study.seed),
                   options.study.sample_size, options.study.num_repeats,
                   options.study.cv_folds);
}

std::string StudyDriver::JournalPath(const StudyDriverOptions& options,
                                     const std::string& dataset,
                                     const std::string& error_type,
                                     const std::string& model) {
  return CachePath(options, dataset, error_type, model) + ".journal";
}

double StudyDriver::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool StudyDriver::BudgetExhausted() const {
  return options_.time_budget_s > 0.0 &&
         ElapsedSeconds() > options_.time_budget_s;
}

Result<CleaningExperimentResult> StudyDriver::RunOrLoad(
    const GeneratedDataset& dataset, const std::string& error_type,
    const std::string& model) {
  ++diagnostics_.experiments;
  FC_ASSIGN_OR_RETURN(TunedModelFamily family, ModelFamilyByName(model));

  const bool persist = !options_.cache_dir.empty();
  std::string cache_path;
  std::string journal_path;
  CleaningExperimentResult result;
  size_t resume_from = 0;

  if (persist) {
    std::error_code ec;
    std::filesystem::create_directories(options_.cache_dir, ec);
    cache_path = CachePath(options_, dataset.spec.name, error_type, model);
    journal_path = cache_path + ".journal";

    StageTimer timer(&diagnostics_.stage_seconds["cache_load"]);
    // 1) A completed experiment in the result cache.
    if (std::filesystem::exists(cache_path, ec)) {
      Result<ResultStore> store = ResultStore::LoadFromFile(cache_path);
      if (!store.ok()) {
        // Truncated, bit-flipped, or unparsable: quarantine the evidence
        // and recompute. Transient read errors just recompute in place.
        if (store.status().code() != StatusCode::kIoError) {
          ++diagnostics_.corrupt_quarantined;
          Result<std::string> moved = QuarantineFile(cache_path);
          if (options_.verbose) {
            std::fprintf(stderr, "[warn ] corrupt cache %s (%s) -> %s\n",
                         cache_path.c_str(),
                         store.status().ToString().c_str(),
                         moved.ok() ? moved->c_str() : "quarantine failed");
          }
        } else if (options_.verbose) {
          std::fprintf(stderr, "[warn ] cache read failed: %s\n",
                       store.status().ToString().c_str());
        }
      } else {
        Result<Reconstructed> cached = ReconstructFromStore(
            *store, dataset, error_type, model, options_.study);
        if (cached.ok() && cached->complete &&
            cached->completed >= kMinCompletedRepeats) {
          ++diagnostics_.cache_hits;
          if (options_.verbose) {
            std::fprintf(stderr, "[cache] %s/%s/%s\n",
                         dataset.spec.name.c_str(), error_type.c_str(),
                         model.c_str());
          }
          return cached->result;
        }
        // Stale (missing keys) or incomplete store at the cache path: the
        // file is intact JSON, just not usable — recompute and overwrite.
      }
    }

    // 2) A journal from an interrupted run.
    if (std::filesystem::exists(journal_path, ec)) {
      Result<std::string> body = ReadChecksummedFile(journal_path);
      Result<Reconstructed> resumed =
          body.ok() ? [&]() -> Result<Reconstructed> {
            FC_ASSIGN_OR_RETURN(ResultStore store,
                                ResultStore::FromJson(*body));
            return ReconstructFromStore(store, dataset, error_type, model,
                                        options_.study);
          }()
                    : Result<Reconstructed>(body.status());
      if (resumed.ok()) {
        result = std::move(resumed->result);
        resume_from = resumed->next_repeat;
        ++diagnostics_.journal_resumes;
        diagnostics_.repeats_resumed += resumed->completed;
        if (options_.verbose) {
          std::fprintf(stderr, "[resum] %s/%s/%s at repeat %zu/%zu\n",
                       dataset.spec.name.c_str(), error_type.c_str(),
                       model.c_str(), resume_from,
                       options_.study.num_repeats);
        }
      } else {
        ++diagnostics_.corrupt_quarantined;
        Result<std::string> moved = QuarantineFile(journal_path);
        if (options_.verbose) {
          std::fprintf(stderr, "[warn ] corrupt journal %s (%s) -> %s\n",
                       journal_path.c_str(),
                       resumed.status().ToString().c_str(),
                       moved.ok() ? moved->c_str() : "quarantine failed");
        }
      }
    }
  }

  if (resume_from < options_.study.num_repeats && options_.verbose) {
    std::fprintf(stderr, "[run  ] %s/%s/%s ...\n", dataset.spec.name.c_str(),
                 error_type.c_str(), model.c_str());
  }

  Status last_failure;
  for (size_t slot = resume_from; slot < options_.study.num_repeats;
       ++slot) {
    if (BudgetExhausted()) {
      diagnostics_.budget_exhausted = true;
      return Status::DeadlineExceeded(StrFormat(
          "time budget of %.1fs exhausted after %.1fs; %zu/%zu repeats of "
          "%s/%s/%s are checkpointed — re-run to resume",
          options_.time_budget_s, ElapsedSeconds(), slot,
          options_.study.num_repeats, dataset.spec.name.c_str(),
          error_type.c_str(), model.c_str()));
    }
    // Simulated hard interruption between repeats (tests kill-and-resume):
    // everything up to the previous repeat is already journaled.
    FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("interrupt"));

    bool slot_done = false;
    {
      StageTimer timer(&diagnostics_.stage_seconds["compute"]);
      for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
        if (attempt > 0) ++diagnostics_.retries;
        // First retry replays the same seed (a transient fault resolves
        // without changing any score); later retries reseed.
        uint64_t salt = attempt <= 1 ? 0 : attempt - 1;
        Result<CleaningExperimentResult> slice = RunCleaningRepeatSlice(
            dataset, error_type, family, options_.study, slot, salt);
        if (!slice.ok()) {
          last_failure = slice.status();
        } else if (IsDegenerateSlice(*slice)) {
          last_failure = Status::InvalidArgument(
              StrFormat("degenerate repeat %zu (non-finite score)", slot));
        } else {
          FC_RETURN_IF_ERROR(AppendRepeatSlice(*slice, &result));
          ++diagnostics_.repeats_run;
          slot_done = true;
          break;
        }
        if (options_.verbose) {
          std::fprintf(stderr, "[retry] %s/%s/%s r%zu attempt %zu: %s\n",
                       dataset.spec.name.c_str(), error_type.c_str(),
                       model.c_str(), slot, attempt,
                       last_failure.ToString().c_str());
        }
      }
    }
    if (!slot_done) {
      ++diagnostics_.skips;
      result.records.Put(SkippedKey(slot), 1.0);
      if (options_.verbose) {
        std::fprintf(stderr, "[skip ] %s/%s/%s r%zu: %s\n",
                     dataset.spec.name.c_str(), error_type.c_str(),
                     model.c_str(), slot, last_failure.ToString().c_str());
      }
    }
    result.records.Put(kMetaNextRepeat, static_cast<double>(slot + 1));

    if (persist) {
      StageTimer timer(&diagnostics_.stage_seconds["checkpoint"]);
      Status journaled = result.records.SaveToFile(journal_path);
      if (journaled.ok()) {
        ++diagnostics_.checkpoints;
      } else if (options_.verbose) {
        // Non-fatal: worst case a later resume redoes this repeat.
        std::fprintf(stderr, "[warn ] journal write failed: %s\n",
                     journaled.ToString().c_str());
      }
    }
  }

  size_t completed = result.dirty.accuracy.size();
  if (completed < kMinCompletedRepeats) {
    Status failure = Status::InvalidArgument(StrFormat(
        "only %zu of %zu repeats of %s/%s/%s succeeded (need >= %zu); "
        "last failure: %s",
        completed, options_.study.num_repeats, dataset.spec.name.c_str(),
        error_type.c_str(), model.c_str(), kMinCompletedRepeats,
        last_failure.ToString().c_str()));
    return failure;
  }

  if (persist) {
    StageTimer timer(&diagnostics_.stage_seconds["finalize"]);
    Status saved = result.records.SaveToFile(cache_path);
    if (!saved.ok()) {
      if (options_.verbose) {
        std::fprintf(stderr, "[warn ] cache write failed: %s\n",
                     saved.ToString().c_str());
      }
    } else {
      std::error_code ec;
      std::filesystem::remove(journal_path, ec);
    }
  }
  return result;
}

}  // namespace exec
}  // namespace fairclean
