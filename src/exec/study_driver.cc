#include "exec/study_driver.h"

#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <future>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "core/cleaning.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace fairclean {
namespace exec {

namespace {

constexpr FairnessMetric kAllMetrics[] = {
    FairnessMetric::kPredictiveParity,
    FairnessMetric::kEqualOpportunity,
    FairnessMetric::kDemographicParity,
    FairnessMetric::kFalsePositiveRateParity,
    FairnessMetric::kAccuracyParity,
};

// Paired t-tests need at least two completed repeats per configuration.
constexpr size_t kMinCompletedRepeats = 2;

// Bookkeeping keys stored alongside the metric records. "__meta__" sorts
// before the dataset-name keys and is ignored by every metric consumer
// (they look keys up by configuration prefix).
constexpr char kMetaNextRepeat[] = "__meta__/next_repeat";

std::string SkippedKey(size_t slot) {
  return StrFormat("__meta__/r%zu_skipped", slot);
}

// CPU seconds consumed by the calling thread (falls back to process CPU
// time on platforms without per-thread clocks).
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

// Measures one stage: the wall time lands in the driver's per-stage
// histogram and, when tracing, in an "exec" span.
class StageScope {
 public:
  StageScope(obs::Histogram* histogram, const char* stage)
      : span_("exec",
              [&] { return std::string("stage ") + stage; }),
        histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~StageScope() {
    histogram_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }

 private:
  obs::TraceSpan span_;
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

bool SeriesHasNonFinite(const ScoreSeries& series) {
  for (double v : series.accuracy) {
    if (!std::isfinite(v)) return true;
  }
  for (double v : series.f1) {
    if (!std::isfinite(v)) return true;
  }
  for (const auto& [key, values] : series.unfairness) {
    for (double v : values) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

// A repeat is degenerate when any of its scores is non-finite: an empty
// group slice or single-class fold yields NaN gaps, and an injected
// "numeric" fault yields a NaN accuracy. Such a slice must not reach the
// t-tests.
bool IsDegenerateSlice(const CleaningExperimentResult& slice) {
  if (SeriesHasNonFinite(slice.dirty)) return true;
  for (const auto& [method, series] : slice.repaired) {
    if (SeriesHasNonFinite(series)) return true;
  }
  return false;
}

// A store reassembled into per-repeat score series.
struct Reconstructed {
  CleaningExperimentResult result;
  size_t next_repeat = 0;  ///< slots decided (completed or skipped)
  size_t completed = 0;    ///< slots with scores
  bool complete = false;   ///< all of study.num_repeats slots decided
};

// Rebuilds ScoreSeries from the flat records of a cached or journaled run,
// honoring the skip markers. Returns an error if any expected key is
// absent (stale/partial store -> recompute).
Result<Reconstructed> ReconstructFromStore(const ResultStore& records,
                                           const GeneratedDataset& dataset,
                                           const std::string& error_type,
                                           const std::string& model,
                                           const StudyOptions& study) {
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(error_type));
  Reconstructed out;
  CleaningExperimentResult& result = out.result;
  result.dataset = dataset.spec.name;
  result.error_type = error_type;
  result.model = model;
  result.groups = GroupDefinitionsFor(dataset.spec);
  result.records = records;

  out.next_repeat = study.num_repeats;
  if (records.Contains(kMetaNextRepeat)) {
    FC_ASSIGN_OR_RETURN(double raw, records.Get(kMetaNextRepeat));
    if (!(raw >= 0.0) || raw > static_cast<double>(study.num_repeats)) {
      return Status::InvalidArgument(
          StrFormat("journal cursor %g out of range [0, %zu]", raw,
                    study.num_repeats));
    }
    out.next_repeat = static_cast<size_t>(raw);
  }

  std::vector<std::string> versions = {"dirty"};
  for (const CleaningMethod& method : methods) {
    versions.push_back(method.Name());
  }
  for (size_t repeat = 0; repeat < out.next_repeat; ++repeat) {
    if (records.Contains(SkippedKey(repeat))) continue;
    for (const std::string& version : versions) {
      ScoreSeries* series = version == "dirty"
                                ? &result.dirty
                                : &result.repaired[version];
      std::string prefix =
          StrFormat("%s/%s/%s/%s/r%zu", dataset.spec.name.c_str(),
                    error_type.c_str(), version.c_str(), model.c_str(),
                    repeat);
      FC_ASSIGN_OR_RETURN(double accuracy,
                          records.Get(MetricKey({prefix, "test_acc"})));
      FC_ASSIGN_OR_RETURN(double f1,
                          records.Get(MetricKey({prefix, "test_f1"})));
      series->accuracy.push_back(accuracy);
      series->f1.push_back(f1);
      for (const GroupDefinition& group : result.groups) {
        GroupConfusion confusion;
        const struct {
          const char* suffix;
          ConfusionMatrix* cm;
        } sides[2] = {{"priv", &confusion.privileged},
                      {"dis", &confusion.disadvantaged}};
        for (const auto& side : sides) {
          std::string base = group.key + "_" + side.suffix;
          FC_ASSIGN_OR_RETURN(double tn,
                              records.Get(MetricKey({prefix, base, "tn"})));
          FC_ASSIGN_OR_RETURN(double fp,
                              records.Get(MetricKey({prefix, base, "fp"})));
          FC_ASSIGN_OR_RETURN(double fn,
                              records.Get(MetricKey({prefix, base, "fn"})));
          FC_ASSIGN_OR_RETURN(double tp,
                              records.Get(MetricKey({prefix, base, "tp"})));
          side.cm->tn = static_cast<int64_t>(tn);
          side.cm->fp = static_cast<int64_t>(fp);
          side.cm->fn = static_cast<int64_t>(fn);
          side.cm->tp = static_cast<int64_t>(tp);
        }
        for (FairnessMetric metric : kAllMetrics) {
          series->unfairness[UnfairnessKey(group.key, metric)].push_back(
              FairnessGap(metric, confusion));
        }
      }
    }
    ++out.completed;
  }
  out.complete = out.next_repeat == study.num_repeats;
  return out;
}

}  // namespace

std::string RunDiagnostics::Format() const {
  std::string out = "study driver diagnostics:\n";
  out += StrFormat(
      "  experiments=%zu cache_hits=%zu journal_resumes=%zu "
      "repeats_resumed=%zu\n",
      experiments, cache_hits, journal_resumes, repeats_resumed);
  out += StrFormat(
      "  repeats_run=%zu retries=%zu skips=%zu checkpoints=%zu "
      "corrupt_quarantined=%zu budget_exhausted=%s threads=%zu\n",
      repeats_run, retries, skips, checkpoints, corrupt_quarantined,
      budget_exhausted ? "yes" : "no", threads);
  out += "  wall:";
  for (const auto& [stage, seconds] : stage_seconds) {
    out += StrFormat(" %s=%.2fs", stage.c_str(), seconds);
  }
  out += "\n  cpu:";
  for (const auto& [stage, seconds] : stage_cpu_seconds) {
    out += StrFormat(" %s=%.2fs", stage.c_str(), seconds);
  }
  out += "\n";
  return out;
}

StudyDriver::StudyDriver(StudyDriverOptions options)
    : options_(std::move(options)),
      metrics_(&obs::MetricsRegistry::Global()),
      start_(std::chrono::steady_clock::now()) {
  // Touch the tracer so FAIRCLEAN_TRACE takes effect before the first
  // span of the run (instrumentation points are no-ops until then).
  obs::InitTraceFromEnv();
  metrics_.GetGauge("driver.threads")
      ->Set(static_cast<double>(EffectiveThreads()));
}

obs::Counter* StudyDriver::Count(const char* name) {
  return metrics_.GetCounter(name);
}

obs::Histogram* StudyDriver::StageWall(const char* stage) {
  return metrics_.GetHistogram(
      std::string("driver.stage_wall_s.") + stage,
      obs::MetricsRegistry::DefaultLatencyBounds());
}

obs::Histogram* StudyDriver::StageCpu(const char* stage) {
  return metrics_.GetHistogram(
      std::string("driver.stage_cpu_s.") + stage,
      obs::MetricsRegistry::DefaultLatencyBounds());
}

RunDiagnostics StudyDriver::diagnostics() const {
  RunDiagnostics out;
  constexpr char kWallPrefix[] = "driver.stage_wall_s.";
  constexpr char kCpuPrefix[] = "driver.stage_cpu_s.";
  for (const obs::MetricSnapshot& metric : metrics_.Snapshot()) {
    switch (metric.kind) {
      case obs::MetricSnapshot::Kind::kCounter: {
        size_t value = static_cast<size_t>(metric.value);
        if (metric.name == "driver.experiments") out.experiments = value;
        else if (metric.name == "driver.cache_hits") out.cache_hits = value;
        else if (metric.name == "driver.journal_resumes")
          out.journal_resumes = value;
        else if (metric.name == "driver.repeats_resumed")
          out.repeats_resumed = value;
        else if (metric.name == "driver.repeats_run") out.repeats_run = value;
        else if (metric.name == "driver.retries") out.retries = value;
        else if (metric.name == "driver.skips") out.skips = value;
        else if (metric.name == "driver.corrupt_quarantined")
          out.corrupt_quarantined = value;
        else if (metric.name == "driver.checkpoints") out.checkpoints = value;
        break;
      }
      case obs::MetricSnapshot::Kind::kGauge:
        if (metric.name == "driver.budget_exhausted") {
          out.budget_exhausted = metric.value != 0.0;
        } else if (metric.name == "driver.threads") {
          out.threads = static_cast<size_t>(metric.value);
        }
        break;
      case obs::MetricSnapshot::Kind::kHistogram:
        if (metric.name.rfind(kWallPrefix, 0) == 0) {
          out.stage_seconds[metric.name.substr(sizeof(kWallPrefix) - 1)] =
              metric.sum;
        } else if (metric.name.rfind(kCpuPrefix, 0) == 0) {
          out.stage_cpu_seconds[metric.name.substr(sizeof(kCpuPrefix) - 1)] =
              metric.sum;
        }
        break;
    }
  }
  return out;
}

size_t StudyDriver::EffectiveThreads() const {
  return options_.threads > 0 ? options_.threads
                              : ThreadPool::DefaultThreadCount();
}

std::string StudyDriver::CacheKey(const StudyDriverOptions& options,
                                  const std::string& dataset,
                                  const std::string& error_type,
                                  const std::string& model) {
  return StrFormat("%s_%s_%s_s%llu_n%zu_r%zu_f%zu.json", dataset.c_str(),
                   error_type.c_str(), model.c_str(),
                   static_cast<unsigned long long>(options.study.seed),
                   options.study.sample_size, options.study.num_repeats,
                   options.study.cv_folds);
}

std::string StudyDriver::JournalKey(const StudyDriverOptions& options,
                                    const std::string& dataset,
                                    const std::string& error_type,
                                    const std::string& model) {
  return CacheKey(options, dataset, error_type, model) + ".journal";
}

std::string StudyDriver::CachePath(const StudyDriverOptions& options,
                                   const std::string& dataset,
                                   const std::string& error_type,
                                   const std::string& model) {
  return options.cache_dir + "/" +
         CacheKey(options, dataset, error_type, model);
}

std::string StudyDriver::JournalPath(const StudyDriverOptions& options,
                                     const std::string& dataset,
                                     const std::string& error_type,
                                     const std::string& model) {
  return CachePath(options, dataset, error_type, model) + ".journal";
}

Status StudyDriver::EnsureStore() {
  if (store_ != nullptr) return Status::OK();
  if (options_.blob_store != nullptr) {
    store_ = options_.blob_store;
    return Status::OK();
  }
  FC_ASSIGN_OR_RETURN(store_,
                      store::OpenBlobStoreFromEnv(options_.cache_dir));
  return Status::OK();
}

double StudyDriver::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool StudyDriver::BudgetExhausted() const {
  if (options_.time_budget_s > 0.0 &&
      ElapsedSeconds() > options_.time_budget_s) {
    return true;
  }
  return options_.deadline.has_value() &&
         std::chrono::steady_clock::now() > *options_.deadline;
}

StudyDriver::SlotOutcome StudyDriver::ComputeSlot(
    const GeneratedDataset& dataset, const std::string& error_type,
    const TunedModelFamily& family, size_t slot,
    const std::vector<GroupDefinition>* groups) const {
  obs::TraceSpan span("exec", [&] {
    return StrFormat("slot %s/%s/%s r%zu", dataset.spec.name.c_str(),
                     error_type.c_str(), family.name.c_str(), slot);
  });
  SlotOutcome out;
  const double cpu_start = ThreadCpuSeconds();
  for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) ++out.retries;
    // First retry replays the same seed (a transient fault resolves
    // without changing any score); later retries reseed.
    uint64_t salt = attempt <= 1 ? 0 : attempt - 1;
    Result<CleaningExperimentResult> slice =
        [&]() -> Result<CleaningExperimentResult> {
      try {
        return RunCleaningRepeatSlice(dataset, error_type, family,
                                      options_.study, slot, salt, groups);
      } catch (const std::exception& e) {
        return Status::Internal(StrFormat("repeat %zu threw: %s", slot,
                                          e.what()));
      }
    }();
    if (!slice.ok()) {
      out.last_failure = slice.status();
    } else if (IsDegenerateSlice(*slice)) {
      out.last_failure = Status::InvalidArgument(
          StrFormat("degenerate repeat %zu (non-finite score)", slot));
    } else {
      out.slice = std::move(*slice);
      break;
    }
    FC_LOG_WARN("driver", "retry %s/%s/%s r%zu attempt %zu: %s",
                dataset.spec.name.c_str(), error_type.c_str(),
                family.name.c_str(), slot, attempt,
                out.last_failure.ToString().c_str());
  }
  out.compute_seconds = ThreadCpuSeconds() - cpu_start;
  return out;
}

Status StudyDriver::MergeSlot(size_t slot, SlotOutcome outcome,
                              const GeneratedDataset& dataset,
                              const std::string& error_type,
                              const std::string& model,
                              const std::string& journal_key, bool persist,
                              CleaningExperimentResult* result,
                              Status* last_failure) {
  Count("driver.retries")->Increment(outcome.retries);
  StageCpu("compute")->Observe(outcome.compute_seconds);
  if (!outcome.last_failure.ok()) *last_failure = outcome.last_failure;
  if (outcome.slice.has_value()) {
    FC_RETURN_IF_ERROR(AppendRepeatSlice(*outcome.slice, result));
    Count("driver.repeats_run")->Increment();
  } else {
    Count("driver.skips")->Increment();
    result->records.Put(SkippedKey(slot), 1.0);
    FC_LOG_WARN("driver", "skip %s/%s/%s r%zu: %s",
                dataset.spec.name.c_str(), error_type.c_str(), model.c_str(),
                slot, last_failure->ToString().c_str());
  }
  result->records.Put(kMetaNextRepeat, static_cast<double>(slot + 1));

  if (persist) {
    StageScope stage(StageWall("checkpoint"), "checkpoint");
    Status journaled = store_->Write(
        journal_key, AppendChecksumFooter(result->records.ToJson()));
    if (journaled.ok()) {
      Count("driver.checkpoints")->Increment();
      if (obs::FlightEnabled()) {
        obs::FlightRecorder::Record(
            obs::FlightEventType::kCheckpoint,
            obs::FlightRecorder::SiteForCategory("driver.checkpoint"),
            static_cast<uint32_t>(slot));
      }
      if (options_.checkpoint_hook) options_.checkpoint_hook();
    } else {
      // Non-fatal: worst case a later resume redoes this repeat.
      FC_LOG_WARN("driver", "journal write failed: %s",
                  journaled.ToString().c_str());
    }
  }
  return Status::OK();
}

Result<CleaningExperimentResult> StudyDriver::RunOrLoad(
    const GeneratedDataset& dataset, const std::string& error_type,
    const std::string& model, const CellPlanInputs* plan) {
  obs::TraceSpan span("exec", [&] {
    return StrFormat("RunOrLoad %s/%s/%s", dataset.spec.name.c_str(),
                     error_type.c_str(), model.c_str());
  });
  Count("driver.experiments")->Increment();
  // Consume the wave plan's pre-resolved family / group definitions when
  // one was handed down; the standalone path derives them here. Both are
  // pure functions of (model, exec_mode) / the dataset spec.
  TunedModelFamily family;
  if (plan != nullptr && plan->family != nullptr) {
    family = *plan->family;
  } else {
    FC_ASSIGN_OR_RETURN(
        family, ModelFamilyByName(model, options_.study.exec_mode));
  }
  const std::vector<GroupDefinition>* plan_groups =
      plan != nullptr ? plan->groups.get() : nullptr;

  const bool persist = !options_.cache_dir.empty();
  std::string cache_key;
  std::string journal_key;
  CleaningExperimentResult result;
  size_t resume_from = 0;

  if (persist) {
    std::error_code ec;
    std::filesystem::create_directories(options_.cache_dir, ec);
    FC_RETURN_IF_ERROR(EnsureStore());
    cache_key = CacheKey(options_, dataset.spec.name, error_type, model);
    journal_key = cache_key + ".journal";
    auto contains = [&](const std::string& key) {
      Result<bool> found = store_->Contains(key);
      if (!found.ok()) {
        FC_LOG_WARN("driver", "store lookup of %s failed: %s", key.c_str(),
                    found.status().ToString().c_str());
        return false;
      }
      return *found;
    };

    StageScope stage(StageWall("cache_load"), "cache_load");
    // 1) A completed experiment in the result cache.
    if (contains(cache_key)) {
      Result<ResultStore> store = [&]() -> Result<ResultStore> {
        FC_ASSIGN_OR_RETURN(std::string bytes, store_->Read(cache_key));
        return ResultStore::LoadFromString(bytes,
                                           store_->Describe(cache_key));
      }();
      if (!store.ok()) {
        // Truncated, bit-flipped, or unparsable: quarantine the evidence
        // and recompute. Transient read errors (and a record that vanished
        // under us) just recompute in place.
        if (store.status().code() != StatusCode::kIoError &&
            store.status().code() != StatusCode::kNotFound) {
          Count("driver.corrupt_quarantined")->Increment();
          Result<std::string> moved = store_->Quarantine(cache_key);
          FC_LOG_WARN("driver", "corrupt cache %s (%s) -> %s",
                      store_->Describe(cache_key).c_str(),
                      store.status().ToString().c_str(),
                      moved.ok() ? moved->c_str() : "quarantine failed");
        } else {
          FC_LOG_WARN("driver", "cache read failed: %s",
                      store.status().ToString().c_str());
        }
      } else {
        Result<Reconstructed> cached = ReconstructFromStore(
            *store, dataset, error_type, model, options_.study);
        if (cached.ok() && cached->complete &&
            cached->completed >= kMinCompletedRepeats &&
            !IsDegenerateSlice(cached->result)) {
          // The degeneracy re-check matters for caches written before gap
          // metrics learned to report empty groups as NaN: their stored
          // confusion matrices now reconstruct to non-finite gaps, and such
          // scores must be recomputed, not served.
          Count("driver.cache_hits")->Increment();
          FC_LOG_INFO("driver", "cache hit %s/%s/%s",
                      dataset.spec.name.c_str(), error_type.c_str(),
                      model.c_str());
          return cached->result;
        }
        // Stale (missing keys) or incomplete store at the cache path: the
        // file is intact JSON, just not usable — recompute and overwrite.
      }
    }

    // 2) A journal from an interrupted run. The journal read keeps the
    // historical "cache_read" fault probe (ReadChecksummedFile carried it
    // on the flat path) and, unlike the cache, strictly requires a footer.
    if (contains(journal_key)) {
      Result<std::string> body = [&]() -> Result<std::string> {
        FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("cache_read"));
        FC_ASSIGN_OR_RETURN(std::string bytes, store_->Read(journal_key));
        Result<std::string> verified = VerifyChecksumFooter(bytes);
        if (!verified.ok()) {
          return Status::InvalidArgument(store_->Describe(journal_key) +
                                         ": " +
                                         verified.status().message());
        }
        return verified;
      }();
      Result<Reconstructed> resumed =
          body.ok() ? [&]() -> Result<Reconstructed> {
            FC_ASSIGN_OR_RETURN(ResultStore store,
                                ResultStore::FromJson(*body));
            return ReconstructFromStore(store, dataset, error_type, model,
                                        options_.study);
          }()
                    : Result<Reconstructed>(body.status());
      if (resumed.ok() && IsDegenerateSlice(resumed->result)) {
        // Same as the cache: a journal whose completed repeats reconstruct
        // to non-finite gaps predates the NaN semantics and cannot be
        // trusted as a resume point.
        resumed = Status::InvalidArgument(
            "journaled repeats reconstruct to non-finite scores");
      }
      if (resumed.ok()) {
        result = std::move(resumed->result);
        resume_from = resumed->next_repeat;
        Count("driver.journal_resumes")->Increment();
        Count("driver.repeats_resumed")->Increment(resumed->completed);
        FC_LOG_INFO("driver", "resume %s/%s/%s at repeat %zu/%zu",
                    dataset.spec.name.c_str(), error_type.c_str(),
                    model.c_str(), resume_from, options_.study.num_repeats);
      } else {
        Count("driver.corrupt_quarantined")->Increment();
        Result<std::string> moved = store_->Quarantine(journal_key);
        FC_LOG_WARN("driver", "corrupt journal %s (%s) -> %s",
                    store_->Describe(journal_key).c_str(),
                    resumed.status().ToString().c_str(),
                    moved.ok() ? moved->c_str() : "quarantine failed");
      }
    }
  }

  if (resume_from < options_.study.num_repeats) {
    FC_LOG_INFO("driver", "run %s/%s/%s ...", dataset.spec.name.c_str(),
                error_type.c_str(), model.c_str());
  }

  Status last_failure;
  const size_t num_repeats = options_.study.num_repeats;
  const size_t threads = EffectiveThreads();

  auto deadline_error = [&](size_t done) {
    metrics_.GetGauge("driver.budget_exhausted")->Set(1.0);
    const bool budget_tripped =
        options_.time_budget_s > 0.0 &&
        ElapsedSeconds() > options_.time_budget_s;
    std::string limit =
        budget_tripped
            ? StrFormat("time budget of %.1fs exhausted after %.1fs",
                        options_.time_budget_s, ElapsedSeconds())
            : "request deadline exceeded";
    return Status::DeadlineExceeded(StrFormat(
        "%s; %zu/%zu repeats of %s/%s/%s are checkpointed — re-run to resume",
        limit.c_str(), done, num_repeats, dataset.spec.name.c_str(),
        error_type.c_str(), model.c_str()));
  };

  if (threads <= 1 || resume_from + 1 >= num_repeats) {
    // Sequential path: compute and merge each slot in turn. This is the
    // reference behavior the parallel path must reproduce byte for byte.
    for (size_t slot = resume_from; slot < num_repeats; ++slot) {
      if (BudgetExhausted()) return deadline_error(slot);
      // Simulated hard interruption between repeats (tests
      // kill-and-resume): everything up to the previous repeat is already
      // journaled.
      FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("interrupt"));
      SlotOutcome outcome;
      {
        StageScope stage(StageWall("compute"), "compute");
        outcome = ComputeSlot(dataset, error_type, family, slot, plan_groups);
      }
      FC_RETURN_IF_ERROR(MergeSlot(slot, std::move(outcome), dataset,
                                   error_type, model, journal_key, persist,
                                   &result, &last_failure));
    }
  } else {
    // Parallel path: fan the remaining slots out across a pool, but merge
    // strictly in repeat order on this thread — the per-repeat seed formula
    // makes every slice independent of its siblings, so computing them out
    // of order cannot change any score, and in-order merging keeps the
    // journal (and the resulting cache) byte-identical to the sequential
    // path. The "interrupt" fault site and the deadline stay driver-side
    // decisions made at merge time, preserving resume semantics.
    //
    // The pool is scoped to this call: its destructor runs every submitted
    // task, so an early return (deadline, injected interrupt) cannot leave
    // a worker touching dead locals. Slots scheduled after the budget
    // expires bail out via budget_skipped without computing.
    ThreadPool pool(std::min(threads, num_repeats - resume_from));
    std::vector<std::future<SlotOutcome>> futures;
    futures.reserve(num_repeats - resume_from);
    size_t scheduled_end = resume_from;
    for (size_t slot = resume_from; slot < num_repeats; ++slot) {
      if (BudgetExhausted()) break;
      futures.push_back(pool.Submit(
          [this, &dataset, &error_type, &family, plan_groups,
           slot]() -> SlotOutcome {
            if (BudgetExhausted()) {
              SlotOutcome out;
              out.budget_skipped = true;
              return out;
            }
            return ComputeSlot(dataset, error_type, family, slot,
                               plan_groups);
          }));
      scheduled_end = slot + 1;
    }
    for (size_t slot = resume_from; slot < scheduled_end; ++slot) {
      if (BudgetExhausted()) return deadline_error(slot);
      FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("interrupt"));
      SlotOutcome outcome;
      {
        StageScope stage(StageWall("compute"), "compute");
        outcome = futures[slot - resume_from].get();
      }
      if (outcome.budget_skipped) return deadline_error(slot);
      FC_RETURN_IF_ERROR(MergeSlot(slot, std::move(outcome), dataset,
                                   error_type, model, journal_key, persist,
                                   &result, &last_failure));
    }
    if (scheduled_end < num_repeats) return deadline_error(scheduled_end);
  }

  size_t completed = result.dirty.accuracy.size();
  if (completed < kMinCompletedRepeats) {
    Status failure = Status::InvalidArgument(StrFormat(
        "only %zu of %zu repeats of %s/%s/%s succeeded (need >= %zu); "
        "last failure: %s",
        completed, options_.study.num_repeats, dataset.spec.name.c_str(),
        error_type.c_str(), model.c_str(), kMinCompletedRepeats,
        last_failure.ToString().c_str()));
    return failure;
  }

  if (persist) {
    StageScope stage(StageWall("finalize"), "finalize");
    Status saved = store_->Write(
        cache_key, AppendChecksumFooter(result.records.ToJson()));
    if (!saved.ok()) {
      FC_LOG_WARN("driver", "cache write failed: %s",
                  saved.ToString().c_str());
    } else {
      Status removed = store_->Remove(journal_key);
      if (!removed.ok()) {
        FC_LOG_WARN("driver", "journal removal failed: %s",
                    removed.ToString().c_str());
      }
    }
  }
  return result;
}

}  // namespace exec
}  // namespace fairclean
