#ifndef FAIRCLEAN_EXEC_STUDY_DRIVER_H_
#define FAIRCLEAN_EXEC_STUDY_DRIVER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_pool.h"
#include "core/runner.h"
#include "datasets/generator.h"
#include "obs/metrics.h"
#include "store/blob_store.h"

namespace fairclean {
namespace exec {

/// Pre-materialized per-cell inputs handed down by the wave planner
/// (sched::WavePlanner, DESIGN.md §15): whatever a (dataset, seed) group of
/// cells would otherwise rebuild per cell. Immutable once built — the
/// driver only reads through the shared_ptrs, so one plan can serve many
/// cells across worker threads. Every field is a pure function of inputs
/// the driver would derive itself, which is what keeps planned and
/// unplanned runs byte-identical.
struct CellPlanInputs {
  /// Group definitions derived from the dataset spec
  /// (GroupDefinitionsFor), shared by every cell of the group.
  std::shared_ptr<const std::vector<GroupDefinition>> groups;
  /// Mode-resolved tuned model family for this cell's model name
  /// (ModelFamilyByName under the study's exec_mode).
  std::shared_ptr<const TunedModelFamily> family;
};

/// Knobs of the fault-tolerant study execution layer.
struct StudyDriverOptions {
  StudyOptions study;
  /// Directory for cached experiment records and repeat journals ("" runs
  /// fully in memory: no cache, no checkpoints).
  std::string cache_dir;
  /// Extra attempts per degenerate repeat. The first retry replays the
  /// identical seed (recovering transient faults without changing any
  /// score); later retries derive a fresh deterministic seed. A repeat that
  /// stays degenerate after all retries is skipped.
  size_t max_retries = 2;
  /// Soft wall-clock budget in seconds measured from driver construction
  /// (<= 0: unlimited). When exceeded, the driver checkpoints and returns
  /// DeadlineExceeded at the next repeat boundary instead of being killed
  /// mid-write; re-running resumes from the journal.
  double time_budget_s = 0.0;
  /// Absolute per-request deadline (steady clock). Where time_budget_s is
  /// process-scoped (measured from driver construction), the deadline is
  /// stamped by a caller that existed before this driver — the serving
  /// layer marks it at request admission, so queue wait counts against it.
  /// Both limits are enforced; whichever trips first checkpoints the
  /// journal and returns DeadlineExceeded at the next repeat boundary.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Worker threads the driver fans repeat slices out across. 0 resolves
  /// FAIRCLEAN_THREADS (whose own default is hardware_concurrency); 1 runs
  /// the historical strictly-sequential path. Results are byte-identical
  /// across thread counts (see DESIGN.md, threading model).
  size_t threads = 0;
  /// Invoked on the driver thread after each successful journal checkpoint
  /// write (never on failure). The shard claim layer refreshes its cell
  /// lease here, so a lease outlives any cell whose repeats keep making
  /// progress; tests also use it as a deterministic mid-cell crash point.
  std::function<void()> checkpoint_hook;
  /// Byte store backing the result cache and repeat journals. When null
  /// and cache_dir is non-empty, the driver opens the backend selected by
  /// FAIRCLEAN_STORE / FAIRCLEAN_STORE_CACHE_PAGES /
  /// FAIRCLEAN_STORE_COMPRESS on first use. Callers running several
  /// drivers against one cache_dir (the suite scheduler, the advisor
  /// service) must share one instance: the paged backend's single pages
  /// file has exactly one writer per process.
  std::shared_ptr<store::BlobStore> blob_store;
};

/// Structured counters describing how a driver run degraded (or didn't):
/// cache reuse, journal resumes, retries, skips, quarantined files, and
/// wall time per stage. Printed by the table benches.
///
/// Since the observability rework this is a point-in-time snapshot
/// assembled from the driver's metrics registry (see
/// StudyDriver::diagnostics()); the counters live as named instruments
/// ("driver.retries", "driver.stage_wall_s.compute", ...) that also feed
/// the process-wide FAIRCLEAN_METRICS export.
struct RunDiagnostics {
  size_t experiments = 0;        ///< RunOrLoad calls served.
  size_t cache_hits = 0;         ///< served entirely from the result cache
  size_t journal_resumes = 0;    ///< experiments resumed from a journal
  size_t repeats_resumed = 0;    ///< repeats recovered from journals
  size_t repeats_run = 0;        ///< repeats computed in this process
  size_t retries = 0;            ///< extra attempts on degenerate repeats
  size_t skips = 0;              ///< repeats abandoned after all retries
  size_t corrupt_quarantined = 0;///< cache/journal files moved to .corrupt
  size_t checkpoints = 0;        ///< journal snapshots written
  bool budget_exhausted = false; ///< stopped by FAIRCLEAN_TIME_BUDGET_S
  size_t threads = 1;            ///< worker threads of the repeat fan-out
  /// Wall-clock seconds per stage as seen by the driver thread:
  /// "cache_load", "compute" (time spent waiting on slices), "checkpoint",
  /// "finalize".
  std::map<std::string, double> stage_seconds;
  /// CPU seconds per stage summed across workers; under parallel execution
  /// "compute" exceeds its wall-clock counterpart by roughly the achieved
  /// speedup factor.
  std::map<std::string, double> stage_cpu_seconds;

  /// Multi-line human-readable summary.
  std::string Format() const;
};

/// Fault-tolerant wrapper around RunCleaningExperiment.
///
/// Where the plain runner computes all repeats in one shot and dies (or
/// throws away hours of work) on any failure, the driver:
///  - serves completed experiments from a checksummed result cache,
///    quarantining corrupt/truncated files to <name>.corrupt and
///    recomputing instead of crashing or silently reusing garbage;
///  - journals every completed repeat with atomic temp-file+rename writes,
///    so an interrupted experiment resumes at the repeat (not experiment)
///    boundary and reproduces byte-identical results;
///  - retries degenerate repeats (non-finite score, single-class fold,
///    empty group slice) with deterministic reseeding, then skips them;
///  - honors a soft time budget, exiting cleanly with resumable state;
///  - fans repeat slices out across a fixed thread pool (options.threads /
///    FAIRCLEAN_THREADS) while merging them on the calling thread in repeat
///    order, so results, caches, and journals are byte-identical to the
///    sequential path.
///
/// One driver instance is meant to span a whole bench invocation so the
/// time budget and diagnostics cover the full scope. RunOrLoad must be
/// called from one thread at a time (the internal fan-out is the driver's
/// own concern); diagnostics are only mutated on that calling thread.
class StudyDriver {
 public:
  explicit StudyDriver(StudyDriverOptions options);

  /// Runs (or loads, or resumes) the cleaning experiment for one
  /// (dataset, error type, model family). On DeadlineExceeded the
  /// completed repeats are journaled and a re-run resumes them.
  ///
  /// `plan` optionally supplies wave-planner-materialized inputs; null
  /// rebuilds them per call (the standalone path). Results are
  /// byte-identical either way.
  Result<CleaningExperimentResult> RunOrLoad(const GeneratedDataset& dataset,
                                             const std::string& error_type,
                                             const std::string& model,
                                             const CellPlanInputs* plan =
                                                 nullptr);

  /// Snapshot of the driver's metric instruments in the legacy
  /// RunDiagnostics shape. Counters are shared with the global metrics
  /// registry, so a FAIRCLEAN_METRICS export sees the same numbers.
  RunDiagnostics diagnostics() const;

  /// Store key (cache-file basename) for one configuration — the unit of
  /// addressing shared by every backend.
  static std::string CacheKey(const StudyDriverOptions& options,
                              const std::string& dataset,
                              const std::string& error_type,
                              const std::string& model);

  /// Journal key used while a configuration is in flight.
  static std::string JournalKey(const StudyDriverOptions& options,
                                const std::string& dataset,
                                const std::string& error_type,
                                const std::string& model);

  /// Cache file for one configuration under the flat backend (same layout
  /// the benches always used, so pre-existing caches keep working).
  static std::string CachePath(const StudyDriverOptions& options,
                               const std::string& dataset,
                               const std::string& error_type,
                               const std::string& model);

  /// Journal file used while a configuration is in flight (flat backend).
  static std::string JournalPath(const StudyDriverOptions& options,
                                 const std::string& dataset,
                                 const std::string& error_type,
                                 const std::string& model);

  /// Seconds since driver construction.
  double ElapsedSeconds() const;

 private:
  /// Result of computing one repeat slot on a worker (or inline): the
  /// retry loop's outcome plus its accounting, merged into diagnostics on
  /// the driver thread.
  struct SlotOutcome {
    std::optional<CleaningExperimentResult> slice;  ///< empty: skipped
    size_t retries = 0;           ///< attempts beyond the first
    double compute_seconds = 0.0; ///< cpu time spent in the retry loop
    bool budget_skipped = false;  ///< never attempted: budget was gone
    Status last_failure;
  };

  bool BudgetExhausted() const;

  /// Runs the retry loop for one repeat slot. Pure given (dataset,
  /// error_type, family, slot, groups) apart from fault injection, so
  /// slots can compute on any thread in any order. `groups` may be null
  /// (derived per slice) or the plan's shared definitions.
  SlotOutcome ComputeSlot(const GeneratedDataset& dataset,
                          const std::string& error_type,
                          const TunedModelFamily& family, size_t slot,
                          const std::vector<GroupDefinition>* groups) const;

  /// Merges one computed slot into `result` (scores or skip marker plus
  /// journal cursor) and checkpoints the journal. Driver thread only.
  Status MergeSlot(size_t slot, SlotOutcome outcome,
                   const GeneratedDataset& dataset,
                   const std::string& error_type, const std::string& model,
                   const std::string& journal_key, bool persist,
                   CleaningExperimentResult* result, Status* last_failure);

  /// Resolves the blob store (options_.blob_store, else the env-selected
  /// backend over cache_dir) on first persistent RunOrLoad.
  Status EnsureStore();

  /// Effective worker count (resolves options_.threads == 0 via
  /// FAIRCLEAN_THREADS / hardware_concurrency).
  size_t EffectiveThreads() const;

  /// Named instrument shorthand on the driver's local registry.
  obs::Counter* Count(const char* name);
  obs::Histogram* StageWall(const char* stage);
  obs::Histogram* StageCpu(const char* stage);

  StudyDriverOptions options_;
  /// Backend serving cache/journal bytes (see StudyDriverOptions::blob_store).
  std::shared_ptr<store::BlobStore> store_;
  /// Scoped registry: every value recorded here forwards to the same-named
  /// instrument in MetricsRegistry::Global(), so one driver's diagnostics
  /// stay separable while the process-wide export aggregates all of them.
  obs::MetricsRegistry metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exec
}  // namespace fairclean

#endif  // FAIRCLEAN_EXEC_STUDY_DRIVER_H_
