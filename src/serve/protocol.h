#ifndef FAIRCLEAN_SERVE_PROTOCOL_H_
#define FAIRCLEAN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/runner.h"

namespace fairclean {
namespace serve {

/// One line of the advisor wire protocol, parsed. The protocol is
/// line-delimited JSON over TCP: every request is a single JSON object on
/// one line, every response is a single JSON object on one line, and a
/// connection carries any number of request/response pairs.
///
/// Analyze request (the work op):
///   {"op":"analyze","id":"r1","dataset":"german",
///    "error_type":"missing_values","model":"log-reg",
///    "group":"sex","metric":"PP","deadline_s":5}
/// `group`, `metric` and `deadline_s` are optional: group defaults to the
/// dataset's first sensitive attribute, metric to predictive parity,
/// deadline to the server's FAIRCLEAN_SERVE_DEADLINE_S.
///
/// Control ops: {"op":"ping"|"stats"|"pause"|"resume"|"shutdown","id":...}.
/// pause/resume gate the worker dequeue loop (used by the deterministic
/// overload tests); shutdown asks the server to exit gracefully.
///
/// Telemetry ops (DESIGN.md §14):
///   {"op":"metrics","id":...,"format":"json"|"prometheus"} — live scrape
///     of the global registry (sliding-window latencies included);
///   {"op":"trace","id":...,"trace_id":"<hex>"} — span tree of a completed
///     request; without trace_id, the list of retained trace ids;
///   {"op":"flight","id":...,"path":...} — dump the flight recorder rings
///     (default path when "path" is omitted).
struct AdvisorRequest {
  enum class Op {
    kAnalyze,
    kPing,
    kStats,
    kPause,
    kResume,
    kShutdown,
    kMetrics,
    kTrace,
    kFlight
  };

  Op op = Op::kAnalyze;
  std::string id;          ///< client token echoed on the response
  std::string dataset;
  std::string error_type;
  std::string model;
  std::string group;       ///< "" = dataset's first single-attribute group
  std::string metric;      ///< "" = predictive parity
  double deadline_s = 0.0; ///< per-request override; 0 = server default
  std::string trace_id;    ///< trace op: hex id to look up ("" = list)
  std::string format;      ///< metrics op: "json" (default) | "prometheus"
  std::string path;        ///< flight op: dump path override
};

/// Parses and validates one request line. Validation happens here, before
/// a worker is consumed: unknown op, missing/unknown dataset, error type,
/// model or metric, and a non-finite or negative deadline are all
/// InvalidArgument.
Result<AdvisorRequest> ParseRequest(const std::string& line);

/// Impact of one cleaning method in an analysis, plus the selector's
/// admissibility verdict (accuracy AND fairness not significantly worse).
struct MethodImpact {
  std::string method;
  ImpactOutcome impact;
  bool admissible = false;
};

/// The advisor's answer for one (dataset, error type, model) cell: the
/// per-method significance verdicts against the dirty baseline and the
/// fairness-aware recommendation ("" = keep the dirty data; no cleaning
/// method is admissible).
struct AdvisorAnalysis {
  std::string trace_id;    ///< hex trace id minted at admission ("" = none)
  std::string cell_id;     ///< "dataset/error_type/model"
  std::string cache_file;  ///< cache record basename ("" = uncached run)
  std::string sha256;      ///< byte identity of the cache record
  size_t repeats = 0;      ///< completed repeats behind the verdicts
  bool cache_hit = false;  ///< served without computing in this process
  std::string group;
  std::string metric;      ///< long metric name
  double alpha = 0.0;      ///< Bonferroni-adjusted level used by the tests
  std::vector<MethodImpact> methods;  ///< selector order: admissible first
  std::string recommendation;
};

/// Counters of the server's request lifecycle, for the stats op and tests.
struct ServerStats {
  uint64_t accepted = 0;          ///< admitted to the queue
  uint64_t shed = 0;              ///< rejected with Unavailable at admission
  uint64_t ok = 0;                ///< answered with status "ok"
  uint64_t failed = 0;            ///< answered with a non-retryable error
  uint64_t deadline_exceeded = 0; ///< expired in queue or mid-computation
  uint64_t queue_depth = 0;       ///< current depth
  uint64_t connections = 0;       ///< currently open connections
  bool paused = false;
};

/// Lower-snake-case wire token for a status code ("ok", "unavailable",
/// "deadline_exceeded", "invalid_argument", ...).
const char* StatusCodeToken(StatusCode code);

/// Response renderers. Every response carries {"id","status"}; error
/// responses add {"error"}; retryable ones add {"retry_after_ms"} and
/// deadline ones {"resumable":true} (the server checkpointed the §6
/// journal, so retrying resumes instead of restarting).
std::string RenderAnalysis(const std::string& id,
                           const AdvisorAnalysis& analysis);
std::string RenderError(const std::string& id, const Status& status,
                        int retry_after_ms = 0);
std::string RenderPong(const std::string& id);
std::string RenderStats(const std::string& id, const ServerStats& stats);
/// Ack for pause/resume/shutdown: {"id","status":"ok","op":"<name>"}.
std::string RenderAck(const std::string& id, const char* op);

/// Metrics scrape: {"id","status":"ok","format",...}. JSON format carries
/// {"metrics":[...]} (the registry's ToJsonArray output, verbatim);
/// Prometheus format carries the exposition as an escaped string under
/// {"exposition":...}.
std::string RenderMetrics(const std::string& id, const std::string& format,
                          const std::string& payload);

/// Span tree of one retained trace:
/// {"id","status":"ok","trace":"<hex>","spans":[{"name","cat","ph","tid",
///  "depth","ts_us","dur_us"},...]}. Spans arrive sorted by (ts, depth).
struct TraceSpanView {
  std::string name;
  std::string category;
  char phase = 'X';
  uint32_t tid = 0;
  uint32_t depth = 0;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
};
std::string RenderTrace(const std::string& id, const std::string& trace_id,
                        const std::vector<TraceSpanView>& spans);

/// Retained trace ids (trace op without trace_id), most recent last:
/// {"id","status":"ok","traces":["<hex>",...]}.
std::string RenderTraceList(const std::string& id,
                            const std::vector<std::string>& trace_ids);

/// Flight-dump ack: {"id","status":"ok","flight":"<path>"}.
std::string RenderFlight(const std::string& id, const std::string& path);

}  // namespace serve
}  // namespace fairclean

#endif  // FAIRCLEAN_SERVE_PROTOCOL_H_
