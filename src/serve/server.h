#ifndef FAIRCLEAN_SERVE_SERVER_H_
#define FAIRCLEAN_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "sched/suite_runner.h"
#include "serve/advisor_service.h"
#include "serve/protocol.h"

namespace fairclean {
namespace serve {

/// Serving knobs, resolved once at startup (ServeOptionsFromEnv) like the
/// suite's. All parsing is strict: a typo'd knob aborts startup instead of
/// silently serving with a default.
struct ServeOptions {
  /// TCP port on 127.0.0.1 (FAIRCLEAN_SERVE_PORT). 0 binds an ephemeral
  /// port, reported by AdvisorServer::port() — what the tests use.
  uint16_t port = 7433;
  /// Admission-queue bound (FAIRCLEAN_SERVE_QUEUE). The queue holds
  /// requests admitted but not yet picked up by a worker; a request
  /// arriving at a full queue is shed immediately with Unavailable and a
  /// retry_after_ms hint — the server never queues unboundedly and a
  /// client can always distinguish "overloaded" from "wedged".
  size_t queue_limit = 16;
  /// Default per-request deadline in seconds (FAIRCLEAN_SERVE_DEADLINE_S,
  /// 0 = none), measured from admission so queue wait counts against it. A
  /// request's own deadline_s overrides it.
  double default_deadline_s = 0.0;
  /// Worker threads executing analyses (0: FAIRCLEAN_THREADS).
  size_t workers = 0;
  /// Backoff hint attached to shed responses (FAIRCLEAN_SERVE_RETRY_MS).
  int retry_after_ms = 200;
  /// How long the worker_stall fault site stalls a worker
  /// (FAIRCLEAN_SERVE_STALL_MS).
  int stall_ms = 100;
  /// Open-connection bound; excess accepts are answered with a shed
  /// response and closed immediately.
  size_t max_connections = 64;
  /// The resident stack's scale/cache knobs (FAIRCLEAN_SAMPLE, ...).
  sched::SuiteOptions suite;
};

/// Reads every serve and suite knob strictly; InvalidArgument on garbage.
Result<ServeOptions> ServeOptionsFromEnv();

/// The cleaning-advisor TCP server: a bounded-admission, deadline-aware
/// front end over AdvisorService.
///
/// Request lifecycle (DESIGN.md §10):
///   accept -> read line (socket_read fault) -> parse + validate
///   (request_parse fault) -> control op inline, or admit to the bounded
///   queue (full -> shed with Unavailable + retry_after_ms) -> worker
///   dequeues (worker_stall fault) -> expired in queue? answer
///   DeadlineExceeded without computing : run AdvisorService::Analyze
///   under the deadline -> write response (socket_write fault).
///
/// Threads: one acceptor, one reader per connection, `workers` analysis
/// workers. Responses to one connection are serialized by a per-connection
/// write mutex (a worker and the reader never interleave bytes).
///
/// Shutdown: Shutdown() stops accepting, sheds whatever is still queued
/// (Unavailable, "shutting down"), unblocks readers, and joins every
/// thread. A SIGKILL needs no cooperation: cache writes are atomic and
/// journaled, so a restarted server resumes in-flight cells from their
/// journals (the soak test pins byte identity with an unfaulted run).
class AdvisorServer {
 public:
  explicit AdvisorServer(ServeOptions options);
  ~AdvisorServer();

  AdvisorServer(const AdvisorServer&) = delete;
  AdvisorServer& operator=(const AdvisorServer&) = delete;

  /// Binds, listens, and spawns the acceptor and worker threads.
  Status Start();

  /// The actually bound port (differs from options.port when it was 0).
  uint16_t port() const { return port_; }

  /// Blocks until Shutdown() is called or a client sends {"op":"shutdown"}.
  void Wait();

  /// Wait with a timeout: returns true when shutdown was requested (by a
  /// client op or Shutdown()), false on timeout. Lets a main loop poll a
  /// SIGTERM flag between waits without busy-spinning.
  bool WaitFor(double seconds);

  /// Graceful stop; idempotent. Safe to call from any non-server thread.
  void Shutdown();

  /// Point-in-time lifecycle counters (also served by the stats op).
  ServerStats Stats() const;

  AdvisorService& service() { return *service_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };

  struct PendingRequest {
    AdvisorRequest request;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point admitted;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    uint64_t trace_id = 0;  ///< minted at admission; tags every span below
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop(size_t index);

  /// Dispatches one parsed request from the reader thread: control ops
  /// answer inline; analyze ops go through admission.
  void Dispatch(const AdvisorRequest& request,
                const std::shared_ptr<Connection>& conn);
  void Admit(const AdvisorRequest& request,
             const std::shared_ptr<Connection>& conn);
  /// Runs one dequeued request on a worker and writes its response.
  void Execute(PendingRequest pending);

  /// Writes one response line under the connection's write mutex; fires
  /// the socket_write fault (dropping the response and closing the
  /// connection) when armed.
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     const std::string& line);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  ServeOptions options_;
  std::unique_ptr<AdvisorService> service_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::weak_ptr<Connection>> connections_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool paused_ = false;
  std::atomic<bool> stopping_{false};

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> open_connections_{0};
};

}  // namespace serve
}  // namespace fairclean

#endif  // FAIRCLEAN_SERVE_SERVER_H_
