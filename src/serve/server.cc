#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace fairclean {
namespace serve {

namespace {

// One registry fetch per instrument; pointers are stable for the process.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
  return gauge;
}

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "serve.request_latency_s",
          obs::MetricsRegistry::DefaultLatencyBounds());
  return histogram;
}

obs::Counter* LifecycleCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

// Sliding-window twins of the lifetime instruments, so a scrape reflects
// the last FAIRCLEAN_METRICS_WINDOW_S seconds instead of the whole
// process (DESIGN.md §14). Counting instruments observe 1.0 per event:
// count / window_s is the rate.
obs::SlidingWindowHistogram* WindowLatency() {
  static obs::SlidingWindowHistogram* window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "serve.window.request_latency_s",
          obs::MetricsRegistry::DefaultLatencyBounds());
  return window;
}

obs::SlidingWindowHistogram* WindowRequests() {
  static obs::SlidingWindowHistogram* window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "serve.window.requests", {1.0});
  return window;
}

obs::SlidingWindowHistogram* WindowSheds() {
  static obs::SlidingWindowHistogram* window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "serve.window.sheds", {1.0});
  return window;
}

void RecordShed() {
  LifecycleCounter("serve.requests_shed")->Increment();
  WindowSheds()->Observe(1.0);
  if (obs::FlightEnabled()) {
    static const uint16_t site =
        obs::FlightRecorder::Site(std::string("serve.shed"));
    obs::FlightRecorder::Record(obs::FlightEventType::kShed, site);
  }
}

// Writes every byte or fails; MSG_NOSIGNAL turns a dead peer into EPIPE
// instead of SIGPIPE.
Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<ServeOptions> ServeOptionsFromEnv() {
  ServeOptions options;
  FC_ASSIGN_OR_RETURN(int64_t port, GetEnvCount("FAIRCLEAN_SERVE_PORT", 7433));
  if (port > 65535) {
    return Status::InvalidArgument(
        StrFormat("FAIRCLEAN_SERVE_PORT must be <= 65535, got %lld",
                  static_cast<long long>(port)));
  }
  options.port = static_cast<uint16_t>(port);
  FC_ASSIGN_OR_RETURN(
      int64_t queue,
      GetEnvCount("FAIRCLEAN_SERVE_QUEUE",
                  static_cast<int64_t>(options.queue_limit)));
  if (queue < 1) {
    return Status::InvalidArgument("FAIRCLEAN_SERVE_QUEUE must be >= 1");
  }
  options.queue_limit = static_cast<size_t>(queue);
  FC_ASSIGN_OR_RETURN(options.default_deadline_s,
                      GetEnvBudgetSeconds("FAIRCLEAN_SERVE_DEADLINE_S",
                                          options.default_deadline_s));
  FC_ASSIGN_OR_RETURN(
      int64_t retry_ms,
      GetEnvCount("FAIRCLEAN_SERVE_RETRY_MS",
                  static_cast<int64_t>(options.retry_after_ms)));
  options.retry_after_ms = static_cast<int>(retry_ms);
  FC_ASSIGN_OR_RETURN(int64_t stall_ms,
                      GetEnvCount("FAIRCLEAN_SERVE_STALL_MS",
                                  static_cast<int64_t>(options.stall_ms)));
  options.stall_ms = static_cast<int>(stall_ms);
  FC_ASSIGN_OR_RETURN(
      int64_t max_conns,
      GetEnvCount("FAIRCLEAN_SERVE_MAX_CONNS",
                  static_cast<int64_t>(options.max_connections)));
  if (max_conns < 1) {
    return Status::InvalidArgument("FAIRCLEAN_SERVE_MAX_CONNS must be >= 1");
  }
  options.max_connections = static_cast<size_t>(max_conns);
  FC_ASSIGN_OR_RETURN(options.suite, sched::TrySuiteOptionsFromEnv());
  return options;
}

AdvisorServer::AdvisorServer(ServeOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<AdvisorService>(options_.suite)) {}

AdvisorServer::~AdvisorServer() { Shutdown(); }

Status AdvisorServer::Start() {
  // A peer that vanishes mid-write must surface as an error on that
  // connection, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  // Arm the telemetry plane: the flight recorder (via the tracer's env
  // read) and per-trace span retention backing the `trace` op.
  obs::InitTraceFromEnv();
  obs::EnableTraceStore();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError(StrFormat(
        "bind to 127.0.0.1:%u failed: %s",
        static_cast<unsigned>(options_.port), strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status status =
        Status::IoError(StrFormat("getsockname failed: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) < 0) {
    Status status =
        Status::IoError(StrFormat("listen failed: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  size_t workers = options_.workers != 0 ? options_.workers
                                         : ThreadPool::DefaultThreadCount();
  worker_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  FC_LOG_INFO("serve",
              "advisor server listening on 127.0.0.1:%u (queue=%zu "
              "workers=%zu deadline=%.1fs)",
              static_cast<unsigned>(port_), options_.queue_limit, workers,
              options_.default_deadline_s);
  return Status::OK();
}

void AdvisorServer::AcceptLoop() {
  obs::Tracer::SetCurrentThreadName("serve-accept");
  while (!stopping_.load()) {
    sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                      &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Shutdown (or a fatal accept error)
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    if (open_connections_.load() >= options_.max_connections) {
      // Connection-level load shedding: answer before the client sends
      // anything, so it backs off instead of timing out.
      ++shed_;
      RecordShed();
      SendAll(fd, RenderError("", Status::Unavailable(StrFormat(
                                      "connection limit %zu reached",
                                      options_.max_connections)),
                              options_.retry_after_ms));
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    ++open_connections_;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { ConnectionLoop(conn); });
  }
}

void AdvisorServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  obs::Tracer::SetCurrentThreadName("serve-conn");
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load() && conn->open.load()) {
    // Deterministic network-failure site: an armed socket_read models the
    // peer (or the network) dying mid-request.
    if (FaultInjector::Global().ShouldFire("socket_read")) {
      CloseConnection(conn);
      break;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (StripAsciiWhitespace(line).empty()) continue;
      Status parse_fault = FaultInjector::Global().Inject("request_parse");
      if (!parse_fault.ok()) {
        ++failed_;
        WriteResponse(conn, RenderError("", parse_fault));
        continue;
      }
      Result<AdvisorRequest> request = ParseRequest(line);
      if (!request.ok()) {
        ++failed_;
        LifecycleCounter("serve.requests_rejected")->Increment();
        WriteResponse(conn, RenderError("", request.status()));
        continue;
      }
      Dispatch(*request, conn);
    }
  }
  conn->open.store(false);
  // The reader owns the fd: workers only ever shutdown() it (see
  // CloseConnection), so closing here cannot race a concurrent send.
  std::lock_guard<std::mutex> write_lock(conn->write_mutex);
  ::close(conn->fd);
  conn->fd = -1;
  --open_connections_;
}

void AdvisorServer::Dispatch(const AdvisorRequest& request,
                             const std::shared_ptr<Connection>& conn) {
  switch (request.op) {
    case AdvisorRequest::Op::kPing:
      WriteResponse(conn, RenderPong(request.id));
      return;
    case AdvisorRequest::Op::kStats:
      WriteResponse(conn, RenderStats(request.id, Stats()));
      return;
    case AdvisorRequest::Op::kPause: {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        paused_ = true;
      }
      WriteResponse(conn, RenderAck(request.id, "pause"));
      return;
    }
    case AdvisorRequest::Op::kResume: {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        paused_ = false;
      }
      queue_cv_.notify_all();
      WriteResponse(conn, RenderAck(request.id, "resume"));
      return;
    }
    case AdvisorRequest::Op::kShutdown: {
      WriteResponse(conn, RenderAck(request.id, "shutdown"));
      // Wake Wait(); the owner of the server object performs the actual
      // Shutdown (a connection thread cannot join itself).
      std::lock_guard<std::mutex> lock(wait_mutex_);
      shutdown_requested_ = true;
      wait_cv_.notify_all();
      return;
    }
    case AdvisorRequest::Op::kMetrics: {
      // Scrapes answer inline from the reader thread: they must work even
      // when every worker is wedged — that is when you need them.
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      const std::string format =
          request.format.empty() ? "json" : request.format;
      const std::string payload = format == "prometheus"
                                      ? registry.ToPrometheus()
                                      : registry.ToJsonArray();
      WriteResponse(conn, RenderMetrics(request.id, format, payload));
      return;
    }
    case AdvisorRequest::Op::kTrace: {
      if (request.trace_id.empty()) {
        std::vector<std::string> hex_ids;
        for (uint64_t trace_id : obs::TraceStoreIds()) {
          hex_ids.push_back(obs::TraceIdHex(trace_id));
        }
        WriteResponse(conn, RenderTraceList(request.id, hex_ids));
        return;
      }
      const uint64_t trace_id = obs::ParseTraceIdHex(request.trace_id);
      std::optional<std::vector<obs::StoredSpan>> spans =
          trace_id != 0 ? obs::TraceStoreGet(trace_id) : std::nullopt;
      if (!spans.has_value()) {
        WriteResponse(conn,
                      RenderError(request.id,
                                  Status::NotFound(StrFormat(
                                      "trace \"%s\" not retained (evicted, "
                                      "malformed, or never recorded)",
                                      request.trace_id.c_str()))));
        return;
      }
      std::vector<TraceSpanView> views;
      views.reserve(spans->size());
      for (obs::StoredSpan& span : *spans) {
        TraceSpanView view;
        view.name = std::move(span.name);
        view.category = std::move(span.category);
        view.phase = span.phase;
        view.tid = span.tid;
        view.depth = span.depth;
        view.ts_us = span.ts_us;
        view.dur_us = span.dur_us;
        views.push_back(std::move(view));
      }
      WriteResponse(conn, RenderTrace(request.id, request.trace_id, views));
      return;
    }
    case AdvisorRequest::Op::kFlight: {
      const std::string path = request.path.empty()
                                   ? obs::FlightRecorder::DefaultPath()
                                   : request.path;
      std::string error;
      if (!obs::FlightRecorder::Dump(path, obs::kFlightReasonExplicit,
                                     &error)) {
        WriteResponse(conn, RenderError(request.id, Status::IoError(error)));
        return;
      }
      WriteResponse(conn, RenderFlight(request.id, path));
      return;
    }
    case AdvisorRequest::Op::kAnalyze:
      Admit(request, conn);
      return;
  }
}

void AdvisorServer::Admit(const AdvisorRequest& request,
                          const std::shared_ptr<Connection>& conn) {
  PendingRequest pending;
  pending.request = request;
  pending.conn = conn;
  pending.admitted = std::chrono::steady_clock::now();
  // Minted at admission so queue wait, execution, and every store span
  // below share one id — the `trace` op keys on it.
  pending.trace_id = obs::MintTraceId();
  double deadline_s = request.deadline_s > 0.0 ? request.deadline_s
                                               : options_.default_deadline_s;
  if (deadline_s > 0.0) {
    pending.deadline =
        pending.admitted + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(deadline_s));
  }

  bool admitted = false;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_.load() && queue_.size() < options_.queue_limit) {
      queue_.push_back(std::move(pending));
      depth = queue_.size();
      admitted = true;
    } else {
      depth = queue_.size();
    }
  }
  if (admitted) {
    ++accepted_;
    LifecycleCounter("serve.requests_accepted")->Increment();
    WindowRequests()->Observe(1.0);
    QueueDepthGauge()->Set(static_cast<double>(depth));
    queue_cv_.notify_one();
    return;
  }
  ++shed_;
  RecordShed();
  obs::TraceInstant("serve", "shed");
  const char* reason = stopping_.load() ? "server shutting down"
                                        : "admission queue full";
  WriteResponse(
      conn, RenderError(request.id,
                        Status::Unavailable(StrFormat(
                            "%s (depth %zu, limit %zu)", reason, depth,
                            options_.queue_limit)),
                        options_.retry_after_ms));
}

void AdvisorServer::WorkerLoop(size_t index) {
  obs::Tracer::SetCurrentThreadName(StrFormat("serve-worker-%zu", index));
  while (true) {
    PendingRequest pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || (!queue_.empty() && !paused_);
      });
      if (stopping_.load()) return;  // leftovers are shed by Shutdown
      pending = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    if (FaultInjector::Global().ShouldFire("worker_stall")) {
      // Models a worker wedged on slow IO/compute: the request it holds is
      // delayed (and may expire), but the queue bound keeps shedding
      // deterministic for everyone else.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.stall_ms));
    }
    Execute(std::move(pending));
  }
}

void AdvisorServer::Execute(PendingRequest pending) {
  const std::string& id = pending.request.id;
  // Every span and fault instant below this frame inherits the request's
  // trace id (the worker thread's ambient context).
  obs::TraceContextScope trace_scope(pending.trace_id);
  auto observe_latency = [&pending] {
    const double latency_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending.admitted)
            .count();
    LatencyHistogram()->Observe(latency_s);
    WindowLatency()->Observe(latency_s);
  };

  if (pending.deadline.has_value() &&
      std::chrono::steady_clock::now() > *pending.deadline) {
    // Expired while queued: answer without burning compute. Nothing was
    // started, so there is nothing to checkpoint — the client's retry
    // starts (or resumes) the cell fresh.
    ++deadline_exceeded_;
    LifecycleCounter("serve.deadline_exceeded")->Increment();
    WriteResponse(pending.conn,
                  RenderError(id,
                              Status::DeadlineExceeded(
                                  "deadline expired in admission queue"),
                              options_.retry_after_ms));
    observe_latency();
    return;
  }

  obs::TraceSpan span("serve", [&] {
    return StrFormat("request %s/%s/%s", pending.request.dataset.c_str(),
                     pending.request.error_type.c_str(),
                     pending.request.model.c_str());
  });
  Result<AdvisorAnalysis> analysis =
      service_->Analyze(pending.request, pending.deadline);
  if (analysis.ok()) {
    ++ok_;
    LifecycleCounter("serve.requests_ok")->Increment();
    analysis->trace_id = obs::TraceIdHex(pending.trace_id);
    WriteResponse(pending.conn, RenderAnalysis(id, *analysis));
  } else if (analysis.status().code() == StatusCode::kDeadlineExceeded) {
    ++deadline_exceeded_;
    LifecycleCounter("serve.deadline_exceeded")->Increment();
    WriteResponse(pending.conn, RenderError(id, analysis.status(),
                                            options_.retry_after_ms));
  } else {
    ++failed_;
    LifecycleCounter("serve.requests_failed")->Increment();
    WriteResponse(pending.conn, RenderError(id, analysis.status()));
  }
  observe_latency();
}

void AdvisorServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                  const std::string& line) {
  if (conn == nullptr || !conn->open.load()) return;
  // Deterministic response-loss site: the bytes never reach the peer and
  // the connection dies, as a mid-response network failure would.
  if (FaultInjector::Global().ShouldFire("socket_write")) {
    CloseConnection(conn);
    return;
  }
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->fd < 0) return;
  if (!SendAll(conn->fd, line).ok()) {
    // Peer is gone; the reader will notice on its next recv.
    conn->open.store(false);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void AdvisorServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->open.exchange(false)) {
    // shutdown() (not close) so the reader thread, which owns the fd,
    // unblocks from recv and performs the single close.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

ServerStats AdvisorServer::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load();
  stats.shed = shed_.load();
  stats.ok = ok_.load();
  stats.failed = failed_.load();
  stats.deadline_exceeded = deadline_exceeded_.load();
  stats.connections = open_connections_.load();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.queue_depth = queue_.size();
    stats.paused = paused_;
  }
  return stats;
}

void AdvisorServer::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load();
  });
}

bool AdvisorServer::WaitFor(double seconds) {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  return wait_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [this] {
                             return shutdown_requested_ || stopping_.load();
                           });
}

void AdvisorServer::Shutdown() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;  // a paused server must still shut down
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_) worker.join();

  // Whatever the workers left behind is shed with an honest answer rather
  // than silently dropped.
  std::deque<PendingRequest> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftovers.swap(queue_);
    QueueDepthGauge()->Set(0.0);
  }
  for (PendingRequest& pending : leftovers) {
    ++shed_;
    RecordShed();
    WriteResponse(pending.conn,
                  RenderError(pending.request.id,
                              Status::Unavailable("server shutting down"),
                              options_.retry_after_ms));
  }

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) {
        CloseConnection(conn);
      }
    }
    readers.swap(conn_threads_);
  }
  for (std::thread& reader : readers) reader.join();

  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    wait_cv_.notify_all();
  }

  // Final export so the last window of metrics survives a graceful stop
  // (the periodic exporter only runs between intervals).
  obs::MetricsRegistry::Global().FlushExport();
}

}  // namespace serve
}  // namespace fairclean
