#ifndef FAIRCLEAN_SERVE_LOAD_GEN_H_
#define FAIRCLEAN_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/client.h"

namespace fairclean {
namespace serve {

/// One load-generation run: `clients` concurrent connections, each sending
/// `requests_per_client` copies of `request_line` through CallWithRetry
/// (jittered exponential backoff honoring the server's shed hints).
struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t clients = 1;
  size_t requests_per_client = 8;
  /// The request each client repeats (an analyze line, usually).
  std::string request_line;
  /// Base seed; client i jitters from seed + i, so a run's whole retry
  /// schedule is reproducible.
  uint64_t seed = 42;
  BackoffOptions backoff;
};

/// Client-side measurements of one load run. Latencies are measured by the
/// load generator around each CallWithRetry — wire + queue + compute +
/// backoff as the client experiences it, not as the server accounts it.
struct LoadReport {
  size_t clients = 0;
  size_t requests = 0;  ///< attempted (clients * requests_per_client)
  size_t ok = 0;
  size_t failed = 0;    ///< exhausted retries or non-retryable errors
  uint64_t retries = 0; ///< backoff sleeps across all clients
  double wall_s = 0.0;
  double throughput_rps = 0.0;  ///< ok / wall_s
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  /// One JSON object (no trailing newline) with every field above.
  std::string ToJson() const;
};

/// Runs the load synchronously and returns the aggregated report.
/// InvalidArgument when options are degenerate (no clients, no requests,
/// empty request line).
Result<LoadReport> RunLoad(const LoadOptions& options);

}  // namespace serve
}  // namespace fairclean

#endif  // FAIRCLEAN_SERVE_LOAD_GEN_H_
