#ifndef FAIRCLEAN_SERVE_CLIENT_H_
#define FAIRCLEAN_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "obs/json_lite.h"

namespace fairclean {
namespace serve {

/// One parsed response line of the advisor wire protocol. `json` keeps the
/// full parsed object, so callers can read analysis fields (methods,
/// recommendation, sha256, ...) without re-parsing.
struct AdvisorResponse {
  std::string id;
  std::string status;     ///< wire token: "ok", "unavailable", ...
  std::string error;      ///< "" on success
  int retry_after_ms = 0; ///< server backoff hint (shed responses)
  bool resumable = false; ///< deadline responses: a retry resumes
  std::string raw;        ///< the response line as received (no newline)
  obs::JsonValue json;

  bool ok() const { return status == "ok"; }
  /// True for failures where retrying can succeed: overload shedding
  /// (unavailable), an expired deadline (the journal checkpointed), or an
  /// injected/real IO fault on the wire.
  bool Retryable() const {
    return status == "unavailable" || status == "deadline_exceeded" ||
           status == "io_error";
  }
};

/// Largest server backoff hint ParseResponse will honor (10 minutes).
/// A buggy or hostile server must not be able to park a client forever —
/// or crash it: the raw JSON number is a double, and without the clamp a
/// NaN, negative, or out-of-int-range hint is undefined behavior in the
/// int conversion.
constexpr int kMaxRetryAfterMs = 600000;

/// Parses one response line; InvalidArgument when it is not a JSON object
/// or carries no status. retry_after_ms is sanitized to
/// [0, kMaxRetryAfterMs]; a non-finite or negative hint reads as 0.
Result<AdvisorResponse> ParseResponse(const std::string& line);

/// Retry policy of CallWithRetry.
struct BackoffOptions {
  int max_attempts = 6;  ///< total tries, including the first
  int base_ms = 50;      ///< first backoff before jitter
  int max_ms = 2000;     ///< cap per sleep
};

/// Deterministic pre-jitter delay before retry `attempt` (1-based):
/// exponential base_ms * 2^(attempt-1) saturating at max_ms — computed by
/// repeated doubling, so arbitrarily high attempt counts cannot overflow
/// the shift the way `base_ms << (attempt - 1)` did — raised to the
/// server's retry_after hint when that is larger (still capped at max_ms).
int BackoffDelayMs(const BackoffOptions& backoff, int attempt,
                   int retry_after_ms);

/// Blocking line-protocol client with reconnect and jittered exponential
/// backoff — the well-behaved citizen the server's load shedding assumes.
///
/// Backoff: attempt n sleeps uniform(0.5, 1.5) * min(base * 2^n, max_ms)
/// milliseconds, except that a shed response's retry_after_ms hint, when
/// larger, replaces the computed base — the server knows its own drain rate
/// better than the client does. Jitter comes from a seeded Rng, so a load
/// generator's retry schedule is reproducible.
///
/// Not thread-safe; one client per thread (the load generator forks one
/// per simulated client).
class AdvisorClient {
 public:
  AdvisorClient(std::string host, uint16_t port, uint64_t seed = 42);
  ~AdvisorClient();

  AdvisorClient(const AdvisorClient&) = delete;
  AdvisorClient& operator=(const AdvisorClient&) = delete;

  /// Opens the connection if it is not already open.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One request/response round trip. On a lost connection (EOF, reset, a
  /// fired socket_read/socket_write fault on the server) it reconnects and
  /// retries the send ONCE, then reports IoError.
  Result<AdvisorResponse> Call(const std::string& request_line);

  /// Call, retrying retryable responses and transport failures with
  /// jittered exponential backoff. Returns the last response (or transport
  /// error) when attempts run out.
  Result<AdvisorResponse> CallWithRetry(const std::string& request_line,
                                        const BackoffOptions& backoff = {});

  /// Retries performed by CallWithRetry since construction.
  uint64_t retries() const { return retries_; }

 private:
  Status SendLine(const std::string& line);
  Result<std::string> ReadLine();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
  Rng rng_;
  uint64_t retries_ = 0;
};

}  // namespace serve
}  // namespace fairclean

#endif  // FAIRCLEAN_SERVE_CLIENT_H_
