#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace fairclean {
namespace serve {

Result<AdvisorResponse> ParseResponse(const std::string& line) {
  AdvisorResponse response;
  response.raw = line;
  std::string error;
  if (!obs::JsonValue::Parse(line, &response.json, &error)) {
    return Status::InvalidArgument("bad response JSON: " + error);
  }
  if (!response.json.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  response.id = response.json.StringOr("id", "");
  response.status = response.json.StringOr("status", "");
  if (response.status.empty()) {
    return Status::InvalidArgument("response carries no status");
  }
  response.error = response.json.StringOr("error", "");
  response.retry_after_ms =
      static_cast<int>(response.json.NumberOr("retry_after_ms", 0.0));
  response.resumable = response.json.BoolOr("resumable", false);
  return response;
}

AdvisorClient::AdvisorClient(std::string host, uint16_t port, uint64_t seed)
    : host_(std::move(host)), port_(port), rng_(seed) {}

AdvisorClient::~AdvisorClient() { Close(); }

Status AdvisorClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  buffer_.clear();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address \"" + host_ + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IoError(
        StrFormat("connect to %s:%u failed: %s", host_.c_str(),
                  static_cast<unsigned>(port_), strerror(errno)));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

void AdvisorClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status AdvisorClient::SendLine(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> AdvisorClient::ReadLine() {
  char chunk[4096];
  while (true) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("recv failed: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<AdvisorResponse> AdvisorClient::Call(const std::string& request_line) {
  // A server-side socket fault closes the connection without a response;
  // one reconnect distinguishes "that connection died" from "server down".
  for (int attempt = 0; attempt < 2; ++attempt) {
    FC_RETURN_IF_ERROR(Connect());
    Status sent = SendLine(request_line);
    if (sent.ok()) {
      Result<std::string> line = ReadLine();
      if (line.ok()) return ParseResponse(*line);
      sent = line.status();
    }
    Close();
    if (attempt == 1) return sent;
  }
  return Status::Internal("unreachable");
}

Result<AdvisorResponse> AdvisorClient::CallWithRetry(
    const std::string& request_line, const BackoffOptions& backoff) {
  Result<AdvisorResponse> last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < std::max(1, backoff.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      int base = std::min(backoff.base_ms << (attempt - 1), backoff.max_ms);
      if (last.ok() && last->retry_after_ms > base) {
        base = std::min(last->retry_after_ms, backoff.max_ms);
      }
      // Full-interval jitter: synchronized clients shedding at the same
      // instant must not come back at the same instant.
      double sleep_ms = rng_.Uniform(0.5, 1.5) * base;
      ++retries_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    last = Call(request_line);
    if (!last.ok()) continue;           // transport failure: retryable
    if (last->ok() || !last->Retryable()) return last;
  }
  return last;
}

}  // namespace serve
}  // namespace fairclean
