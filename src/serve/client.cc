#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace fairclean {
namespace serve {

Result<AdvisorResponse> ParseResponse(const std::string& line) {
  AdvisorResponse response;
  response.raw = line;
  std::string error;
  if (!obs::JsonValue::Parse(line, &response.json, &error)) {
    return Status::InvalidArgument("bad response JSON: " + error);
  }
  if (!response.json.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  response.id = response.json.StringOr("id", "");
  response.status = response.json.StringOr("status", "");
  if (response.status.empty()) {
    return Status::InvalidArgument("response carries no status");
  }
  response.error = response.json.StringOr("error", "");
  // The wire value is a double from an untrusted peer: NaN, negative, and
  // beyond-int hints must all land safely in [0, kMaxRetryAfterMs] — the
  // bare int cast was undefined behavior for all three.
  double hint = response.json.NumberOr("retry_after_ms", 0.0);
  if (!std::isfinite(hint) || hint < 0.0) hint = 0.0;
  response.retry_after_ms = static_cast<int>(
      std::min(hint, static_cast<double>(kMaxRetryAfterMs)));
  response.resumable = response.json.BoolOr("resumable", false);
  return response;
}

int BackoffDelayMs(const BackoffOptions& backoff, int attempt,
                   int retry_after_ms) {
  const int64_t cap = std::max(0, backoff.max_ms);
  int64_t delay = std::max(0, backoff.base_ms);
  // Saturating doubling instead of `base_ms << (attempt - 1)`: the shift
  // was undefined behavior past ~30 attempts (and overflowed earlier for
  // large bases), flipping the longest waits into negative sleeps.
  for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  if (retry_after_ms > delay) {
    delay = std::min<int64_t>(retry_after_ms, cap);
  }
  return static_cast<int>(delay);
}

AdvisorClient::AdvisorClient(std::string host, uint16_t port, uint64_t seed)
    : host_(std::move(host)), port_(port), rng_(seed) {}

AdvisorClient::~AdvisorClient() { Close(); }

Status AdvisorClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  buffer_.clear();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket failed: %s", strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address \"" + host_ + "\"");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IoError(
        StrFormat("connect to %s:%u failed: %s", host_.c_str(),
                  static_cast<unsigned>(port_), strerror(errno)));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

void AdvisorClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status AdvisorClient::SendLine(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send failed: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> AdvisorClient::ReadLine() {
  char chunk[4096];
  while (true) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("recv failed: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<AdvisorResponse> AdvisorClient::Call(const std::string& request_line) {
  // A server-side socket fault closes the connection without a response;
  // one reconnect distinguishes "that connection died" from "server down".
  for (int attempt = 0; attempt < 2; ++attempt) {
    FC_RETURN_IF_ERROR(Connect());
    Status sent = SendLine(request_line);
    if (sent.ok()) {
      Result<std::string> line = ReadLine();
      if (line.ok()) return ParseResponse(*line);
      sent = line.status();
    }
    Close();
    if (attempt == 1) return sent;
  }
  return Status::Internal("unreachable");
}

Result<AdvisorResponse> AdvisorClient::CallWithRetry(
    const std::string& request_line, const BackoffOptions& backoff) {
  Result<AdvisorResponse> last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < std::max(1, backoff.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      int base = BackoffDelayMs(backoff, attempt,
                                last.ok() ? last->retry_after_ms : 0);
      // Full-interval jitter: synchronized clients shedding at the same
      // instant must not come back at the same instant.
      double sleep_ms = rng_.Uniform(0.5, 1.5) * base;
      ++retries_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    last = Call(request_line);
    if (!last.ok()) continue;           // transport failure: retryable
    if (last->ok() || !last->Retryable()) return last;
  }
  return last;
}

}  // namespace serve
}  // namespace fairclean
