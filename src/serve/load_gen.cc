#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace fairclean {
namespace serve {

namespace {

// Exact sample percentile (nearest-rank) — the sample sizes here are small
// enough that there is no reason to bucket.
double PercentileMs(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string LoadReport::ToJson() const {
  return StrFormat(
      "{\"clients\":%zu,\"requests\":%zu,\"ok\":%zu,\"failed\":%zu,"
      "\"retries\":%llu,\"wall_s\":%.6f,\"throughput_rps\":%.3f,"
      "\"mean_ms\":%.3f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"max_ms\":%.3f}",
      clients, requests, ok, failed,
      static_cast<unsigned long long>(retries), wall_s, throughput_rps,
      mean_ms, p50_ms, p95_ms, p99_ms, max_ms);
}

Result<LoadReport> RunLoad(const LoadOptions& options) {
  if (options.clients == 0 || options.requests_per_client == 0) {
    return Status::InvalidArgument("load needs >= 1 client and >= 1 request");
  }
  if (options.request_line.empty()) {
    return Status::InvalidArgument("load needs a request line");
  }

  struct ClientOutcome {
    std::vector<double> latencies_ms;
    size_t ok = 0;
    size_t failed = 0;
    uint64_t retries = 0;
  };
  std::vector<ClientOutcome> outcomes(options.clients);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    threads.emplace_back([&options, &outcomes, i] {
      ClientOutcome& outcome = outcomes[i];
      AdvisorClient client(options.host, options.port,
                           options.seed + static_cast<uint64_t>(i));
      for (size_t r = 0; r < options.requests_per_client; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        Result<AdvisorResponse> response =
            client.CallWithRetry(options.request_line, options.backoff);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        outcome.latencies_ms.push_back(ms);
        if (response.ok() && response->ok()) {
          ++outcome.ok;
        } else {
          ++outcome.failed;
        }
      }
      outcome.retries = client.retries();
    });
  }
  for (std::thread& thread : threads) thread.join();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  LoadReport report;
  report.clients = options.clients;
  report.requests = options.clients * options.requests_per_client;
  report.wall_s = wall_s;
  std::vector<double> latencies;
  double sum = 0.0;
  for (const ClientOutcome& outcome : outcomes) {
    report.ok += outcome.ok;
    report.failed += outcome.failed;
    report.retries += outcome.retries;
    for (double ms : outcome.latencies_ms) {
      latencies.push_back(ms);
      sum += ms;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.p50_ms = PercentileMs(latencies, 50.0);
    report.p95_ms = PercentileMs(latencies, 95.0);
    report.p99_ms = PercentileMs(latencies, 99.0);
    report.max_ms = latencies.back();
  }
  if (wall_s > 0.0) {
    report.throughput_rps = static_cast<double>(report.ok) / wall_s;
  }
  return report;
}

}  // namespace serve
}  // namespace fairclean
