#include "serve/protocol.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "core/cleaning.h"
#include "datasets/generator.h"
#include "fairness/fairness_metrics.h"
#include "ml/tuning.h"
#include "obs/json_lite.h"

namespace fairclean {
namespace serve {

namespace {

std::string JsonString(const std::string& text) {
  return "\"" + obs::JsonEscape(text) + "\"";
}

std::string JsonDouble(double value) { return StrFormat("%.17g", value); }

Result<AdvisorRequest::Op> OpByName(const std::string& name) {
  if (name == "analyze" || name.empty()) return AdvisorRequest::Op::kAnalyze;
  if (name == "ping") return AdvisorRequest::Op::kPing;
  if (name == "stats") return AdvisorRequest::Op::kStats;
  if (name == "pause") return AdvisorRequest::Op::kPause;
  if (name == "resume") return AdvisorRequest::Op::kResume;
  if (name == "shutdown") return AdvisorRequest::Op::kShutdown;
  if (name == "metrics") return AdvisorRequest::Op::kMetrics;
  if (name == "trace") return AdvisorRequest::Op::kTrace;
  if (name == "flight") return AdvisorRequest::Op::kFlight;
  return Status::InvalidArgument("unknown op \"" + name + "\"");
}

Status ValidateName(const std::string& value,
                    const std::vector<std::string>& known,
                    const char* what) {
  if (std::find(known.begin(), known.end(), value) != known.end()) {
    return Status::OK();
  }
  std::string known_list;
  for (const std::string& name : known) {
    if (!known_list.empty()) known_list += ", ";
    known_list += name;
  }
  return Status::InvalidArgument(StrFormat("unknown %s \"%s\" (known: %s)",
                                           what, value.c_str(),
                                           known_list.c_str()));
}

}  // namespace

Result<AdvisorRequest> ParseRequest(const std::string& line) {
  obs::JsonValue value;
  std::string error;
  if (!obs::JsonValue::Parse(line, &value, &error)) {
    return Status::InvalidArgument("bad request JSON: " + error);
  }
  if (!value.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  AdvisorRequest request;
  request.id = value.StringOr("id", "");
  FC_ASSIGN_OR_RETURN(request.op, OpByName(value.StringOr("op", "analyze")));
  if (request.op == AdvisorRequest::Op::kMetrics) {
    request.format = value.StringOr("format", "json");
    if (request.format != "json" && request.format != "prometheus") {
      return Status::InvalidArgument(
          "metrics format must be \"json\" or \"prometheus\", got \"" +
          request.format + "\"");
    }
    return request;
  }
  if (request.op == AdvisorRequest::Op::kTrace) {
    request.trace_id = value.StringOr("trace_id", "");
    return request;
  }
  if (request.op == AdvisorRequest::Op::kFlight) {
    request.path = value.StringOr("path", "");
    return request;
  }
  if (request.op != AdvisorRequest::Op::kAnalyze) return request;

  request.dataset = value.StringOr("dataset", "");
  request.error_type = value.StringOr("error_type", "");
  request.model = value.StringOr("model", "");
  request.group = value.StringOr("group", "");
  request.metric = value.StringOr("metric", "");
  request.deadline_s = value.NumberOr("deadline_s", 0.0);

  FC_RETURN_IF_ERROR(
      ValidateName(request.dataset, AllDatasetNames(), "dataset"));
  // A valid error type is one with at least one cleaning method.
  Result<std::vector<CleaningMethod>> methods =
      CleaningMethodsFor(request.error_type);
  if (!methods.ok()) return methods.status();
  FC_RETURN_IF_ERROR(ValidateName(request.model, AllModelNames(), "model"));
  if (!request.metric.empty()) {
    Result<FairnessMetric> metric = FairnessMetricByName(request.metric);
    if (!metric.ok()) return metric.status();
  }
  if (!std::isfinite(request.deadline_s) || request.deadline_s < 0.0) {
    return Status::InvalidArgument(
        "deadline_s must be a finite non-negative number of seconds");
  }
  return request;
}

const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "internal";
}

std::string RenderAnalysis(const std::string& id,
                           const AdvisorAnalysis& analysis) {
  std::string out = "{";
  out += "\"id\":" + JsonString(id);
  out += ",\"status\":\"ok\"";
  if (!analysis.trace_id.empty()) {
    out += ",\"trace\":" + JsonString(analysis.trace_id);
  }
  out += ",\"cell\":" + JsonString(analysis.cell_id);
  out += ",\"cache_file\":" + JsonString(analysis.cache_file);
  out += ",\"sha256\":" + JsonString(analysis.sha256);
  out += StrFormat(",\"repeats\":%zu", analysis.repeats);
  out += StrFormat(",\"cache_hit\":%s", analysis.cache_hit ? "true" : "false");
  out += ",\"group\":" + JsonString(analysis.group);
  out += ",\"metric\":" + JsonString(analysis.metric);
  out += ",\"alpha\":" + JsonDouble(analysis.alpha);
  out += ",\"methods\":[";
  bool first = true;
  for (const MethodImpact& method : analysis.methods) {
    out += StrFormat(
        "%s{\"method\":%s,\"fairness\":%s,\"accuracy\":%s,"
        "\"unfairness_delta\":%s,\"accuracy_delta\":%s,\"admissible\":%s}",
        first ? "" : ",", JsonString(method.method).c_str(),
        JsonString(ImpactName(method.impact.fairness)).c_str(),
        JsonString(ImpactName(method.impact.accuracy)).c_str(),
        JsonDouble(method.impact.unfairness_delta).c_str(),
        JsonDouble(method.impact.accuracy_delta).c_str(),
        method.admissible ? "true" : "false");
    first = false;
  }
  out += "]";
  out += ",\"recommendation\":" + JsonString(analysis.recommendation);
  out += "}\n";
  return out;
}

std::string RenderError(const std::string& id, const Status& status,
                        int retry_after_ms) {
  std::string out = "{";
  out += "\"id\":" + JsonString(id);
  out += std::string(",\"status\":\"") + StatusCodeToken(status.code()) + "\"";
  out += ",\"error\":" + JsonString(status.message());
  if (retry_after_ms > 0) {
    out += StrFormat(",\"retry_after_ms\":%d", retry_after_ms);
  }
  if (status.code() == StatusCode::kDeadlineExceeded) {
    // Completed repeats are journaled; a retry resumes instead of
    // restarting, so the client should come back.
    out += ",\"resumable\":true";
  }
  out += "}\n";
  return out;
}

std::string RenderPong(const std::string& id) {
  return "{\"id\":" + JsonString(id) + ",\"status\":\"ok\",\"pong\":true}\n";
}

std::string RenderStats(const std::string& id, const ServerStats& stats) {
  return StrFormat(
      "{\"id\":%s,\"status\":\"ok\",\"accepted\":%llu,\"shed\":%llu,"
      "\"ok\":%llu,\"failed\":%llu,\"deadline_exceeded\":%llu,"
      "\"queue_depth\":%llu,\"connections\":%llu,\"paused\":%s}\n",
      JsonString(id).c_str(),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.queue_depth),
      static_cast<unsigned long long>(stats.connections),
      stats.paused ? "true" : "false");
}

std::string RenderAck(const std::string& id, const char* op) {
  return "{\"id\":" + JsonString(id) + ",\"status\":\"ok\",\"op\":\"" + op +
         "\"}\n";
}

std::string RenderMetrics(const std::string& id, const std::string& format,
                          const std::string& payload) {
  std::string out = "{\"id\":" + JsonString(id) + ",\"status\":\"ok\"";
  out += ",\"format\":" + JsonString(format);
  if (format == "prometheus") {
    out += ",\"exposition\":" + JsonString(payload);
  } else {
    // The payload is the registry's ToJsonArray output: already JSON.
    out += ",\"metrics\":" + payload;
  }
  out += "}\n";
  return out;
}

std::string RenderTrace(const std::string& id, const std::string& trace_id,
                        const std::vector<TraceSpanView>& spans) {
  std::string out = "{\"id\":" + JsonString(id) + ",\"status\":\"ok\"";
  out += ",\"trace\":" + JsonString(trace_id);
  out += ",\"spans\":[";
  bool first = true;
  for (const TraceSpanView& span : spans) {
    out += StrFormat(
        "%s{\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"tid\":%u,"
        "\"depth\":%u,\"ts_us\":%lld,\"dur_us\":%lld}",
        first ? "" : ",", JsonString(span.name).c_str(),
        JsonString(span.category).c_str(), span.phase,
        static_cast<unsigned>(span.tid), static_cast<unsigned>(span.depth),
        static_cast<long long>(span.ts_us),
        static_cast<long long>(span.dur_us));
    first = false;
  }
  out += "]}\n";
  return out;
}

std::string RenderTraceList(const std::string& id,
                            const std::vector<std::string>& trace_ids) {
  std::string out = "{\"id\":" + JsonString(id) + ",\"status\":\"ok\"";
  out += ",\"traces\":[";
  for (size_t i = 0; i < trace_ids.size(); ++i) {
    out += (i == 0 ? "" : ",") + JsonString(trace_ids[i]);
  }
  out += "]}\n";
  return out;
}

std::string RenderFlight(const std::string& id, const std::string& path) {
  return "{\"id\":" + JsonString(id) +
         ",\"status\":\"ok\",\"flight\":" + JsonString(path) + "}\n";
}

}  // namespace serve
}  // namespace fairclean
