#ifndef FAIRCLEAN_SERVE_ADVISOR_SERVICE_H_
#define FAIRCLEAN_SERVE_ADVISOR_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "store/blob_store.h"
#include "sched/artifact_store.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"
#include "serve/protocol.h"

namespace fairclean {
namespace serve {

/// The resident analysis stack behind the advisor server: generated
/// datasets and experiment-cell artifacts are memoized in a
/// content-addressed ArtifactStore shared across requests (and worker
/// threads), and each cell is produced by a fault-tolerant StudyDriver
/// whose cache/journal live in the suite cache directory — so the stack
/// that answers requests is the same one the batch suite runs on, and a
/// served cell's cache record is byte-identical to the suite's.
///
/// Thread-safe: Analyze may be called concurrently from any number of
/// worker threads. Concurrent requests for the same cell share one
/// production (the store blocks the followers, bounded by their
/// deadlines); requests for distinct cells produce in parallel.
class AdvisorService {
 public:
  explicit AdvisorService(sched::SuiteOptions options);

  const sched::SuiteOptions& options() const { return options_; }

  /// Answers one validated analyze request. `deadline` is the absolute
  /// per-request deadline stamped at admission (nullopt = unbounded): the
  /// cell driver checkpoints its journal and returns DeadlineExceeded when
  /// it trips, and a retry of the same request resumes from that journal
  /// (the store does not memoize transient failures).
  Result<AdvisorAnalysis> Analyze(const AdvisorRequest& request,
                                  const sched::ArtifactStore::Deadline& deadline);

  sched::ArtifactStore& artifacts() { return artifacts_; }

 private:
  Result<std::shared_ptr<const GeneratedDataset>> Dataset(
      const std::string& name, const sched::ArtifactStore::Deadline& deadline);
  Result<std::shared_ptr<const sched::CellArtifact>> Cell(
      const sched::CellKey& cell,
      const sched::ArtifactStore::Deadline& deadline, bool* cache_hit);
  Result<sched::CellArtifact> ProduceCell(
      const sched::CellKey& cell,
      const sched::ArtifactStore::Deadline& deadline, bool* cache_hit);

  /// The one blob store all request drivers share (opened on first use;
  /// the paged backend's pages file has a single writer per process).
  Result<std::shared_ptr<store::BlobStore>> SharedStore();

  sched::SuiteOptions options_;
  obs::MetricsRegistry metrics_;
  sched::ArtifactStore artifacts_;

  std::mutex store_mutex_;
  std::shared_ptr<store::BlobStore> blob_store_;
};

}  // namespace serve
}  // namespace fairclean

#endif  // FAIRCLEAN_SERVE_ADVISOR_SERVICE_H_
