#include "serve/advisor_service.h"

#include <filesystem>
#include <utility>

#include "common/safe_io.h"
#include "common/hash.h"
#include "core/cleaning.h"
#include "core/fair_selector.h"
#include "exec/study_driver.h"
#include "fairness/fairness_metrics.h"
#include "obs/trace.h"
#include "stats/tests.h"

namespace fairclean {
namespace serve {

AdvisorService::AdvisorService(sched::SuiteOptions options)
    : options_(std::move(options)),
      metrics_(&obs::MetricsRegistry::Global()),
      artifacts_(&metrics_) {}

Result<std::shared_ptr<store::BlobStore>> AdvisorService::SharedStore() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (blob_store_ == nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(options_.cache_dir, ec);
    FC_ASSIGN_OR_RETURN(
        blob_store_,
        store::OpenBlobStore(options_.cache_dir, options_.store_backend,
                             options_.store_cache_pages,
                             options_.store_compress));
  }
  return blob_store_;
}

Result<std::shared_ptr<const GeneratedDataset>> AdvisorService::Dataset(
    const std::string& name,
    const sched::ArtifactStore::Deadline& deadline) {
  return artifacts_.GetOrCreateAs<GeneratedDataset>(
      sched::DatasetArtifactKey(name, options_.study.seed),
      [&]() -> Result<GeneratedDataset> {
        obs::TraceSpan span("serve", [&] { return "dataset " + name; });
        return sched::MakeSuiteDataset(name, options_.study.seed);
      },
      deadline);
}

Result<sched::CellArtifact> AdvisorService::ProduceCell(
    const sched::CellKey& cell, const sched::ArtifactStore::Deadline& deadline,
    bool* cache_hit) {
  obs::TraceSpan span("serve", [&] { return "cell " + cell.Id(); });
  FC_ASSIGN_OR_RETURN(std::shared_ptr<const GeneratedDataset> dataset,
                      Dataset(cell.dataset, deadline));
  exec::StudyDriverOptions driver_options;
  driver_options.study = options_.study;
  driver_options.cache_dir = options_.cache_dir;
  driver_options.max_retries = options_.max_retries;
  if (!options_.cache_dir.empty()) {
    FC_ASSIGN_OR_RETURN(driver_options.blob_store, SharedStore());
  }
  // Per-request parallelism stays at 1: the server's worker pool is the
  // fan-out, and sequential drivers keep cache bytes identical to the
  // batch suite at any width.
  driver_options.threads = 1;
  driver_options.deadline = deadline;
  exec::StudyDriver driver(driver_options);
  Result<CleaningExperimentResult> result =
      driver.RunOrLoad(*dataset, cell.error_type, cell.model);
  exec::RunDiagnostics diagnostics = driver.diagnostics();
  // cache_hits > 0 means RunOrLoad served the whole experiment from the
  // on-disk record without computing a repeat in this process.
  *cache_hit = diagnostics.cache_hits > 0;
  if (diagnostics.cache_hits > 0) {
    metrics_.GetCounter("serve.cell_cache_hits")->Increment();
  }
  if (diagnostics.journal_resumes > 0) {
    metrics_.GetCounter("serve.journal_resumes")->Increment();
  }
  if (!result.ok()) return result.status();
  metrics_.GetCounter("serve.cells_served")->Increment();

  sched::CellArtifact artifact;
  artifact.result = std::move(*result);
  std::string bytes;
  if (!options_.cache_dir.empty()) {
    std::string key = exec::StudyDriver::CacheKey(
        driver_options, cell.dataset, cell.error_type, cell.model);
    FC_ASSIGN_OR_RETURN(bytes, driver_options.blob_store->Read(key));
    artifact.cache_file = key;
  } else {
    bytes = AppendChecksumFooter(artifact.result.records.ToJson());
  }
  artifact.sha256 = Sha256Hex(bytes);
  return artifact;
}

Result<std::shared_ptr<const sched::CellArtifact>> AdvisorService::Cell(
    const sched::CellKey& cell,
    const sched::ArtifactStore::Deadline& deadline, bool* cache_hit) {
  // The flag starts true (an in-memory store reuse counts as a hit) and
  // the producer — which only the first requester runs — overwrites it
  // with the driver's own verdict (on-disk cache load vs computed).
  *cache_hit = true;
  return artifacts_.GetOrCreateAs<sched::CellArtifact>(
      sched::CellArtifactKey(cell, options_.study),
      [&]() -> Result<sched::CellArtifact> {
        return ProduceCell(cell, deadline, cache_hit);
      },
      deadline);
}

Result<AdvisorAnalysis> AdvisorService::Analyze(
    const AdvisorRequest& request,
    const sched::ArtifactStore::Deadline& deadline) {
  sched::CellKey cell{request.dataset, request.error_type, request.model};

  bool cache_hit = false;
  FC_ASSIGN_OR_RETURN(std::shared_ptr<const sched::CellArtifact> artifact,
                      Cell(cell, deadline, &cache_hit));
  const CleaningExperimentResult& result = artifact->result;

  // Group: default to the dataset's first single-attribute definition;
  // otherwise require one of the evaluated group keys ("sex", "sex*race").
  std::string group = request.group;
  if (group.empty() && !result.groups.empty()) {
    group = result.groups.front().key;
  }
  bool group_known = false;
  std::string known_groups;
  for (const GroupDefinition& definition : result.groups) {
    if (definition.key == group) group_known = true;
    if (!known_groups.empty()) known_groups += ", ";
    known_groups += definition.key;
  }
  if (!group_known) {
    return Status::InvalidArgument("unknown group \"" + group + "\" for " +
                                   request.dataset +
                                   " (known: " + known_groups + ")");
  }

  FC_ASSIGN_OR_RETURN(
      FairnessMetric metric,
      FairnessMetricByName(request.metric.empty() ? "PP" : request.metric));

  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(request.error_type));
  double alpha = BonferroniAlpha(options_.study.alpha, methods.size());

  AdvisorAnalysis analysis;
  analysis.cell_id = cell.Id();
  analysis.cache_file = artifact->cache_file;
  analysis.sha256 = artifact->sha256;
  analysis.repeats = result.dirty.accuracy.size();
  analysis.cache_hit = cache_hit;
  analysis.group = group;
  analysis.metric = FairnessMetricName(metric);
  analysis.alpha = alpha;

  FC_ASSIGN_OR_RETURN(std::vector<CleaningRecommendation> ranked,
                      SelectFairCleaning(result, group, metric, alpha));
  for (const CleaningRecommendation& rec : ranked) {
    MethodImpact method;
    method.method = rec.method;
    method.impact = rec.impact;
    method.admissible = rec.admissible;
    analysis.methods.push_back(std::move(method));
  }
  if (!ranked.empty() && ranked.front().admissible) {
    analysis.recommendation = ranked.front().method;
  }
  return analysis;
}

}  // namespace serve
}  // namespace fairclean
