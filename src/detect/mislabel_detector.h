#ifndef FAIRCLEAN_DETECT_MISLABEL_DETECTOR_H_
#define FAIRCLEAN_DETECT_MISLABEL_DETECTOR_H_

#include <string>

#include "detect/detector.h"

namespace fairclean {

/// Options for confident-learning label-error detection.
struct MislabelDetectorOptions {
  /// Folds used to obtain out-of-sample predicted probabilities.
  size_t num_folds = 5;
  /// Regularization of the logistic-regression base classifier.
  double logreg_c = 1.0;
};

/// Detects likely label errors with confident learning (Northcutt et al.),
/// the algorithm behind the cleanlab library the paper uses, with a
/// logistic-regression base classifier as in the paper.
///
/// Procedure: (1) obtain out-of-fold predicted probabilities via k-fold
/// cross-validation; (2) compute per-class confidence thresholds as the
/// mean self-confidence of examples carrying that label; (3) count the
/// confident joint between given and (confidently) predicted labels;
/// (4) flag the off-diagonal examples — those whose given label differs
/// from their confident label — as potential mislabels. Flags are
/// row-level.
class MislabelDetector : public ErrorDetector {
 public:
  explicit MislabelDetector(MislabelDetectorOptions options = {})
      : options_(options) {}

  Result<ErrorMask> Detect(const DataFrame& frame,
                           const DetectionContext& context,
                           Rng* rng) const override;
  std::string name() const override { return "mislabels"; }

 private:
  MislabelDetectorOptions options_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DETECT_MISLABEL_DETECTOR_H_
