#ifndef FAIRCLEAN_DETECT_MISSING_DETECTOR_H_
#define FAIRCLEAN_DETECT_MISSING_DETECTOR_H_

#include <string>

#include "detect/detector.h"

namespace fairclean {

/// Flags cells holding NULL/NaN values (the paper's `missing_values`
/// strategy). Detection is exact: a cell either is missing or it is not.
class MissingValueDetector : public ErrorDetector {
 public:
  Result<ErrorMask> Detect(const DataFrame& frame,
                           const DetectionContext& context,
                           Rng* rng) const override;
  std::string name() const override { return "missing_values"; }
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DETECT_MISSING_DETECTOR_H_
