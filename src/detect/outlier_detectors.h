#ifndef FAIRCLEAN_DETECT_OUTLIER_DETECTORS_H_
#define FAIRCLEAN_DETECT_OUTLIER_DETECTORS_H_

#include <string>

#include "detect/detector.h"
#include "ml/isolation_forest.h"

namespace fairclean {

/// `outliers-sd`: a numeric cell is an outlier if it is more than
/// `num_stddevs` sample standard deviations away from the column mean
/// (paper default n = 3). Univariate, cell-level. Missing cells are never
/// flagged (they belong to the missing_values strategy).
class SdOutlierDetector : public ErrorDetector {
 public:
  explicit SdOutlierDetector(double num_stddevs = 3.0)
      : num_stddevs_(num_stddevs) {}

  Result<ErrorMask> Detect(const DataFrame& frame,
                           const DetectionContext& context,
                           Rng* rng) const override;
  std::string name() const override { return "outliers-sd"; }

 private:
  double num_stddevs_;
};

/// `outliers-iqr`: a numeric cell is an outlier if it lies outside
/// [p25 - k*iqr, p75 + k*iqr] (paper default k = 1.5). Univariate,
/// cell-level.
class IqrOutlierDetector : public ErrorDetector {
 public:
  explicit IqrOutlierDetector(double k = 1.5) : k_(k) {}

  Result<ErrorMask> Detect(const DataFrame& frame,
                           const DetectionContext& context,
                           Rng* rng) const override;
  std::string name() const override { return "outliers-iqr"; }

 private:
  double k_;
};

/// `outliers-if`: a tuple is an outlier if an isolation forest trained on
/// the numeric view of the inspected columns flags it (paper contamination
/// = 0.01). Multivariate, row-level. Categorical columns enter as their
/// dictionary codes; missing values as the column mean/modal code.
class IsolationForestOutlierDetector : public ErrorDetector {
 public:
  explicit IsolationForestOutlierDetector(IsolationForestOptions options = {})
      : options_(options) {}

  Result<ErrorMask> Detect(const DataFrame& frame,
                           const DetectionContext& context,
                           Rng* rng) const override;
  std::string name() const override { return "outliers-if"; }

 private:
  IsolationForestOptions options_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DETECT_OUTLIER_DETECTORS_H_
