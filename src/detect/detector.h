#ifndef FAIRCLEAN_DETECT_DETECTOR_H_
#define FAIRCLEAN_DETECT_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataframe.h"
#include "detect/error_mask.h"

namespace fairclean {

/// What a detector may look at: the candidate columns (typically the model
/// features — sensitive attributes and the label are excluded from value
/// inspection) and, for label-error detection, the label column.
struct DetectionContext {
  std::vector<std::string> inspect_columns;
  std::string label_column;
};

/// Common interface for the paper's five error-detection strategies
/// (missing_values, outliers-sd, outliers-iqr, outliers-if, mislabels).
class ErrorDetector {
 public:
  virtual ~ErrorDetector() = default;

  /// Flags potentially erroneous cells/rows of `frame`. `rng` drives any
  /// randomized internals (isolation forest, CV folds).
  virtual Result<ErrorMask> Detect(const DataFrame& frame,
                                   const DetectionContext& context,
                                   Rng* rng) const = 0;

  /// Strategy name as used in the paper ("missing_values", "outliers-sd",
  /// "outliers-iqr", "outliers-if", "mislabels").
  virtual std::string name() const = 0;
};

/// Builds a detector by its paper name with default parameters.
Result<std::unique_ptr<ErrorDetector>> DetectorByName(const std::string& name);

/// All five strategy names in the paper's order.
std::vector<std::string> AllDetectorNames();

}  // namespace fairclean

#endif  // FAIRCLEAN_DETECT_DETECTOR_H_
