#include "detect/detector.h"

#include "detect/mislabel_detector.h"
#include "detect/missing_detector.h"
#include "detect/outlier_detectors.h"

namespace fairclean {

Result<std::unique_ptr<ErrorDetector>> DetectorByName(
    const std::string& name) {
  if (name == "missing_values") {
    return std::unique_ptr<ErrorDetector>(new MissingValueDetector());
  }
  if (name == "outliers-sd") {
    return std::unique_ptr<ErrorDetector>(new SdOutlierDetector());
  }
  if (name == "outliers-iqr") {
    return std::unique_ptr<ErrorDetector>(new IqrOutlierDetector());
  }
  if (name == "outliers-if") {
    return std::unique_ptr<ErrorDetector>(new IsolationForestOutlierDetector());
  }
  if (name == "mislabels") {
    return std::unique_ptr<ErrorDetector>(new MislabelDetector());
  }
  return Status::NotFound("unknown detector: " + name);
}

std::vector<std::string> AllDetectorNames() {
  return {"missing_values", "outliers-sd", "outliers-iqr", "outliers-if",
          "mislabels"};
}

}  // namespace fairclean
