#include "detect/error_mask.h"

#include <algorithm>

namespace fairclean {

namespace {
const std::vector<bool> kEmptyFlags;
}  // namespace

void ErrorMask::FlagCell(const std::string& column, size_t row) {
  FC_CHECK_LT(row, num_rows_);
  auto [it, inserted] = cell_flags_.try_emplace(column);
  if (inserted) it->second.assign(num_rows_, false);
  it->second[row] = true;
}

void ErrorMask::FlagRow(size_t row) {
  FC_CHECK_LT(row, num_rows_);
  if (row_flags_.empty()) row_flags_.assign(num_rows_, false);
  row_flags_[row] = true;
}

bool ErrorMask::CellFlagged(const std::string& column, size_t row) const {
  FC_CHECK_LT(row, num_rows_);
  auto it = cell_flags_.find(column);
  if (it == cell_flags_.end()) return false;
  return it->second[row];
}

bool ErrorMask::RowFlagged(size_t row) const {
  FC_CHECK_LT(row, num_rows_);
  if (!row_flags_.empty() && row_flags_[row]) return true;
  for (const auto& [column, flags] : cell_flags_) {
    if (flags[row]) return true;
  }
  return false;
}

std::vector<std::string> ErrorMask::FlaggedColumns() const {
  std::vector<std::string> out;
  for (const auto& [column, flags] : cell_flags_) {
    if (std::find(flags.begin(), flags.end(), true) != flags.end()) {
      out.push_back(column);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<bool>& ErrorMask::ColumnFlags(
    const std::string& column) const {
  auto it = cell_flags_.find(column);
  if (it == cell_flags_.end()) return kEmptyFlags;
  return it->second;
}

size_t ErrorMask::FlaggedRowCount() const {
  size_t count = 0;
  for (size_t row = 0; row < num_rows_; ++row) {
    if (RowFlagged(row)) ++count;
  }
  return count;
}

size_t ErrorMask::FlaggedCellCount() const {
  size_t count = 0;
  for (const auto& [column, flags] : cell_flags_) {
    for (bool flag : flags) {
      if (flag) ++count;
    }
  }
  return count;
}

}  // namespace fairclean
