#include "detect/outlier_detectors.h"

#include <cmath>

#include "obs/trace.h"
#include "stats/descriptive.h"

namespace fairclean {

namespace {

Status CheckColumns(const DataFrame& frame, const DetectionContext& context) {
  if (context.inspect_columns.empty()) {
    return Status::InvalidArgument("no columns to inspect");
  }
  for (const std::string& name : context.inspect_columns) {
    if (!frame.HasColumn(name)) {
      return Status::NotFound("inspect column not found: " + name);
    }
  }
  return Status::OK();
}

}  // namespace

Result<ErrorMask> SdOutlierDetector::Detect(const DataFrame& frame,
                                            const DetectionContext& context,
                                            Rng* rng) const {
  (void)rng;
  obs::TraceSpan span("detect", "SdOutlierDetector::Detect");
  FC_RETURN_IF_ERROR(CheckColumns(frame, context));
  ErrorMask mask(frame.num_rows());
  for (const std::string& name : context.inspect_columns) {
    const Column& column = frame.column(name);
    if (!column.is_numeric()) continue;
    Result<double> mean = Mean(column.values());
    Result<double> sd = SampleStdDev(column.values());
    if (!mean.ok() || !sd.ok() || *sd == 0.0) continue;
    double lo = *mean - num_stddevs_ * *sd;
    double hi = *mean + num_stddevs_ * *sd;
    for (size_t row = 0; row < column.size(); ++row) {
      double v = column.Value(row);
      if (std::isfinite(v) && (v < lo || v > hi)) mask.FlagCell(name, row);
    }
  }
  return mask;
}

Result<ErrorMask> IqrOutlierDetector::Detect(const DataFrame& frame,
                                             const DetectionContext& context,
                                             Rng* rng) const {
  (void)rng;
  obs::TraceSpan span("detect", "IqrOutlierDetector::Detect");
  FC_RETURN_IF_ERROR(CheckColumns(frame, context));
  ErrorMask mask(frame.num_rows());
  for (const std::string& name : context.inspect_columns) {
    const Column& column = frame.column(name);
    if (!column.is_numeric()) continue;
    Result<double> p25 = Percentile(column.values(), 25.0);
    Result<double> p75 = Percentile(column.values(), 75.0);
    if (!p25.ok() || !p75.ok()) continue;
    double iqr = *p75 - *p25;
    double lo = *p25 - k_ * iqr;
    double hi = *p75 + k_ * iqr;
    for (size_t row = 0; row < column.size(); ++row) {
      double v = column.Value(row);
      if (std::isfinite(v) && (v < lo || v > hi)) mask.FlagCell(name, row);
    }
  }
  return mask;
}

Result<ErrorMask> IsolationForestOutlierDetector::Detect(
    const DataFrame& frame, const DetectionContext& context, Rng* rng) const {
  obs::TraceSpan span("detect", "IsolationForestOutlierDetector::Detect");
  FC_RETURN_IF_ERROR(CheckColumns(frame, context));
  if (rng == nullptr) {
    return Status::InvalidArgument("outliers-if requires an rng");
  }
  size_t n = frame.num_rows();
  if (n == 0) return ErrorMask(0);

  // Numeric view: numeric columns as-is (missing -> column mean),
  // categorical columns as dictionary codes (missing -> modal code).
  Matrix view(n, context.inspect_columns.size());
  for (size_t c = 0; c < context.inspect_columns.size(); ++c) {
    const Column& column = frame.column(context.inspect_columns[c]);
    if (column.is_numeric()) {
      Result<double> mean = Mean(column.values());
      double fill = mean.ok() ? *mean : 0.0;
      for (size_t row = 0; row < n; ++row) {
        double v = column.Value(row);
        view(row, c) = std::isfinite(v) ? v : fill;
      }
    } else {
      Result<int32_t> mode = CodeMode(column.codes(), Column::kMissingCode);
      double fill = mode.ok() ? static_cast<double>(*mode) : 0.0;
      for (size_t row = 0; row < n; ++row) {
        int32_t code = column.Code(row);
        view(row, c) =
            code == Column::kMissingCode ? fill : static_cast<double>(code);
      }
    }
  }

  IsolationForest forest(options_);
  FC_RETURN_IF_ERROR(forest.Fit(view, rng));
  std::vector<bool> anomalies = forest.IsAnomaly(view);
  ErrorMask mask(n);
  for (size_t row = 0; row < n; ++row) {
    if (anomalies[row]) mask.FlagRow(row);
  }
  return mask;
}

}  // namespace fairclean
