#ifndef FAIRCLEAN_DETECT_ERROR_MASK_H_
#define FAIRCLEAN_DETECT_ERROR_MASK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace fairclean {

/// The output of an error-detection strategy.
///
/// Univariate detectors (missing values, outliers-sd, outliers-iqr) flag
/// individual cells, recorded per column; tuple-level detectors
/// (outliers-if, mislabels) flag whole rows. RowFlagged() gives the unified
/// row-level view used in the RQ1 disparity analysis ("is this tuple
/// considered erroneous").
class ErrorMask {
 public:
  explicit ErrorMask(size_t num_rows) : num_rows_(num_rows) {}

  size_t num_rows() const { return num_rows_; }

  /// Marks the cell (row, column) erroneous.
  void FlagCell(const std::string& column, size_t row);
  /// Marks the whole row erroneous.
  void FlagRow(size_t row);

  /// True if the detector flagged this cell.
  bool CellFlagged(const std::string& column, size_t row) const;
  /// True if the row was flagged directly or via any of its cells.
  bool RowFlagged(size_t row) const;

  /// Columns with at least one flagged cell.
  std::vector<std::string> FlaggedColumns() const;
  /// Per-column flags; empty vector if the column has none.
  const std::vector<bool>& ColumnFlags(const std::string& column) const;

  /// Number of rows with any flag.
  size_t FlaggedRowCount() const;
  /// Number of flagged cells across all columns.
  size_t FlaggedCellCount() const;

 private:
  size_t num_rows_;
  std::vector<bool> row_flags_;
  std::unordered_map<std::string, std::vector<bool>> cell_flags_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DETECT_ERROR_MASK_H_
