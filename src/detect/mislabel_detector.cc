#include "detect/mislabel_detector.h"

#include <cmath>

#include "common/thread_pool.h"
#include "data/split.h"
#include "ml/encoder.h"
#include "ml/logistic_regression.h"
#include "obs/trace.h"

namespace fairclean {

Result<ErrorMask> MislabelDetector::Detect(const DataFrame& frame,
                                           const DetectionContext& context,
                                           Rng* rng) const {
  obs::TraceSpan span("detect", "MislabelDetector::Detect");
  if (context.label_column.empty()) {
    return Status::InvalidArgument("mislabel detection requires a label");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("mislabel detection requires an rng");
  }
  size_t n = frame.num_rows();
  if (n < options_.num_folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }

  FC_ASSIGN_OR_RETURN(std::vector<int> labels,
                      ExtractBinaryLabels(frame, context.label_column));

  FeatureEncoder encoder;
  FC_RETURN_IF_ERROR(encoder.Fit(frame, context.inspect_columns));
  FC_ASSIGN_OR_RETURN(Matrix features, encoder.Transform(frame));

  // Out-of-fold predicted probabilities P(y = 1 | x).
  double prior = 0.0;
  for (int label : labels) prior += label;
  prior /= static_cast<double>(n);
  std::vector<double> proba(n, prior);

  Rng fold_rng = rng->Fork(0xc1ea);
  std::vector<TrainTestIndices> folds =
      KFoldIndices(n, options_.num_folds, &fold_rng);

  // Pre-fork the per-fold fit RNGs in fold order before the fan-out: Fork
  // advances the parent engine, so the fork order must match the old
  // sequential loop for the probabilities to stay byte-identical under
  // parallelism (pattern from ml/tuning.cc).
  std::vector<Rng> fit_rngs;
  fit_rngs.reserve(folds.size());
  for (size_t f = 0; f < folds.size(); ++f) {
    fit_rngs.push_back(rng->Fork(0xf01d + f));
  }
  LogisticRegressionOptions lr_options;
  lr_options.c = options_.logreg_c;

  struct FoldProba {
    bool ok = false;
    std::vector<double> held_p;
  };
  ThreadPool* pool = ThreadPool::SharedForFolds();
  std::vector<FoldProba> fold_probas =
      RunIndexed(pool, folds.size(), [&](size_t f) -> FoldProba {
        obs::TraceSpan fold_span("detect", [&] {
          return "mislabel oof fold " + std::to_string(f);
        });
        FoldProba result;
        Matrix train_x = features.TakeRows(folds[f].train);
        std::vector<int> train_y;
        train_y.reserve(folds[f].train.size());
        for (size_t index : folds[f].train) train_y.push_back(labels[index]);

        LogisticRegression model(lr_options);
        Status st = model.Fit(train_x, train_y, &fit_rngs[f]);
        if (!st.ok()) return result;  // degenerate fold: keep prior rows

        Matrix held_x = features.TakeRows(folds[f].test);
        result.held_p = model.PredictProba(held_x);
        result.ok = true;
        return result;
      });
  // Slot-ordered writes: scatter each fold's probabilities in fold order
  // on the caller thread (fold test sets are disjoint, so this matches the
  // sequential loop exactly).
  for (size_t f = 0; f < folds.size(); ++f) {
    if (!fold_probas[f].ok) continue;
    for (size_t i = 0; i < folds[f].test.size(); ++i) {
      proba[folds[f].test[i]] = fold_probas[f].held_p[i];
    }
  }

  // Per-class expected self-confidence thresholds.
  double t1_sum = 0.0;
  double t0_sum = 0.0;
  size_t n1 = 0;
  size_t n0 = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) {
      t1_sum += proba[i];
      ++n1;
    } else {
      t0_sum += 1.0 - proba[i];
      ++n0;
    }
  }
  if (n1 == 0 || n0 == 0) {
    return Status::InvalidArgument("labels are single-class");
  }
  double t1 = t1_sum / static_cast<double>(n1);
  double t0 = t0_sum / static_cast<double>(n0);

  // Off-diagonal entries of the confident joint: examples whose confident
  // label (probability above that class's threshold) contradicts the given
  // label.
  ErrorMask mask(n);
  for (size_t i = 0; i < n; ++i) {
    double p1 = proba[i];
    double p0 = 1.0 - p1;
    bool confident1 = p1 >= t1;
    bool confident0 = p0 >= t0;
    int confident_label;
    if (confident1 && confident0) {
      confident_label = p1 >= p0 ? 1 : 0;
    } else if (confident1) {
      confident_label = 1;
    } else if (confident0) {
      confident_label = 0;
    } else {
      continue;  // not confidently either class
    }
    if (confident_label != labels[i]) mask.FlagRow(i);
  }
  return mask;
}

}  // namespace fairclean
