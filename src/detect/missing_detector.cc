#include "detect/missing_detector.h"

#include "obs/trace.h"

namespace fairclean {

Result<ErrorMask> MissingValueDetector::Detect(const DataFrame& frame,
                                               const DetectionContext& context,
                                               Rng* rng) const {
  (void)rng;
  obs::TraceSpan span("detect", "MissingValueDetector::Detect");
  ErrorMask mask(frame.num_rows());
  for (const std::string& name : context.inspect_columns) {
    if (!frame.HasColumn(name)) {
      return Status::NotFound("inspect column not found: " + name);
    }
    const Column& column = frame.column(name);
    for (size_t row = 0; row < column.size(); ++row) {
      if (column.IsMissing(row)) mask.FlagCell(name, row);
    }
  }
  return mask;
}

}  // namespace fairclean
