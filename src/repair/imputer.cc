#include "repair/imputer.h"

#include <cmath>

#include "common/strings.h"
#include "obs/trace.h"
#include "stats/descriptive.h"

namespace fairclean {

const char* NumericImputeName(NumericImpute kind) {
  switch (kind) {
    case NumericImpute::kMean:
      return "mean";
    case NumericImpute::kMedian:
      return "median";
    case NumericImpute::kMode:
      return "mode";
  }
  return "unknown";
}

const char* CategoricalImputeName(CategoricalImpute kind) {
  switch (kind) {
    case CategoricalImpute::kMode:
      return "mode";
    case CategoricalImpute::kDummy:
      return "dummy";
  }
  return "unknown";
}

Status MissingValueImputer::Fit(const DataFrame& train,
                                const std::vector<std::string>& columns) {
  obs::TraceSpan span("repair", "MissingValueImputer::Fit");
  numeric_fill_.clear();
  categorical_fill_.clear();
  columns_ = columns;
  for (const std::string& name : columns) {
    if (!train.HasColumn(name)) {
      return Status::NotFound("imputer column not found: " + name);
    }
    const Column& column = train.column(name);
    if (column.is_numeric()) {
      Result<double> fill(0.0);
      switch (numeric_kind_) {
        case NumericImpute::kMean:
          fill = Mean(column.values());
          break;
        case NumericImpute::kMedian:
          fill = Median(column.values());
          break;
        case NumericImpute::kMode:
          fill = NumericMode(column.values());
          break;
      }
      numeric_fill_[name] = fill.ok() ? *fill : 0.0;
    } else {
      if (categorical_kind_ == CategoricalImpute::kDummy) {
        categorical_fill_[name] = kDummyCategory;
      } else {
        Result<int32_t> mode = CodeMode(column.codes(), Column::kMissingCode);
        categorical_fill_[name] =
            mode.ok() ? column.CategoryName(*mode) : kDummyCategory;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Status MissingValueImputer::Apply(DataFrame* frame) const {
  obs::TraceSpan span("repair", "MissingValueImputer::Apply");
  if (!fitted_) {
    return Status::Internal("imputer not fitted");
  }
  for (const std::string& name : columns_) {
    if (!frame->HasColumn(name)) {
      return Status::NotFound("imputer column not found: " + name);
    }
    Column& column = frame->mutable_column(name);
    if (column.is_numeric()) {
      double fill = numeric_fill_.at(name);
      for (size_t row = 0; row < column.size(); ++row) {
        if (column.IsMissing(row)) column.SetValue(row, fill);
      }
    } else {
      const std::string& category = categorical_fill_.at(name);
      int32_t code = Column::kMissingCode;
      for (size_t row = 0; row < column.size(); ++row) {
        if (!column.IsMissing(row)) continue;
        if (code == Column::kMissingCode) {
          code = column.GetOrAddCategory(category);
        }
        column.SetCode(row, code);
      }
    }
  }
  return Status::OK();
}

std::string MissingValueImputer::MethodName() const {
  return StrFormat("impute_%s_%s", NumericImputeName(numeric_kind_),
                   CategoricalImputeName(categorical_kind_));
}

}  // namespace fairclean
