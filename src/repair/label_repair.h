#ifndef FAIRCLEAN_REPAIR_LABEL_REPAIR_H_
#define FAIRCLEAN_REPAIR_LABEL_REPAIR_H_

#include <string>

#include "common/status.h"
#include "data/dataframe.h"
#include "detect/error_mask.h"

namespace fairclean {

/// Repairs predicted label errors by flipping the binary label of every
/// row flagged in `mask` (the paper's mislabel repair). The label column
/// must be numeric 0/1 or categorical with exactly two categories. Returns
/// the number of labels flipped.
///
/// Per the paper's protocol this is applied to training data only — labels
/// are never flipped on the test set.
Result<size_t> FlipFlaggedLabels(DataFrame* frame, const ErrorMask& mask,
                                 const std::string& label_column);

}  // namespace fairclean

#endif  // FAIRCLEAN_REPAIR_LABEL_REPAIR_H_
