#include "repair/label_repair.h"

#include "obs/trace.h"

namespace fairclean {

Result<size_t> FlipFlaggedLabels(DataFrame* frame, const ErrorMask& mask,
                                 const std::string& label_column) {
  obs::TraceSpan span("repair", "FlipFlaggedLabels");
  if (mask.num_rows() != frame->num_rows()) {
    return Status::InvalidArgument("mask/frame size mismatch");
  }
  if (!frame->HasColumn(label_column)) {
    return Status::NotFound("label column not found: " + label_column);
  }
  Column& column = frame->mutable_column(label_column);
  if (column.is_categorical() && column.dictionary().size() != 2) {
    return Status::InvalidArgument(
        "categorical label must have exactly two categories");
  }
  size_t flipped = 0;
  for (size_t row = 0; row < column.size(); ++row) {
    if (!mask.RowFlagged(row)) continue;
    if (column.IsMissing(row)) {
      return Status::InvalidArgument("cannot flip a missing label");
    }
    if (column.is_numeric()) {
      double v = column.Value(row);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("label must be binary (0/1)");
      }
      column.SetValue(row, v == 0.0 ? 1.0 : 0.0);
    } else {
      column.SetCode(row, column.Code(row) == 0 ? 1 : 0);
    }
    ++flipped;
  }
  return flipped;
}

}  // namespace fairclean
