#ifndef FAIRCLEAN_REPAIR_IMPUTER_H_
#define FAIRCLEAN_REPAIR_IMPUTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataframe.h"

namespace fairclean {

/// Imputation strategies for numeric columns (paper: mean, median, mode).
enum class NumericImpute { kMean, kMedian, kMode };

/// Imputation strategies for categorical columns (paper: mode, or a
/// constant "dummy" indicator category).
enum class CategoricalImpute { kMode, kDummy };

const char* NumericImputeName(NumericImpute kind);
const char* CategoricalImputeName(CategoricalImpute kind);

/// The dictionary entry introduced by dummy imputation.
inline constexpr char kDummyCategory[] = "missing_dummy";

/// Fills missing cells with statistics fitted on a training frame — the
/// paper's missing-value repair. Fit computes per-column fill values on the
/// train split; Apply writes them into any frame (train or test), so the
/// test set is repaired with training statistics, as in scikit-learn.
class MissingValueImputer {
 public:
  MissingValueImputer(NumericImpute numeric_kind,
                      CategoricalImpute categorical_kind)
      : numeric_kind_(numeric_kind), categorical_kind_(categorical_kind) {}

  /// Computes fill values for `columns` on `train`. Columns whose training
  /// values are all missing fall back to 0 / the dummy category.
  Status Fit(const DataFrame& train, const std::vector<std::string>& columns);

  /// Replaces every missing cell of the fitted columns in `frame`. Dummy
  /// imputation extends the column dictionary if needed.
  Status Apply(DataFrame* frame) const;

  /// CleanML-style method name, e.g. "impute_mean_dummy".
  std::string MethodName() const;

 private:
  NumericImpute numeric_kind_;
  CategoricalImpute categorical_kind_;
  bool fitted_ = false;
  std::unordered_map<std::string, double> numeric_fill_;
  // For kMode: the modal category name (resolved to a code per frame).
  std::unordered_map<std::string, std::string> categorical_fill_;
  std::vector<std::string> columns_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_REPAIR_IMPUTER_H_
