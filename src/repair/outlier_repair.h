#ifndef FAIRCLEAN_REPAIR_OUTLIER_REPAIR_H_
#define FAIRCLEAN_REPAIR_OUTLIER_REPAIR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataframe.h"
#include "detect/error_mask.h"
#include "repair/imputer.h"

namespace fairclean {

/// Repairs flagged outlier values in numeric columns by replacing them with
/// the column mean, median or mode (the paper's outlier repair methods).
///
/// Fit computes replacement values on the training frame from the
/// *unflagged* cells (so extreme values do not contaminate their own
/// repair); Apply rewrites flagged cells in any frame using those training
/// statistics. For row-level masks (outliers-if), every numeric cell of a
/// flagged row is repaired.
class OutlierRepairer {
 public:
  explicit OutlierRepairer(NumericImpute kind) : kind_(kind) {}

  /// Computes per-column replacement values on `train`, ignoring cells
  /// flagged in `train_mask`. Non-numeric columns are skipped.
  Status Fit(const DataFrame& train, const ErrorMask& train_mask,
             const std::vector<std::string>& columns);

  /// Replaces cells of `frame` flagged in `mask` (cell-level flags, plus
  /// all numeric cells of row-flagged tuples).
  Status Apply(DataFrame* frame, const ErrorMask& mask) const;

  /// CleanML-style repair name, e.g. "impute_mean".
  std::string MethodName() const;

 private:
  NumericImpute kind_;
  bool fitted_ = false;
  std::unordered_map<std::string, double> fill_;
  std::vector<std::string> columns_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_REPAIR_OUTLIER_REPAIR_H_
