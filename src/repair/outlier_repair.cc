#include "repair/outlier_repair.h"

#include <cmath>

#include "common/strings.h"
#include "obs/trace.h"
#include "stats/descriptive.h"

namespace fairclean {

Status OutlierRepairer::Fit(const DataFrame& train,
                            const ErrorMask& train_mask,
                            const std::vector<std::string>& columns) {
  obs::TraceSpan span("repair", "OutlierRepairer::Fit");
  if (train_mask.num_rows() != train.num_rows()) {
    return Status::InvalidArgument("mask/frame size mismatch");
  }
  fill_.clear();
  columns_.clear();
  for (const std::string& name : columns) {
    if (!train.HasColumn(name)) {
      return Status::NotFound("repair column not found: " + name);
    }
    const Column& column = train.column(name);
    if (!column.is_numeric()) continue;
    columns_.push_back(name);

    std::vector<double> clean_values;
    clean_values.reserve(column.size());
    for (size_t row = 0; row < column.size(); ++row) {
      if (train_mask.CellFlagged(name, row) || train_mask.RowFlagged(row)) {
        continue;
      }
      double v = column.Value(row);
      if (std::isfinite(v)) clean_values.push_back(v);
    }

    Result<double> fill(0.0);
    switch (kind_) {
      case NumericImpute::kMean:
        fill = Mean(clean_values);
        break;
      case NumericImpute::kMedian:
        fill = Median(clean_values);
        break;
      case NumericImpute::kMode:
        fill = NumericMode(clean_values);
        break;
    }
    if (!fill.ok()) {
      // Everything flagged: fall back to the overall column statistic.
      fill = Mean(column.values());
    }
    fill_[name] = fill.ok() ? *fill : 0.0;
  }
  fitted_ = true;
  return Status::OK();
}

Status OutlierRepairer::Apply(DataFrame* frame, const ErrorMask& mask) const {
  obs::TraceSpan span("repair", "OutlierRepairer::Apply");
  if (!fitted_) {
    return Status::Internal("outlier repairer not fitted");
  }
  if (mask.num_rows() != frame->num_rows()) {
    return Status::InvalidArgument("mask/frame size mismatch");
  }
  for (const std::string& name : columns_) {
    if (!frame->HasColumn(name)) {
      return Status::NotFound("repair column not found: " + name);
    }
    Column& column = frame->mutable_column(name);
    double fill = fill_.at(name);
    for (size_t row = 0; row < column.size(); ++row) {
      if (column.IsMissing(row)) continue;
      if (mask.CellFlagged(name, row) || mask.RowFlagged(row)) {
        column.SetValue(row, fill);
      }
    }
  }
  return Status::OK();
}

std::string OutlierRepairer::MethodName() const {
  return StrFormat("impute_%s", NumericImputeName(kind_));
}

}  // namespace fairclean
