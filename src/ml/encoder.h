#ifndef FAIRCLEAN_ML_ENCODER_H_
#define FAIRCLEAN_ML_ENCODER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataframe.h"
#include "ml/matrix.h"

namespace fairclean {

/// Turns a DataFrame into the dense feature matrix consumed by classifiers.
///
/// Numeric columns are standardized to zero mean / unit variance with
/// statistics fitted on the training frame. Categorical columns are one-hot
/// encoded over the dictionary observed at fit time.
///
/// The experiment protocol removes or imputes missing values before
/// encoding; as a defensive fallback, a missing numeric cell encodes to the
/// fitted mean (0 after standardization) and a missing categorical cell to
/// an all-zero one-hot block.
class FeatureEncoder {
 public:
  /// Fits the encoder on `frame` using `feature_columns` (all must exist).
  Status Fit(const DataFrame& frame,
             const std::vector<std::string>& feature_columns);

  /// Encodes `frame` with the fitted statistics. The frame must contain all
  /// feature columns with compatible types. Categorical codes beyond the
  /// fitted dictionary encode as all-zeros (unseen-category fallback).
  Result<Matrix> Transform(const DataFrame& frame) const;

  /// Number of encoded feature dimensions.
  size_t num_features() const { return num_features_; }

  bool fitted() const { return fitted_; }

 private:
  struct ColumnEncoding {
    std::string name;
    bool numeric = false;
    // Numeric: standardization parameters.
    double mean = 0.0;
    double stddev = 1.0;
    // Categorical: number of one-hot slots (fitted dictionary size).
    size_t cardinality = 0;
    // First output dimension of this column's block.
    size_t offset = 0;
  };

  bool fitted_ = false;
  size_t num_features_ = 0;
  std::vector<ColumnEncoding> encodings_;
};

/// Extracts a 0/1 label vector from `frame[label_column]`. Numeric columns
/// must contain only 0 and 1; categorical columns must have exactly two
/// categories, of which `positive_category` (or dictionary entry 1 when
/// empty) maps to 1. Missing labels are rejected.
Result<std::vector<int>> ExtractBinaryLabels(
    const DataFrame& frame, const std::string& label_column,
    const std::string& positive_category = "");

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_ENCODER_H_
