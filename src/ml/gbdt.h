#ifndef FAIRCLEAN_ML_GBDT_H_
#define FAIRCLEAN_ML_GBDT_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/regression_tree.h"

namespace fairclean {

/// Hyperparameters for GradientBoostedTrees.
struct GbdtOptions {
  /// Number of boosting rounds.
  int num_rounds = 50;
  /// Shrinkage applied to every tree's contribution.
  double learning_rate = 0.2;
  /// Maximum tree depth — the hyperparameter the paper tunes for xgboost.
  int max_depth = 3;
  /// Row subsampling fraction per round (stochastic gradient boosting);
  /// values < 1 make training depend on the Fit rng, mirroring the paper's
  /// per-seed model instances.
  double subsample = 0.8;
  /// Bench/ablation knob: when false, every boosting round re-sorts its
  /// subsample from scratch instead of filtering the shared presort. The
  /// per-round sort orders ties between equal feature values differently
  /// than the stable filter, so scores are NOT byte-identical across the
  /// two settings — keep true everywhere except perf_micro's on/off
  /// comparison.
  bool presort_reuse = true;
  /// Fused-mode kernel switch: PredictProba walks trees-outer over blocks
  /// of rows (each tree's nodes stay cache-hot across the block) instead of
  /// rows-outer over all trees. Every row still accumulates
  /// base + lr*tree0 + lr*tree1 + ... in the same order, so the scores are
  /// bit-identical to the plain path (DESIGN.md §15).
  bool stacked_predict = false;
  RegressionTreeOptions tree;
};

/// Gradient-boosted decision trees on the logistic loss with second-order
/// (Newton) leaf weights — a from-scratch stand-in for the XGBoost binary
/// classifier used in the paper.
class GradientBoostedTrees : public Classifier {
 public:
  explicit GradientBoostedTrees(GbdtOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y, Rng* rng) override;
  /// Consumes a caller-provided PresortedFeatures::Compute(x) instead of
  /// presorting internally — byte-identical to Fit, minus the sort cost.
  /// The tuner uses this to presort each fold once for the whole grid.
  Status FitWithPresort(const Matrix& x, const std::vector<int>& y, Rng* rng,
                        const PresortedFeatures* presorted) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GradientBoostedTrees>(options_);
  }
  std::string name() const override { return "xgboost"; }

  size_t num_trees() const { return trees_.size(); }

  /// Mean training logistic loss after round `i` (recorded during Fit);
  /// exposed for convergence tests.
  const std::vector<double>& training_loss_curve() const {
    return loss_curve_;
  }

 private:
  GbdtOptions options_;
  /// Set only for the duration of FitWithPresort.
  const PresortedFeatures* external_presort_ = nullptr;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<double> loss_curve_;
  bool fitted_ = false;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_GBDT_H_
