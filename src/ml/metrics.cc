#include "ml/metrics.h"

#include "common/check.h"

namespace fairclean {

Result<ConfusionMatrix> ConfusionMatrix::From(const std::vector<int>& y_true,
                                              const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    return Status::InvalidArgument("label/prediction size mismatch");
  }
  ConfusionMatrix cm;
  for (size_t i = 0; i < y_true.size(); ++i) {
    int t = y_true[i];
    int p = y_pred[i];
    if ((t != 0 && t != 1) || (p != 0 && p != 1)) {
      return Status::InvalidArgument("labels must be binary (0/1)");
    }
    if (t == 1 && p == 1) ++cm.tp;
    else if (t == 1 && p == 0) ++cm.fn;
    else if (t == 0 && p == 1) ++cm.fp;
    else ++cm.tn;
  }
  return cm;
}

double ConfusionMatrix::Accuracy() const {
  int64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::Precision(double undefined_value) const {
  int64_t denom = tp + fp;
  if (denom == 0) return undefined_value;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall(double undefined_value) const {
  int64_t denom = tp + fn;
  if (denom == 0) return undefined_value;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::PositiveRate() const {
  int64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp + fp) / static_cast<double>(n);
}

ConfusionMatrix ConfusionMatrix::operator+(const ConfusionMatrix& other) const {
  ConfusionMatrix out;
  out.tn = tn + other.tn;
  out.fp = fp + other.fp;
  out.fn = fn + other.fn;
  out.tp = tp + other.tp;
  return out;
}

double AccuracyScore(const std::vector<int>& y_true,
                     const std::vector<int>& y_pred) {
  FC_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(y_true.size());
}

double F1Score(const std::vector<int>& y_true,
               const std::vector<int>& y_pred) {
  ConfusionMatrix cm = ConfusionMatrix::From(y_true, y_pred).ValueOrDie();
  return cm.F1();
}

}  // namespace fairclean
