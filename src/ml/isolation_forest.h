#ifndef FAIRCLEAN_ML_ISOLATION_FOREST_H_
#define FAIRCLEAN_ML_ISOLATION_FOREST_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace fairclean {

/// Hyperparameters for IsolationForest (defaults follow Liu et al. and
/// scikit-learn).
struct IsolationForestOptions {
  int num_trees = 100;
  /// Subsample size per tree (psi).
  size_t subsample_size = 256;
  /// Expected fraction of anomalies; determines the score threshold used by
  /// IsAnomaly. The paper uses contamination = 0.01.
  double contamination = 0.01;
};

/// Isolation forest anomaly detector (Liu, Ting, Zhou 2008): trees isolate
/// points with uniformly random axis-aligned splits; anomalous points have
/// short expected path lengths. Backs the paper's multivariate
/// `outliers-if` detection strategy.
class IsolationForest {
 public:
  explicit IsolationForest(IsolationForestOptions options = {})
      : options_(options) {}

  /// Builds the forest on the rows of `x`.
  Status Fit(const Matrix& x, Rng* rng);

  /// Anomaly score in (0, 1) per row of `x`; higher = more anomalous.
  /// Score 0.5 corresponds to the average path length of an ordinary point.
  std::vector<double> Score(const Matrix& x) const;

  /// Flags per row of `x`: true for rows whose score exceeds the
  /// contamination threshold fitted on the training scores.
  std::vector<bool> IsAnomaly(const Matrix& x) const;

  double threshold() const { return threshold_; }

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    size_t size = 0;  // training points at this leaf
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(const Matrix& x, std::vector<size_t>* indices, int depth,
                int depth_limit, Rng* rng, Tree* tree);
  double PathLength(const Tree& tree, const double* row) const;

  IsolationForestOptions options_;
  std::vector<Tree> trees_;
  double normalizer_ = 1.0;  // c(psi)
  double threshold_ = 0.5;
  bool fitted_ = false;
};

/// Average path length of an unsuccessful BST search over n points
/// (the c(n) normalizer from the isolation-forest paper).
double AveragePathLength(size_t n);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_ISOLATION_FOREST_H_
