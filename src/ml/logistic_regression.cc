#include "ml/logistic_regression.h"

#include <cstddef>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "ml/linalg.h"

namespace fairclean {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y,
                               Rng* rng) {
  (void)rng;  // IRLS is deterministic.
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("C must be positive");
  }
  size_t n = x.rows();
  size_t d = x.cols();
  size_t dim = d + 1;  // augmented with intercept (last slot)
  double lambda = 1.0 / options_.c;

  std::vector<double> beta(dim, 0.0);
  std::vector<double> proba(n, 0.5);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Gradient of the penalized negative log-likelihood.
    std::vector<double> grad(dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.Row(i);
      double z = beta[d];
      for (size_t j = 0; j < d; ++j) z += beta[j] * row[j];
      double p = Sigmoid(z);
      proba[i] = p;
      double r = p - static_cast<double>(y[i]);
      for (size_t j = 0; j < d; ++j) grad[j] += r * row[j];
      grad[d] += r;
    }
    for (size_t j = 0; j < d; ++j) grad[j] += lambda * beta[j];

    // Hessian: X_aug^T S X_aug + lambda * diag(1,...,1,0).
    std::vector<double> hess(dim * dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.Row(i);
      double s = proba[i] * (1.0 - proba[i]);
      if (s < 1e-10) s = 1e-10;
      for (size_t j = 0; j < d; ++j) {
        double sj = s * row[j];
        for (size_t k = 0; k <= j; ++k) hess[j * dim + k] += sj * row[k];
        hess[d * dim + j] += sj;
      }
      hess[d * dim + d] += s;
    }
    for (size_t j = 0; j < d; ++j) hess[j * dim + j] += lambda;
    // Mirror the lower triangle.
    for (size_t j = 0; j < dim; ++j) {
      for (size_t k = j + 1; k < dim; ++k) {
        hess[j * dim + k] = hess[k * dim + j];
      }
    }

    FC_ASSIGN_OR_RETURN(std::vector<double> step,
                        SolveCholeskyWithJitter(std::move(hess), grad, dim));
    double max_update = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      beta[j] -= step[j];
      max_update = std::max(max_update, std::abs(step[j]));
    }
    if (max_update < options_.tolerance) break;
  }

  weights_.assign(beta.begin(), beta.begin() + static_cast<ptrdiff_t>(d));
  intercept_ = beta[d];
  fitted_ = true;
  return Status::OK();
}

std::vector<double> LogisticRegression::PredictProba(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "PredictProba before Fit");
  FC_CHECK_EQ(x.cols(), weights_.size());
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    double z = intercept_;
    for (size_t j = 0; j < weights_.size(); ++j) z += weights_[j] * row[j];
    out[i] = Sigmoid(z);
  }
  return out;
}

}  // namespace fairclean
