#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fairclean {

namespace {
constexpr double kEulerMascheroni = 0.5772156649015329;
}  // namespace

double AveragePathLength(size_t n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  double nd = static_cast<double>(n);
  double harmonic = std::log(nd - 1.0) + kEulerMascheroni;
  return 2.0 * harmonic - 2.0 * (nd - 1.0) / nd;
}

Status IsolationForest::Fit(const Matrix& x, Rng* rng) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training matrix");
  }
  if (options_.num_trees <= 0 || options_.subsample_size == 0) {
    return Status::InvalidArgument("invalid isolation forest options");
  }
  if (options_.contamination <= 0.0 || options_.contamination >= 0.5) {
    return Status::InvalidArgument("contamination must be in (0, 0.5)");
  }
  size_t psi = std::min(options_.subsample_size, x.rows());
  normalizer_ = AveragePathLength(psi);
  int depth_limit =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(psi)))) + 1;

  trees_.clear();
  trees_.resize(static_cast<size_t>(options_.num_trees));
  for (Tree& tree : trees_) {
    std::vector<size_t> sample = rng->SampleWithoutReplacement(x.rows(), psi);
    BuildNode(x, &sample, 0, depth_limit, rng, &tree);
  }
  fitted_ = true;

  // Threshold = (1 - contamination) quantile of the training scores, so
  // that a `contamination` fraction of the training rows is flagged.
  std::vector<double> scores = Score(x);
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  double rank = (1.0 - options_.contamination) *
                static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  threshold_ = sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  return Status::OK();
}

int IsolationForest::BuildNode(const Matrix& x, std::vector<size_t>* indices,
                               int depth, int depth_limit, Rng* rng,
                               Tree* tree) {
  int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_id)].size = indices->size();

  if (indices->size() <= 1 || depth >= depth_limit) return node_id;

  // Choose a split feature with spread; give up after a few attempts if the
  // subsample is constant in every tried dimension.
  size_t feature = 0;
  double lo = 0.0;
  double hi = 0.0;
  bool found = false;
  for (int attempt = 0; attempt < 8 && !found; ++attempt) {
    feature = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(x.cols()) - 1));
    lo = x.Row((*indices)[0])[feature];
    hi = lo;
    for (size_t index : *indices) {
      lo = std::min(lo, x.Row(index)[feature]);
      hi = std::max(hi, x.Row(index)[feature]);
    }
    found = hi > lo;
  }
  if (!found) return node_id;

  double split = rng->Uniform(lo, hi);
  std::vector<size_t> left_indices;
  std::vector<size_t> right_indices;
  for (size_t index : *indices) {
    if (x.Row(index)[feature] < split) {
      left_indices.push_back(index);
    } else {
      right_indices.push_back(index);
    }
  }
  if (left_indices.empty() || right_indices.empty()) return node_id;
  indices->clear();
  indices->shrink_to_fit();

  int left = BuildNode(x, &left_indices, depth + 1, depth_limit, rng, tree);
  int right = BuildNode(x, &right_indices, depth + 1, depth_limit, rng, tree);
  Node& node = tree->nodes[static_cast<size_t>(node_id)];
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = split;
  node.left = left;
  node.right = right;
  return node_id;
}

double IsolationForest::PathLength(const Tree& tree, const double* row) const {
  int node_id = 0;
  double depth = 0.0;
  while (true) {
    const Node& node = tree.nodes[static_cast<size_t>(node_id)];
    if (node.is_leaf) {
      return depth + AveragePathLength(node.size);
    }
    depth += 1.0;
    node_id = row[node.feature] < node.threshold ? node.left : node.right;
  }
}

std::vector<double> IsolationForest::Score(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "Score before Fit");
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    double mean_path = 0.0;
    for (const Tree& tree : trees_) {
      mean_path += PathLength(tree, x.Row(i));
    }
    mean_path /= static_cast<double>(trees_.size());
    out[i] = std::pow(2.0, -mean_path / normalizer_);
  }
  return out;
}

std::vector<bool> IsolationForest::IsAnomaly(const Matrix& x) const {
  std::vector<double> scores = Score(x);
  std::vector<bool> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] > threshold_;
  }
  return out;
}

}  // namespace fairclean
