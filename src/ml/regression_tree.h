#ifndef FAIRCLEAN_ML_REGRESSION_TREE_H_
#define FAIRCLEAN_ML_REGRESSION_TREE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace fairclean {

/// Structural hyperparameters for a single gradient tree.
struct RegressionTreeOptions {
  int max_depth = 3;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double lambda = 1.0;
  /// Minimum split gain (XGBoost's gamma).
  double gamma = 0.0;
  /// Minimum hessian sum per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
};

/// Feature-sorted row orderings shared across the trees of one boosting
/// run: the presort is the dominant per-tree cost and the ordering never
/// changes, so GradientBoostedTrees computes it once — and tuning shares
/// one presort per fold across the whole hyperparameter grid.
struct PresortedFeatures {
  /// order[f] = row ids sorted ascending by feature f. Compute() emits all
  /// rows of the matrix; FilterInto() emits a subset in the same relative
  /// order.
  std::vector<std::vector<size_t>> order;
  /// values[f][i] = feature f of row order[f][i], kept in lockstep with
  /// `order` so level scans stream feature values sequentially instead of
  /// gathering one cache line per row. Same doubles in the same sequence —
  /// a pure cache-layout optimization that cannot change any float sum.
  /// May be empty (e.g. a hand-built presort), in which case scans gather
  /// from the matrix.
  std::vector<std::vector<double>> values;

  static PresortedFeatures Compute(const Matrix& x);

  /// Stable membership filter: out->order[f] keeps exactly the rows with
  /// member[row] != 0, preserving this order's relative order — the scan
  /// sequence is therefore identical to scanning the full order and
  /// skipping non-members, which keeps split-search float accumulation
  /// byte-identical. `values` (when present) is filtered in lockstep.
  /// member_count must be the exact number of kept rows (checked). Reuses
  /// out's buffers across calls; column-parallel when a fold pool is
  /// available (per-feature outputs are independent, so scheduling cannot
  /// affect the result).
  void FilterInto(const std::vector<char>& member, size_t member_count,
                  PresortedFeatures* out) const;
};

/// Reusable scratch for FitPresorted, hoisted out of the per-round hot loop
/// by GradientBoostedTrees so repeated fits on the same matrix allocate
/// their row/node buffers once instead of once per tree. Contents are
/// overwritten by every fit; a workspace must not be shared between
/// concurrent fits.
class TreeFitWorkspace {
 private:
  friend class RegressionTree;

  struct SplitCandidate {
    double gain = 0.0;
    size_t feature = 0;
    double threshold = 0.0;
  };
  struct SplitScratch {
    double g_left = 0.0;
    double h_left = 0.0;
    double last_value = 0.0;
    size_t count_left = 0;
  };

  std::vector<int> node_of;      // per absolute row: current node id or -1
  std::vector<double> gh;        // interleaved [grad, hess] per absolute row
  std::vector<double> g_total;   // per node
  std::vector<double> h_total;   // per node
  std::vector<int> frontier;
  std::vector<int> next_frontier;
  std::vector<char> in_frontier;
  std::vector<SplitCandidate> best;           // per node, reduced result
  std::vector<SplitCandidate> feature_best;   // [feature * num_nodes + node]
  std::vector<SplitScratch> feature_scratch;  // [feature * num_nodes + node]
};

/// A depth-limited regression tree fitted to per-example gradients and
/// hessians with exact greedy splits — the weak learner inside
/// GradientBoostedTrees (second-order boosting, XGBoost-style).
class RegressionTree {
 public:
  /// Fits the tree on the rows of `x` listed in `sample_indices` with
  /// parallel gradient/hessian statistics (indexed by absolute row).
  Status Fit(const Matrix& x, const std::vector<double>& grad,
             const std::vector<double>& hess,
             const std::vector<size_t>& sample_indices,
             const RegressionTreeOptions& options);

  /// Like Fit, but reuses a precomputed feature presort. `presorted` may
  /// hold all rows of the matrix (rows outside `sample_indices` are
  /// skipped during the scans) or only the sample rows (e.g. a FilterInto
  /// view), which makes each level scan proportional to the sample size.
  Status FitPresorted(const Matrix& x, const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<size_t>& sample_indices,
                      const PresortedFeatures& presorted,
                      const RegressionTreeOptions& options);

  /// FitPresorted with caller-owned scratch, for hot loops that fit many
  /// trees back to back (boosting rounds, grid points).
  Status FitPresorted(const Matrix& x, const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<size_t>& sample_indices,
                      const PresortedFeatures& presorted,
                      const RegressionTreeOptions& options,
                      TreeFitWorkspace* workspace);

  /// Leaf weight for a single feature row (length = x.cols() at fit time).
  double PredictOne(const double* row) const;

  /// Number of nodes (internal + leaves); 0 before Fit.
  size_t num_nodes() const { return nodes_.size(); }
  /// Number of leaves.
  size_t num_leaves() const;

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;  // go left if value < threshold
    int left = -1;
    int right = -1;
    double value = 0.0;  // leaf weight
  };

  std::vector<Node> nodes_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_REGRESSION_TREE_H_
