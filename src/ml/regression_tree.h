#ifndef FAIRCLEAN_ML_REGRESSION_TREE_H_
#define FAIRCLEAN_ML_REGRESSION_TREE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace fairclean {

/// Structural hyperparameters for a single gradient tree.
struct RegressionTreeOptions {
  int max_depth = 3;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double lambda = 1.0;
  /// Minimum split gain (XGBoost's gamma).
  double gamma = 0.0;
  /// Minimum hessian sum per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
};

/// Feature-sorted row orderings shared across the trees of one boosting
/// run: the presort is the dominant per-tree cost and the ordering never
/// changes, so GradientBoostedTrees computes it once.
struct PresortedFeatures {
  /// order[f] = all row ids of the matrix sorted ascending by feature f.
  std::vector<std::vector<size_t>> order;

  static PresortedFeatures Compute(const Matrix& x);
};

/// A depth-limited regression tree fitted to per-example gradients and
/// hessians with exact greedy splits — the weak learner inside
/// GradientBoostedTrees (second-order boosting, XGBoost-style).
class RegressionTree {
 public:
  /// Fits the tree on the rows of `x` listed in `sample_indices` with
  /// parallel gradient/hessian statistics (indexed by absolute row).
  Status Fit(const Matrix& x, const std::vector<double>& grad,
             const std::vector<double>& hess,
             const std::vector<size_t>& sample_indices,
             const RegressionTreeOptions& options);

  /// Like Fit, but reuses a precomputed full-matrix feature presort
  /// (rows outside `sample_indices` are skipped during the scans).
  Status FitPresorted(const Matrix& x, const std::vector<double>& grad,
                      const std::vector<double>& hess,
                      const std::vector<size_t>& sample_indices,
                      const PresortedFeatures& presorted,
                      const RegressionTreeOptions& options);

  /// Leaf weight for a single feature row (length = x.cols() at fit time).
  double PredictOne(const double* row) const;

  /// Number of nodes (internal + leaves); 0 before Fit.
  size_t num_nodes() const { return nodes_.size(); }
  /// Number of leaves.
  size_t num_leaves() const;

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;  // go left if value < threshold
    int left = -1;
    int right = -1;
    double value = 0.0;  // leaf weight
  };

  std::vector<Node> nodes_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_REGRESSION_TREE_H_
