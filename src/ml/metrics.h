#ifndef FAIRCLEAN_ML_METRICS_H_
#define FAIRCLEAN_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairclean {

/// Binary-classification confusion matrix. The positive class (label 1)
/// always denotes the desirable outcome (creditworthy, prioritized care),
/// matching the paper's convention.
struct ConfusionMatrix {
  int64_t tn = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tp = 0;

  /// Tallies a confusion matrix from parallel label/prediction vectors
  /// (entries must be 0 or 1).
  static Result<ConfusionMatrix> From(const std::vector<int>& y_true,
                                      const std::vector<int>& y_pred);

  int64_t total() const { return tn + fp + fn + tp; }

  /// (tp + tn) / total; 0 when empty.
  double Accuracy() const;
  /// tp / (tp + fp); returns `undefined_value` when no positive predictions.
  double Precision(double undefined_value = 0.0) const;
  /// tp / (tp + fn); returns `undefined_value` when no positive labels.
  double Recall(double undefined_value = 0.0) const;
  /// Harmonic mean of precision and recall; 0 when undefined.
  double F1() const;
  /// (fp + tp) / total: fraction predicted positive; 0 when empty.
  double PositiveRate() const;

  /// Element-wise sum, used to aggregate per-group matrices.
  ConfusionMatrix operator+(const ConfusionMatrix& other) const;
};

/// Fraction of equal entries; dies on size mismatch.
double AccuracyScore(const std::vector<int>& y_true,
                     const std::vector<int>& y_pred);

/// F1 of the positive class.
double F1Score(const std::vector<int>& y_true, const std::vector<int>& y_pred);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_METRICS_H_
