#include "ml/encoder.h"

#include <cmath>

#include "common/strings.h"
#include "stats/descriptive.h"

namespace fairclean {

Status FeatureEncoder::Fit(const DataFrame& frame,
                           const std::vector<std::string>& feature_columns) {
  encodings_.clear();
  num_features_ = 0;
  fitted_ = false;
  if (feature_columns.empty()) {
    return Status::InvalidArgument("no feature columns given");
  }
  for (const std::string& name : feature_columns) {
    if (!frame.HasColumn(name)) {
      return Status::NotFound("feature column not found: " + name);
    }
    const Column& column = frame.column(name);
    ColumnEncoding enc;
    enc.name = name;
    enc.offset = num_features_;
    if (column.is_numeric()) {
      enc.numeric = true;
      Result<double> mean = Mean(column.values());
      enc.mean = mean.ok() ? *mean : 0.0;
      Result<double> sd = SampleStdDev(column.values());
      enc.stddev = (sd.ok() && *sd > 0.0) ? *sd : 1.0;
      num_features_ += 1;
    } else {
      enc.numeric = false;
      enc.cardinality = column.dictionary().size();
      if (enc.cardinality == 0) {
        return Status::InvalidArgument(
            "categorical column has empty dictionary: " + name);
      }
      num_features_ += enc.cardinality;
    }
    encodings_.push_back(std::move(enc));
  }
  fitted_ = true;
  return Status::OK();
}

Result<Matrix> FeatureEncoder::Transform(const DataFrame& frame) const {
  if (!fitted_) {
    return Status::Internal("encoder not fitted");
  }
  size_t n = frame.num_rows();
  Matrix out(n, num_features_);
  for (const ColumnEncoding& enc : encodings_) {
    if (!frame.HasColumn(enc.name)) {
      return Status::NotFound("feature column not found: " + enc.name);
    }
    const Column& column = frame.column(enc.name);
    if (enc.numeric != column.is_numeric()) {
      return Status::InvalidArgument(
          "column type changed between fit and transform: " + enc.name);
    }
    if (enc.numeric) {
      for (size_t row = 0; row < n; ++row) {
        double v = column.Value(row);
        if (!std::isfinite(v)) v = enc.mean;
        out(row, enc.offset) = (v - enc.mean) / enc.stddev;
      }
    } else {
      for (size_t row = 0; row < n; ++row) {
        int32_t code = column.Code(row);
        if (code >= 0 && static_cast<size_t>(code) < enc.cardinality) {
          out(row, enc.offset + static_cast<size_t>(code)) = 1.0;
        }
        // Missing or unseen categories leave the block all-zero.
      }
    }
  }
  return out;
}

Result<std::vector<int>> ExtractBinaryLabels(
    const DataFrame& frame, const std::string& label_column,
    const std::string& positive_category) {
  if (!frame.HasColumn(label_column)) {
    return Status::NotFound("label column not found: " + label_column);
  }
  const Column& column = frame.column(label_column);
  std::vector<int> labels;
  labels.reserve(frame.num_rows());
  if (column.is_numeric()) {
    for (size_t row = 0; row < column.size(); ++row) {
      double v = column.Value(row);
      if (v == 0.0) {
        labels.push_back(0);
      } else if (v == 1.0) {
        labels.push_back(1);
      } else {
        return Status::InvalidArgument(StrFormat(
            "non-binary label %g at row %zu in column '%s'", v, row,
            label_column.c_str()));
      }
    }
    return labels;
  }
  if (column.dictionary().size() != 2) {
    return Status::InvalidArgument(
        "categorical label must have exactly two categories: " + label_column);
  }
  int32_t positive_code = 1;
  if (!positive_category.empty()) {
    positive_code = column.CodeOf(positive_category);
    if (positive_code == Column::kMissingCode) {
      return Status::NotFound("positive category not in dictionary: " +
                              positive_category);
    }
  }
  for (size_t row = 0; row < column.size(); ++row) {
    int32_t code = column.Code(row);
    if (code == Column::kMissingCode) {
      return Status::InvalidArgument(
          StrFormat("missing label at row %zu", row));
    }
    labels.push_back(code == positive_code ? 1 : 0);
  }
  return labels;
}

}  // namespace fairclean
