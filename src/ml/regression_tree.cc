#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace fairclean {

namespace {

double LeafWeight(double g, double h, double lambda) {
  return -g / (h + lambda);
}

double ScoreHalf(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

// Feature ranges are chunked so the column-parallel scans submit at most
// one task per pool worker per level; the chunk boundaries never affect
// results because every feature writes only its own slice.
size_t FeatureChunks(ThreadPool* pool, size_t num_features) {
  if (pool == nullptr) return num_features == 0 ? 0 : 1;
  return std::min(num_features, pool->num_threads());
}

}  // namespace

PresortedFeatures PresortedFeatures::Compute(const Matrix& x) {
  PresortedFeatures presorted;
  std::vector<size_t> base(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) base[i] = i;
  presorted.order.assign(x.cols(), base);
  presorted.values.resize(x.cols());
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(presorted.order[f].begin(), presorted.order[f].end(),
              [&x, f](size_t a, size_t b) {
                return x.Row(a)[f] < x.Row(b)[f];
              });
    std::vector<double>& vals = presorted.values[f];
    vals.resize(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) {
      vals[i] = x.Row(presorted.order[f][i])[f];
    }
  }
  return presorted;
}

void PresortedFeatures::FilterInto(const std::vector<char>& member,
                                   size_t member_count,
                                   PresortedFeatures* out) const {
  size_t num_features = order.size();
  bool has_values = !values.empty();
  out->order.resize(num_features);
  out->values.resize(has_values ? num_features : 0);
  ThreadPool* pool = ThreadPool::SharedForFolds();
  size_t num_chunks = FeatureChunks(pool, num_features);
  RunIndexed(pool, num_chunks, [&](size_t chunk) -> int {
    size_t begin = num_features * chunk / num_chunks;
    size_t end = num_features * (chunk + 1) / num_chunks;
    for (size_t f = begin; f < end; ++f) {
      const std::vector<size_t>& full = order[f];
      std::vector<size_t>& filtered = out->order[f];
      // Branchless compaction: write every candidate, advance the cursor
      // only for members. Membership is effectively random per row, so a
      // conditional push_back would mispredict constantly; the output is
      // identical (kept rows, original relative order) either way. One
      // slot of headroom absorbs the unconditional write after the last
      // member; the final resize trims it.
      filtered.resize(member_count + 1);
      size_t count = 0;
      if (has_values) {
        const std::vector<double>& full_vals = values[f];
        std::vector<double>& filtered_vals = out->values[f];
        filtered_vals.resize(member_count + 1);
        size_t* out_idx = filtered.data();
        double* out_val = filtered_vals.data();
        for (size_t i = 0; i < full.size(); ++i) {
          size_t index = full[i];
          out_idx[count] = index;
          out_val[count] = full_vals[i];
          count += static_cast<size_t>(member[index] != 0);
        }
        filtered_vals.resize(member_count);
      } else {
        size_t* out_idx = filtered.data();
        for (size_t index : full) {
          out_idx[count] = index;
          count += static_cast<size_t>(member[index] != 0);
        }
      }
      FC_CHECK_EQ(count, member_count);
      filtered.resize(member_count);
    }
    return 0;
  });
}

Status RegressionTree::Fit(const Matrix& x, const std::vector<double>& grad,
                           const std::vector<double>& hess,
                           const std::vector<size_t>& sample_indices,
                           const RegressionTreeOptions& options) {
  // Presort just the sample rows by every feature (ascending).
  PresortedFeatures presorted;
  presorted.order.assign(x.cols(), sample_indices);
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(presorted.order[f].begin(), presorted.order[f].end(),
              [&x, f](size_t a, size_t b) {
                return x.Row(a)[f] < x.Row(b)[f];
              });
  }
  return FitPresorted(x, grad, hess, sample_indices, presorted, options);
}

Status RegressionTree::FitPresorted(const Matrix& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    const std::vector<size_t>& sample_indices,
                                    const PresortedFeatures& presorted,
                                    const RegressionTreeOptions& options) {
  TreeFitWorkspace workspace;
  return FitPresorted(x, grad, hess, sample_indices, presorted, options,
                      &workspace);
}

// Level-order exact greedy construction over presorted features: each level
// costs O(num_features * num_rows) instead of a sort per node, which makes
// this the throughput-critical piece of GBDT training.
//
// Determinism contract: the split search is parallel over feature chunks,
// but every feature scans into its own scratch/candidate slice in the exact
// row sequence of `presorted`, and the per-level reduction walks features
// in ascending index with a strict > comparison — reproducing the
// sequential loop's float sums and tie-breaks (lowest feature, then
// earliest scan position) bit for bit at any thread count.
Status RegressionTree::FitPresorted(const Matrix& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    const std::vector<size_t>& sample_indices,
                                    const PresortedFeatures& presorted,
                                    const RegressionTreeOptions& options,
                                    TreeFitWorkspace* ws) {
  if (grad.size() != x.rows() || hess.size() != x.rows()) {
    return Status::InvalidArgument("gradient/hessian size mismatch");
  }
  if (sample_indices.empty()) {
    return Status::InvalidArgument("empty sample set");
  }
  if (options.max_depth < 0) {
    return Status::InvalidArgument("max_depth must be non-negative");
  }
  if (presorted.order.size() != x.cols()) {
    return Status::InvalidArgument("presort does not match matrix");
  }
  nodes_.clear();

  size_t num_features = x.cols();
  const std::vector<std::vector<size_t>>& order = presorted.order;

  // Root node.
  double g_root = 0.0;
  double h_root = 0.0;
  for (size_t index : sample_indices) {
    g_root += grad[index];
    h_root += hess[index];
  }
  nodes_.emplace_back();
  nodes_[0].value = LeafWeight(g_root, h_root, options.lambda);

  // Per-sample current node (indexed by absolute row id).
  ws->node_of.assign(x.rows(), -1);
  for (size_t index : sample_indices) ws->node_of[index] = 0;

  // Interleave gradient and hessian so each scan entry touches one cache
  // line instead of two. Same doubles, added in the same places — the
  // split sums cannot change.
  ws->gh.resize(2 * x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    ws->gh[2 * i] = grad[i];
    ws->gh[2 * i + 1] = hess[i];
  }

  // Per-node statistics, indexed by node id.
  ws->g_total.assign(1, g_root);
  ws->h_total.assign(1, h_root);
  ws->frontier.assign(1, 0);

  ThreadPool* pool = ThreadPool::SharedForFolds();

  for (int depth = 0; depth < options.max_depth && !ws->frontier.empty();
       ++depth) {
    size_t num_nodes = nodes_.size();
    ws->best.assign(num_nodes, {});
    ws->in_frontier.assign(num_nodes, 0);
    for (int node : ws->frontier) {
      ws->in_frontier[static_cast<size_t>(node)] = 1;
    }
    ws->feature_best.resize(num_features * num_nodes);
    ws->feature_scratch.resize(num_features * num_nodes);

    // Column-parallel split search: feature f reads shared per-node totals
    // and writes only its own [f * num_nodes, (f + 1) * num_nodes) slices.
    size_t num_chunks = FeatureChunks(pool, num_features);
    RunIndexed(pool, num_chunks, [&](size_t chunk) -> int {
      size_t begin = num_features * chunk / num_chunks;
      size_t end = num_features * (chunk + 1) / num_chunks;
      for (size_t f = begin; f < end; ++f) {
        TreeFitWorkspace::SplitScratch* scratch =
            ws->feature_scratch.data() + f * num_nodes;
        TreeFitWorkspace::SplitCandidate* best_f =
            ws->feature_best.data() + f * num_nodes;
        for (int node : ws->frontier) {
          scratch[static_cast<size_t>(node)] = {};
          best_f[static_cast<size_t>(node)] = {};
        }
        // Stream presorted values sequentially when the presort carries
        // them (same doubles as the row gather, just cache-friendly).
        const std::vector<size_t>& order_f = order[f];
        const double* sorted_values =
            (f < presorted.values.size() &&
             presorted.values[f].size() == order_f.size())
                ? presorted.values[f].data()
                : nullptr;
        const double* gh = ws->gh.data();
        // One scan step: shared by both loop variants below so the float
        // operations (and therefore the split choice) are literally the
        // same code.
        auto step = [&](size_t node_id, double value, size_t index) {
          TreeFitWorkspace::SplitScratch& s = scratch[node_id];
          if (s.count_left > 0 && value != s.last_value) {
            double g_right = ws->g_total[node_id] - s.g_left;
            double h_right = ws->h_total[node_id] - s.h_left;
            if (s.h_left >= options.min_child_weight &&
                h_right >= options.min_child_weight) {
              double gain =
                  0.5 * (ScoreHalf(s.g_left, s.h_left, options.lambda) +
                         ScoreHalf(g_right, h_right, options.lambda) -
                         ScoreHalf(ws->g_total[node_id], ws->h_total[node_id],
                                   options.lambda)) -
                  options.gamma;
              if (gain > best_f[node_id].gain) {
                best_f[node_id].gain = gain;
                best_f[node_id].feature = f;
                best_f[node_id].threshold = 0.5 * (s.last_value + value);
              }
            }
          }
          s.g_left += gh[2 * index];
          s.h_left += gh[2 * index + 1];
          s.last_value = value;
          ++s.count_left;
        };
        if (num_nodes == 1 && order_f.size() == sample_indices.size()) {
          // Root level over a sample-exact order (e.g. a FilterInto view):
          // every entry is a sampled row sitting in node 0, so the
          // node_of/in_frontier gathers are dead weight.
          for (size_t pos = 0; pos < order_f.size(); ++pos) {
            size_t index = order_f[pos];
            double value = sorted_values != nullptr ? sorted_values[pos]
                                                    : x.Row(index)[f];
            step(0, value, index);
          }
        } else {
          for (size_t pos = 0; pos < order_f.size(); ++pos) {
            size_t index = order_f[pos];
            int node = ws->node_of[index];
            if (node < 0 || !ws->in_frontier[static_cast<size_t>(node)]) {
              continue;
            }
            double value = sorted_values != nullptr ? sorted_values[pos]
                                                    : x.Row(index)[f];
            step(static_cast<size_t>(node), value, index);
          }
        }
      }
      return 0;
    });

    // Reduce in fixed column order with a strict >, so ties keep the lowest
    // feature — exactly what the sequential cross-feature scan produced.
    for (size_t f = 0; f < num_features; ++f) {
      const TreeFitWorkspace::SplitCandidate* best_f =
          ws->feature_best.data() + f * num_nodes;
      for (int node : ws->frontier) {
        size_t node_id = static_cast<size_t>(node);
        if (best_f[node_id].gain > ws->best[node_id].gain) {
          ws->best[node_id] = best_f[node_id];
        }
      }
    }

    // Materialize the accepted splits and re-assign samples to children.
    ws->next_frontier.clear();
    for (int node : ws->frontier) {
      size_t node_id = static_cast<size_t>(node);
      if (ws->best[node_id].gain <= 0.0) continue;  // stays a leaf
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& parent = nodes_[node_id];
      parent.is_leaf = false;
      parent.feature = ws->best[node_id].feature;
      parent.threshold = ws->best[node_id].threshold;
      parent.left = left;
      parent.right = right;
      ws->g_total.resize(nodes_.size(), 0.0);
      ws->h_total.resize(nodes_.size(), 0.0);
      ws->next_frontier.push_back(left);
      ws->next_frontier.push_back(right);
    }
    if (ws->next_frontier.empty()) break;

    for (size_t index : sample_indices) {
      int node = ws->node_of[index];
      if (node < 0) continue;
      const Node& parent = nodes_[static_cast<size_t>(node)];
      if (parent.is_leaf) continue;
      int child = x.Row(index)[parent.feature] < parent.threshold
                      ? parent.left
                      : parent.right;
      ws->node_of[index] = child;
      ws->g_total[static_cast<size_t>(child)] += grad[index];
      ws->h_total[static_cast<size_t>(child)] += hess[index];
    }
    for (int child : ws->next_frontier) {
      size_t child_id = static_cast<size_t>(child);
      nodes_[child_id].value = LeafWeight(ws->g_total[child_id],
                                          ws->h_total[child_id],
                                          options.lambda);
    }
    std::swap(ws->frontier, ws->next_frontier);
  }
  return Status::OK();
}

double RegressionTree::PredictOne(const double* row) const {
  FC_CHECK(!nodes_.empty());
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

size_t RegressionTree::num_leaves() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++count;
  }
  return count;
}

}  // namespace fairclean
