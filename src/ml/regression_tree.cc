#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fairclean {

namespace {

double LeafWeight(double g, double h, double lambda) {
  return -g / (h + lambda);
}

double ScoreHalf(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

PresortedFeatures PresortedFeatures::Compute(const Matrix& x) {
  PresortedFeatures presorted;
  std::vector<size_t> base(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) base[i] = i;
  presorted.order.assign(x.cols(), base);
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(presorted.order[f].begin(), presorted.order[f].end(),
              [&x, f](size_t a, size_t b) {
                return x.Row(a)[f] < x.Row(b)[f];
              });
  }
  return presorted;
}

Status RegressionTree::Fit(const Matrix& x, const std::vector<double>& grad,
                           const std::vector<double>& hess,
                           const std::vector<size_t>& sample_indices,
                           const RegressionTreeOptions& options) {
  // Presort just the sample rows by every feature (ascending).
  PresortedFeatures presorted;
  presorted.order.assign(x.cols(), sample_indices);
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(presorted.order[f].begin(), presorted.order[f].end(),
              [&x, f](size_t a, size_t b) {
                return x.Row(a)[f] < x.Row(b)[f];
              });
  }
  return FitPresorted(x, grad, hess, sample_indices, presorted, options);
}

// Level-order exact greedy construction over presorted features: each level
// costs O(num_features * num_rows) instead of a sort per node, which makes
// this the throughput-critical piece of GBDT training.
Status RegressionTree::FitPresorted(const Matrix& x,
                                    const std::vector<double>& grad,
                                    const std::vector<double>& hess,
                                    const std::vector<size_t>& sample_indices,
                                    const PresortedFeatures& presorted,
                                    const RegressionTreeOptions& options) {
  if (grad.size() != x.rows() || hess.size() != x.rows()) {
    return Status::InvalidArgument("gradient/hessian size mismatch");
  }
  if (sample_indices.empty()) {
    return Status::InvalidArgument("empty sample set");
  }
  if (options.max_depth < 0) {
    return Status::InvalidArgument("max_depth must be non-negative");
  }
  if (presorted.order.size() != x.cols()) {
    return Status::InvalidArgument("presort does not match matrix");
  }
  nodes_.clear();

  size_t num_features = x.cols();
  const std::vector<std::vector<size_t>>& order = presorted.order;

  // Root node.
  double g_root = 0.0;
  double h_root = 0.0;
  for (size_t index : sample_indices) {
    g_root += grad[index];
    h_root += hess[index];
  }
  nodes_.emplace_back();
  nodes_[0].value = LeafWeight(g_root, h_root, options.lambda);

  // Per-sample current node (indexed by absolute row id).
  std::vector<int> node_of(x.rows(), -1);
  for (size_t index : sample_indices) node_of[index] = 0;

  // Per-node statistics, indexed by node id.
  std::vector<double> g_total = {g_root};
  std::vector<double> h_total = {h_root};
  std::vector<int> frontier = {0};

  struct Candidate {
    double gain = 0.0;
    size_t feature = 0;
    double threshold = 0.0;
  };
  struct Scratch {
    double g_left = 0.0;
    double h_left = 0.0;
    double last_value = 0.0;
    size_t count_left = 0;
  };

  for (int depth = 0; depth < options.max_depth && !frontier.empty();
       ++depth) {
    std::vector<Candidate> best(nodes_.size());
    std::vector<Scratch> scratch(nodes_.size());
    std::vector<char> in_frontier(nodes_.size(), 0);
    for (int node : frontier) in_frontier[static_cast<size_t>(node)] = 1;

    for (size_t f = 0; f < num_features; ++f) {
      for (int node : frontier) scratch[static_cast<size_t>(node)] = {};
      for (size_t index : order[f]) {
        int node = node_of[index];
        if (node < 0 || !in_frontier[static_cast<size_t>(node)]) continue;
        size_t node_id = static_cast<size_t>(node);
        Scratch& s = scratch[node_id];
        double value = x.Row(index)[f];
        if (s.count_left > 0 && value != s.last_value) {
          double g_right = g_total[node_id] - s.g_left;
          double h_right = h_total[node_id] - s.h_left;
          if (s.h_left >= options.min_child_weight &&
              h_right >= options.min_child_weight) {
            double gain =
                0.5 * (ScoreHalf(s.g_left, s.h_left, options.lambda) +
                       ScoreHalf(g_right, h_right, options.lambda) -
                       ScoreHalf(g_total[node_id], h_total[node_id],
                                 options.lambda)) -
                options.gamma;
            if (gain > best[node_id].gain) {
              best[node_id].gain = gain;
              best[node_id].feature = f;
              best[node_id].threshold = 0.5 * (s.last_value + value);
            }
          }
        }
        s.g_left += grad[index];
        s.h_left += hess[index];
        s.last_value = value;
        ++s.count_left;
      }
    }

    // Materialize the accepted splits and re-assign samples to children.
    std::vector<int> next_frontier;
    for (int node : frontier) {
      size_t node_id = static_cast<size_t>(node);
      if (best[node_id].gain <= 0.0) continue;  // stays a leaf
      int left = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      int right = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      Node& parent = nodes_[node_id];
      parent.is_leaf = false;
      parent.feature = best[node_id].feature;
      parent.threshold = best[node_id].threshold;
      parent.left = left;
      parent.right = right;
      g_total.resize(nodes_.size(), 0.0);
      h_total.resize(nodes_.size(), 0.0);
      next_frontier.push_back(left);
      next_frontier.push_back(right);
    }
    if (next_frontier.empty()) break;

    for (size_t index : sample_indices) {
      int node = node_of[index];
      if (node < 0) continue;
      const Node& parent = nodes_[static_cast<size_t>(node)];
      if (parent.is_leaf) continue;
      int child = x.Row(index)[parent.feature] < parent.threshold
                      ? parent.left
                      : parent.right;
      node_of[index] = child;
      g_total[static_cast<size_t>(child)] += grad[index];
      h_total[static_cast<size_t>(child)] += hess[index];
    }
    for (int child : next_frontier) {
      size_t child_id = static_cast<size_t>(child);
      nodes_[child_id].value =
          LeafWeight(g_total[child_id], h_total[child_id], options.lambda);
    }
    frontier = std::move(next_frontier);
  }
  return Status::OK();
}

double RegressionTree::PredictOne(const double* row) const {
  FC_CHECK(!nodes_.empty());
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

size_t RegressionTree::num_leaves() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++count;
  }
  return count;
}

}  // namespace fairclean
