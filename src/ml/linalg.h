#ifndef FAIRCLEAN_ML_LINALG_H_
#define FAIRCLEAN_ML_LINALG_H_

#include <vector>

#include "common/status.h"

namespace fairclean {

/// Solves A x = b for a symmetric positive-definite matrix A (row-major,
/// n x n) via Cholesky decomposition. Fails if A is not positive definite.
Result<std::vector<double>> SolveCholesky(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          size_t n);

/// Like SolveCholesky but retries with increasing diagonal jitter when the
/// matrix is (numerically) singular; intended for Newton steps where a tiny
/// ridge does not change the optimum meaningfully.
Result<std::vector<double>> SolveCholeskyWithJitter(std::vector<double> a,
                                                    const std::vector<double>& b,
                                                    size_t n);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_LINALG_H_
