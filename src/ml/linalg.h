#ifndef FAIRCLEAN_ML_LINALG_H_
#define FAIRCLEAN_ML_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace fairclean {

/// Reference scalar kernel: out[t] = squared Euclidean distance from
/// `query` (train.cols() doubles) to train row t, accumulated in ascending
/// feature order with one accumulator per pair — the exact loop of the
/// pre-blocking kNN implementation. Kept as the bit-identity oracle for
/// BlockedSquaredDistances and as the naive side of the kernel microbench.
void SquaredDistancesToRow(const Matrix& train, const double* query,
                           double* out);

/// Cache-blocked, query-tiled squared-distance kernel: for every query row
/// q in [query_begin, query_end) fills
///   out[(q - query_begin) * train.rows() + t]
/// with the squared Euclidean distance to train row t.
///
/// Train rows are packed once into register-width panels so the inner loop
/// keeps one independent accumulator per panel row in vector registers
/// (breaking the reference loop's add latency chain) while every pair
/// still accumulates its squares in the same ascending feature order as
/// SquaredDistancesToRow. The blocking reorders only WHICH pair is computed
/// when — never the float sums inside a pair — so every distance is
/// bit-equal to the reference kernel (no norm-trick expansion).
void BlockedSquaredDistances(const Matrix& queries, size_t query_begin,
                             size_t query_end, const Matrix& train,
                             double* out);

/// Panel-major packing of a train matrix, reusable across query blocks (the
/// many-RHS form of BlockedSquaredDistances: pack once, sweep many query
/// tiles). `width == 0` marks the portable build, where no packing exists
/// and the packed entry point falls back to the reference kernel.
struct PackedPanels {
  size_t width = 0;
  size_t num_panels = 0;
  size_t n_train = 0;
  std::vector<double> data;
};

/// Packs `train` once for BlockedSquaredDistancesPacked.
void PackTrainPanels(const Matrix& train, PackedPanels* packed);

/// BlockedSquaredDistances against a pre-packed train matrix. Bit-equal to
/// the unpacked entry point (the packing is pure data movement); `packed`
/// must have been built from `train` by PackTrainPanels.
void BlockedSquaredDistancesPacked(const Matrix& queries, size_t query_begin,
                                   size_t query_end, const Matrix& train,
                                   const PackedPanels& packed, double* out);

/// Solves A x = b for a symmetric positive-definite matrix A (row-major,
/// n x n) via Cholesky decomposition. Fails if A is not positive definite.
Result<std::vector<double>> SolveCholesky(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          size_t n);

/// Like SolveCholesky but retries with increasing diagonal jitter when the
/// matrix is (numerically) singular; intended for Newton steps where a tiny
/// ridge does not change the optimum meaningfully.
Result<std::vector<double>> SolveCholeskyWithJitter(std::vector<double> a,
                                                    const std::vector<double>& b,
                                                    size_t n);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_LINALG_H_
