#ifndef FAIRCLEAN_ML_LOGISTIC_REGRESSION_H_
#define FAIRCLEAN_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairclean {

/// Hyperparameters for LogisticRegression.
struct LogisticRegressionOptions {
  /// Inverse L2 regularization strength (scikit-learn's C); larger = less
  /// regularization. This is the hyperparameter the paper tunes.
  double c = 1.0;
  /// Maximum IRLS (Newton) iterations.
  int max_iterations = 100;
  /// Convergence threshold on the max absolute coefficient update.
  double tolerance = 1e-8;
};

/// L2-regularized binary logistic regression fitted with iteratively
/// reweighted least squares (Newton's method with a Cholesky solve), which
/// is deterministic and robust on the standardized/one-hot features produced
/// by FeatureEncoder. The intercept is unpenalized.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y, Rng* rng) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LogisticRegression>(options_);
  }
  std::string name() const override { return "log-reg"; }

  /// Fitted coefficients (without intercept); empty before Fit.
  const std::vector<double>& coefficients() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_LOGISTIC_REGRESSION_H_
