#include "ml/tuning.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

std::vector<TuningFoldData> MaterializeTuningFolds(
    const Matrix& x, const std::vector<int>& y,
    const std::vector<TrainTestIndices>& folds, bool with_presort,
    const std::vector<int>* group_membership) {
  obs::TraceSpan span("ml", "materialize tuning folds");
  static obs::Counter* const materialized =
      obs::MetricsRegistry::Global().GetCounter("ml.tuning.folds_materialized");
  materialized->Increment(folds.size());
  ThreadPool* pool = ThreadPool::SharedForFolds();
  return RunIndexed(pool, folds.size(), [&](size_t f) -> TuningFoldData {
    TuningFoldData data;
    data.train_x = x.TakeRows(folds[f].train);
    data.train_y.reserve(folds[f].train.size());
    for (size_t index : folds[f].train) data.train_y.push_back(y[index]);
    data.valid_x = x.TakeRows(folds[f].test);
    data.valid_y.reserve(folds[f].test.size());
    for (size_t index : folds[f].test) data.valid_y.push_back(y[index]);
    if (group_membership != nullptr) {
      data.valid_membership.reserve(folds[f].test.size());
      for (size_t index : folds[f].test) {
        data.valid_membership.push_back((*group_membership)[index]);
      }
    }
    if (with_presort) {
      data.train_presort = PresortedFeatures::Compute(data.train_x);
      data.has_presort = true;
    }
    return data;
  });
}

TunedModelFamily LogRegFamily() {
  TunedModelFamily family;
  family.name = "log-reg";
  family.param_grid = {0.1, 1.0, 10.0};
  family.make = [](double c) -> std::unique_ptr<Classifier> {
    LogisticRegressionOptions options;
    options.c = c;
    return std::make_unique<LogisticRegression>(options);
  };
  return family;
}

TunedModelFamily KnnFamily(ExecMode mode) {
  TunedModelFamily family;
  family.name = "knn";
  family.param_grid = {5.0, 15.0, 31.0};
  bool fused = mode == ExecMode::kFused;
  bool blocked = mode != ExecMode::kNaive;
  family.make = [fused, blocked](double k) -> std::unique_ptr<Classifier> {
    KnnOptions options;
    options.k = static_cast<int>(k);
    options.packed_reuse = fused;
    options.blocked = blocked;
    return std::make_unique<KnnClassifier>(options);
  };
  if (fused) {
    std::vector<int> ks;
    ks.reserve(family.param_grid.size());
    for (double k : family.param_grid) ks.push_back(static_cast<int>(k));
    family.fused_grid_eval =
        [ks](const TuningFoldData& data) -> Result<std::vector<double>> {
      // Mirror KnnClassifier::Fit's failure condition so a degenerate fold
      // is skipped for every grid entry, exactly like the per-point path.
      if (data.train_x.rows() == 0) {
        return Status::InvalidArgument("empty training set");
      }
      return KnnGridAccuracies(data.train_x, data.train_y, data.valid_x,
                               data.valid_y, ks);
    };
  }
  return family;
}

TunedModelFamily GbdtFamily(ExecMode mode) {
  TunedModelFamily family;
  family.name = "xgboost";
  family.param_grid = {2.0, 3.0, 4.0};
  bool fused = mode == ExecMode::kFused;
  family.make = [fused](double depth) -> std::unique_ptr<Classifier> {
    GbdtOptions options;
    options.max_depth = static_cast<int>(depth);
    options.stacked_predict = fused;
    return std::make_unique<GradientBoostedTrees>(options);
  };
  family.wants_presort = true;
  return family;
}

Result<TunedModelFamily> ModelFamilyByName(const std::string& name,
                                           ExecMode mode) {
  if (name == "log-reg") return LogRegFamily();
  if (name == "knn") return KnnFamily(mode);
  if (name == "xgboost") return GbdtFamily(mode);
  return Status::NotFound("unknown model family: " + name);
}

std::vector<std::string> AllModelNames() {
  return {"log-reg", "knn", "xgboost"};
}

Result<TuneOutcome> TuneAndFit(const TunedModelFamily& family, const Matrix& x,
                               const std::vector<int>& y, size_t num_folds,
                               Rng* rng, ExecMode mode) {
  if (family.param_grid.empty()) {
    return Status::InvalidArgument("empty hyperparameter grid");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() < num_folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  obs::TraceSpan span("ml", [&] { return "TuneAndFit " + family.name; });

  Rng fold_rng = rng->Fork(0x5eed);
  std::vector<TrainTestIndices> folds =
      KFoldIndices(x.rows(), num_folds, &fold_rng);

  struct FoldEval {
    bool ok = false;
    double accuracy = 0.0;
  };

  ThreadPool* pool = ThreadPool::SharedForFolds();
  // Fold-data cache: materialize each fold's train/validation slices (and,
  // for presort-aware families, the per-fold feature presort) once and
  // reuse them for every grid point. TakeRows does not consume the rng, so
  // hoisting it out of the grid loop leaves all random draws — and thus
  // all scores — byte-identical. Naive mode deliberately re-pays this
  // materialization per grid point inside the loop below (the pre-cache
  // behavior the committed fold_cache baseline measures against).
  std::vector<TuningFoldData> fold_data;
  if (mode != ExecMode::kNaive) {
    fold_data = MaterializeTuningFolds(x, y, folds, family.wants_presort);
  }
  double best_accuracy = -1.0;
  double best_param = family.param_grid.front();
  if (mode == ExecMode::kFused && family.fused_grid_eval) {
    // Batched grid evaluation: one fused pass per fold answers every grid
    // entry. The per-grid-point loop forks one rng per (param, fold) — the
    // fits below never happen here, but Fork advances the parent engine,
    // so the same forks must be drawn and discarded for the final-fit rng
    // stream (and thus the model) to stay byte-identical.
    for (size_t p = 0; p < family.param_grid.size(); ++p) {
      for (size_t f = 0; f < folds.size(); ++f) {
        (void)rng->Fork(0xf17 + f);
      }
    }
    struct GridEval {
      bool ok = false;
      std::vector<double> accuracies;
    };
    std::vector<GridEval> evals =
        RunIndexed(pool, folds.size(), [&](size_t f) -> GridEval {
          obs::TraceSpan fold_span("ml", [&] {
            return "tune fold " + std::to_string(f) + " " + family.name +
                   " fused-grid";
          });
          GridEval eval;
          Result<std::vector<double>> accuracies =
              family.fused_grid_eval(fold_data[f]);
          if (!accuracies.ok()) return eval;  // degenerate fold; skip
          eval.accuracies = std::move(*accuracies);
          FC_CHECK_EQ(eval.accuracies.size(), family.param_grid.size());
          eval.ok = true;
          return eval;
        });
    for (size_t p = 0; p < family.param_grid.size(); ++p) {
      double accuracy_sum = 0.0;
      size_t evaluated = 0;
      for (const GridEval& eval : evals) {  // fold order: sums unchanged
        if (!eval.ok) continue;
        accuracy_sum += eval.accuracies[p];
        ++evaluated;
      }
      if (evaluated == 0) continue;
      double mean_accuracy = accuracy_sum / static_cast<double>(evaluated);
      if (mean_accuracy > best_accuracy) {
        best_accuracy = mean_accuracy;
        best_param = family.param_grid[p];
      }
    }
  } else {
    for (double param : family.param_grid) {
      if (mode == ExecMode::kNaive) {
        fold_data = MaterializeTuningFolds(x, y, folds, family.wants_presort);
      }
      // Fork the per-fold fit RNGs up front, in fold order: Fork advances
      // the parent engine, so the fork order (not just the salt) must match
      // the sequential loop for scores to stay byte-identical under
      // parallelism.
      std::vector<Rng> fit_rngs;
      fit_rngs.reserve(folds.size());
      for (size_t f = 0; f < folds.size(); ++f) {
        fit_rngs.push_back(rng->Fork(0xf17 + f));
      }
      std::vector<FoldEval> evals =
          RunIndexed(pool, folds.size(), [&](size_t f) -> FoldEval {
            obs::TraceSpan fold_span("ml", [&] {
              return "tune fold " + std::to_string(f) + " " + family.name;
            });
            FoldEval eval;
            const TuningFoldData& data = fold_data[f];
            std::unique_ptr<Classifier> model = family.make(param);
            Status st = model->FitWithPresort(
                data.train_x, data.train_y, &fit_rngs[f],
                data.has_presort ? &data.train_presort : nullptr);
            if (!st.ok()) return eval;  // e.g. single-class fold; skip
            eval.accuracy =
                AccuracyScore(data.valid_y, model->Predict(data.valid_x));
            eval.ok = true;
            return eval;
          });
      double accuracy_sum = 0.0;
      size_t evaluated = 0;
      for (const FoldEval& eval : evals) {  // fold order: sums unchanged
        if (!eval.ok) continue;
        accuracy_sum += eval.accuracy;
        ++evaluated;
      }
      if (evaluated == 0) continue;
      double mean_accuracy = accuracy_sum / static_cast<double>(evaluated);
      if (mean_accuracy > best_accuracy) {
        best_accuracy = mean_accuracy;
        best_param = param;
      }
    }
  }
  if (best_accuracy < 0.0) {
    return Status::Internal("no hyperparameter could be evaluated");
  }

  TuneOutcome outcome;
  outcome.best_param = best_param;
  outcome.best_cv_accuracy = best_accuracy;
  outcome.model = family.make(best_param);
  Rng final_rng = rng->Fork(0xf17a1);
  FC_RETURN_IF_ERROR(outcome.model->Fit(x, y, &final_rng));
  return outcome;
}

}  // namespace fairclean
