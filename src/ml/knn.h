#ifndef FAIRCLEAN_ML_KNN_H_
#define FAIRCLEAN_ML_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairclean {

/// Hyperparameters for KnnClassifier.
struct KnnOptions {
  /// Number of neighbors — the hyperparameter the paper tunes.
  int k = 15;
};

/// Brute-force k-nearest-neighbors classifier with Euclidean distance on
/// the encoded feature space. PredictProba returns the fraction of positive
/// labels among the k nearest training examples. Deterministic: distance
/// ties resolve by training-row order.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y, Rng* rng) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<KnnClassifier>(options_);
  }
  std::string name() const override { return "knn"; }

 private:
  KnnOptions options_;
  Matrix train_x_;
  std::vector<int> train_y_;
  bool fitted_ = false;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_KNN_H_
