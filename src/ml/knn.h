#ifndef FAIRCLEAN_ML_KNN_H_
#define FAIRCLEAN_ML_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace fairclean {

/// Hyperparameters for KnnClassifier.
struct KnnOptions {
  /// Number of neighbors — the hyperparameter the paper tunes.
  int k = 15;
  /// Fused-mode kernel switch: pack the train matrix into register panels
  /// once per PredictProba call and reuse the packing across every query
  /// block, instead of re-packing inside each block. Pure data-movement
  /// change — results are bit-identical either way (DESIGN.md §15).
  bool packed_reuse = false;
  /// Use the blocked many-RHS distance kernel. false runs the per-query
  /// reference kernel (one SquaredDistancesToRow per query, no blocking,
  /// no fan-out) — the deliberately unbatched naive-mode baseline. The
  /// kernel-identity tests pin both paths to the same bits.
  bool blocked = true;
};

/// Brute-force k-nearest-neighbors classifier with Euclidean distance on
/// the encoded feature space. PredictProba returns the fraction of positive
/// labels among the k nearest training examples. Deterministic: distance
/// ties resolve by training-row order.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions options = {}) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y, Rng* rng) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<KnnClassifier>(options_);
  }
  std::string name() const override { return "knn"; }

 private:
  KnnOptions options_;
  Matrix train_x_;
  std::vector<int> train_y_;
  bool fitted_ = false;
};

/// Batched tuning-grid kernel: validation accuracy of a kNN classifier
/// fitted on (train_x, train_y) for EVERY k in `ks`, from a single
/// distance sweep. One top-max(k) selection per query serves the whole
/// grid — the insertion-sorted neighbor buffer for a smaller k is exactly
/// the prefix of the larger one — so each accuracy is bit-equal to fitting
/// KnnClassifier{k} and scoring AccuracyScore(valid_y, Predict(valid_x))
/// per grid point. `ks` entries must be positive; train must be non-empty.
std::vector<double> KnnGridAccuracies(const Matrix& train_x,
                                      const std::vector<int>& train_y,
                                      const Matrix& valid_x,
                                      const std::vector<int>& valid_y,
                                      const std::vector<int>& ks);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_KNN_H_
