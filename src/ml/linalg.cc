#include "ml/linalg.h"

#include <cmath>

#include "common/check.h"

namespace fairclean {

Result<std::vector<double>> SolveCholesky(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          size_t n) {
  FC_CHECK_EQ(a.size(), n * n);
  FC_CHECK_EQ(b.size(), n);
  // Lower-triangular factor L with A = L L^T.
  std::vector<double> l(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::InvalidArgument("matrix not positive definite");
        }
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l[i * n + k] * z[k];
    z[i] = sum / l[i * n + i];
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = z[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
  return x;
}

Result<std::vector<double>> SolveCholeskyWithJitter(std::vector<double> a,
                                                    const std::vector<double>& b,
                                                    size_t n) {
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (attempt > 0) {
      double add = (jitter == 0.0) ? 1e-8 : jitter * 9.0;
      for (size_t i = 0; i < n; ++i) a[i * n + i] += add;
      jitter += add;
    }
    Result<std::vector<double>> solved = SolveCholesky(a, b, n);
    if (solved.ok()) return solved;
  }
  return Status::InvalidArgument(
      "matrix not positive definite even with jitter");
}

}  // namespace fairclean
