#include "ml/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FAIRCLEAN_X86_PANEL_KERNELS 1
#endif

namespace fairclean {

void SquaredDistancesToRow(const Matrix& train, const double* query,
                           double* out) {
  size_t d = train.cols();
  for (size_t t = 0; t < train.rows(); ++t) {
    const double* row = train.Row(t);
    double sq = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = query[j] - row[j];
      sq += diff * diff;
    }
    out[t] = sq;
  }
}

namespace {

#ifdef FAIRCLEAN_X86_PANEL_KERNELS

// Pack train rows into panel-major layout: packed[(t / width) * d * width +
// j * width + t % width] = feature j of train row t, zero-padded past the
// last row. Pure data movement, amortized over every query of the block;
// the padding lanes compute garbage distances that are never copied out.
void PackPanels(const Matrix& train, size_t width,
                std::vector<double>* packed) {
  size_t n = train.rows();
  size_t d = train.cols();
  size_t num_panels = (n + width - 1) / width;
  packed->assign(num_panels * d * width, 0.0);
  for (size_t t = 0; t < n; ++t) {
    const double* row = train.Row(t);
    double* dst = packed->data() + (t / width) * d * width + t % width;
    for (size_t j = 0; j < d; ++j) dst[j * width] = row[j];
  }
}

// AVX2 panel kernel: 16 train rows per panel, four 4-wide accumulators.
// Only sub/mul/add — target("avx2") cannot contract into FMA, and AVX2
// lanes perform the same IEEE double ops as scalar code, so each pair's
// feature-ascending sum is bit-equal to the reference loop. The lane width
// changes only WHICH pairs compute simultaneously, never the order of
// operations inside a pair.
__attribute__((target("avx2"))) void PanelKernelAvx2(
    const double* packed, const double* query, size_t d, size_t num_panels,
    size_t n_train, double* out_row) {
  for (size_t p = 0; p < num_panels; ++p) {
    const double* panel = packed + p * d * 16;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (size_t j = 0; j < d; ++j) {
      __m256d qj = _mm256_broadcast_sd(query + j);
      const double* col = panel + j * 16;
      __m256d d0 = _mm256_sub_pd(qj, _mm256_loadu_pd(col));
      __m256d d1 = _mm256_sub_pd(qj, _mm256_loadu_pd(col + 4));
      __m256d d2 = _mm256_sub_pd(qj, _mm256_loadu_pd(col + 8));
      __m256d d3 = _mm256_sub_pd(qj, _mm256_loadu_pd(col + 12));
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
    }
    double acc[16];
    _mm256_storeu_pd(acc, a0);
    _mm256_storeu_pd(acc + 4, a1);
    _mm256_storeu_pd(acc + 8, a2);
    _mm256_storeu_pd(acc + 12, a3);
    size_t base = p * 16;
    size_t live = std::min<size_t>(16, n_train - base);
    for (size_t v = 0; v < live; ++v) out_row[base + v] = acc[v];
  }
}

// SSE2 fallback (baseline x86-64): 8 rows per panel, four 2-wide
// accumulators. Same per-pair operation order as the AVX2 kernel and the
// scalar reference, hence the same bits.
void PanelKernelSse2(const double* packed, const double* query, size_t d,
                     size_t num_panels, size_t n_train, double* out_row) {
  for (size_t p = 0; p < num_panels; ++p) {
    const double* panel = packed + p * d * 8;
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    for (size_t j = 0; j < d; ++j) {
      __m128d qj = _mm_set1_pd(query[j]);
      const double* col = panel + j * 8;
      __m128d d0 = _mm_sub_pd(qj, _mm_loadu_pd(col));
      __m128d d1 = _mm_sub_pd(qj, _mm_loadu_pd(col + 2));
      __m128d d2 = _mm_sub_pd(qj, _mm_loadu_pd(col + 4));
      __m128d d3 = _mm_sub_pd(qj, _mm_loadu_pd(col + 6));
      a0 = _mm_add_pd(a0, _mm_mul_pd(d0, d0));
      a1 = _mm_add_pd(a1, _mm_mul_pd(d1, d1));
      a2 = _mm_add_pd(a2, _mm_mul_pd(d2, d2));
      a3 = _mm_add_pd(a3, _mm_mul_pd(d3, d3));
    }
    double acc[8];
    _mm_storeu_pd(acc, a0);
    _mm_storeu_pd(acc + 2, a1);
    _mm_storeu_pd(acc + 4, a2);
    _mm_storeu_pd(acc + 6, a3);
    size_t base = p * 8;
    size_t live = std::min<size_t>(8, n_train - base);
    for (size_t v = 0; v < live; ++v) out_row[base + v] = acc[v];
  }
}

bool CpuHasAvx2() {
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
}

#endif  // FAIRCLEAN_X86_PANEL_KERNELS

}  // namespace

void PackTrainPanels(const Matrix& train, PackedPanels* packed) {
  packed->n_train = train.rows();
#ifdef FAIRCLEAN_X86_PANEL_KERNELS
  packed->width = CpuHasAvx2() ? 16 : 8;
  packed->num_panels = (train.rows() + packed->width - 1) / packed->width;
  PackPanels(train, packed->width, &packed->data);
#else
  packed->width = 0;
  packed->num_panels = 0;
  packed->data.clear();
#endif
}

void BlockedSquaredDistancesPacked(const Matrix& queries, size_t query_begin,
                                   size_t query_end, const Matrix& train,
                                   const PackedPanels& packed, double* out) {
  FC_CHECK_EQ(queries.cols(), train.cols());
  FC_CHECK(query_begin <= query_end && query_end <= queries.rows());
  FC_CHECK_EQ(packed.n_train, train.rows());
  size_t n_train = train.rows();
  size_t d = train.cols();
#ifdef FAIRCLEAN_X86_PANEL_KERNELS
  // Register-blocked panel kernel. The reference loop is latency-bound: one
  // accumulator per pair serializes every add. Processing a panel of train
  // rows at once gives one independent accumulator per row held in vector
  // registers, so the adds pipeline — while each pair still sums its
  // squares alone, feature-ascending, exactly like the reference. The
  // kernels are hand-written intrinsics because GCC's autovectorizer turns
  // the equivalent scalar panel loop into a cross-lane shuffle storm that
  // is slower than the naive code.
  for (size_t q = query_begin; q < query_end; ++q) {
    const double* query = queries.Row(q);
    double* out_row = out + (q - query_begin) * n_train;
    if (packed.width == 16) {
      PanelKernelAvx2(packed.data.data(), query, d, packed.num_panels,
                      n_train, out_row);
    } else {
      PanelKernelSse2(packed.data.data(), query, d, packed.num_panels,
                      n_train, out_row);
    }
  }
#else
  // Portable fallback: the reference kernel per query (already the exact
  // accumulation order, just without the panel pipelining).
  (void)d;
  for (size_t q = query_begin; q < query_end; ++q) {
    SquaredDistancesToRow(train, queries.Row(q),
                          out + (q - query_begin) * n_train);
  }
#endif
}

void BlockedSquaredDistances(const Matrix& queries, size_t query_begin,
                             size_t query_end, const Matrix& train,
                             double* out) {
  PackedPanels packed;
  PackTrainPanels(train, &packed);
  BlockedSquaredDistancesPacked(queries, query_begin, query_end, train,
                                packed, out);
}

Result<std::vector<double>> SolveCholesky(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          size_t n) {
  FC_CHECK_EQ(a.size(), n * n);
  FC_CHECK_EQ(b.size(), n);
  // Lower-triangular factor L with A = L L^T.
  std::vector<double> l(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::InvalidArgument("matrix not positive definite");
        }
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l[i * n + k] * z[k];
    z[i] = sum / l[i * n + i];
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = z[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
  return x;
}

Result<std::vector<double>> SolveCholeskyWithJitter(std::vector<double> a,
                                                    const std::vector<double>& b,
                                                    size_t n) {
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (attempt > 0) {
      double add = (jitter == 0.0) ? 1e-8 : jitter * 9.0;
      for (size_t i = 0; i < n; ++i) a[i * n + i] += add;
      jitter += add;
    }
    Result<std::vector<double>> solved = SolveCholesky(a, b, n);
    if (solved.ok()) return solved;
  }
  return Status::InvalidArgument(
      "matrix not positive definite even with jitter");
}

}  // namespace fairclean
