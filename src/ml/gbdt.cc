#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

double LogisticLoss(double y, double p) {
  constexpr double kEps = 1e-12;
  double clipped = std::min(1.0 - kEps, std::max(kEps, p));
  return -(y * std::log(clipped) + (1.0 - y) * std::log(1.0 - clipped));
}

}  // namespace

Status GradientBoostedTrees::Fit(const Matrix& x, const std::vector<int>& y,
                                 Rng* rng) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.num_rounds <= 0 || options_.learning_rate <= 0.0) {
    return Status::InvalidArgument("invalid boosting options");
  }
  if (options_.subsample <= 0.0 || options_.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }
  size_t n = x.rows();
  obs::TraceSpan span("ml", "gbdt fit");

  // Initialize with the log-odds of the base rate (clipped for degenerate
  // single-class training sets).
  double positives = 0.0;
  for (int label : y) positives += label;
  double rate = std::min(1.0 - 1e-6, std::max(1e-6, positives / n));
  base_score_ = std::log(rate / (1.0 - rate));

  RegressionTreeOptions tree_options = options_.tree;
  tree_options.max_depth = options_.max_depth;

  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  trees_.clear();
  loss_curve_.clear();

  // The feature ordering is invariant across boosting rounds; presort once
  // — or not at all when the tuner already presorted this matrix for the
  // whole hyperparameter grid.
  static obs::Counter* const shared_presorts =
      obs::MetricsRegistry::Global().GetCounter("ml.gbdt.presorts_shared");
  static obs::Counter* const round_filters =
      obs::MetricsRegistry::Global().GetCounter("ml.gbdt.round_filters");
  const PresortedFeatures* presorted = external_presort_;
  PresortedFeatures owned_presort;
  if (presorted != nullptr) {
    shared_presorts->Increment();
  } else if (options_.presort_reuse) {
    owned_presort = PresortedFeatures::Compute(x);
    presorted = &owned_presort;
  }

  // Round-loop scratch hoisted out of the 50-round hot loop: tree-fit
  // buffers, the subsample membership bitmap and the filtered per-feature
  // order are all reused across rounds.
  TreeFitWorkspace workspace;
  PresortedFeatures round_order;
  std::vector<char> member;

  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      double p = Sigmoid(margin[i]);
      grad[i] = p - static_cast<double>(y[i]);
      hess[i] = std::max(1e-10, p * (1.0 - p));
    }

    std::vector<size_t> sample;
    if (options_.subsample < 1.0 && rng != nullptr) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
      sample = rng->SampleWithoutReplacement(n, k);
    } else {
      sample.resize(n);
      for (size_t i = 0; i < n; ++i) sample[i] = i;
    }

    RegressionTree tree;
    if (presorted == nullptr) {
      // Ablation path (presort_reuse = false): per-round sort, the cost the
      // shared presort eliminates.
      FC_RETURN_IF_ERROR(tree.Fit(x, grad, hess, sample, tree_options));
    } else if (sample.size() < n) {
      // Derive this round's subsampled per-feature order by a stable
      // membership filter of the global order: the scan sequence (and so
      // every float sum) matches scanning the full order and skipping
      // non-members, while each level scan shrinks to the sample size.
      member.assign(n, 0);
      for (size_t index : sample) member[index] = 1;
      presorted->FilterInto(member, sample.size(), &round_order);
      round_filters->Increment();
      FC_RETURN_IF_ERROR(tree.FitPresorted(x, grad, hess, sample, round_order,
                                           tree_options, &workspace));
    } else {
      FC_RETURN_IF_ERROR(tree.FitPresorted(x, grad, hess, sample, *presorted,
                                           tree_options, &workspace));
    }

    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * tree.PredictOne(x.Row(i));
      loss += LogisticLoss(static_cast<double>(y[i]), Sigmoid(margin[i]));
    }
    loss_curve_.push_back(loss / static_cast<double>(n));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

Status GradientBoostedTrees::FitWithPresort(const Matrix& x,
                                            const std::vector<int>& y,
                                            Rng* rng,
                                            const PresortedFeatures* presorted) {
  external_presort_ = presorted;
  Status status = Fit(x, y, rng);
  external_presort_ = nullptr;
  return status;
}

std::vector<double> GradientBoostedTrees::PredictProba(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "PredictProba before Fit");
  std::vector<double> out(x.rows());
  if (options_.stacked_predict) {
    // GEMM-shaped stacked scan: trees outer, row blocks inner, so one
    // tree's node array is walked by a whole block of rows before moving
    // on. Each row's margin still accumulates base + lr*tree_0 + lr*tree_1
    // + ... in ascending tree order — the identical float add sequence as
    // the rows-outer loop below — so the scores are bit-equal.
    constexpr size_t kRowBlock = 64;
    for (size_t begin = 0; begin < x.rows(); begin += kRowBlock) {
      size_t end = std::min(begin + kRowBlock, x.rows());
      double margins[kRowBlock];
      for (size_t i = begin; i < end; ++i) margins[i - begin] = base_score_;
      for (const RegressionTree& tree : trees_) {
        for (size_t i = begin; i < end; ++i) {
          margins[i - begin] +=
              options_.learning_rate * tree.PredictOne(x.Row(i));
        }
      }
      for (size_t i = begin; i < end; ++i) {
        out[i] = Sigmoid(margins[i - begin]);
      }
    }
    return out;
  }
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    double margin = base_score_;
    for (const RegressionTree& tree : trees_) {
      margin += options_.learning_rate * tree.PredictOne(row);
    }
    out[i] = Sigmoid(margin);
  }
  return out;
}

}  // namespace fairclean
