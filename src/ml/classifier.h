#ifndef FAIRCLEAN_ML_CLASSIFIER_H_
#define FAIRCLEAN_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace fairclean {

struct PresortedFeatures;

/// Common interface for the study's binary classifiers (logistic
/// regression, kNN, gradient-boosted trees). Labels are 0/1; the positive
/// class denotes the desirable outcome.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on feature matrix `x` and parallel labels `y`. `rng` seeds any
  /// internal randomized decisions; implementations must be deterministic
  /// given the rng state.
  virtual Status Fit(const Matrix& x, const std::vector<int>& y,
                     Rng* rng) = 0;

  /// Like Fit, but may consume a caller-precomputed
  /// PresortedFeatures::Compute(x) shared across several fits on the same
  /// matrix (hyperparameter grids). The default ignores the hint, so
  /// families that cannot use it behave exactly like Fit; overrides must
  /// stay byte-identical to Fit for a presort computed from this `x`.
  virtual Status FitWithPresort(const Matrix& x, const std::vector<int>& y,
                                Rng* rng,
                                const PresortedFeatures* presorted) {
    (void)presorted;
    return Fit(x, y, rng);
  }

  /// P(y = 1) for every row of `x`. Requires a prior successful Fit.
  virtual std::vector<double> PredictProba(const Matrix& x) const = 0;

  /// Hard predictions at the 0.5 threshold.
  std::vector<int> Predict(const Matrix& x) const {
    std::vector<double> proba = PredictProba(x);
    std::vector<int> out(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5 ? 1 : 0;
    return out;
  }

  /// A fresh, untrained copy with the same hyperparameters.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Model family name ("log-reg", "knn", "xgboost").
  virtual std::string name() const = 0;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_CLASSIFIER_H_
