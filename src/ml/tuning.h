#ifndef FAIRCLEAN_ML_TUNING_H_
#define FAIRCLEAN_ML_TUNING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/classifier.h"

namespace fairclean {

/// A model family with one tuned hyperparameter, mirroring the paper's
/// setup: log-reg tunes the regularization strength C, knn tunes the number
/// of neighbors, xgboost tunes the maximum tree depth.
struct TunedModelFamily {
  std::string name;
  /// Candidate values of the tuned hyperparameter.
  std::vector<double> param_grid;
  /// Builds an untrained classifier for a hyperparameter value.
  std::function<std::unique_ptr<Classifier>(double)> make;
};

/// The three families of the study with their default grids.
TunedModelFamily LogRegFamily();
TunedModelFamily KnnFamily();
TunedModelFamily GbdtFamily();

/// Looks up a family by its paper name ("log-reg", "knn", "xgboost").
Result<TunedModelFamily> ModelFamilyByName(const std::string& name);

/// Names of all model families, in the paper's order.
std::vector<std::string> AllModelNames();

/// Outcome of hyperparameter search + final training.
struct TuneOutcome {
  double best_param = 0.0;
  double best_cv_accuracy = 0.0;
  std::unique_ptr<Classifier> model;  // trained on the full training set
};

/// Selects the best hyperparameter by mean k-fold CV accuracy (ties go to
/// the earlier grid entry), then trains a fresh model on the full training
/// set. All randomized decisions derive from `rng`.
Result<TuneOutcome> TuneAndFit(const TunedModelFamily& family, const Matrix& x,
                               const std::vector<int>& y, size_t num_folds,
                               Rng* rng);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_TUNING_H_
