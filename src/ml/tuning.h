#ifndef FAIRCLEAN_ML_TUNING_H_
#define FAIRCLEAN_ML_TUNING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_mode.h"
#include "common/random.h"
#include "common/status.h"
#include "data/split.h"
#include "ml/classifier.h"
#include "ml/regression_tree.h"

namespace fairclean {

struct TuningFoldData;

/// A model family with one tuned hyperparameter, mirroring the paper's
/// setup: log-reg tunes the regularization strength C, knn tunes the number
/// of neighbors, xgboost tunes the maximum tree depth.
struct TunedModelFamily {
  std::string name;
  /// Candidate values of the tuned hyperparameter.
  std::vector<double> param_grid;
  /// Builds an untrained classifier for a hyperparameter value.
  std::function<std::unique_ptr<Classifier>(double)> make;
  /// True when the family's FitWithPresort consumes a shared
  /// PresortedFeatures of its training matrix (xgboost); lets the tuner
  /// presort every fold once for the whole grid instead of once per fit.
  bool wants_presort = false;
  /// Optional fused-mode batched grid evaluator: validation accuracy of one
  /// fold for EVERY param_grid entry from a single pass (kNN answers the
  /// whole k grid from one top-max(k) distance sweep). Each entry must be
  /// bit-equal to the per-grid-point fit+score path; an error marks the
  /// fold failed for every grid entry, matching the per-point skip. Null
  /// when the family has no batched kernel — the tuner then falls back to
  /// the per-grid-point loop even in fused mode.
  std::function<Result<std::vector<double>>(const TuningFoldData&)>
      fused_grid_eval;
};

/// Per-fold train/validation slices of a hyperparameter search,
/// materialized once and reused across every grid point — the grid loop
/// used to re-copy near-full matrices |grid| times per fold.
struct TuningFoldData {
  Matrix train_x;
  std::vector<int> train_y;
  Matrix valid_x;
  std::vector<int> valid_y;
  /// Validation-row slice of the caller's group membership; filled only
  /// when a membership vector is supplied (fairness-constrained tuning).
  std::vector<int> valid_membership;
  /// Feature presort of train_x, built only for wants_presort families
  /// (has_presort distinguishes "not built" from "built but empty").
  PresortedFeatures train_presort;
  bool has_presort = false;
};

/// Materializes the per-fold slices, fanning folds across the shared fold
/// pool when one is available (each fold writes only its own slot, so
/// scheduling cannot affect the result). Pure data movement plus
/// deterministic sorts: does not consume any rng.
std::vector<TuningFoldData> MaterializeTuningFolds(
    const Matrix& x, const std::vector<int>& y,
    const std::vector<TrainTestIndices>& folds, bool with_presort,
    const std::vector<int>* group_membership = nullptr);

/// The three families of the study with their default grids. `mode` picks
/// the kernel flavor (fused families enable the batched grid evaluator and
/// the packed/stacked predict kernels); every mode scores identically,
/// bit for bit.
TunedModelFamily LogRegFamily();
TunedModelFamily KnnFamily(ExecMode mode = ExecMode::kFused);
TunedModelFamily GbdtFamily(ExecMode mode = ExecMode::kFused);

/// Looks up a family by its paper name ("log-reg", "knn", "xgboost").
Result<TunedModelFamily> ModelFamilyByName(const std::string& name,
                                           ExecMode mode = ExecMode::kFused);

/// Names of all model families, in the paper's order.
std::vector<std::string> AllModelNames();

/// Outcome of hyperparameter search + final training.
struct TuneOutcome {
  double best_param = 0.0;
  double best_cv_accuracy = 0.0;
  std::unique_ptr<Classifier> model;  // trained on the full training set
};

/// Selects the best hyperparameter by mean k-fold CV accuracy (ties go to
/// the earlier grid entry), then trains a fresh model on the full training
/// set. All randomized decisions derive from `rng`.
///
/// `mode` selects how much work is shared across the grid (DESIGN.md §15):
/// naive re-materializes every fold slice (and presort) per grid point,
/// shared materializes them once per tune, fused additionally evaluates the
/// whole grid per fold through `family.fused_grid_eval` when available.
/// The rng fork sequence is identical in every mode, so the selected
/// hyperparameter, CV accuracy, and final model are byte-identical.
Result<TuneOutcome> TuneAndFit(const TunedModelFamily& family, const Matrix& x,
                               const std::vector<int>& y, size_t num_folds,
                               Rng* rng, ExecMode mode = ExecMode::kFused);

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_TUNING_H_
