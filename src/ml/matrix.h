#ifndef FAIRCLEAN_ML_MATRIX_H_
#define FAIRCLEAN_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace fairclean {

/// Dense row-major matrix of doubles — the feature representation consumed
/// by all classifiers. Row-major layout keeps per-example access (the hot
/// path in kNN distance computation and tree traversal) contiguous.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    FC_CHECK_LT(r, rows_);
    FC_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    FC_CHECK_LT(r, rows_);
    FC_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the first element of row `r` (cols() contiguous doubles).
  const double* Row(size_t r) const {
    FC_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  double* MutableRow(size_t r) {
    FC_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// A new matrix containing rows at `indices` (repetition allowed).
  Matrix TakeRows(const std::vector<size_t>& indices) const {
    Matrix out(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
      const double* src = Row(indices[i]);
      double* dst = out.MutableRow(i);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_ML_MATRIX_H_
