#include "ml/knn.h"

#include <cstddef>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ml/linalg.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

// Queries handled per task: large enough to amortize the blocked kernel's
// tile transposes and the task dispatch, small enough to fan out modest
// validation folds. Block boundaries never affect results — every query
// writes only its own output slot.
constexpr size_t kQueryBlock = 64;

}  // namespace

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y,
                          Rng* rng) {
  (void)rng;
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  train_x_ = x;
  train_y_ = y;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> KnnClassifier::PredictProba(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "PredictProba before Fit");
  FC_CHECK_EQ(x.cols(), train_x_.cols());
  obs::TraceSpan span("ml", "knn predict");
  static obs::Counter* const distance_pairs =
      obs::MetricsRegistry::Global().GetCounter("ml.knn.distance_pairs");
  size_t n_train = train_x_.rows();
  size_t k = std::min(static_cast<size_t>(options_.k), n_train);
  size_t n_queries = x.rows();
  distance_pairs->Increment(static_cast<uint64_t>(n_queries) * n_train);

  std::vector<double> out(n_queries);
  size_t num_blocks = (n_queries + kQueryBlock - 1) / kQueryBlock;
  ThreadPool* pool = ThreadPool::SharedForFolds();
  RunIndexed(pool, num_blocks, [&](size_t block) -> int {
    size_t begin = block * kQueryBlock;
    size_t end = std::min(begin + kQueryBlock, n_queries);
    // Per-task scratch, reused across every query of the block (hoisted
    // out of the per-query loop).
    std::vector<double> sq((end - begin) * n_train);
    std::vector<std::pair<double, size_t>> best(k);
    BlockedSquaredDistances(x, begin, end, train_x_, sq.data());
    for (size_t q = begin; q < end; ++q) {
      const double* sq_row = sq.data() + (q - begin) * n_train;
      // Bounded selection: one pass keeping the k smallest (dist, index)
      // pairs in an insertion-sorted buffer. The comparison is the same
      // lexicographic (dist, index) order a partial_sort over all pairs
      // would use — the ascending-t scan means an equal-distance newcomer
      // always loses to a kept entry — so the selected set is identical,
      // without ever materializing an n-sized pair array.
      size_t filled = 0;
      for (size_t t = 0; t < n_train; ++t) {
        double dv = sq_row[t];
        if (filled == k) {
          if (dv >= best[k - 1].first) continue;
        } else {
          ++filled;
        }
        size_t pos = filled - 1;
        while (pos > 0 && dv < best[pos - 1].first) {
          best[pos] = best[pos - 1];
          --pos;
        }
        best[pos] = {dv, t};
      }
      int positives = 0;
      for (size_t j = 0; j < k; ++j) positives += train_y_[best[j].second];
      // Slot-ordered write: each query owns out[q], so the block fan-out
      // cannot reorder or race results.
      out[q] = static_cast<double>(positives) / static_cast<double>(k);
    }
    return 0;
  });
  return out;
}

}  // namespace fairclean
